"""Tests for shared scheduler machinery and the top-level simulator."""

from __future__ import annotations

import pytest

from repro.baselines.vllm import VLLMScheduler
from repro.serving.kv_cache import KVCacheManager
from repro.serving.engine import SimulatedEngine
from repro.serving.request import RequestState
from repro.serving.server import ServingSimulator
from tests.conftest import make_request


class TestPoolMachinery:
    def test_admit_and_has_work(self, engine):
        s = VLLMScheduler(engine)
        assert not s.has_work()
        s.admit(make_request())
        assert s.has_work()

    def test_has_work_ignores_finished(self, engine):
        # Requests enter the pool through admit() (which installs the
        # finish hook keeping has_work O(1)) and finish while running.
        s = VLLMScheduler(engine)
        req = make_request(max_new_tokens=1)
        s.admit(req)
        s.waiting.popleft()
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 0.0)
        s.running.append(req)
        req.commit_tokens(1, 2, 0.1)
        assert not s.has_work()

    def test_prefill_iteration_moves_to_running(self, engine):
        s = VLLMScheduler(engine)
        s.admit(make_request(rid=1))
        latency = s._prefill_iteration(0.0)
        assert latency is not None
        assert len(s.running) == 1
        assert not s.waiting

    def test_prefill_batch_respects_token_budget(self, engine):
        s = VLLMScheduler(engine, prefill_token_budget=100)
        s.admit(make_request(rid=1, prompt_len=80))
        s.admit(make_request(rid=2, prompt_len=80))
        batch = s._take_prefill_batch()
        assert [r.rid for r, _ in batch] == [1]

    def test_prefill_first_long_prompt_not_starved(self, engine):
        s = VLLMScheduler(engine, prefill_token_budget=100)
        s.admit(make_request(rid=1, prompt_len=5000))
        batch = s._take_prefill_batch()
        assert [r.rid for r, _ in batch] == [1]

    def test_prefill_respects_batch_slots(self, engine):
        s = VLLMScheduler(engine, max_batch_size=2)
        s.running = [make_request(rid=10), make_request(rid=11)]
        s.admit(make_request(rid=1))
        assert s._take_prefill_batch() == []

    def test_retire_finished_frees_kv(self, engine):
        s = VLLMScheduler(engine)
        req = make_request(rid=1, max_new_tokens=1)
        s.admit(req)
        s.waiting.popleft()
        engine.kv.ensure(1, 10)
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 0.0)
        s.running.append(req)
        req.commit_tokens(1, 2, 0.1)
        s._retire_finished()
        assert s.finished == [req]
        assert not engine.kv.holds(1)

    def test_kv_pressure_preempts_newest(self, pair, target_roofline, draft_roofline):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)  # 10 blocks
        engine = SimulatedEngine(pair, target_roofline, draft_roofline, kv)
        s = VLLMScheduler(engine)
        old = make_request(rid=1, arrival=0.0, prompt_len=70)
        new = make_request(rid=2, arrival=1.0, prompt_len=70)
        for r in (old, new):
            r.advance_prefill(r.prompt_len)
            r.begin_decode(1, 1.0)
            engine.kv.ensure(r.rid, r.kv_tokens)
            s.running.append(r)
        # Old request needs more blocks than remain: newest gets evicted.
        survivors = s._ensure_kv_for_decode([old, new], extra_tokens=80)
        assert old in survivors
        assert new not in survivors
        assert new.state == RequestState.PREEMPTED
        assert new in s.waiting
        assert new.prefilled == 0


class TestSimulator:
    def test_scheduler_engine_mismatch(self, engine, pair, target_roofline, draft_roofline):
        other = SimulatedEngine(
            pair, target_roofline, draft_roofline, KVCacheManager(10_000)
        )
        s = VLLMScheduler(other)
        with pytest.raises(ValueError):
            ServingSimulator(engine, s, [])

    def test_all_requests_finish(self, engine):
        reqs = [
            make_request(rid=i, arrival=0.2 * i, prompt_len=20, max_new_tokens=5)
            for i in range(10)
        ]
        sim = ServingSimulator(engine, VLLMScheduler(engine), reqs)
        report = sim.run()
        assert report.metrics.num_finished == 10
        assert report.iterations > 0
        assert report.sim_time_s > 0

    def test_clock_jumps_idle_gaps(self, engine):
        reqs = [
            make_request(rid=0, arrival=0.0, prompt_len=10, max_new_tokens=2),
            make_request(rid=1, arrival=100.0, prompt_len=10, max_new_tokens=2),
        ]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        assert report.sim_time_s > 100.0
        # The span includes the idle gap but iterations stay small.
        assert report.iterations < 20

    def test_horizon_cutoff(self, engine):
        reqs = [make_request(rid=i, prompt_len=400, max_new_tokens=200) for i in range(30)]
        sim = ServingSimulator(engine, VLLMScheduler(engine), reqs, max_sim_time_s=0.5)
        report = sim.run()
        assert report.sim_time_s <= 0.5 + 1.0  # one iteration of slack
        assert report.metrics.num_finished < 30

    def test_report_phase_breakdown(self, engine):
        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=3)]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        assert set(report.phase_breakdown) >= {"prefill", "decode"}

    def test_deterministic_repeat(self, target_roofline, draft_roofline):
        from repro.model.pair import ModelPair

        def run():
            pair = ModelPair.build(vocab_size=1000, seed=3)
            kv = KVCacheManager(100_000)
            engine = SimulatedEngine(pair, target_roofline, draft_roofline, kv, seed=3)
            reqs = [
                make_request(rid=i, arrival=0.1 * i, prompt_len=30, max_new_tokens=8)
                for i in range(8)
            ]
            return ServingSimulator(engine, VLLMScheduler(engine), reqs).run()

        a, b = run(), run()
        assert a.sim_time_s == b.sim_time_s
        assert a.metrics.total_tokens == b.metrics.total_tokens
