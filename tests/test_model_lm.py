"""Tests for the synthetic target LM and draft LM."""

from __future__ import annotations

import math

import pytest

from repro.model.draft import DraftLM
from repro.model.stochastic_lm import StochasticLM, TokenDistribution
from repro.model.vocab import Vocabulary


@pytest.fixture
def lm() -> StochasticLM:
    return StochasticLM(Vocabulary(2000), seed=11, predictability=0.7)


class TestTokenDistribution:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TokenDistribution((1, 2), (0.5,))

    def test_prob_of_present_and_absent(self):
        d = TokenDistribution((5, 9), (0.8, 0.2))
        assert d.prob_of(5) == 0.8
        assert d.prob_of(7) == 0.0

    def test_top_token(self):
        assert TokenDistribution((5, 9), (0.8, 0.2)).top_token() == 5


class TestStochasticLM:
    def test_invalid_params(self):
        v = Vocabulary(2000)
        with pytest.raises(ValueError):
            StochasticLM(v, branching=1)
        with pytest.raises(ValueError):
            StochasticLM(v, predictability=0.0)
        with pytest.raises(ValueError):
            StochasticLM(v, decay=1.0)

    def test_distribution_normalized(self, lm):
        ctx = lm.context_of([1, 2, 3])
        dist = lm.distribution(ctx)
        assert math.isclose(sum(dist.probs), 1.0, rel_tol=1e-9)

    def test_probs_sorted_descending(self, lm):
        dist = lm.distribution(lm.context_of([4, 5]))
        assert list(dist.probs) == sorted(dist.probs, reverse=True)

    def test_token_ids_distinct(self, lm):
        for seq in ([1], [2, 3], [9, 9, 9]):
            dist = lm.distribution(lm.context_of(seq))
            assert len(set(dist.token_ids)) == len(dist.token_ids)

    def test_deterministic_per_context(self, lm):
        ctx = lm.context_of([7, 8])
        assert lm.distribution(ctx) is lm.distribution(ctx)  # cached
        fresh = StochasticLM(Vocabulary(2000), seed=11, predictability=0.7)
        assert fresh.distribution(ctx).probs == lm.distribution(ctx).probs

    def test_different_contexts_differ(self, lm):
        d1 = lm.distribution(lm.context_of([1]))
        d2 = lm.distribution(lm.context_of([2]))
        assert d1.token_ids != d2.token_ids or d1.probs != d2.probs

    def test_seed_changes_model(self):
        a = StochasticLM(Vocabulary(2000), seed=1)
        b = StochasticLM(Vocabulary(2000), seed=2)
        ctx = [3, 4, 5]
        assert a.distribution(a.context_of(ctx)).probs != b.distribution(b.context_of(ctx)).probs

    def test_top1_tracks_predictability(self):
        v = Vocabulary(2000)
        lo = StochasticLM(v, seed=3, predictability=0.3)
        hi = StochasticLM(v, seed=3, predictability=0.9)
        ctxs = [lo.context_of([i]) for i in range(300)]
        mean_lo = sum(lo.distribution(c).probs[0] for c in ctxs) / 300
        mean_hi = sum(hi.distribution(c).probs[0] for c in ctxs) / 300
        assert mean_hi > mean_lo + 0.3
        assert abs(mean_lo - 0.3) < 0.06
        assert abs(mean_hi - 0.9) < 0.06

    def test_center_override(self, lm):
        ctx = lm.context_of([1, 2])
        low = lm.distribution(ctx, center=0.2)
        high = lm.distribution(ctx, center=0.95)
        assert high.probs[0] > low.probs[0]
        # Same support regardless of center.
        assert set(low.token_ids) == set(high.token_ids)

    def test_sample_in_support(self, lm):
        for i in range(100):
            ctx = lm.context_of([i])
            assert lm.sample(ctx) in lm.distribution(ctx).token_ids

    def test_sample_deterministic(self, lm):
        ctx = lm.context_of([42])
        assert lm.sample(ctx) == lm.sample(ctx)

    def test_sample_frequency_matches_top1(self):
        # Across many contexts, the top token is sampled about top1 of
        # the time (the sample is drawn from the distribution).
        lm = StochasticLM(Vocabulary(2000), seed=5, predictability=0.8, spread=0.05)
        hits = 0
        n = 2000
        for i in range(n):
            ctx = lm.context_of([i, i + 1])
            if lm.sample(ctx) == lm.distribution(ctx).top_token():
                hits += 1
        assert abs(hits / n - 0.8) < 0.04

    def test_greedy_is_top(self, lm):
        ctx = lm.context_of([9])
        assert lm.greedy(ctx) == lm.distribution(ctx).top_token()

    def test_extend_matches_context_of(self, lm):
        assert lm.extend(lm.context_of([1, 2]), 3) == lm.context_of([1, 2, 3])

    def test_cache_bounded(self):
        lm = StochasticLM(Vocabulary(2000), seed=1)
        lm._cache_cap = 100
        for i in range(250):
            lm.distribution(lm.context_of([i]))
        assert len(lm._cache) <= 101

    def test_clear_cache(self, lm):
        lm.distribution(lm.context_of([1]))
        lm.clear_cache()
        assert len(lm._cache) == 0


class TestDraftLM:
    def test_alignment_validation(self, lm):
        with pytest.raises(ValueError):
            DraftLM(lm, alignment=1.5)

    def test_perfect_alignment_equals_target(self, lm):
        draft = DraftLM(lm, alignment=1.0)
        ctx = lm.context_of([1, 2, 3])
        assert draft.distribution(ctx) is lm.distribution(ctx)

    def test_support_shared_with_target(self, lm):
        draft = DraftLM(lm, alignment=0.5)
        ctx = lm.context_of([4, 4])
        assert set(draft.distribution(ctx).token_ids) == set(
            lm.distribution(ctx).token_ids
        )

    def test_normalized(self, lm):
        draft = DraftLM(lm, alignment=0.5)
        ctx = lm.context_of([8])
        assert math.isclose(sum(draft.distribution(ctx).probs), 1.0, rel_tol=1e-9)

    def test_sorted_descending(self, lm):
        draft = DraftLM(lm, alignment=0.3)
        dist = draft.distribution(lm.context_of([6, 7]))
        assert list(dist.probs) == sorted(dist.probs, reverse=True)

    def test_alignment_controls_agreement(self, lm):
        # Higher alignment => draft top-1 agrees with target top-1 more often.
        strong = DraftLM(lm, alignment=0.95)
        weak = StochasticLM(Vocabulary(2000), seed=11, predictability=0.7)
        weak_draft = DraftLM(weak, alignment=0.1)
        n = 400
        agree_strong = sum(
            strong.distribution(lm.context_of([i])).top_token()
            == lm.distribution(lm.context_of([i])).top_token()
            for i in range(n)
        )
        agree_weak = sum(
            weak_draft.distribution(weak.context_of([i])).top_token()
            == weak.distribution(weak.context_of([i])).top_token()
            for i in range(n)
        )
        assert agree_strong > agree_weak

    def test_top_w(self, lm):
        draft = DraftLM(lm, alignment=0.8)
        ctx = lm.context_of([2])
        top3 = draft.top_w(ctx, 3)
        assert len(top3) == 3
        dist = draft.distribution(ctx)
        assert [t for t, _ in top3] == list(dist.token_ids[:3])

    def test_center_passthrough(self, lm):
        draft = DraftLM(lm, alignment=0.9)
        ctx = lm.context_of([3])
        hi = draft.distribution(ctx, center=0.95)
        lo = draft.distribution(ctx, center=0.2)
        assert hi.probs[0] > lo.probs[0]
