"""Tests for the request lifecycle and SLO accounting."""

from __future__ import annotations

import pytest

from repro.serving.request import Request, RequestState
from tests.conftest import make_request


class TestValidation:
    def test_invalid_prompt(self):
        with pytest.raises(ValueError):
            make_request(prompt_len=0)

    def test_invalid_output(self):
        with pytest.raises(ValueError):
            make_request(max_new_tokens=0)

    def test_invalid_slo(self):
        with pytest.raises(ValueError):
            make_request(tpot_slo=0.0)


class TestPrefill:
    def test_chunked_progress(self):
        req = make_request(prompt_len=100)
        req.advance_prefill(40)
        assert req.prefilled == 40
        assert req.remaining_prompt == 60
        assert req.state == RequestState.PREFILLING

    def test_overshoot_rejected(self):
        req = make_request(prompt_len=10)
        with pytest.raises(ValueError):
            req.advance_prefill(11)

    def test_zero_chunk_rejected(self):
        req = make_request()
        with pytest.raises(ValueError):
            req.advance_prefill(0)

    def test_begin_decode_requires_complete_prefill(self):
        req = make_request(prompt_len=10)
        req.advance_prefill(5)
        with pytest.raises(ValueError):
            req.begin_decode(123, 1.0)

    def test_begin_decode_stamps_once(self):
        req = make_request(prompt_len=10)
        req.advance_prefill(10)
        req.begin_decode(123, 1.0)
        assert req.state == RequestState.RUNNING
        assert req.decode_start == 1.0
        assert req.ctx == 123


def running_request(**kw) -> Request:
    req = make_request(**kw)
    req.advance_prefill(req.prompt_len)
    req.begin_decode(999, 1.0)
    return req


class TestDecode:
    def test_commit_advances(self):
        req = running_request(max_new_tokens=10)
        req.commit_tokens(3, 1000, 1.1)
        assert req.n_generated == 3
        assert req.ctx == 1000
        assert req.first_token_time == 1.1
        assert req.last_token_time == 1.1

    def test_commit_finishes_at_cap(self):
        req = running_request(max_new_tokens=4)
        req.commit_tokens(4, 1000, 1.2)
        assert req.is_finished
        assert req.finish_time == 1.2

    def test_commit_beyond_cap_rejected(self):
        req = running_request(max_new_tokens=2)
        with pytest.raises(ValueError):
            req.commit_tokens(3, 1000, 1.2)

    def test_commit_while_queued_rejected(self):
        req = make_request()
        with pytest.raises(ValueError):
            req.commit_tokens(1, 1, 1.0)

    def test_kv_tokens(self):
        req = running_request(prompt_len=32, max_new_tokens=10)
        req.commit_tokens(2, 1, 1.5)
        assert req.kv_tokens == 34

    def test_token_times_recorded_when_enabled(self):
        req = running_request(max_new_tokens=10)
        req.record_token_times = True
        req.commit_tokens(2, 1, 1.5)
        assert req.token_times == [1.5, 1.5]


class TestPreemption:
    def test_preempt_keep_kv(self):
        req = running_request()
        req.preempt(drop_kv=False)
        assert req.state == RequestState.PREEMPTED
        assert req.prefilled == req.prompt_len
        req.resume()
        assert req.state == RequestState.RUNNING

    def test_preempt_drop_kv_requeues(self):
        req = running_request()
        req.preempt(drop_kv=True)
        assert req.prefilled == 0
        req.resume()
        assert req.state == RequestState.QUEUED

    def test_preempt_queued_rejected(self):
        req = make_request()
        with pytest.raises(ValueError):
            req.preempt(drop_kv=True)

    def test_resume_running_rejected(self):
        req = running_request()
        with pytest.raises(ValueError):
            req.resume()

    def test_preempt_count(self):
        req = running_request()
        req.preempt(drop_kv=False)
        req.resume()
        req.preempt(drop_kv=False)
        assert req.preempt_count == 2


class TestSLOAccounting:
    def test_avg_tpot(self):
        req = running_request(max_new_tokens=10)  # decode_start = 1.0
        req.commit_tokens(4, 1, 1.2)
        assert req.avg_tpot == pytest.approx(0.2 / 4)

    def test_avg_tpot_infinite_before_tokens(self):
        req = running_request()
        assert req.avg_tpot == float("inf")

    def test_attained_requires_finish(self):
        req = running_request(max_new_tokens=4, tpot_slo=0.1)
        req.commit_tokens(2, 1, 1.1)
        assert not req.attained  # not finished yet
        req.commit_tokens(2, 1, 1.2)
        assert req.attained  # 0.2s / 4 tokens = 50ms <= 100ms

    def test_violated_when_slow(self):
        req = running_request(max_new_tokens=2, tpot_slo=0.01)
        req.commit_tokens(2, 1, 2.0)  # 1s for 2 tokens
        assert req.is_finished and not req.attained

    def test_requirement_matches_slo_module(self):
        req = running_request(max_new_tokens=50, tpot_slo=0.05)
        req.commit_tokens(2, 1, 1.3)
        # now=1.3, elapsed=0.3, o=2, t_spec=0.05:
        # A = (0.3+0.05)/0.05 - 2 = 5.0
        assert req.requirement(1.3, 0.05) == pytest.approx(5.0)

    def test_requirement_before_decode_start(self):
        req = make_request(tpot_slo=0.05)
        assert req.requirement(10.0, 0.05) == pytest.approx(1.0)
