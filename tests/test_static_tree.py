"""Tests for the Sequoia-style static-topology extension."""

from __future__ import annotations

import itertools

import pytest

from repro.core.static_tree import (
    Topology,
    estimate_rank_probs,
    instantiate_topology,
    optimal_static_topology,
)


class TestTopology:
    def test_size_and_depth(self):
        chain = Topology((Topology((Topology(),)),))
        assert chain.size == 2
        assert chain.depth == 2
        star = Topology((Topology(), Topology(), Topology()))
        assert star.size == 3
        assert star.depth == 1

    def test_empty(self):
        assert Topology().size == 0
        assert Topology().depth == 0


class TestRankProbs:
    def test_validation(self, pair):
        with pytest.raises(ValueError):
            estimate_rank_probs(pair, [], 3)
        with pytest.raises(ValueError):
            estimate_rank_probs(pair, [1], 0)

    def test_monotone_decreasing(self, pair):
        ctxs = [pair.context_of([i, 4]) for i in range(50)]
        probs = estimate_rank_probs(pair, ctxs, 4)
        assert len(probs) == 4
        assert all(probs[i] >= probs[i + 1] for i in range(3))
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_rank1_tracks_predictability(self, pair):
        ctxs = [pair.context_of([i, 9]) for i in range(50)]
        hi = estimate_rank_probs(pair, ctxs, 2, center=0.9)
        lo = estimate_rank_probs(pair, ctxs, 2, center=0.3)
        assert hi[0] > lo[0]


class TestDP:
    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_static_topology((), 3)
        with pytest.raises(ValueError):
            optimal_static_topology((1.5,), 3)
        with pytest.raises(ValueError):
            optimal_static_topology((0.5,), -1)

    def test_zero_budget(self):
        topo, value = optimal_static_topology((0.7, 0.2), 0)
        assert topo.size == 0
        assert value == 0.0

    def test_single_node_takes_rank_one(self):
        topo, value = optimal_static_topology((0.7, 0.2), 1)
        assert topo.size == 1
        assert value == pytest.approx(0.7)
        assert len(topo.children) == 1

    def test_chain_when_top_rank_dominates(self):
        # q = (0.9, 0.01): deep chains beat wide trees.
        topo, value = optimal_static_topology((0.9, 0.01), 4)
        assert topo.depth == 4
        assert value == pytest.approx(0.9 + 0.81 + 0.729 + 0.6561)

    def test_wide_when_ranks_flat(self):
        # q = (0.4, 0.39, 0.38): siblings beat grandchildren
        # (0.4*0.4=0.16 < 0.38).
        topo, value = optimal_static_topology((0.4, 0.39, 0.38), 3)
        assert topo.depth == 1
        assert value == pytest.approx(0.4 + 0.39 + 0.38)

    def test_uses_at_most_budget(self):
        for n in range(0, 12):
            topo, _ = optimal_static_topology((0.6, 0.2, 0.1), n)
            assert topo.size <= n

    def _brute_force(self, qs, n):
        """Enumerate all topologies of exactly <= n nodes, return max value."""
        def enum(budget):
            yield Topology()
            if budget == 0:
                return
            # Assign m_i >= 0 nodes to each rank (child i exists iff m_i >= 1).
            k = len(qs)
            for alloc in itertools.product(range(budget + 1), repeat=k):
                if sum(alloc) > budget or sum(alloc) == 0:
                    continue
                child_options = []
                for m in alloc:
                    if m == 0:
                        child_options.append([None])
                    else:
                        child_options.append(list(enum(m - 1)))
                for combo in itertools.product(*child_options):
                    kids = tuple(c for c in combo if c is not None)
                    # Enforce node-count consistency.
                    t = Topology(kids)
                    if t.size <= budget:
                        yield t

        def value(topo, weight=1.0):
            total = 0.0
            for i, child in enumerate(topo.children):
                w = weight * qs[i]
                total += w + value(child, w)
            return total

        return max(value(t) for t in enum(n))

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_brute_force(self, n):
        qs = (0.65, 0.2, 0.08)
        _, dp_value = optimal_static_topology(qs, n)
        assert dp_value == pytest.approx(self._brute_force(qs, n), rel=1e-9)

    def test_value_monotone_in_budget(self):
        qs = (0.7, 0.2, 0.05)
        values = [optimal_static_topology(qs, n)[1] for n in range(8)]
        assert values == sorted(values)


class TestInstantiation:
    def test_tokens_follow_draft_ranks(self, pair):
        ctx = pair.context_of([3, 3])
        topo, _ = optimal_static_topology((0.7, 0.2), 5)
        tree = instantiate_topology(pair, 0, ctx, topo)
        assert tree.num_speculated == topo.size
        # Root's first child is the draft's top token.
        top_tok, _ = pair.draft_children(ctx, 1)[0]
        assert tree.root.children[0].token_id == top_tok

    def test_ctx_hashes_consistent(self, pair):
        ctx = pair.context_of([5])
        topo, _ = optimal_static_topology((0.6, 0.3, 0.1), 7)
        tree = instantiate_topology(pair, 0, ctx, topo)
        for node in tree.nodes(include_root=False):
            assert node.ctx_hash == pair.extend(node.parent.ctx_hash, node.token_id)

    def test_verifiable(self, pair):
        from repro.model.acceptance import verify_tree

        ctx = pair.context_of([8, 1])
        topo, _ = optimal_static_topology((0.7, 0.2), 6)
        tree = instantiate_topology(pair, 0, ctx, topo)
        accepted, corr, _ = verify_tree(pair, tree.root)
        assert len(accepted) <= topo.depth
