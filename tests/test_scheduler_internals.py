"""White-box tests for AdaServe scheduler internals and API hygiene."""

from __future__ import annotations

import math

import pytest

from repro.core.scheduler import AdaServeScheduler
from tests.conftest import make_request


class TestLatencyEstimate:
    def test_monotone_in_batch(self, engine):
        s = AdaServeScheduler(engine)
        small = s._estimate_iteration_latency(2, 4, 2, 0)
        large = s._estimate_iteration_latency(200, 4, 2, 0)
        assert large >= small

    def test_monotone_in_depth(self, engine):
        s = AdaServeScheduler(engine)
        shallow = s._estimate_iteration_latency(8, 1, 2, 0)
        deep = s._estimate_iteration_latency(8, 6, 2, 0)
        assert deep > shallow

    def test_includes_verification_floor(self, engine):
        s = AdaServeScheduler(engine)
        est = s._estimate_iteration_latency(1, 0, 1, 0)
        verify = engine.target_roofline.forward_latency(s.verify_budget, 0)
        assert est >= verify

    def test_context_increases_estimate(self, engine):
        s = AdaServeScheduler(engine)
        assert s._estimate_iteration_latency(8, 3, 2, 100_000) > (
            s._estimate_iteration_latency(8, 3, 2, 0)
        )


class TestMarginRequirement:
    def test_tighter_than_plain(self, engine):
        s = AdaServeScheduler(engine, slo_margin=0.9)
        req = make_request(tpot_slo=0.05, max_new_tokens=10)
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 0.0)
        plain = req.requirement(1.0, 0.04)
        margined = s._margin_requirement(req, 1.0, 0.04)
        assert margined > plain

    def test_margin_one_matches_plain(self, engine):
        s = AdaServeScheduler(engine, slo_margin=1.0)
        req = make_request(tpot_slo=0.05, max_new_tokens=10)
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 0.0)
        assert s._margin_requirement(req, 1.0, 0.04) == pytest.approx(
            req.requirement(1.0, 0.04)
        )


class TestPrefillChunk:
    def test_no_waiting_no_chunk(self, engine):
        s = AdaServeScheduler(engine)
        assert s._take_prefill_chunk() == []

    def test_chunk_capped(self, engine):
        s = AdaServeScheduler(engine, prefill_chunk=64)
        s.admit(make_request(rid=1, prompt_len=500))
        ((req, chunk),) = s._take_prefill_chunk()
        assert chunk == 64
        assert req.rid == 1

    def test_chunk_takes_tail(self, engine):
        s = AdaServeScheduler(engine, prefill_chunk=64)
        r = make_request(rid=1, prompt_len=80)
        r.advance_prefill(40)
        s.waiting.append(r)
        ((_, chunk),) = s._take_prefill_chunk()
        assert chunk == 40

    def test_no_chunk_when_batch_full(self, engine):
        s = AdaServeScheduler(engine, max_batch_size=1)
        s.running = [make_request(rid=9)]
        s.admit(make_request(rid=1))
        assert s._take_prefill_chunk() == []


class TestGeometricDepthSolve:
    """The SLO-pressure depth floor's math, checked in isolation."""

    @staticmethod
    def _chain_expectation(d: int, p: float) -> float:
        return p * (1 - p**d) / (1 - p)

    @pytest.mark.parametrize("demand", [1.2, 1.8, 2.4, 2.55, 3.0])
    def test_floor_is_minimal_sufficient(self, demand):
        p = 0.75
        deficit = (demand - 1.0) * (1 - p) / p
        if deficit >= 1.0:
            return  # infeasible branch, handled by d_max cap
        d_floor = math.ceil(math.log(1.0 - deficit) / math.log(p))
        # Sufficient: the chain expectation at d_floor covers the demand.
        assert 1.0 + self._chain_expectation(d_floor, p) >= demand - 1e-9
        # Minimal: one step shallower does not.
        if d_floor > 1:
            assert 1.0 + self._chain_expectation(d_floor - 1, p) < demand

    def test_infeasible_demand_detected(self):
        p = 0.75
        demand = 1.0 + p / (1 - p) + 0.5  # beyond any finite chain
        deficit = (demand - 1.0) * (1 - p) / p
        assert deficit >= 1.0


class TestAPIHygiene:
    def test_public_modules_documented(self):
        import importlib
        import pkgutil

        import repro

        undocumented = []
        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if mod.name == "repro.__main__":
                continue  # executes the CLI on import
            module = importlib.import_module(mod.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(mod.name)
        assert undocumented == []

    def test_all_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.hardware
        import repro.model
        import repro.serving
        import repro.workloads

        for pkg in (
            repro.analysis,
            repro.baselines,
            repro.core,
            repro.hardware,
            repro.model,
            repro.serving,
            repro.workloads,
        ):
            for name in pkg.__all__:
                assert getattr(pkg, name, None) is not None, f"{pkg.__name__}.{name}"
