"""Behavioural tests for the six baseline schedulers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FastServeScheduler,
    PriorityScheduler,
    SarathiScheduler,
    VLLMScheduler,
    VLLMSpecScheduler,
    VTCScheduler,
)
from repro.serving.server import ServingSimulator
from tests.conftest import make_request


def small_workload(n=8, prompt=30, out=6):
    return [
        make_request(rid=i, arrival=0.05 * i, prompt_len=prompt, max_new_tokens=out)
        for i in range(n)
    ]


def run(engine, scheduler, reqs):
    return ServingSimulator(engine, scheduler, reqs).run()


class TestVLLM:
    def test_completes_workload(self, engine):
        report = run(engine, VLLMScheduler(engine), small_workload())
        assert report.metrics.num_finished == 8

    def test_uniform_latency_across_batch(self, engine):
        # Two concurrent requests with different SLOs see the same
        # per-token latency: the core limitation the paper targets.
        reqs = [
            make_request(rid=0, arrival=0.0, prompt_len=30, max_new_tokens=20, tpot_slo=0.02),
            make_request(rid=1, arrival=0.0, prompt_len=30, max_new_tokens=20, tpot_slo=0.15),
        ]
        report = run(engine, VLLMScheduler(engine), reqs)
        a, b = report.requests[0], report.requests[1]
        assert a.avg_tpot == pytest.approx(b.avg_tpot, rel=0.15)

    def test_prefill_priority(self, engine):
        s = VLLMScheduler(engine)
        s.admit(make_request(rid=0, prompt_len=50))
        s.step(0.0)
        assert len(s.running) == 1  # prefill ran before any decode


class TestSarathi:
    def test_completes_workload(self, engine):
        report = run(engine, SarathiScheduler(engine), small_workload())
        assert report.metrics.num_finished == 8

    def test_invalid_chunk_budget(self, engine):
        with pytest.raises(ValueError):
            SarathiScheduler(engine, chunk_budget=0)

    def test_chunked_prefill_interleaves_decode(self, engine):
        s = SarathiScheduler(engine, chunk_budget=64)
        long_req = make_request(rid=0, prompt_len=600, max_new_tokens=4)
        s.admit(long_req)
        s.step(0.0)  # pure chunk (no decode yet)
        assert 0 < long_req.prefilled < 600
        # A decoding request arrives; subsequent steps must serve it while
        # the long prompt is still prefilling.
        dec = make_request(rid=1, prompt_len=10, max_new_tokens=8)
        dec.advance_prefill(10)
        dec.begin_decode(1, 0.0)
        s.running.append(dec)
        before = dec.n_generated
        s.step(1.0)
        assert dec.n_generated == before + 1
        assert long_req.prefilled > 64

    def test_shorter_stalls_than_vllm(self, pair, target_roofline, draft_roofline):
        # Max inter-token gap for a decoding request while a long prompt
        # arrives should be smaller under chunked prefill.
        from repro.serving.engine import SimulatedEngine
        from repro.serving.kv_cache import KVCacheManager

        def max_gap(scheduler_cls):
            kv = KVCacheManager(200_000)
            engine = SimulatedEngine(pair, target_roofline, draft_roofline, kv, seed=1)
            reqs = [
                make_request(rid=0, arrival=0.0, prompt_len=20, max_new_tokens=40),
                make_request(rid=1, arrival=0.1, prompt_len=2400, max_new_tokens=4),
            ]
            reqs[0].record_token_times = True
            ServingSimulator(engine, scheduler_cls(engine), reqs).run()
            times = reqs[0].token_times
            return max(b - a for a, b in zip(times, times[1:]))

        assert max_gap(SarathiScheduler) < max_gap(VLLMScheduler)


class TestPriority:
    def test_completes_workload(self, engine):
        report = run(engine, PriorityScheduler(engine), small_workload())
        assert report.metrics.num_finished == 8

    def test_urgent_preempts_decode(self, engine):
        s = PriorityScheduler(engine)
        urgent = make_request(rid=0, priority=0, prompt_len=10, max_new_tokens=50)
        lax = make_request(rid=1, priority=1, prompt_len=10, max_new_tokens=50)
        for r in (urgent, lax):
            r.advance_prefill(r.prompt_len)
            r.begin_decode(1, 0.0)
            s.running.append(r)
        s.step(0.0)
        assert urgent.n_generated == 1
        assert lax.n_generated == 0

    def test_urgent_batch_capped(self, engine):
        s = PriorityScheduler(engine, urgent_batch_cap=2)
        urgents = []
        for i in range(5):
            r = make_request(rid=i, priority=0, prompt_len=10, max_new_tokens=50)
            r.advance_prefill(10)
            r.begin_decode(1, 0.0)
            s.running.append(r)
            urgents.append(r)
        s.step(0.0)
        assert sum(r.n_generated for r in urgents) == 2

    def test_urgent_wins_lax_loses(self, engine):
        # The Figure 1 signature: priority nails strict SLOs but degrades
        # the relaxed categories under load.
        reqs = []
        for i in range(12):
            urgent = i % 2 == 0
            reqs.append(
                make_request(
                    rid=i,
                    category="urgent" if urgent else "lax",
                    arrival=0.03 * i,
                    prompt_len=60,
                    max_new_tokens=30,
                    tpot_slo=0.03 if urgent else 0.15,
                    priority=0 if urgent else 1,
                )
            )
        report = run(engine, PriorityScheduler(engine), reqs)
        cats = report.metrics.per_category
        assert cats["urgent"].attainment >= cats["lax"].attainment
        assert cats["urgent"].mean_tpot_s < cats["lax"].mean_tpot_s


class TestFastServe:
    def test_completes_workload(self, engine):
        report = run(engine, FastServeScheduler(engine), small_workload())
        assert report.metrics.num_finished == 8

    def test_invalid_quanta(self, engine):
        with pytest.raises(ValueError):
            FastServeScheduler(engine, quanta=())

    def test_level_by_generated_tokens(self, engine):
        s = FastServeScheduler(engine, quanta=(4, 8))
        r = make_request(rid=0, max_new_tokens=50)
        assert s._level(r) == 0
        r.advance_prefill(r.prompt_len)
        r.begin_decode(1, 0.0)
        r.commit_tokens(5, 1, 0.1)
        assert s._level(r) == 1
        r.commit_tokens(8, 1, 0.2)
        assert s._level(r) == 2

    def test_short_jobs_preempt_long(self, engine):
        s = FastServeScheduler(engine, quanta=(4, 8))
        long_r = make_request(rid=0, prompt_len=10, max_new_tokens=60)
        long_r.advance_prefill(10)
        long_r.begin_decode(1, 0.0)
        long_r.commit_tokens(20, 1, 0.1)  # demoted to bottom queue
        fresh = make_request(rid=1, prompt_len=10, max_new_tokens=60)
        fresh.advance_prefill(10)
        fresh.begin_decode(1, 0.0)
        s.running.extend([long_r, fresh])
        before = long_r.n_generated
        s.step(0.2)
        assert fresh.n_generated == 1
        assert long_r.n_generated == before


class TestVTC:
    def test_completes_workload(self, engine):
        report = run(engine, VTCScheduler(engine), small_workload())
        assert report.metrics.num_finished == 8

    def test_counters_accumulate(self, engine):
        s = VTCScheduler(engine)
        r = make_request(rid=0, category="chat", prompt_len=20, max_new_tokens=10)
        s.admit(r)
        s.step(0.0)  # prefill: counter += 0.5 * 20
        assert s.counters["chat"] == pytest.approx(10.0)
        s.step(0.1)  # decode: counter += 1
        assert s.counters["chat"] == pytest.approx(11.0)

    def test_least_served_category_first(self, engine):
        s = VTCScheduler(engine, max_batch_size=1)
        heavy = make_request(rid=0, category="heavy", prompt_len=10, max_new_tokens=50)
        light = make_request(rid=1, category="light", prompt_len=10, max_new_tokens=50)
        for r in (heavy, light):
            r.advance_prefill(10)
            r.begin_decode(1, 0.0)
            s.running.append(r)
        s.counters["heavy"] = 100.0
        s.counters["light"] = 1.0
        s.step(0.0)
        assert light.n_generated == 1
        assert heavy.n_generated == 0


class TestVLLMSpec:
    def test_invalid_spec_len(self, engine):
        with pytest.raises(ValueError):
            VLLMSpecScheduler(engine, spec_len=0)

    def test_name_includes_length(self, engine):
        assert VLLMSpecScheduler(engine, spec_len=6).name == "vLLM-Spec(6)"

    def test_completes_workload(self, engine):
        report = run(engine, VLLMSpecScheduler(engine, spec_len=4), small_workload())
        assert report.metrics.num_finished == 8

    def test_multiple_tokens_per_iteration(self, engine):
        s = VLLMSpecScheduler(engine, spec_len=6)
        r = make_request(rid=0, prompt_len=10, max_new_tokens=60, predictability=0.9)
        r.advance_prefill(10)
        r.begin_decode(engine.root_ctx(r), 0.0)
        s.running.append(r)
        s.step(0.0)
        assert r.verify_steps == 1
        assert 1 <= r.n_generated <= 7

    def test_never_overshoots_max_tokens(self, engine):
        s = VLLMSpecScheduler(engine, spec_len=8)
        r = make_request(rid=0, prompt_len=10, max_new_tokens=2, predictability=0.95)
        r.advance_prefill(10)
        r.begin_decode(engine.root_ctx(r), 0.0)
        s.running.append(r)
        s.step(0.0)
        assert r.n_generated <= 2

    def test_acceptance_tracks_predictability(self, engine):
        def mean_acc(pred):
            reqs = [
                make_request(
                    rid=i, arrival=0.0, prompt_len=10, max_new_tokens=30,
                    predictability=pred,
                )
                for i in range(6)
            ]
            from repro.serving.kv_cache import KVCacheManager
            from repro.serving.engine import SimulatedEngine

            eng = SimulatedEngine(
                engine.pair, engine.target_roofline, engine.draft_roofline,
                KVCacheManager(100_000), seed=9,
            )
            report = run(eng, VLLMSpecScheduler(eng, spec_len=6), reqs)
            return report.metrics.mean_accepted_per_verify

        assert mean_acc(0.9) > mean_acc(0.3) + 0.5

    def test_static_overhead_grows_with_spec_len(self, engine):
        # Same workload, larger n => more verify tokens => longer sim time
        # per generated token at constant acceptance (the paper's critique).
        reqs = small_workload(n=6, out=12)
        t4 = run(engine, VLLMSpecScheduler(engine, spec_len=4), reqs)
        from repro.serving.kv_cache import KVCacheManager
        from repro.serving.engine import SimulatedEngine

        eng8 = SimulatedEngine(
            engine.pair, engine.target_roofline, engine.draft_roofline,
            KVCacheManager(100_000), seed=42,
        )
        reqs8 = small_workload(n=6, out=12)
        t8 = run(eng8, VLLMSpecScheduler(eng8, spec_len=8), reqs8)
        assert t8.metrics.mean_accepted_per_verify >= t4.metrics.mean_accepted_per_verify
