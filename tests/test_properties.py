"""Property-based tests (hypothesis) on core invariants.

Covers: hashing/uniform ranges, token-tree construction, selection
(budget/connectivity/greedy dominance), Algorithm 1 consistency, the
roofline's monotonicity, and the KV cache via a stateful machine.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro._rng import hash_seed, mix, uniform, uniforms
from repro.core.selection import select_tokens
from repro.core.speculation import build_candidate_tree, speculate_batch
from repro.core.tree import TokenTree
from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS
from repro.model.pair import ModelPair
from repro.serving.kv_cache import KVCacheManager, OutOfKVCache

_PAIR = ModelPair.build(vocab_size=1000, seed=99, alignment=0.85, predictability=0.7)
_ROOFLINE = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(0, 2**32))
    def test_uniform_in_unit_interval(self, h, salt):
        assert 0.0 <= uniform(h, salt) < 1.0

    @given(st.integers(0, 2**64 - 1), st.integers(0, 1000), st.integers(1, 64))
    def test_uniforms_count_and_range(self, h, salt, n):
        out = uniforms(h, salt, n)
        assert len(out) == n
        assert all(0.0 <= u < 1.0 for u in out)

    @given(st.lists(st.integers(0, 2**32), min_size=1, max_size=8))
    def test_hash_seed_deterministic(self, parts):
        assert hash_seed(*parts) == hash_seed(*parts)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**32), st.integers(0, 2**32))
    def test_mix_distinguishes_tokens(self, h, a, b):
        if a != b:
            assert mix(h, a) != mix(h, b)


class TestTreeProperties:
    @given(
        st.integers(0, 50),  # context token
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_beam_tree_shape_invariants(self, tok, depth, width):
        ctx = _PAIR.context_of([tok, tok + 1])
        tree = build_candidate_tree(_PAIR, 0, ctx, depth, width)
        assert tree.size <= 1 + depth * width
        assert tree.depth <= depth
        for node in tree.nodes(include_root=False):
            assert 0.0 <= node.path_prob <= node.parent.path_prob
            assert node.ctx_hash == _PAIR.extend(node.parent.ctx_hash, node.token_id)

    @given(st.lists(st.floats(0.01, 0.98), min_size=1, max_size=12))
    def test_chain_path_prob_is_product(self, probs):
        tree = TokenTree(0, 1)
        node = tree.root
        expected = 1.0
        for i, p in enumerate(probs):
            node = tree.add_child(node, i, i + 2, p)
            expected *= p
        assert abs(node.path_prob - expected) < 1e-9


class TestSelectionProperties:
    @given(
        st.integers(1, 5),  # number of requests
        st.integers(0, 4),  # depth
        st.integers(1, 3),  # width
        st.integers(0, 30),  # extra budget beyond roots
        st.lists(st.floats(-2.0, 8.0), min_size=5, max_size=5),
        st.integers(0, 6),  # n_max
    )
    @settings(max_examples=60, deadline=None)
    def test_selection_invariants(self, n, depth, width, extra, reqs, n_max):
        roots = [(0, _PAIR.context_of([i, 7])) for i in range(n)]
        trees = speculate_batch(_PAIR, roots, depth, width).trees
        budget = n + extra
        res = select_tokens(trees, reqs[:n], budget=budget, n_max=n_max, depth=depth)
        # Budget: roots + selected nodes never exceed B.
        total_selected = sum(t.num_selected() for t in trees)
        assert res.budget_used == n + total_selected <= budget
        # Connectivity and extractability.
        for t in trees:
            assert t.is_selection_connected()
            t.extract_selected()
        # n_max only bounds the SLO phase.
        for s in res.selections:
            assert s.slo_tokens <= n_max
        # Expected accepted consistent with marked trees.
        for s, t in zip(res.selections, trees):
            assert abs(s.expected_accepted - 1.0 - t.selected_path_prob_sum()) < 1e-9

    @given(st.integers(1, 4), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_greedy_dominance(self, n, extra):
        # Every selected node's path_prob >= any unselected frontier node's.
        roots = [(0, _PAIR.context_of([i, 3])) for i in range(n)]
        trees = speculate_batch(_PAIR, roots, 3, 2).trees
        select_tokens(trees, [0.0] * n, budget=n + extra)
        selected = [
            x for t in trees for x in t.nodes(include_root=False) if x.selected
        ]
        frontier = [
            x
            for t in trees
            for x in t.nodes(include_root=False)
            if not x.selected and (x.parent.is_root or x.parent.selected)
        ]
        if selected and frontier:
            assert min(x.path_prob for x in selected) >= max(
                x.path_prob for x in frontier
            ) - 1e-12


class TestRooflineProperties:
    @given(st.integers(0, 4096), st.integers(0, 4096))
    @settings(max_examples=60, deadline=None)
    def test_latency_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert _ROOFLINE.forward_latency(lo) <= _ROOFLINE.forward_latency(hi) + 1e-15

    @given(st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_context_only_adds(self, ctx):
        assert _ROOFLINE.forward_latency(8, ctx) >= _ROOFLINE.forward_latency(8, 0)


class KVCacheMachine(RuleBasedStateMachine):
    """Stateful test: the KV manager never over-allocates or loses blocks."""

    def __init__(self):
        super().__init__()
        self.kv = KVCacheManager(capacity_tokens=64 * 16, block_size=16)
        self.tokens: dict[int, int] = {}

    @rule(rid=st.integers(0, 9), tokens=st.integers(0, 400))
    def ensure(self, rid, tokens):
        try:
            self.kv.ensure(rid, tokens)
            self.tokens[rid] = max(self.tokens.get(rid, 0), tokens)
        except OutOfKVCache:
            pass  # state must be unchanged; checked by invariants

    @precondition(lambda self: bool(self.tokens))
    @rule(data=st.data())
    def free(self, data):
        rid = data.draw(st.sampled_from(sorted(self.tokens)))
        freed = self.kv.free(rid)
        assert freed == self.kv.blocks_for(self.tokens.pop(rid))

    @invariant()
    def used_matches_model(self):
        expected = sum(self.kv.blocks_for(t) for t in self.tokens.values())
        assert self.kv.used_blocks == expected

    @invariant()
    def never_exceeds_capacity(self):
        assert 0 <= self.kv.used_blocks <= self.kv.total_blocks


TestKVCacheStateful = KVCacheMachine.TestCase
