"""Tests for Algorithm 1 (optimal token-tree construction)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.optimal import INVALID, construct_optimal_trees
from repro.model.acceptance import true_path_probability


class TestBasics:
    def test_budget_below_roots_invalid(self, perfect_pair):
        roots = [(0, perfect_pair.context_of([i])) for i in range(3)]
        assert construct_optimal_trees(perfect_pair, roots, [0.0] * 3, budget=2) == INVALID

    def test_requirements_length_checked(self, perfect_pair):
        with pytest.raises(ValueError):
            construct_optimal_trees(perfect_pair, [(0, 1)], [1.0, 2.0], budget=5)

    def test_zero_requirements_spend_all_budget(self, perfect_pair):
        roots = [(0, perfect_pair.context_of([1]))]
        res = construct_optimal_trees(perfect_pair, roots, [0.0], budget=8)
        assert res.budget_used == 8
        assert res.trees[0].num_speculated == 7

    def test_nacc_starts_at_one(self, perfect_pair):
        roots = [(0, perfect_pair.context_of([2]))]
        res = construct_optimal_trees(perfect_pair, roots, [1.0], budget=1)
        # Requirement 1.0 is met by the root's guaranteed token alone.
        assert not isinstance(res, str)
        assert res.expected_accepted[0] == 1.0
        assert res.budget_used == 1

    def test_infeasible_requirement_invalid(self, perfect_pair):
        # d+1-style caps don't exist here, but a requirement larger than
        # the achievable sum within budget must return INVALID.
        roots = [(0, perfect_pair.context_of([3]))]
        assert (
            construct_optimal_trees(perfect_pair, roots, [6.0], budget=4) == INVALID
        )

    def test_trees_marked_selected_and_connected(self, perfect_pair):
        roots = [(0, perfect_pair.context_of([4]))]
        res = construct_optimal_trees(perfect_pair, roots, [1.5], budget=10)
        tree = res.trees[0]
        assert all(n.selected for n in tree.nodes(include_root=False))
        assert tree.is_selection_connected()

    def test_expected_accepted_matches_true_f(self, perfect_pair):
        pair = perfect_pair
        roots = [(0, pair.context_of([5]))]
        res = construct_optimal_trees(pair, roots, [0.0], budget=6)
        tree = res.trees[0]
        total = 1.0
        for node in tree.nodes(include_root=False):
            total += true_path_probability(pair, tree.root.ctx_hash, node.path_tokens())
        assert res.expected_accepted[0] == pytest.approx(total)


def brute_force_best(pair, ctx, budget_nodes: int) -> float:
    """Exhaustively find the max sum of f(v) over valid trees of size k.

    Valid trees = connected subsets containing the root.  Enumerate top-4
    children per node to depth 5, then prune to the top-15 candidates by
    f(v) — safe because f strictly decreases along paths, so every node of
    an optimal k<=4-node tree (and all its ancestors) lies among the
    highest-f candidates.
    """
    candidates: list[tuple[tuple[int, ...], float]] = []

    def expand(prefix: tuple[int, ...], c, prob: float, depth: int):
        if depth == 0:
            return
        dist = pair.target_distribution(c)
        for tok, p in list(zip(dist.token_ids, dist.probs))[:4]:
            f = prob * p
            candidates.append(((*prefix, tok), f))
            expand((*prefix, tok), pair.extend(c, tok), f, depth - 1)

    expand((), ctx, 1.0, 5)
    candidates.sort(key=lambda cf: cf[1], reverse=True)
    candidates = candidates[:15]
    best = 0.0
    for subset in itertools.combinations(range(len(candidates)), budget_nodes):
        paths = {candidates[i][0] for i in subset}
        # Connectivity: every non-length-1 path's parent must be present.
        if all(len(p) == 1 or p[:-1] in paths for p in paths):
            best = max(best, sum(candidates[i][1] for i in subset))
    return best


class TestOptimality:
    @pytest.mark.parametrize("budget_nodes", [1, 2, 3, 4])
    def test_matches_brute_force_single_request(self, perfect_pair, budget_nodes):
        pair = perfect_pair
        ctx = pair.context_of([9, 9])
        res = construct_optimal_trees(pair, [(0, ctx)], [0.0], budget=1 + budget_nodes)
        greedy_value = res.expected_accepted[0] - 1.0
        brute = brute_force_best(pair, ctx, budget_nodes)
        assert greedy_value == pytest.approx(brute, rel=1e-9)

    def test_two_request_allocation_beats_even_split(self, perfect_pair):
        # Construct contexts with different predictability; the optimal
        # allocation should weakly dominate an even split's objective.
        pair = perfect_pair
        ctxs = [pair.context_of([1, 1]), pair.context_of([2, 2])]
        roots = [(0, c) for c in ctxs]
        res = construct_optimal_trees(pair, roots, [0.0, 0.0], budget=2 + 6, centers=[0.9, 0.3])
        # Even split: 3 nodes each by per-tree greedy.
        even_total = 0.0
        for c, center in zip(ctxs, [0.9, 0.3]):
            r = construct_optimal_trees(pair, [(0, c)], [0.0], budget=1 + 3, centers=[center])
            even_total += r.expected_accepted[0]
        assert res.total_expected >= even_total - 1e-9

    def test_invalid_implies_infeasible_sum(self, perfect_pair):
        # When INVALID is returned with budget B, even the greedy-best
        # B-node allocation cannot satisfy the requirements (Part 1 of the
        # Appendix C proof, spot-checked).
        pair = perfect_pair
        ctx = pair.context_of([8])
        requirement = 5.0
        budget = 6
        out = construct_optimal_trees(pair, [(0, ctx)], [requirement], budget)
        if out == INVALID:
            unconstrained = construct_optimal_trees(pair, [(0, ctx)], [0.0], budget)
            assert unconstrained.expected_accepted[0] < requirement
        else:
            assert out.expected_accepted[0] >= requirement


class TestDecouplingCost:
    def test_interleaved_decode_steps_grow_with_budget(self, perfect_pair):
        # Algorithm 1 needs one draft decode per inserted node (B - n
        # steps); this is the overhead §4.2 Challenge 2 identifies.
        pair = perfect_pair
        roots = [(0, pair.context_of([1]))]
        small = construct_optimal_trees(pair, roots, [0.0], budget=5)
        large = construct_optimal_trees(pair, roots, [0.0], budget=17)
        assert small.draft_decode_steps == 4
        assert large.draft_decode_steps == 16
