"""Tests for latency attribution and diffing (:mod:`repro.obs.attrib`).

The attribution contract:

- **exact**: per-request components sum to end-to-end latency within
  1e-9, on hand-built traces and on every golden scenario (chaos
  included) — the decomposition tiles the request's lifetime, and the
  straggler/prefix carve-outs only relabel time;
- **deterministic**: same-seed runs export byte-identical attribution
  JSON;
- **classified**: every SLO-violated request gets a dominant component,
  ties broken by the canonical ``COMPONENTS`` order.
"""

from __future__ import annotations

import json
from typing import ClassVar

import pytest

from repro.analysis.runner import run_traced
from repro.analysis.spec import ExperimentSpec
from repro.obs import ObsSpec, Sample, TraceCollector
from repro.obs.attrib import (
    COMPONENTS,
    SUM_TOLERANCE,
    attribution_to_dict,
    attribution_to_json,
    decompose,
    fleet_efficiency,
    format_attribution,
    root_causes,
)
from repro.obs.diff import diff_attributions, format_diff_table
from repro.obs.export import format_slowest_table
from tests.conftest import make_request


def _spec(**kw) -> ExperimentSpec:
    kw.setdefault("model", "llama70b")
    kw.setdefault("seed", 0)
    return ExperimentSpec.create(**kw)


def _req(rid=0, arrival=0.0, prompt_len=10, tokens=4, slo=0.05,
         session_id=None, turn_index=0, **kw):
    req = make_request(
        rid=rid, arrival=arrival, prompt_len=prompt_len, max_new_tokens=tokens,
        tpot_slo=slo, **kw,
    )
    req.session_id = session_id
    req.turn_index = turn_index
    return req


def _finish(req, decode_start, finish, replica_ctx=1):
    """Drive a request through prefill-complete -> finished."""
    if req.prefilled < req.prompt_len:
        req.advance_prefill(req.remaining_prompt)
    req.begin_decode(replica_ctx, decode_start)
    req.commit_tokens(req.max_new_tokens, replica_ctx + 1, finish)
    return req


def _assert_exact(attrib):
    assert abs(sum(attrib.components.values()) - attrib.e2e_s) <= SUM_TOLERANCE
    for comp, value in attrib.components.items():
        assert value >= -SUM_TOLERANCE, (comp, value)


class TestDecomposeBasics:
    def test_queue_prefill_decode_tiling(self):
        """arrival 0 | queue 2s | prefill 1s | decode 2s | finish at 5."""
        req = _req()
        collector = TraceCollector()
        collector.event(0.0, "enqueue", replica=0, rid=0)
        req.advance_prefill(req.prompt_len)
        collector.event(
            2.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": req.prompt_len, "prefilled": req.prompt_len},
        )
        req.begin_decode(1, 3.0)
        req.commit_tokens(req.max_new_tokens, 2, 5.0)
        collector.event(3.0, "decode", replica=0, rid=0, dur=2.0)
        collector.event(5.0, "finish", replica=0, rid=0)

        [a] = decompose(collector, [req], sim_end=5.0)
        assert a.e2e_s == pytest.approx(5.0)
        assert a.components["queue_wait"] == pytest.approx(2.0)
        assert a.components["prefill_compute"] == pytest.approx(1.0)
        assert a.components["decode_compute"] == pytest.approx(2.0)
        assert a.replica == 0
        _assert_exact(a)

    def test_chunked_prefill_gap_is_queue_wait(self):
        """Two chunks with a 1s scheduling gap between them."""
        req = _req()
        collector = TraceCollector()
        collector.event(0.0, "enqueue", replica=0, rid=0)
        collector.event(
            1.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 5, "prefilled": 5},
        )
        collector.event(
            3.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 5, "prefilled": 10},
        )
        _finish(req, 4.0, 6.0)
        collector.event(6.0, "finish", replica=0, rid=0)

        [a] = decompose(collector, [req], sim_end=6.0)
        assert a.components["queue_wait"] == pytest.approx(2.0)  # 0-1 and 2-3
        assert a.components["prefill_compute"] == pytest.approx(2.0)
        assert a.components["decode_compute"] == pytest.approx(2.0)
        _assert_exact(a)

    def test_unfinished_request_ends_at_sim_end(self):
        req = _req(arrival=1.0)
        collector = TraceCollector()
        collector.event(1.0, "enqueue", replica=0, rid=0)

        [a] = decompose(collector, [req], sim_end=9.0)
        assert not a.finished
        assert a.violated  # unfinished counts as a violation
        assert a.e2e_s == pytest.approx(8.0)
        assert a.components["queue_wait"] == pytest.approx(8.0)
        _assert_exact(a)

    def test_no_events_at_all(self):
        req = _req(arrival=2.0)
        [a] = decompose(TraceCollector(), [req], sim_end=5.0)
        assert a.replica == -1
        assert a.components["queue_wait"] == pytest.approx(3.0)
        _assert_exact(a)


class TestPreempt:
    def _preempted_trace(self):
        """Decode interrupted at t=4; 1s stall; 1s re-prefill; decode on."""
        req = _req(prompt_len=10, tokens=6)
        collector = TraceCollector()
        collector.event(0.0, "enqueue", replica=0, rid=0)
        collector.event(
            1.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        collector.event(4.0, "preempt", replica=0, rid=0, data={"drop_kv": True})
        collector.event(
            5.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        _finish(req, 2.0, 8.0)
        req.preempt_count = 1
        collector.event(8.0, "finish", replica=0, rid=0)
        return collector, req

    def test_stall_and_redo_bucket_to_preempt(self):
        collector, req = self._preempted_trace()
        [a] = decompose(collector, [req], sim_end=8.0)
        # decode 2-4 (2s), stall 4-5 (1s) + redo prefill 5-6 (1s), decode 6-8.
        assert a.components["prefill_compute"] == pytest.approx(1.0)
        assert a.components["preempt_stall"] == pytest.approx(2.0)
        assert a.components["decode_compute"] == pytest.approx(4.0)
        assert a.components["queue_wait"] == pytest.approx(1.0)
        _assert_exact(a)


class TestFailover:
    def test_crash_redo_buckets_to_failover(self):
        """Crash at t=3 mid-decode; re-routed; re-prefilled on replica 1."""
        req = _req(prompt_len=10, tokens=6)
        collector = TraceCollector()
        collector.event(0.0, "enqueue", replica=0, rid=0)
        collector.event(
            1.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        collector.event(3.0, "failover", replica=0, rid=0)
        collector.event(3.0, "enqueue", replica=1, rid=0, data={"failover_count": 1})
        collector.event(
            4.5, "prefill", replica=1, rid=0, dur=0.5,
            data={"tokens": 10, "prefilled": 10},
        )
        _finish(req, 2.0, 7.0)
        req.failover_count = 1
        collector.event(7.0, "finish", replica=1, rid=0)

        [a] = decompose(collector, [req], sim_end=7.0)
        # queue 0-1, prefill 1-2, decode 2-3, failover stall 3-4.5 + redo
        # 4.5-5.0, decode 5-7.
        assert a.components["queue_wait"] == pytest.approx(1.0)
        assert a.components["prefill_compute"] == pytest.approx(1.0)
        assert a.components["failover_redo"] == pytest.approx(2.0)
        assert a.components["decode_compute"] == pytest.approx(3.0)
        assert a.replica == 1  # last computing replica
        _assert_exact(a)

    def test_marker_behind_cursor_is_clamped(self):
        """A fleet-clock marker slightly before the replica span's end
        must not break the tiling (cross-replica clock skew)."""
        req = _req(prompt_len=10, tokens=6)
        collector = TraceCollector()
        collector.event(0.0, "enqueue", replica=0, rid=0)
        collector.event(
            1.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        collector.event(1.5, "failover", replica=0, rid=0)  # < span end 2.0
        collector.event(
            3.0, "prefill", replica=1, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        _finish(req, 2.0, 6.0)
        collector.event(6.0, "finish", replica=1, rid=0)

        [a] = decompose(collector, [req], sim_end=6.0)
        _assert_exact(a)
        assert a.components["failover_redo"] == pytest.approx(2.0)  # 2-3 + 3-4


class TestStraggler:
    def _trace(self, window_events):
        req = _req(prompt_len=10, tokens=4)
        collector = TraceCollector()
        for args in window_events:
            collector.event(*args[:-1], **args[-1])
        collector.event(0.0, "enqueue", replica=0, rid=0)
        collector.event(
            2.0, "prefill", replica=0, rid=0, dur=2.0,
            data={"tokens": 10, "prefilled": 10},
        )
        _finish(req, 4.0, 8.0)
        collector.event(8.0, "finish", replica=0, rid=0)
        return collector, req

    def test_slowdown_share_carved_from_overlap(self):
        """slow=2 window covering the whole request: half of every
        compute second is inflation."""
        collector, req = self._trace(
            [(0.0, "straggler", dict(replica=0, data={"slow": 2.0, "duration_s": 10.0}))]
        )
        [a] = decompose(collector, [req], sim_end=10.0)
        # prefill 2s + decode 4s, all inside the window: carve (1-1/2).
        assert a.components["straggler_inflation"] == pytest.approx(3.0)
        assert a.components["prefill_compute"] == pytest.approx(1.0)
        assert a.components["decode_compute"] == pytest.approx(2.0)
        assert a.components["queue_wait"] == pytest.approx(2.0)  # waits not carved
        _assert_exact(a)

    def test_window_closed_by_straggler_end(self):
        collector, req = self._trace(
            [
                (0.0, "straggler", dict(replica=0, data={"slow": 2.0, "duration_s": 3.0})),
                (3.0, "straggler-end", dict(replica=0, data={"slow": 2.0})),
            ]
        )
        [a] = decompose(collector, [req], sim_end=10.0)
        # Only prefill's 2.0-3.0 second overlaps: carve 0.5s.
        assert a.components["straggler_inflation"] == pytest.approx(0.5)
        _assert_exact(a)

    def test_crash_closes_window(self):
        collector, req = self._trace(
            [
                (0.0, "straggler", dict(replica=0, data={"slow": 2.0, "duration_s": 9.0})),
                (3.0, "crash", dict(replica=0, data={"restart_at_s": 5.0, "evacuated": 0})),
            ]
        )
        [a] = decompose(collector, [req], sim_end=10.0)
        assert a.components["straggler_inflation"] == pytest.approx(0.5)
        _assert_exact(a)

    def test_other_replica_not_carved(self):
        collector, req = self._trace(
            [(0.0, "straggler", dict(replica=1, data={"slow": 2.0, "duration_s": 10.0}))]
        )
        [a] = decompose(collector, [req], sim_end=10.0)
        assert a.components["straggler_inflation"] == 0.0
        _assert_exact(a)


class TestPrefixMiss:
    def _session_pair(self, miss: bool, turn: int = 1):
        prev = _req(rid=0, prompt_len=10, tokens=5, session_id=7)
        _finish(prev, 1.0, 2.0)
        req = _req(
            rid=1, arrival=4.0, prompt_len=30, tokens=4,
            session_id=7, turn_index=turn,
        )
        collector = TraceCollector()
        collector.event(4.0, "enqueue", replica=0, rid=1)
        if miss:
            collector.event(5.0, "prefix-miss", replica=0, rid=1)
        else:
            collector.event(5.0, "prefix-hit", replica=0, rid=1, data={"tokens": 15})
        collector.event(
            5.0, "prefill", replica=0, rid=1, dur=3.0,
            data={"tokens": 30, "prefilled": 30},
        )
        _finish(req, 8.0, 10.0)
        collector.event(10.0, "finish", replica=0, rid=1)
        return collector, [prev, req]

    def test_miss_penalty_is_cacheable_fraction(self):
        collector, reqs = self._session_pair(miss=True)
        attribs = decompose(collector, reqs, sim_end=10.0)
        a = attribs[1]
        # Previous turn contributed 10 prompt + 5 generated = 15 tokens;
        # 15/30 of the 3s prefill was avoidable re-compute.
        assert a.components["prefix_miss_penalty"] == pytest.approx(1.5)
        assert a.components["prefill_compute"] == pytest.approx(1.5)
        _assert_exact(a)

    def test_hit_no_penalty(self):
        collector, reqs = self._session_pair(miss=False)
        a = decompose(collector, reqs, sim_end=10.0)[1]
        assert a.components["prefix_miss_penalty"] == 0.0
        _assert_exact(a)

    def test_turn_zero_miss_ineligible(self):
        """A first turn has nothing cacheable — no penalty by design."""
        req = _req(rid=1, arrival=4.0, prompt_len=30, tokens=4, session_id=7)
        collector = TraceCollector()
        collector.event(5.0, "prefix-miss", replica=0, rid=1)
        collector.event(
            5.0, "prefill", replica=0, rid=1, dur=3.0,
            data={"tokens": 30, "prefilled": 30},
        )
        _finish(req, 8.0, 10.0)
        collector.event(10.0, "finish", replica=0, rid=1)
        a = decompose(collector, [req], sim_end=10.0)[0]
        assert a.components["prefix_miss_penalty"] == 0.0
        _assert_exact(a)

    def test_straggler_then_miss_carves_compose_exactly(self):
        """Both carve-outs on the same span still tile exactly."""
        collector, reqs = self._session_pair(miss=True)
        collector.event(
            0.0, "straggler", replica=0, data={"slow": 2.0, "duration_s": 20.0}
        )
        a = decompose(collector, reqs, sim_end=10.0)[1]
        # 3s prefill: 1.5 to inflation, then 15/30 of the remaining 1.5.
        assert a.components["straggler_inflation"] == pytest.approx(1.5 + 1.0)
        assert a.components["prefix_miss_penalty"] == pytest.approx(0.75)
        assert a.components["prefill_compute"] == pytest.approx(0.75)
        _assert_exact(a)


class TestClassifier:
    def test_dominant_is_argmax(self):
        req = _req()
        collector = TraceCollector()
        collector.event(
            1.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        _finish(req, 2.0, 9.0)
        collector.event(9.0, "finish", replica=0, rid=0)
        [a] = decompose(collector, [req], sim_end=9.0)
        assert a.dominant == "decode_compute"

    def test_tie_breaks_in_component_order(self):
        """queue_wait == prefill_compute exactly -> queue_wait wins."""
        req = _req(tokens=1)
        collector = TraceCollector()
        collector.event(
            1.0, "prefill", replica=0, rid=0, dur=1.0,
            data={"tokens": 10, "prefilled": 10},
        )
        _finish(req, 2.0, 2.0)  # zero decode time
        collector.event(2.0, "finish", replica=0, rid=0)
        [a] = decompose(collector, [req], sim_end=2.0)
        assert a.components["queue_wait"] == a.components["prefill_compute"] == 1.0
        assert a.dominant == "queue_wait"
        assert COMPONENTS.index("queue_wait") < COMPONENTS.index("prefill_compute")

    def test_root_causes_count_only_violations(self):
        slow = _req(rid=0, slo=0.001)  # will violate
        fast = _req(rid=1, slo=10.0)  # will attain
        collector = TraceCollector()
        for rid in (0, 1):
            collector.event(
                0.5, "prefill", replica=0, rid=rid, dur=0.5,
                data={"tokens": 10, "prefilled": 10},
            )
            collector.event(4.0, "finish", replica=0, rid=rid)
        _finish(slow, 1.0, 4.0)
        _finish(fast, 1.0, 4.0)
        attribs = decompose(collector, [slow, fast], sim_end=4.0)
        causes = root_causes(attribs)
        assert sum(causes.values()) == 1
        assert set(causes) == set(COMPONENTS)  # stable payload shape


class TestAggregation:
    def _attribs(self):
        reqs = []
        collector = TraceCollector()
        for rid in range(4):
            req = _req(rid=rid, arrival=float(rid),
                       category="coding" if rid % 2 else "chatbot",
                       slo=0.001 if rid < 2 else 10.0)
            collector.event(float(rid), "enqueue", replica=rid % 2, rid=rid)
            collector.event(
                rid + 1.0, "prefill", replica=rid % 2, rid=rid, dur=1.0,
                data={"tokens": 10, "prefilled": 10},
            )
            _finish(req, rid + 2.0, rid + 4.0)
            collector.event(rid + 4.0, "finish", replica=rid % 2, rid=rid)
            reqs.append(req)
        return decompose(collector, reqs, sim_end=10.0)

    def test_payload_structure(self):
        payload = attribution_to_dict(self._attribs(), sim_time_s=10.0)
        assert payload["num_requests"] == 4
        assert payload["num_violated"] == 2
        assert set(payload["per_category"]) == {"chatbot", "coding"}
        assert set(payload["per_replica"]) == {"0", "1"}
        for stats in payload["per_category"].values():
            for comp in COMPONENTS:
                assert {"total_s", "mean_s", "p50_s", "p99_s"} <= set(
                    stats["components"][comp]
                )
        assert [v["rid"] for v in payload["violations"]] == [0, 1]
        total = sum(payload["totals"].values())
        assert total == pytest.approx(payload["e2e_total_s"])

    def test_json_is_strict_and_deterministic(self):
        a = attribution_to_json(attribution_to_dict(self._attribs(), 10.0))
        b = attribution_to_json(attribution_to_dict(self._attribs(), 10.0))
        assert a == b
        json.loads(a)  # valid strict JSON (allow_nan=False on dumps)

    def test_format_plain_and_markdown(self):
        payload = attribution_to_dict(self._attribs(), 10.0)
        plain = format_attribution(payload)
        assert "category" in plain and "root cause" in plain
        md = format_attribution(payload, markdown=True)
        assert md.startswith("| category |")

    def test_incident_window_slice(self):
        payload = attribution_to_dict(
            self._attribs(), 10.0, chaos={"incident_windows": [[0.5, 1.5]]}
        )
        assert payload["incident"]["num_requests"] == 1  # only rid=1 arrives inside
        assert set(payload["incident"]["root_causes"]) == set(COMPONENTS)


class TestFleetEfficiency:
    def _sampler(self, samples):
        class _Stub:
            period_s = 0.5

        stub = _Stub()
        stub.samples = samples
        return stub

    def _row(self, idx, state="live", waiting=0, running=0):
        return (idx, state, waiting, running, 4, 8, 0)

    def test_busy_fraction_and_hist(self):
        samples = [
            Sample(t=0.0, fleet=(2, 0, 0, 0, 2),
                   replicas=(self._row(0, running=3), self._row(1, running=0))),
            Sample(t=0.5, fleet=(2, 0, 0, 0, 2),
                   replicas=(self._row(0, running=3), self._row(1, running=2))),
        ]
        fleet = fleet_efficiency(self._sampler(samples))
        assert fleet["replicas"]["0"]["busy_fraction"] == 1.0
        assert fleet["replicas"]["1"]["busy_fraction"] == 0.5
        assert fleet["replicas"]["0"]["batch_size_hist"] == {"3": 2}

    def test_bubble_requires_other_backlog(self):
        idle = self._row(1, running=0, waiting=0)
        busy_backlog = self._row(0, running=2, waiting=5)
        busy_clear = self._row(0, running=2, waiting=0)
        samples = [
            Sample(t=0.0, fleet=(2, 0, 0, 0, 2), replicas=(busy_backlog, idle)),
            Sample(t=0.5, fleet=(2, 0, 0, 0, 2), replicas=(busy_clear, idle)),
        ]
        fleet = fleet_efficiency(self._sampler(samples))
        assert fleet["replicas"]["1"]["bubble_samples"] == 1  # only t=0.0
        assert fleet["bubble_windows"] == [[0.0, 0.5]]

    def test_dead_replicas_excluded(self):
        samples = [
            Sample(t=0.0, fleet=(1, 0, 0, 1, 2),
                   replicas=(self._row(0, running=1), self._row(1, state="failed"))),
        ]
        fleet = fleet_efficiency(self._sampler(samples))
        assert fleet["replicas"]["1"]["live_samples"] == 0
        assert fleet["replicas"]["1"]["busy_fraction"] == 0.0

    def test_none_without_sampler(self):
        assert fleet_efficiency(None) is None
        assert fleet_efficiency(self._sampler([])) is None


def _payload(totals, violated=0):
    return {"totals": dict(totals), "num_violated": violated}


class TestDiff:
    def test_regression_requires_both_thresholds(self):
        base = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 10.0})
        # +0.04s: above 0.3% rel? no — below abs threshold 0.05.
        cur = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 10.04})
        assert diff_attributions(base, cur)["regressions"] == []
        # +1.0s on a 100s base: above abs, below 5% rel.
        base = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 100.0})
        cur = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 101.0})
        assert diff_attributions(base, cur)["regressions"] == []
        # +10s on 100s: both thresholds tripped.
        cur = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 110.0})
        assert diff_attributions(base, cur)["regressions"] == ["decode_compute"]

    def test_improvement_is_symmetric(self):
        base = _payload({c: 0.0 for c in COMPONENTS} | {"queue_wait": 100.0})
        cur = _payload({c: 0.0 for c in COMPONENTS} | {"queue_wait": 80.0})
        diff = diff_attributions(base, cur)
        assert diff["improvements"] == ["queue_wait"]
        assert diff["regressions"] == []

    def test_any_violation_increase_regresses(self):
        base = _payload(dict.fromkeys(COMPONENTS, 1.0), violated=5)
        cur = _payload(dict.fromkeys(COMPONENTS, 1.0), violated=6)
        diff = diff_attributions(base, cur)
        assert diff["regressions"] == ["num_violated"]

    def test_zero_diff_on_identical_payloads(self):
        payload = _payload(dict.fromkeys(COMPONENTS, 3.0), violated=2)
        diff = diff_attributions(payload, payload, rel_threshold=0.0, abs_threshold_s=0.0)
        assert diff["regressions"] == [] and diff["improvements"] == []

    def test_table_verdict_lines(self):
        base = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 100.0})
        cur = _payload({c: 0.0 for c in COMPONENTS} | {"decode_compute": 120.0})
        text = format_diff_table(diff_attributions(base, cur))
        assert "REGRESSION: decode_compute" in text
        md = format_diff_table(diff_attributions(base, cur), markdown=True)
        assert md.startswith("| component |")


#: Golden scenarios for the end-to-end exactness property; the chaos one
#: exercises failover, straggler carving, and fleet-clock markers.
_SCENARIOS = {
    "solo-adaserve": dict(system="adaserve", rps=4.0, duration_s=8.0, trace="bursty"),
    "sessions-prefix": dict(
        system="vllm", rps=8.0, duration_s=10.0,
        trace="sessions:turns=4,think_time=2.0", prefix_cache=True,
        replicas=2, router="prefix-affinity",
    ),
    "chaos-crash-straggler": dict(
        system="vllm", rps=14.0, duration_s=12.0, trace="bursty",
        replicas=3, router="affinity",
        faults=(
            "crash:at=4,replica=1,restart=3",
            "straggler:at=2,replica=0,slow=1.8,duration=5",
        ),
    ),
}


class TestEndToEndExactness:
    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_components_sum_to_e2e(self, name):
        spec = _spec(**_SCENARIOS[name], obs=ObsSpec(trace=True))
        report, observer = run_traced(spec)
        attribs = decompose(observer.collector, report.requests, report.sim_time_s)
        assert attribs, "scenario produced no requests"
        for a in attribs:
            _assert_exact(a)
        # The classifier agrees with the metrics layer on who violated.
        assert sum(1 for a in attribs if a.violated) == (
            report.metrics.num_requests - report.metrics.num_attained
        )

    def test_export_byte_identical_across_reruns(self):
        texts = []
        for _ in range(2):
            spec = _spec(**_SCENARIOS["chaos-crash-straggler"], obs=ObsSpec(trace=True))
            report, observer = run_traced(spec)
            attribs = decompose(observer.collector, report.requests, report.sim_time_s)
            payload = attribution_to_dict(
                attribs, report.sim_time_s, sampler=observer.sampler, chaos=report.chaos
            )
            texts.append(attribution_to_json(payload))
        assert texts[0] == texts[1]
        payload = json.loads(texts[0])
        assert payload["incident"]["num_requests"] > 0
        assert payload["totals"]["failover_redo"] > 0
        assert payload["totals"]["straggler_inflation"] > 0


class TestCollectorIndexes:
    def test_interleaved_append_and_query(self):
        collector = TraceCollector()
        collector.event(0.0, "enqueue", replica=0, rid=1)
        assert [e.kind for e in collector.for_request(1)] == ["enqueue"]
        # Appends after a query must be visible to the next query.
        collector.event(1.0, "prefill", replica=0, rid=1, dur=0.5)
        collector.event(2.0, "crash", replica=0)
        assert [e.kind for e in collector.for_request(1)] == ["enqueue", "prefill"]
        assert len(collector.of_kind("crash")) == 1
        assert collector.kinds() == {"enqueue", "prefill", "crash"}
        assert collector.for_request(99) == []
        assert collector.of_kind("nope") == []

    def test_index_matches_linear_scan(self):
        collector = TraceCollector()
        for i in range(50):
            collector.event(float(i), "k" + str(i % 3), replica=0, rid=i % 5)
        for kind in ("k0", "k1", "k2"):
            assert collector.of_kind(kind) == [
                e for e in collector.events if e.kind == kind
            ]
        for rid in range(5):
            assert collector.for_request(rid) == [
                e for e in collector.events if e.rid == rid
            ]


class TestSlowestTableAttribution:
    def _finished(self, rid, arrival, finish):
        return _finish(_req(rid=rid, arrival=arrival), arrival + 0.5, finish)

    def test_column_present_and_filled(self):
        reqs = [self._finished(0, 0.0, 5.0), self._finished(1, 0.0, 2.0)]
        table = format_slowest_table(
            reqs, attributions={0: "decode_compute"}
        )
        lines = table.splitlines()
        assert lines[0].rstrip().endswith("attribution")
        assert "decode_compute" in table
        assert "-" in lines[3]  # rid 1 has no attribution -> placeholder
        md = format_slowest_table(reqs, markdown=True, attributions={0: "decode_compute"})
        assert md.splitlines()[0].endswith("attribution |")

    def test_without_attributions_unchanged(self):
        table = format_slowest_table([self._finished(0, 0.0, 5.0)])
        assert "attribution" not in table


class TestExplainCLI:
    ARGS: ClassVar[list[str]] = [
        "explain",
        "--replicas", "2",
        "--faults", "crash:at=4,replica=1,restart=2",
        "--duration", "10",
        "--rps", "14",
        "--system", "vllm",
        "--seed", "0",
    ]

    def test_end_to_end_and_self_baseline(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "attrib.json"
        assert main([*self.ARGS, "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "root cause" in stdout
        payload = json.loads(out.read_text())
        assert payload["schema_version"] >= 1
        assert payload["totals"]["failover_redo"] > 0

        # Same-seed rerun against its own export: zero diff, exit 0 even
        # with zero thresholds (the CI gate).
        assert main(
            [
                *self.ARGS,
                "--baseline", str(out),
                "--rel-threshold", "0",
                "--abs-threshold", "0",
            ]
        ) == 0
        assert "no significant attribution change" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "attrib.json"
        assert main([*self.ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        doctored = json.loads(out.read_text())
        doctored["totals"]["decode_compute"] *= 0.5  # current looks 2x worse
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doctored))
        assert main([*self.ARGS, "--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        assert main([*self.ARGS, "--baseline", str(missing)]) == 2

    def test_markdown_tables_on_stdout(self, tmp_path, capsys):
        from repro.cli import main

        assert main([*self.ARGS, "--markdown"]) == 0
        stdout = capsys.readouterr().out
        assert stdout.lstrip().startswith("| category |")
