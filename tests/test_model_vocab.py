"""Tests for the vocabulary abstraction."""

from __future__ import annotations

import pytest

from repro.model.vocab import NUM_SPECIAL_TOKENS, Vocabulary


class TestVocabulary:
    def test_default_size(self):
        assert Vocabulary().size == 32_000

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(size=NUM_SPECIAL_TOKENS)

    def test_special_tokens_distinct(self):
        v = Vocabulary(100)
        specials = {v.bos_token, v.eos_token, v.pad_token}
        assert len(specials) == 3
        assert all(v.is_special(t) for t in specials)

    def test_regular_not_special(self):
        v = Vocabulary(100)
        assert not v.is_special(0)
        assert not v.is_special(v.num_regular - 1)

    def test_num_regular(self):
        v = Vocabulary(100)
        assert v.num_regular == 100 - NUM_SPECIAL_TOKENS

    def test_validate_accepts_in_range(self):
        Vocabulary(100).validate(50)

    @pytest.mark.parametrize("bad", [-1, 100, 1000])
    def test_validate_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            Vocabulary(100).validate(bad)

    def test_random_prompt_deterministic(self):
        v = Vocabulary(500)
        assert v.random_prompt(3, 20) == v.random_prompt(3, 20)

    def test_random_prompt_seed_sensitivity(self):
        v = Vocabulary(500)
        assert v.random_prompt(3, 20) != v.random_prompt(4, 20)

    def test_random_prompt_length_and_range(self):
        v = Vocabulary(500)
        prompt = v.random_prompt(1, 64)
        assert len(prompt) == 64
        assert all(0 <= t < v.num_regular for t in prompt)

    def test_random_prompt_negative_length(self):
        with pytest.raises(ValueError):
            Vocabulary(500).random_prompt(1, -1)

    def test_random_prompt_empty(self):
        assert Vocabulary(500).random_prompt(1, 0) == []
