"""Tests for budget profiling and the CUDA-graph launch model."""

from __future__ import annotations

import pytest

from repro.hardware.cuda_graph import CudaGraphModel
from repro.hardware.profiler import HardwareProfiler, verify_budget
from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS


@pytest.fixture
def rl() -> RooflineModel:
    return RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])


class TestProfiler:
    def test_invalid_slack(self, rl):
        with pytest.raises(ValueError):
            HardwareProfiler(rl, slack=0.9)

    def test_budget_latency_within_slack(self, rl):
        prof = HardwareProfiler(rl, slack=1.5).profile()
        assert prof.budget_latency_s <= prof.floor_latency_s * 1.5 + 1e-12

    def test_budget_monotone_in_slack(self, rl):
        b_small = HardwareProfiler(rl, slack=1.2).token_budget()
        b_large = HardwareProfiler(rl, slack=2.0).token_budget()
        assert b_large >= b_small >= 1

    def test_budget_above_saturation(self, rl):
        # With slack > 1 the budget extends past the pure memory-bound knee.
        prof = HardwareProfiler(rl, slack=1.5).profile()
        assert prof.token_budget >= prof.saturation_tokens

    def test_context_raises_absolute_floor(self, rl):
        # KV-resident context raises the floor latency; the slack is
        # relative, so the selected budget never shrinks and the absolute
        # latency at the budget grows.
        p0 = HardwareProfiler(rl, slack=1.5).profile(0)
        p1 = HardwareProfiler(rl, slack=1.5).profile(400_000)
        assert p1.floor_latency_s > p0.floor_latency_s
        assert p1.token_budget >= p0.token_budget
        assert p1.budget_latency_s <= p1.floor_latency_s * 1.5 + 1e-12

    def test_sweep_recorded(self, rl):
        prof = HardwareProfiler(rl).profile()
        assert len(prof.sweep) >= 2
        tokens = [t for t, _ in prof.sweep]
        assert tokens == sorted(tokens)

    def test_latency_ratio(self, rl):
        prof = HardwareProfiler(rl, slack=1.4).profile()
        assert 1.0 <= prof.latency_ratio <= 1.4 + 1e-9

    def test_convenience_wrapper(self, rl):
        assert verify_budget(rl, slack=1.5) == HardwareProfiler(rl, slack=1.5).token_budget()

    def test_draft_budget_larger_than_target(self):
        target = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
        draft = RooflineModel(DEPLOYMENT_PRESETS["llama1b-1xa100"])
        assert HardwareProfiler(draft).token_budget() > HardwareProfiler(target).token_budget() / 4


class TestCudaGraph:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CudaGraphModel(eager_launch_s=-1.0)

    def test_first_shape_pays_capture(self):
        g = CudaGraphModel(eager_launch_s=1e-3, capture_cost_s=2e-3, replay_cost_s=1e-5)
        first = g.launch_overhead(32)
        assert first == pytest.approx(3e-3)
        assert g.captures == 1

    def test_warm_shape_replays(self):
        g = CudaGraphModel(eager_launch_s=1e-3, replay_cost_s=1e-5)
        g.launch_overhead(32)
        assert g.launch_overhead(32) == pytest.approx(1e-5)
        assert g.replays == 1

    def test_new_shape_recaptures(self):
        g = CudaGraphModel(eager_launch_s=1e-3)
        g.launch_overhead(32)
        g.launch_overhead(64)
        assert g.captures == 2

    def test_lru_eviction(self):
        g = CudaGraphModel(eager_launch_s=1e-3, cache_shapes=2, replay_cost_s=1e-5)
        g.launch_overhead(1)
        g.launch_overhead(2)
        g.launch_overhead(3)  # evicts shape 1
        assert g.launch_overhead(1) > 1e-5  # re-capture
        assert g.captures == 4

    def test_lru_refresh_on_hit(self):
        g = CudaGraphModel(eager_launch_s=1e-3, cache_shapes=2, replay_cost_s=1e-5)
        g.launch_overhead(1)
        g.launch_overhead(2)
        g.launch_overhead(1)  # refresh 1
        g.launch_overhead(3)  # evicts 2, not 1
        assert g.launch_overhead(1) == pytest.approx(1e-5)

    def test_disabled_always_eager(self):
        g = CudaGraphModel(eager_launch_s=1e-3, enabled=False)
        assert g.launch_overhead(32) == pytest.approx(1e-3)
        assert g.launch_overhead(32) == pytest.approx(1e-3)
        assert g.captures == 0
        assert g.eager_launches == 2

    def test_hit_rate(self):
        g = CudaGraphModel(eager_launch_s=1e-3)
        assert g.hit_rate == 0.0
        g.launch_overhead(8)
        g.launch_overhead(8)
        g.launch_overhead(8)
        assert g.hit_rate == pytest.approx(2 / 3)

    def test_reset_stats_keeps_shapes(self):
        g = CudaGraphModel(eager_launch_s=1e-3, replay_cost_s=1e-5)
        g.launch_overhead(8)
        g.reset_stats()
        assert g.captures == 0
        assert g.launch_overhead(8) == pytest.approx(1e-5)  # still warm
