"""Tests for the model-substrate calibration utilities."""

from __future__ import annotations

import pytest

from repro.model.calibration import (
    calibrate_alignment,
    measure_acceptance,
    measure_draft_quality,
)
from repro.model.pair import ModelPair


class TestMeasureAcceptance:
    def test_validation(self, pair):
        with pytest.raises(ValueError):
            measure_acceptance(pair, n_contexts=0)

    def test_range(self, pair):
        acc = measure_acceptance(pair, n_contexts=100, depth=4, width=2)
        assert 0.0 <= acc <= 4.0

    def test_monotone_in_alignment(self):
        accs = []
        for alignment in (0.2, 0.6, 1.0):
            p = ModelPair.build(vocab_size=4000, seed=5, alignment=alignment)
            accs.append(measure_acceptance(p, n_contexts=150))
        assert accs[0] < accs[2]
        assert accs[1] <= accs[2] + 0.1

    def test_monotone_in_predictability(self, pair):
        lo = measure_acceptance(pair, n_contexts=150, center=0.3)
        hi = measure_acceptance(pair, n_contexts=150, center=0.9)
        assert hi > lo + 0.5

    def test_deeper_beams_accept_more(self, pair):
        shallow = measure_acceptance(pair, n_contexts=120, depth=1, width=2)
        deep = measure_acceptance(pair, n_contexts=120, depth=6, width=2)
        assert deep > shallow

    def test_deterministic(self, pair):
        assert measure_acceptance(pair, 50) == measure_acceptance(pair, 50)


class TestDraftQuality:
    def test_validation(self, pair):
        with pytest.raises(ValueError):
            measure_draft_quality(pair, n_contexts=1)

    def test_perfect_draft(self, perfect_pair):
        q = measure_draft_quality(perfect_pair, n_contexts=150)
        assert q.top1_agreement == 1.0
        assert abs(q.bias) < 1e-9
        assert q.correlation > 0.99

    def test_noisy_draft_degrades(self):
        strong = ModelPair.build(vocab_size=4000, seed=9, alignment=0.95)
        weak = ModelPair.build(vocab_size=4000, seed=9, alignment=0.2)
        q_strong = measure_draft_quality(strong, n_contexts=200)
        q_weak = measure_draft_quality(weak, n_contexts=200)
        assert q_strong.top1_agreement > q_weak.top1_agreement
        assert q_strong.correlation > q_weak.correlation

    def test_mixture_draft_is_conservative(self, pair):
        # Mixing with noise flattens the top-1 estimate below truth.
        q = measure_draft_quality(pair, n_contexts=200)
        assert q.bias < 0.02


class TestCalibrateAlignment:
    def test_hits_target(self):
        alignment, achieved = calibrate_alignment(
            target_acceptance=1.8, n_contexts=100, tolerance=0.1
        )
        assert 0.0 <= alignment <= 1.0
        assert abs(achieved - 1.8) <= 0.15

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate_alignment(target_acceptance=10.0, n_contexts=60)
