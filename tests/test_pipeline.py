"""Tests for the speculate-select-verify pipeline (one iteration)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import BatchItem, run_iteration


def items_for(pair, n: int, requirement: float = 1.5, **kw) -> list[BatchItem]:
    return [
        BatchItem(
            root_token=0,
            root_ctx=pair.context_of([i, 100 + i]),
            requirement=requirement,
            **kw,
        )
        for i in range(n)
    ]


class TestIteration:
    def test_empty_batch_rejected(self, pair):
        with pytest.raises(ValueError):
            run_iteration(pair, [], depth=2, width=2, budget=4)

    def test_outcomes_align_with_items(self, pair):
        items = items_for(pair, 3)
        result = run_iteration(pair, items, depth=3, width=2, budget=12)
        assert len(result.outcomes) == 3
        for item, out in zip(items, result.outcomes):
            # Committed context = root extended by accepted + correction.
            ctx = item.root_ctx
            for tok in out.accepted_tokens:
                ctx = pair.extend(ctx, tok)
            ctx = pair.extend(ctx, out.correction_token)
            assert ctx == out.new_ctx

    def test_always_generates_at_least_one(self, pair):
        result = run_iteration(pair, items_for(pair, 4), depth=2, width=2, budget=8)
        assert all(o.tokens_generated >= 1 for o in result.outcomes)

    def test_accepted_bounded_by_depth(self, pair):
        result = run_iteration(pair, items_for(pair, 2), depth=3, width=2, budget=10)
        assert all(len(o.accepted_tokens) <= 3 for o in result.outcomes)

    def test_verify_tokens_matches_selection(self, pair):
        result = run_iteration(pair, items_for(pair, 3), depth=3, width=2, budget=12)
        assert result.verify_tokens == sum(o.selected_tokens for o in result.outcomes)
        assert result.verify_tokens <= 12 - 3  # budget minus roots

    def test_totals(self, pair):
        result = run_iteration(pair, items_for(pair, 3), depth=3, width=2, budget=12)
        assert result.total_generated == sum(o.tokens_generated for o in result.outcomes)
        assert result.total_accepted == result.total_generated - 3

    def test_selection_cpu_measured(self, pair):
        result = run_iteration(pair, items_for(pair, 3), depth=3, width=2, budget=12)
        assert result.selection_cpu_s > 0.0

    def test_max_tokens_respected(self, pair):
        items = items_for(pair, 2, requirement=5.0, max_tokens=2)
        result = run_iteration(pair, items, depth=4, width=3, budget=20)
        for out in result.outcomes:
            assert out.tokens_generated <= 2

    def test_max_tokens_one_yields_correction_only(self, pair):
        items = items_for(pair, 1, max_tokens=1)
        result = run_iteration(pair, items, depth=3, width=2, budget=8)
        out = result.outcomes[0]
        assert out.accepted_tokens == []
        assert out.tokens_generated == 1

    def test_truncated_context_consistent(self, pair):
        # When max_tokens truncates, new_ctx must still be the context of
        # the committed tokens.
        items = items_for(pair, 1, requirement=5.0, max_tokens=2)
        result = run_iteration(pair, items, depth=4, width=2, budget=10)
        out = result.outcomes[0]
        ctx = items[0].root_ctx
        for tok in out.accepted_tokens:
            ctx = pair.extend(ctx, tok)
        assert out.new_ctx == pair.extend(ctx, out.correction_token)

    def test_deterministic(self, pair):
        items = items_for(pair, 3)
        r1 = run_iteration(pair, items, depth=3, width=2, budget=12)
        r2 = run_iteration(pair, items, depth=3, width=2, budget=12)
        assert [o.accepted_tokens for o in r1.outcomes] == [
            o.accepted_tokens for o in r2.outcomes
        ]
        assert r1.verify_tokens == r2.verify_tokens

    def test_center_passed_through(self, pair):
        hi = run_iteration(
            pair, items_for(pair, 6, requirement=4.0, center=0.95), 4, 2, budget=40
        )
        lo = run_iteration(
            pair, items_for(pair, 6, requirement=4.0, center=0.2), 4, 2, budget=40
        )
        assert hi.total_accepted > lo.total_accepted

    def test_higher_requirement_more_selected(self, pair):
        # SLO-customized selection responds to requirements; with a large
        # budget the request with the higher A(r) gets at least as many
        # SLO-phase tokens.
        lo = run_iteration(pair, items_for(pair, 2, requirement=0.0), 3, 2, budget=6)
        hi = run_iteration(pair, items_for(pair, 2, requirement=3.0), 3, 2, budget=6)
        lo_slo = sum(s.slo_tokens for s in lo.selection.selections)
        hi_slo = sum(s.slo_tokens for s in hi.selection.selections)
        assert hi_slo > lo_slo
