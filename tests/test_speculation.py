"""Tests for beam-search candidate-tree construction (§4.3 step 1)."""

from __future__ import annotations

import pytest

from repro.core.optimal import construct_optimal_trees
from repro.core.speculation import build_candidate_tree, speculate_batch


class TestBeamShape:
    def test_depth_zero_is_root_only(self, pair):
        tree = build_candidate_tree(pair, 0, pair.context_of([1]), depth=0, width=3)
        assert tree.size == 1

    def test_invalid_shape(self, pair):
        with pytest.raises(ValueError):
            build_candidate_tree(pair, 0, 1, depth=-1, width=2)
        with pytest.raises(ValueError):
            build_candidate_tree(pair, 0, 1, depth=2, width=0)

    def test_layer_sizes(self, pair):
        # Depth d, width w: every layer except the root has exactly w nodes.
        tree = build_candidate_tree(pair, 0, pair.context_of([2]), depth=4, width=3)
        by_depth: dict[int, int] = {}
        for n in tree.nodes():
            by_depth[n.depth] = by_depth.get(n.depth, 0) + 1
        assert by_depth[0] == 1
        for depth in range(1, 5):
            assert by_depth[depth] == 3
        assert tree.size == 1 + 4 * 3

    def test_width_one_is_greedy_chain(self, pair):
        ctx = pair.context_of([3])
        tree = build_candidate_tree(pair, 0, ctx, depth=4, width=1)
        assert tree.size == 5
        # Chain follows the draft's greedy continuations.
        node = tree.root
        c = ctx
        for _ in range(4):
            (child,) = node.children
            tok, _ = pair.draft_children(c, 1)[0]
            assert child.token_id == tok
            c = pair.extend(c, tok)
            node = child

    def test_beam_keeps_highest_path_probs(self, pair):
        # Every kept node at depth k has path_prob >= any dropped sibling
        # candidate: verify the kept frontier is the top-w of the expanded
        # candidates at each level for a small hand-checked case.
        ctx = pair.context_of([4])
        w = 2
        tree = build_candidate_tree(pair, 0, ctx, depth=2, width=w)
        level1 = [n for n in tree.nodes() if n.depth == 1]
        # The top-w children of the root by draft prob must be the level-1 set.
        top = pair.draft_children(ctx, w)
        assert {n.token_id for n in level1} == {t for t, _ in top}

    def test_ctx_hashes_consistent(self, pair):
        ctx = pair.context_of([5])
        tree = build_candidate_tree(pair, 0, ctx, depth=3, width=2)
        for node in tree.nodes(include_root=False):
            assert node.ctx_hash == pair.extend(node.parent.ctx_hash, node.token_id)

    def test_path_probs_decreasing(self, pair):
        tree = build_candidate_tree(pair, 0, pair.context_of([6]), depth=4, width=3)
        for node in tree.nodes(include_root=False):
            assert node.path_prob <= node.parent.path_prob


class TestBatch:
    def test_step_tokens_shape(self, pair):
        roots = [(0, pair.context_of([i])) for i in range(5)]
        res = speculate_batch(pair, roots, depth=3, width=2)
        assert res.step_tokens == (5, 10, 10)
        assert res.total_draft_tokens == 25
        assert len(res.trees) == 5

    def test_depth_zero_no_steps(self, pair):
        res = speculate_batch(pair, [(0, pair.context_of([1]))], depth=0, width=2)
        assert res.step_tokens == ()

    def test_centers_length_validation(self, pair):
        with pytest.raises(ValueError):
            speculate_batch(pair, [(0, 1)], depth=1, width=1, centers=[0.5, 0.5])

    def test_centers_affect_trees(self, pair):
        roots = [(0, pair.context_of([9]))]
        hi = speculate_batch(pair, roots, 2, 2, centers=[0.95]).trees[0]
        lo = speculate_batch(pair, roots, 2, 2, centers=[0.2]).trees[0]
        hi_top = max(n.path_prob for n in hi.nodes(include_root=False))
        lo_top = max(n.path_prob for n in lo.nodes(include_root=False))
        assert hi_top > lo_top


class TestTheorem41:
    def test_optimal_tree_covered_by_wide_beam(self, perfect_pair):
        """Theorem 4.1: T_opt (budget B) is a subtree of a depth-D(T_opt),
        width-B beam-search candidate tree.

        With a perfectly aligned draft, beam search scores nodes by the
        same f(v) Algorithm 1 uses, so the candidate tree must contain
        every optimal node.
        """
        pair = perfect_pair
        budget = 12
        ctx = pair.context_of([1, 2, 3])
        result = construct_optimal_trees(pair, [(0, ctx)], [0.0], budget)
        assert not isinstance(result, str)
        opt_tree = result.trees[0]
        d_opt = opt_tree.depth
        cand = build_candidate_tree(pair, 0, ctx, depth=max(d_opt, 1), width=budget)
        cand_paths = {tuple(n.path_tokens()) for n in cand.nodes(include_root=False)}
        for node in opt_tree.nodes(include_root=False):
            assert tuple(node.path_tokens()) in cand_paths

    def test_depth_bound(self, perfect_pair):
        # D_opt <= B - n (loose bound from the paper).
        pair = perfect_pair
        budget = 10
        ctx = pair.context_of([4, 5])
        result = construct_optimal_trees(pair, [(0, ctx)], [0.0], budget)
        assert result.trees[0].depth <= budget - 1
