"""Bit-identity of the columnar workload substrate (repro.workloads.batcharrivals).

Every trace factory gates onto the vectorized path when numpy is
importable and the batch is large enough; the contract is that the
switch is *invisible* — same seeds, byte-for-byte the same requests.
Each test generates a workload with the vector path enabled, flips
``batcharrivals.DISABLED``, regenerates through the scalar path, and
compares every schedulable field with exact (IEEE-754 bit) equality.
The tiny-dataset cases pin the dataset-name seeding rule: length draws
hash the *distribution's own* name, not the registry key it sits under
(tests remap every key to one tiny dataset).
"""

from __future__ import annotations

import pytest

from repro.registry import TRACES
from repro.workloads import batcharrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.sessions import SessionGenerator

from tests.conftest import tiny_generator

pytestmark = pytest.mark.skipif(
    not batcharrivals.AVAILABLE, reason="numpy unavailable; substrate disabled"
)


@pytest.fixture
def scalar_toggle():
    """Restore the module toggle no matter how the test exits."""
    saved = batcharrivals.DISABLED
    yield
    batcharrivals.DISABLED = saved


def _fields(r):
    """Every field generation controls, floats compared bit-exactly."""
    return (
        r.rid,
        r.category,
        r.arrival_time,
        r.prompt_len,
        r.max_new_tokens,
        r.tpot_slo,
        r.predictability,
        r.priority,
        r.session_id,
        r.turn_index,
        r.prompt_segments,
    )


def _assert_workloads_identical(vec, scalar):
    assert len(vec) == len(scalar)
    for v, s in zip(vec, scalar):
        assert _fields(v) == _fields(s)


def _both_paths(make):
    """(vector, scalar) workloads from a zero-arg factory."""
    batcharrivals.DISABLED = False
    vec = make()
    batcharrivals.DISABLED = True
    scalar = make()
    return vec, scalar


class TestByteIdentity:
    @pytest.mark.parametrize("kind", TRACES.names())
    @pytest.mark.parametrize("seed", [0, 7])
    def test_every_trace_kind_matches_scalar(
        self, target_roofline, scalar_toggle, kind, seed
    ):
        def make():
            gen = WorkloadGenerator(target_roofline, seed=seed)
            return TRACES.create(kind, gen, 60.0, 4.0)

        vec, scalar = _both_paths(make)
        assert len(vec) >= batcharrivals.MIN_BATCH  # the gate actually opened
        _assert_workloads_identical(vec, scalar)

    @pytest.mark.parametrize("kind", ["steady", "sessions"])
    def test_tiny_dataset_remap_matches_scalar(
        self, target_roofline, scalar_toggle, kind
    ):
        # Every registry key mapped to one shared dataset: the length
        # hash prefix must follow the dataset's own name ("tiny").
        def make():
            return TRACES.create(kind, tiny_generator(target_roofline), 30.0, 5.0)

        _assert_workloads_identical(*_both_paths(make))

    def test_custom_mix_matches_scalar(self, target_roofline, scalar_toggle):
        mix = {"coding": 0.6, "chatbot": 0.4}

        def make():
            gen = WorkloadGenerator(target_roofline, seed=3)
            return gen.steady(40.0, 4.0, mix=mix)

        vec, scalar = _both_paths(make)
        _assert_workloads_identical(vec, scalar)
        assert {r.category for r in vec} <= set(mix)

    def test_session_prompt_segments_match_scalar(
        self, target_roofline, scalar_toggle
    ):
        def make():
            gen = WorkloadGenerator(target_roofline, seed=11)
            return SessionGenerator(
                gen, turns=4, system_prompt=128, think_time_s=2.0
            ).generate(45.0, 4.0)

        vec, scalar = _both_paths(make)
        _assert_workloads_identical(vec, scalar)
        # Both the shared-system-prompt and session segments survived.
        assert any(len(r.prompt_segments) == 2 for r in vec)


class TestFromArrivalsOrdering:
    def test_unsorted_arrivals_are_sorted(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=0)
        reqs = gen.from_arrivals([3.0, 1.0, 2.0])
        assert [r.arrival_time for r in reqs] == [1.0, 2.0, 3.0]

    def test_ascending_input_order_is_pinned(self, target_roofline):
        # The ascending fast path (no re-sort) must hand identical
        # requests to the shuffled slow path: rid i belongs to the
        # i-th *sorted* arrival either way.
        arrivals = [0.5, 1.0, 1.0, 2.25, 4.0]
        asc = WorkloadGenerator(target_roofline, seed=5).from_arrivals(arrivals)
        shuffled = WorkloadGenerator(target_roofline, seed=5).from_arrivals(
            [1.0, 4.0, 0.5, 2.25, 1.0]
        )
        assert [_fields(a) for a in asc] == [_fields(b) for b in shuffled]
        assert [r.rid for r in asc] == [0, 1, 2, 3, 4]

    def test_ascending_detector(self):
        from repro.workloads.generator import _is_ascending

        assert _is_ascending([])
        assert _is_ascending([1.0])
        assert _is_ascending([1.0, 1.0, 2.0])
        assert not _is_ascending([2.0, 1.0])


class TestColumnarWorkload:
    def _work(self, target_roofline):
        from repro.workloads.trace import uniform_trace

        gen = WorkloadGenerator(target_roofline, seed=2)
        return gen.columnar_from_arrivals(uniform_trace(60.0, 4.0, seed=gen.seed))

    def test_materialize_slices_concatenate(self, target_roofline):
        work = self._work(target_roofline)
        full = work.materialize()
        split = work.materialize(0, 10) + work.materialize(10, len(work))
        assert [_fields(a) for a in full] == [_fields(b) for b in split]

    def test_iter_chunks_covers_everything_in_order(self, target_roofline):
        work = self._work(target_roofline)
        chunked = [r for chunk in work.iter_chunks(16) for r in chunk]
        assert [_fields(a) for a in chunked] == [
            _fields(b) for b in work.materialize()
        ]
        arrivals = [r.arrival_time for r in chunked]
        assert arrivals == sorted(arrivals)

    def test_column_store_bytes_per_request(self, target_roofline):
        # One-shot traces: 4 int64/float64 columns.  Session traces add
        # the 4 session columns (id, turn, namespace, segment tokens).
        work = self._work(target_roofline)
        assert work.nbytes == 32 * len(work)
        sessions = SessionGenerator(
            WorkloadGenerator(target_roofline, seed=2), turns=3
        ).columnar(30.0, 4.0)
        assert sessions.nbytes == 64 * len(sessions)

    def test_columnar_from_arrivals_rejects_bad_mix(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=0)
        with pytest.raises(KeyError):
            gen.columnar_from_arrivals([1.0, 2.0], mix={"nope": 1.0})


class TestChunkedArrivalStream:
    def _stream(self, target_roofline, chunk_size=16):
        from repro.serving.clock import ChunkedArrivalStream
        from repro.workloads.trace import uniform_trace

        gen = WorkloadGenerator(target_roofline, seed=4)
        work = gen.columnar_from_arrivals(uniform_trace(30.0, 4.0, seed=gen.seed))
        return work, ChunkedArrivalStream(work.iter_chunks(chunk_size))

    def test_releases_every_request_in_arrival_order(self, target_roofline):
        work, stream = self._stream(target_roofline)
        released = []
        t = 0.0
        while not stream.exhausted:
            t = max(t + 1.0, stream.next_arrival)
            released.extend(stream.release_until(t))
        assert len(released) == len(work)
        arrivals = [r.arrival_time for r in released]
        assert arrivals == sorted(arrivals)

    def test_next_arrival_tracks_head(self, target_roofline):
        work, stream = self._stream(target_roofline)
        head = work.materialize(0, 1)[0]
        assert stream.next_arrival == head.arrival_time
        stream.release_until(head.arrival_time)
        assert stream.next_arrival > head.arrival_time

    def test_regressing_seam_rejected(self):
        from repro.serving.clock import ChunkedArrivalStream
        from tests.conftest import make_request

        chunks = iter(
            [
                [make_request(rid=0, arrival=5.0)],
                [make_request(rid=1, arrival=1.0)],  # regresses across seam
            ]
        )
        stream = ChunkedArrivalStream(chunks)
        with pytest.raises(ValueError, match="regressed"):
            stream.release_until(10.0)


class TestLazySimulationEquivalence:
    def test_columnar_run_matches_materialized_run(self, target_roofline):
        from repro.analysis.harness import build_setup, make_scheduler
        from repro.serving.server import ServingSimulator
        from repro.workloads.trace import uniform_trace

        setup = build_setup("llama70b", seed=1)
        gen = WorkloadGenerator(setup.target_roofline, seed=1)
        work = gen.columnar_from_arrivals(uniform_trace(20.0, 4.0, seed=gen.seed))

        def run(requests):
            engine = setup.build_engine()
            scheduler = make_scheduler("vllm", engine)
            return ServingSimulator(engine, scheduler, requests).run()

        lazy = run(work)
        eager = run(work.materialize())
        assert lazy.metrics == eager.metrics
        assert lazy.iterations == eager.iterations
        assert lazy.sim_time_s == eager.sim_time_s
