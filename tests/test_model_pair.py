"""Tests for the coupled model pair."""

from __future__ import annotations

import pytest

from repro.model.draft import DraftLM
from repro.model.pair import PAIR_PRESETS, ModelPair
from repro.model.stochastic_lm import StochasticLM
from repro.model.vocab import Vocabulary


class TestConstruction:
    def test_build(self):
        pair = ModelPair.build(vocab_size=500, seed=1)
        assert pair.vocab.size == 500

    def test_mismatched_draft_rejected(self):
        a = StochasticLM(Vocabulary(500), seed=1)
        b = StochasticLM(Vocabulary(500), seed=2)
        with pytest.raises(ValueError):
            ModelPair(a, DraftLM(b))

    @pytest.mark.parametrize("name", sorted(PAIR_PRESETS))
    def test_presets_build(self, name):
        pair = ModelPair.from_preset(name, seed=0)
        assert pair.vocab.size == PAIR_PRESETS[name].vocab_size
        assert pair.draft.alignment == PAIR_PRESETS[name].alignment

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            ModelPair.from_preset("nope")

    def test_preset_predictability_override(self):
        pair = ModelPair.from_preset("toy", predictability=0.5)
        assert pair.target.predictability == 0.5


class TestInterface:
    def test_draft_children_count_and_order(self, pair):
        ctx = pair.context_of([1, 2])
        children = pair.draft_children(ctx, 3)
        assert len(children) == 3
        probs = [p for _, p in children]
        assert probs == sorted(probs, reverse=True)

    def test_target_sample_in_target_support(self, pair):
        ctx = pair.context_of([5])
        assert pair.target_sample(ctx) in pair.target_distribution(ctx).token_ids

    def test_accept_prob_is_target_prob(self, pair):
        ctx = pair.context_of([5])
        dist = pair.target_distribution(ctx)
        for tid, p in zip(dist.token_ids, dist.probs):
            assert pair.accept_prob(ctx, tid) == p

    def test_accept_prob_zero_outside_support(self, pair):
        ctx = pair.context_of([5])
        outside = max(pair.target_distribution(ctx).token_ids) + 1
        assert pair.accept_prob(ctx, outside) == 0.0

    def test_extend_shared(self, pair):
        ctx = pair.context_of([1])
        assert pair.extend(ctx, 2) == pair.context_of([1, 2])

    def test_clear_caches(self, pair):
        pair.draft_distribution(pair.context_of([1]))
        pair.clear_caches()
        assert len(pair.target._cache) == 0
        assert len(pair.draft._cache) == 0

    def test_draft_tracks_acceptance(self, pair):
        # The draft's top-1 estimate should track the true acceptance
        # probability of its pick: close in mean (mixing with noise makes
        # the draft mildly conservative) and positively correlated.
        ests, trues = [], []
        n = 300
        for i in range(n):
            ctx = pair.context_of([i, 2 * i])
            (tok, p), = pair.draft_children(ctx, 1)
            ests.append(p)
            trues.append(pair.accept_prob(ctx, tok))
        mean_e = sum(ests) / n
        mean_t = sum(trues) / n
        assert abs(mean_e - mean_t) < 0.15
        cov = sum((e - mean_e) * (t - mean_t) for e, t in zip(ests, trues)) / n
        var_e = sum((e - mean_e) ** 2 for e in ests) / n
        var_t = sum((t - mean_t) ** 2 for t in trues) / n
        corr = cov / (var_e**0.5 * var_t**0.5)
        assert corr > 0.5
