"""Tests for the roofline latency model."""

from __future__ import annotations

import pytest

from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS, GPU_PRESETS, MODEL_PRESETS, DeploymentSpec


@pytest.fixture
def rl() -> RooflineModel:
    return RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])


class TestRooflineShape:
    def test_invalid_efficiency(self):
        dep = DEPLOYMENT_PRESETS["llama70b-4xa100"]
        with pytest.raises(ValueError):
            RooflineModel(dep, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            RooflineModel(dep, bandwidth_efficiency=1.5)

    def test_negative_tokens_rejected(self, rl):
        with pytest.raises(ValueError):
            rl.forward_latency(-1)

    def test_flat_then_linear(self, rl):
        # Below saturation the latency is dominated by the weight roof.
        sat = rl.saturation_tokens()
        lat_small = rl.forward_latency(1)
        lat_half = rl.forward_latency(sat // 2)
        assert lat_half < lat_small * 1.2
        # Far above saturation, latency grows ~linearly with tokens.
        lat_2x = rl.forward_latency(4 * sat)
        lat_4x = rl.forward_latency(8 * sat)
        assert lat_4x / lat_2x == pytest.approx(2.0, rel=0.15)

    def test_monotone_in_tokens(self, rl):
        prev = 0.0
        for t in (1, 8, 64, 128, 512, 2048):
            lat = rl.forward_latency(t)
            assert lat >= prev
            prev = lat

    def test_monotone_in_context(self, rl):
        assert rl.forward_latency(8, 50_000) > rl.forward_latency(8, 0)

    def test_baseline_is_batch_one(self, rl):
        assert rl.baseline_decode_latency == rl.forward_latency(1, 0)

    def test_baseline_plausible_for_70b(self, rl):
        # 70B on 4xA100 decodes at ~20-30ms/token in practice.
        assert 0.015 < rl.baseline_decode_latency < 0.040

    def test_prefill_compute_bound(self, rl):
        # A 2000-token prefill is far above the memory roof.
        cost = rl.forward_cost(2000, 1000)
        assert cost.compute_time > cost.weight_time

    def test_decode_memory_bound(self, rl):
        cost = rl.forward_cost(4, 0)
        assert cost.weight_time > cost.compute_time


class TestScaling:
    def test_tp_reduces_latency(self):
        m = MODEL_PRESETS["qwen2.5-32b"]
        gpu = GPU_PRESETS["a100-80g"]
        one = RooflineModel(DeploymentSpec(m, gpu, 1))
        two = RooflineModel(DeploymentSpec(m, gpu, 2))
        assert two.baseline_decode_latency < one.baseline_decode_latency

    def test_tp_adds_communication(self):
        m = MODEL_PRESETS["qwen2.5-32b"]
        gpu = GPU_PRESETS["a100-80g"]
        one = RooflineModel(DeploymentSpec(m, gpu, 1))
        two = RooflineModel(DeploymentSpec(m, gpu, 2))
        assert one.forward_cost(64).comm_time == 0.0
        assert two.forward_cost(64).comm_time > 0.0

    def test_draft_much_faster_than_target(self):
        target = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
        draft = RooflineModel(DEPLOYMENT_PRESETS["llama1b-1xa100"])
        assert draft.baseline_decode_latency < target.baseline_decode_latency / 5

    def test_h100_faster_than_a100(self):
        m = MODEL_PRESETS["llama-3.1-8b"]
        a = RooflineModel(DeploymentSpec(m, GPU_PRESETS["a100-80g"], 1))
        h = RooflineModel(DeploymentSpec(m, GPU_PRESETS["h100-80g"], 1))
        assert h.baseline_decode_latency < a.baseline_decode_latency

    def test_launch_override(self, rl):
        eager = rl.forward_latency(8)
        replay = rl.forward_latency(8, launch_overhead=1e-6)
        assert replay < eager

    def test_cost_total_is_sum(self, rl):
        cost = rl.forward_cost(100, 5000)
        assert cost.total == pytest.approx(
            max(cost.weight_time, cost.compute_time)
            + cost.kv_time
            + cost.comm_time
            + cost.launch_time
        )

    def test_saturation_matches_roofs(self, rl):
        sat = rl.saturation_tokens()
        below = rl.forward_cost(max(1, sat - 4))
        above = rl.forward_cost(sat + 8)
        assert below.weight_time >= below.compute_time
        assert above.compute_time >= above.weight_time
