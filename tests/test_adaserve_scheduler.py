"""Tests for the AdaServe scheduler (core contribution, end to end)."""

from __future__ import annotations

import pytest

from repro.core.scheduler import AdaServeScheduler
from repro.baselines.vllm import VLLMScheduler
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import KVCacheManager
from repro.serving.server import ServingSimulator
from tests.conftest import make_request


def fresh_engine(pair, target_roofline, draft_roofline, seed=42):
    return SimulatedEngine(
        pair, target_roofline, draft_roofline, KVCacheManager(200_000), seed=seed
    )


def mixed_slo_workload(n=12, strict_slo=0.028, lax_slo=0.15):
    reqs = []
    for i in range(n):
        strict = i % 2 == 0
        reqs.append(
            make_request(
                rid=i,
                category="strict" if strict else "lax",
                arrival=0.05 * i,
                prompt_len=40,
                max_new_tokens=24,
                tpot_slo=strict_slo if strict else lax_slo,
                predictability=0.8 if strict else 0.65,
                priority=0 if strict else 1,
            )
        )
    return reqs


class TestConstruction:
    def test_budgets_profiled_when_omitted(self, engine):
        s = AdaServeScheduler(engine)
        assert s.verify_budget > 1
        assert s.draft_budget > 1

    def test_explicit_budgets(self, engine):
        s = AdaServeScheduler(engine, verify_budget=64, draft_budget=128)
        assert s.verify_budget == 64
        assert s.controller.verify_budget == 64

    def test_invalid_margin(self, engine):
        with pytest.raises(ValueError):
            AdaServeScheduler(engine, slo_margin=0.0)

    def test_invalid_chunk(self, engine):
        with pytest.raises(ValueError):
            AdaServeScheduler(engine, prefill_chunk=0)


class TestIterationBehaviour:
    def test_completes_workload(self, engine):
        reqs = mixed_slo_workload()
        report = ServingSimulator(engine, AdaServeScheduler(engine), reqs).run()
        assert report.metrics.num_finished == len(reqs)

    def test_multiple_tokens_per_iteration(self, engine):
        s = AdaServeScheduler(engine)
        r = make_request(rid=0, prompt_len=10, max_new_tokens=60, predictability=0.9)
        r.advance_prefill(10)
        r.begin_decode(engine.root_ctx(r), 0.0)
        s.running.append(r)
        s.step(0.0)
        assert r.verify_steps == 1
        assert r.n_generated >= 1

    def test_never_overshoots_output_cap(self, engine):
        s = AdaServeScheduler(engine)
        r = make_request(rid=0, prompt_len=10, max_new_tokens=2, predictability=0.95)
        r.advance_prefill(10)
        r.begin_decode(engine.root_ctx(r), 0.0)
        s.running.append(r)
        s.step(0.0)
        assert r.n_generated <= 2

    def test_scheduling_time_accounted(self, engine):
        reqs = mixed_slo_workload(n=6)
        report = ServingSimulator(engine, AdaServeScheduler(engine), reqs).run()
        assert 0 < report.phase_breakdown["scheduling"] < 0.05

    def test_chunked_prefill_no_long_stall(self, pair, target_roofline, draft_roofline):
        # A long prompt arriving mid-stream must not stall decoding
        # requests for its full prefill duration.
        engine = fresh_engine(pair, target_roofline, draft_roofline)
        reqs = [
            make_request(rid=0, arrival=0.0, prompt_len=20, max_new_tokens=50),
            make_request(rid=1, arrival=0.1, prompt_len=2400, max_new_tokens=4),
        ]
        reqs[0].record_token_times = True
        ServingSimulator(engine, AdaServeScheduler(engine), reqs).run()
        times = reqs[0].token_times
        max_gap = max(b - a for a, b in zip(times, times[1:]))
        # Full 2400-token prefill would stall ~0.6s; chunks keep gaps short.
        assert max_gap < 0.3

    def test_strict_requests_get_more_slo_tokens(self, engine):
        # Two running requests, one far behind its (strict) SLO: the
        # strict one must receive at least as many speculated tokens.
        s = AdaServeScheduler(engine, verify_budget=16)
        strict = make_request(rid=0, prompt_len=10, max_new_tokens=50, tpot_slo=0.02)
        lax = make_request(rid=1, prompt_len=10, max_new_tokens=50, tpot_slo=0.5)
        for r in (strict, lax):
            r.advance_prefill(10)
            r.begin_decode(engine.root_ctx(r), 0.0)
            s.running.append(r)
        # Simulate elapsed time so the strict request is behind.
        strict.decode_start = -0.5
        lax.decode_start = -0.5
        s.step(0.0)
        assert strict.verify_steps == 1
        # Both got tokens, but strict at least as many accepted+attempted.
        assert strict.n_generated >= lax.n_generated


class TestEndToEndComparison:
    def test_beats_vllm_on_mixed_slos(self, pair, target_roofline, draft_roofline):
        reqs = mixed_slo_workload(n=16)
        e1 = fresh_engine(pair, target_roofline, draft_roofline)
        vllm = ServingSimulator(e1, VLLMScheduler(e1), [r for r in reqs]).run()

        reqs2 = mixed_slo_workload(n=16)
        e2 = fresh_engine(pair, target_roofline, draft_roofline)
        ada = ServingSimulator(e2, AdaServeScheduler(e2), reqs2).run()

        assert ada.metrics.attainment >= vllm.metrics.attainment
        strict_ada = ada.metrics.per_category["strict"].attainment
        strict_vllm = vllm.metrics.per_category["strict"].attainment
        assert strict_ada >= strict_vllm

    def test_deterministic(self, pair, target_roofline, draft_roofline):
        def run():
            engine = fresh_engine(pair, target_roofline, draft_roofline)
            return ServingSimulator(
                engine, AdaServeScheduler(engine), mixed_slo_workload(n=10)
            ).run()

        a, b = run(), run()
        assert a.sim_time_s == b.sim_time_s
        assert a.metrics.total_tokens == b.metrics.total_tokens

    def test_adaptive_shrinks_beam_under_load(self, engine):
        s = AdaServeScheduler(engine)
        d_light, w_light = s.controller.params(2)
        d_heavy, w_heavy = s.controller.params(60)
        assert d_light > d_heavy
        assert w_light >= w_heavy


class TestSLOPressureAdaptation:
    """The scheduler's structural-demand response (DESIGN.md extension b)."""

    def _one_step_budget(self, engine, slo: float, n: int = 40):
        """Run one iteration over n identical-SLO requests; return the
        verification tokens actually submitted."""
        s = AdaServeScheduler(engine)
        for i in range(n):
            r = make_request(
                rid=i, prompt_len=10, max_new_tokens=50, tpot_slo=slo,
                predictability=0.8,
            )
            r.advance_prefill(10)
            r.begin_decode(engine.root_ctx(r), 0.0)
            s.running.append(r)
        before = engine.phase_times.verification_s
        s.step(0.0)
        return engine.phase_times.verification_s - before, s

    def test_tight_slos_widen_budget(self, pair, target_roofline, draft_roofline):
        from repro.serving.kv_cache import KVCacheManager
        from repro.serving.engine import SimulatedEngine

        def verify_time(slo):
            engine = SimulatedEngine(
                pair, target_roofline, draft_roofline, KVCacheManager(200_000), seed=1
            )
            t, _ = self._one_step_budget(engine, slo)
            return t

        # A 15 ms SLO demands ~3 tokens/iteration; verification work must
        # grow relative to a relaxed 200 ms SLO batch.
        assert verify_time(0.015) > verify_time(0.200)

    def test_budget_bounded(self, engine):
        # Even absurdly tight SLOs cannot push the budget past 3x profiled.
        s = AdaServeScheduler(engine)
        n = 10
        for i in range(n):
            r = make_request(
                rid=i, prompt_len=10, max_new_tokens=50, tpot_slo=0.0001,
            )
            r.advance_prefill(10)
            r.begin_decode(engine.root_ctx(r), 0.0)
            s.running.append(r)
        s.step(0.0)
        total_verified = sum(r.verify_steps for r in s.running)
        assert total_verified == n  # one verification pass, no blow-up
