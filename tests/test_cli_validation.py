"""Tests for CLI input validation, registry introspection, and --grid."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def _parse(argv):
    return build_parser().parse_args(argv)


class TestWorkloadValidation:
    @pytest.mark.parametrize("value", ["-0.1", "1.5", "2"])
    def test_urgent_fraction_outside_unit_interval_rejected(self, value):
        with pytest.raises(SystemExit):
            _parse(["run", "--urgent-fraction", value])

    @pytest.mark.parametrize("value", ["0", "1", "0.6"])
    def test_urgent_fraction_boundaries_accepted(self, value):
        args = _parse(["run", "--urgent-fraction", value])
        assert args.urgent_fraction == float(value)

    @pytest.mark.parametrize("flag", ["--slo-scale", "--duration", "--rps"])
    @pytest.mark.parametrize("value", ["0", "-1.5", "nan", "inf"])
    def test_nonpositive_knobs_rejected(self, flag, value):
        with pytest.raises(SystemExit):
            _parse(["run", flag, value])

    def test_nan_urgent_fraction_rejected(self):
        with pytest.raises(SystemExit):
            _parse(["run", "--urgent-fraction", "nan"])

    def test_nonpositive_sweep_rps_rejected_per_value(self):
        with pytest.raises(SystemExit):
            _parse(["sweep", "--rps", "2.0", "0"])

    def test_cluster_knobs_validated_too(self):
        with pytest.raises(SystemExit):
            _parse(["cluster", "--rps", "-3"])
        with pytest.raises(SystemExit):
            _parse(["cluster", "--duration", "0"])


class TestSpecStringArgs:
    def test_system_specs_canonicalized_at_parse_time(self):
        assert _parse(["run", "--system", "vllm-spec:k=8"]).system == "vllm-spec:k=8"
        assert _parse(["run", "--system", "vllm-spec-4"]).system == "vllm-spec"
        assert _parse(["sweep", "--systems", "adaserve", "vllm-spec:k=6"]).systems == [
            "adaserve",
            "vllm-spec:k=6",
        ]

    def test_unknown_system_and_param_rejected(self):
        with pytest.raises(SystemExit):
            _parse(["run", "--system", "bogus"])
        with pytest.raises(SystemExit):
            _parse(["run", "--system", "vllm-spec:q=3"])

    def test_out_of_range_param_values_fail_at_the_parser(self):
        # Previously these passed argparse and crashed the component
        # constructor mid-run with a raw traceback.
        with pytest.raises(SystemExit):
            _parse(["run", "--system", "vllm-spec:k=0"])
        with pytest.raises(SystemExit):
            _parse(["cluster", "--router", "affinity:reserve=1.5"])
        with pytest.raises(SystemExit):
            _parse(["run", "--trace", "bursty:burstiness=1.0"])

    def test_router_and_trace_specs(self):
        args = _parse(
            ["cluster", "--router", "affinity:reserve=0.4", "--trace", "diurnal:peak_to_trough=6"]
        )
        assert args.router == "affinity:reserve=0.4"
        assert args.trace == "diurnal:peak_to_trough=6.0"
        with pytest.raises(SystemExit):
            _parse(["cluster", "--router", "dns"])
        with pytest.raises(SystemExit):
            _parse(["run", "--trace", "sinusoidal"])


class TestListCommand:
    def test_list_systems_shows_schemas_and_aliases(self, capsys):
        assert main(["list", "systems"]) == 0
        out = capsys.readouterr().out
        assert "adaserve" in out and "vllm-spec" in out
        assert "alias: vllm-spec-6 (= vllm-spec:k=6)" in out
        assert "param: k: int = 4" in out
        assert "param: n_max: int = 16" in out

    @pytest.mark.parametrize("kind", ["routers", "traces", "models"])
    def test_list_other_registries(self, kind, capsys):
        assert main(["list", kind]) == 0
        assert capsys.readouterr().out.strip()

    def test_list_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            _parse(["list", "gizmos"])


class TestGridOption:
    def _sweep_argv(self, tmp_path, *extra):
        return [
            "sweep",
            "--systems", "vllm-spec",
            "--rps", "1.5",
            "--duration", "4",
            "--trace", "steady",
            "--cache-dir", str(tmp_path),
            *extra,
        ]

    def test_bad_grid_axis_is_a_usage_error(self, tmp_path, capsys):
        assert main(self._sweep_argv(tmp_path, "--grid", "system.q=1")) == 2
        err = capsys.readouterr().err
        assert "'q'" in err and "['k']" in err

    def test_grid_sweeps_registered_param_and_caches(self, tmp_path, capsys):
        argv = self._sweep_argv(tmp_path, "--grid", "system.k=2,4")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "vLLM-Spec(2)" in out and "vLLM-Spec(4)" in out
        assert "simulations executed: 2" in out
        # Warm repeat: the whole grid answers from cache.
        assert main(argv) == 0
        assert "simulations executed: 0" in capsys.readouterr().out

    def test_grid_cells_get_distinct_series_labels(self, tmp_path, capsys):
        # n_max does not appear in AdaServe's display name; without
        # per-cell labels both points would collapse into one column.
        # (n_max=16 is the default, so its cell keeps the bare name.)
        argv = self._sweep_argv(tmp_path, "--grid", "system.n_max=2,16")
        argv[1:3] = ["--systems", "adaserve"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "AdaServe [n_max=2]" in out and "AdaServe " in out
        assert "simulations executed: 2" in out

    def test_parameterized_systems_variants_get_distinct_series_labels(
        self, tmp_path, capsys
    ):
        argv = self._sweep_argv(tmp_path)
        argv[1:3] = ["--systems", "adaserve", "adaserve:n_max=2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "AdaServe [n_max=2]" in out
        assert "simulations executed: 2" in out

    def test_workload_grid_axis_labels_cells(self, tmp_path, capsys):
        argv = self._sweep_argv(tmp_path, "--grid", "workload.seed=1,2")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[seed=1]" in out and "[seed=2]" in out

    def test_grid_values_dedupe_with_aliases(self, tmp_path, capsys):
        # k=4 is the alias vllm-spec-4's binding and the default: one point.
        argv = [
            "sweep",
            "--systems", "vllm-spec", "vllm-spec-4",
            "--rps", "1.5",
            "--duration", "4",
            "--trace", "steady",
            "--cache-dir", str(tmp_path),
            "--grid", "system.k=4",
        ]
        assert main(argv) == 0
        assert "simulations executed: 1" in capsys.readouterr().out
