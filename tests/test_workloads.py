"""Tests for categories (Table 2), datasets, traces and the generator."""

from __future__ import annotations

import pytest

from repro.workloads.categories import (
    CATEGORIES,
    CHATBOT,
    CODING,
    DEFAULT_MIX,
    SUMMARIZATION,
    Category,
    resolve_slos,
    urgent_mix,
)
from repro.workloads.datasets import DATASETS, LengthDistribution
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import (
    bursty_trace,
    diurnal_trace,
    phased_trace,
    trace_frequency,
    uniform_trace,
)


class TestCategories:
    def test_table2_rows(self):
        assert CODING.baseline_multiplier == 1.2
        assert CHATBOT.tpot_slo_s == 0.050
        assert SUMMARIZATION.tpot_slo_s == 0.150

    def test_exactly_one_slo_mode(self):
        with pytest.raises(ValueError):
            Category("x", "app", "tiny", 0.7)
        with pytest.raises(ValueError):
            Category("x", "app", "tiny", 0.7, tpot_slo_s=0.05, baseline_multiplier=1.2)

    def test_resolve_relative(self):
        assert CODING.resolve_slo(0.025) == pytest.approx(0.030)

    def test_resolve_absolute_ignores_baseline(self):
        assert CHATBOT.resolve_slo(0.025) == 0.050
        assert CHATBOT.resolve_slo(0.1) == 0.050

    def test_scale_only_affects_urgent(self):
        assert CODING.resolve_slo(0.025, scale=0.5) == pytest.approx(0.015)
        assert CHATBOT.resolve_slo(0.025, scale=0.5) == 0.050

    def test_urgent_mix(self):
        mix = urgent_mix(0.6)
        assert mix["coding"] == pytest.approx(0.6)
        assert mix["chatbot"] == pytest.approx(0.2)
        assert sum(mix.values()) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            urgent_mix(1.5)

    def test_resolve_slos_all_categories(self, target_roofline):
        slos = resolve_slos(target_roofline)
        assert set(slos) == set(CATEGORIES)
        assert slos["coding"] == pytest.approx(
            1.2 * target_roofline.baseline_decode_latency
        )

    def test_default_mix_sums_to_one(self):
        assert sum(DEFAULT_MIX.values()) == pytest.approx(1.0)


class TestDatasets:
    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            LengthDistribution(mean=-1, sigma=0.5, lo=1, hi=10)
        with pytest.raises(ValueError):
            LengthDistribution(mean=10, sigma=0.5, lo=5, hi=2)

    def test_sample_within_clip(self):
        dist = LengthDistribution(mean=100, sigma=0.6, lo=50, hi=200)
        for i in range(300):
            v = dist.sample(i * 7 + 1, 0)
            assert 50 <= v <= 200

    def test_sample_mean_approximate(self):
        dist = LengthDistribution(mean=100, sigma=0.3, lo=1, hi=10_000)
        vals = [dist.sample(i * 13 + 5, 0) for i in range(3000)]
        assert abs(sum(vals) / len(vals) - 100) < 10

    def test_dataset_deterministic(self):
        d = DATASETS["humaneval"]
        assert d.sample(1, 5) == d.sample(1, 5)
        assert d.sample(1, 5) != d.sample(2, 5) or d.sample(1, 6) != d.sample(2, 6)

    def test_datasets_distinct(self):
        a = [DATASETS["alpaca"].sample(0, i)[0] for i in range(100)]
        c = [DATASETS["cnn_dailymail"].sample(0, i)[0] for i in range(100)]
        assert sum(c) > 3 * sum(a)  # news prompts are much longer

    def test_expected_corpora_present(self):
        assert {"humaneval", "alpaca", "cnn_dailymail", "tiny"} <= set(DATASETS)


class TestTraces:
    def test_bursty_rate_matches_target(self):
        arrivals = bursty_trace(duration_s=300, target_rps=4.0, seed=1)
        assert abs(len(arrivals) / 300 - 4.0) < 0.5

    def test_bursty_sorted_and_bounded(self):
        arrivals = bursty_trace(60, 3.0, seed=2)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 60 for t in arrivals)

    def test_bursty_is_bursty(self):
        arrivals = bursty_trace(600, 4.0, seed=3, burstiness=0.7)
        counts = trace_frequency(arrivals, bin_s=20, duration_s=600)
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        # Overdispersed relative to Poisson (variance > mean).
        assert var > 1.5 * mean

    def test_bursty_deterministic(self):
        assert bursty_trace(60, 3.0, seed=4) == bursty_trace(60, 3.0, seed=4)
        assert bursty_trace(60, 3.0, seed=4) != bursty_trace(60, 3.0, seed=5)

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            bursty_trace(0, 1.0)
        with pytest.raises(ValueError):
            bursty_trace(10, 1.0, burstiness=1.0)

    def test_uniform_rate(self):
        arrivals = uniform_trace(400, 2.0, seed=1)
        assert abs(len(arrivals) / 400 - 2.0) < 0.3

    def test_phased_categories_peak_at_different_times(self):
        pairs = phased_trace(300, ["a", "b", "c"], peak_rps=3.0, base_rps=0.1, seed=1)
        def centroid(cat):
            ts = [t for t, c in pairs if c == cat]
            return sum(ts) / len(ts)
        assert centroid("a") < centroid("b") < centroid("c")

    def test_phased_sorted(self):
        pairs = phased_trace(100, ["a", "b"], 2.0, seed=2)
        times = [t for t, _ in pairs]
        assert times == sorted(times)

    def test_phased_validation(self):
        with pytest.raises(ValueError):
            phased_trace(100, [], 2.0)

    def test_diurnal_rate_matches_target(self):
        arrivals = diurnal_trace(600, 2.0, seed=1)
        assert abs(len(arrivals) / 600 - 2.0) < 0.3

    def test_diurnal_peaks_mid_cycle(self):
        arrivals = diurnal_trace(600, 2.0, seed=1, peak_to_trough=6.0)
        counts = trace_frequency(arrivals, bin_s=100.0, duration_s=600)
        # Trough at the window edges, peak in the middle of the cycle.
        assert max(counts[2:4]) > 2 * max(counts[0], counts[5])

    def test_diurnal_deterministic(self):
        assert diurnal_trace(200, 3.0, seed=9) == diurnal_trace(200, 3.0, seed=9)
        assert diurnal_trace(200, 3.0, seed=9) != diurnal_trace(200, 3.0, seed=10)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(0, 2.0)
        with pytest.raises(ValueError):
            diurnal_trace(100, 2.0, peak_to_trough=0.5)
        with pytest.raises(ValueError):
            diurnal_trace(100, 2.0, cycles=0)

    def test_trace_frequency_bins(self):
        counts = trace_frequency([0.5, 1.5, 1.7, 9.9], bin_s=1.0, duration_s=10.0)
        assert len(counts) == 10
        assert counts[0] == 1 and counts[1] == 2 and counts[9] == 1
        assert sum(counts) == 4


class TestGenerator:
    def test_requests_built(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=1)
        reqs = gen.steady(duration_s=30, rps=2.0)
        assert len(reqs) > 20
        assert all(r.tpot_slo > 0 for r in reqs)
        assert all(r.prompt_len >= 1 for r in reqs)

    def test_mix_respected(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=2)
        reqs = gen.steady(duration_s=400, rps=3.0, mix={"coding": 0.8, "chatbot": 0.2})
        frac = sum(1 for r in reqs if r.category == "coding") / len(reqs)
        assert abs(frac - 0.8) < 0.05
        assert not any(r.category == "summarization" for r in reqs)

    def test_unknown_category_rejected(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=1)
        with pytest.raises(KeyError):
            gen.steady(10, 1.0, mix={"nope": 1.0})

    def test_coding_slo_tracks_baseline(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=3)
        reqs = gen.steady(60, 2.0)
        coding = next(r for r in reqs if r.category == "coding")
        assert coding.tpot_slo == pytest.approx(
            1.2 * target_roofline.baseline_decode_latency
        )
        assert coding.priority == 0

    def test_slo_scale_applied(self, target_roofline):
        tight = WorkloadGenerator(target_roofline, seed=3, slo_scale=0.6)
        reqs = tight.steady(60, 2.0)
        coding = next(r for r in reqs if r.category == "coding")
        assert coding.tpot_slo == pytest.approx(
            0.6 * 1.2 * target_roofline.baseline_decode_latency
        )
        chat = next(r for r in reqs if r.category == "chatbot")
        assert chat.tpot_slo == 0.050  # absolute SLOs unscaled

    def test_deterministic(self, target_roofline):
        a = WorkloadGenerator(target_roofline, seed=9).steady(30, 2.0)
        b = WorkloadGenerator(target_roofline, seed=9).steady(30, 2.0)
        assert [(r.prompt_len, r.max_new_tokens, r.category) for r in a] == [
            (r.prompt_len, r.max_new_tokens, r.category) for r in b
        ]

    def test_phased_workload(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=4)
        reqs = gen.phased(duration_s=120, peak_rps=2.0)
        cats = {r.category for r in reqs}
        assert cats == {"coding", "chatbot", "summarization"}

    def test_rids_unique_and_ordered(self, target_roofline):
        gen = WorkloadGenerator(target_roofline, seed=5)
        reqs = gen.bursty(30, 3.0)
        assert [r.rid for r in reqs] == list(range(len(reqs)))
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
