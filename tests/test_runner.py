"""Tests for the parallel sweep runner (and its serial/parallel parity)."""

from __future__ import annotations

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.export import points_from_cache, points_to_json
from repro.analysis.runner import (
    ExperimentConfig,
    SweepRunner,
    derive_seed,
    execute_point,
)

#: A small grid: 4 points of a few simulated seconds each.
GRID = tuple(
    ExperimentConfig.create(
        model="llama70b", system=system, rps=rps, duration_s=4.0, seed=3, trace="steady"
    )
    for rps in (1.0, 2.0)
    for system in ("vllm", "sarathi")
)


class TestConfig:
    def test_create_rejects_unknown_trace(self):
        with pytest.raises(ValueError):
            ExperimentConfig.create(
                model="llama70b", system="vllm", rps=1.0, duration_s=4.0, seed=0,
                trace="sinusoidal",
            )

    def test_to_dict_round_trips_mix(self):
        config = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=1.0, duration_s=4.0, seed=0,
            mix={"coding": 0.7, "chatbot": 0.3},
        )
        assert config.to_dict()["workload"]["mix"] == [["chatbot", 0.3], ["coding", 0.7]]
        assert ExperimentConfig.from_dict(config.to_dict()) == config


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1234, "replica", 3) == derive_seed(1234, "replica", 3)

    def test_sensitive_to_every_part(self):
        base = derive_seed(1234, "replica", 3)
        assert derive_seed(1235, "replica", 3) != base
        assert derive_seed(1234, "warmup", 3) != base
        assert derive_seed(1234, "replica", 4) != base

    def test_non_negative(self):
        for k in range(16):
            assert derive_seed(0, k) >= 0

    def test_with_replica_spreads_seeds(self):
        config = GRID[0]
        seeds = {config.with_replica(k).seed for k in range(8)}
        assert len(seeds) == 8
        assert config.with_replica(2) == config.with_replica(2)


class TestExecutePoint:
    def test_deterministic(self):
        assert execute_point(GRID[0]) == execute_point(GRID[0])

    def test_report_dict_shape(self):
        report = execute_point(GRID[0])
        assert report["scheduler"] == "vLLM"
        assert report["metrics"]["num_requests"] > 0


class TestSweepRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_results_in_input_order(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path), jobs=1)
        results = runner.run(GRID)
        assert [r.config for r in results] == list(GRID)
        assert runner.executed == len(GRID)
        assert not any(r.from_cache for r in results)

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, jobs=1).run(GRID)
        warm = SweepRunner(cache=cache, jobs=1)
        results = warm.run(GRID)
        assert warm.executed == 0
        assert all(r.from_cache for r in results)
        assert "simulations executed: 0" in warm.stats_line()

    def test_interrupted_sweep_resumes(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, jobs=1).run(GRID[:2])
        resumed = SweepRunner(cache=cache, jobs=1)
        resumed.run(GRID)
        assert resumed.executed == len(GRID) - 2

    def test_duplicate_points_simulated_once(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path), jobs=1)
        results = runner.run([GRID[0], GRID[0]])
        assert runner.executed == 1
        assert len(results) == 2
        assert results[0].report.metrics == results[1].report.metrics

    def test_runs_without_cache(self):
        runner = SweepRunner(cache=None, jobs=1)
        results = runner.run(GRID[:1])
        assert runner.executed == 1
        assert "cache: disabled" in runner.stats_line()
        assert results[0].report.metrics.num_requests > 0

    def test_on_result_fires_once_per_point(self, tmp_path):
        seen = []
        SweepRunner(cache=ResultCache(tmp_path), jobs=1).run(
            GRID, on_result=seen.append
        )
        assert sorted(r.key for r in seen) == sorted(c.digest() for c in GRID)


class TestParallelDeterminism:
    def test_two_worker_sweep_byte_identical_to_serial(self, tmp_path):
        serial_cache = ResultCache(tmp_path / "serial")
        parallel_cache = ResultCache(tmp_path / "parallel")
        serial = SweepRunner(cache=serial_cache, jobs=1)
        parallel = SweepRunner(cache=parallel_cache, jobs=2)
        serial_results = serial.run(GRID)
        parallel_results = parallel.run(GRID)
        assert serial.executed == parallel.executed == len(GRID)

        serial_json = points_to_json(points_from_cache(serial_cache, GRID))
        parallel_json = points_to_json(points_from_cache(parallel_cache, GRID))
        assert serial_json.encode() == parallel_json.encode()

        # The on-disk records match bit-for-bit too.
        for config in GRID:
            a = serial_cache.path_for(config).read_bytes()
            b = parallel_cache.path_for(config).read_bytes()
            assert a == b

        for s, p in zip(serial_results, parallel_results):
            assert s.report == p.report
