"""Tests for the experiment harness and report formatting."""

from __future__ import annotations

import pytest

from repro.analysis.harness import MODEL_SETUPS, build_setup, make_scheduler, run_once
from repro.analysis.report import (
    SeriesPoint,
    best_baseline,
    format_table,
    improvement_summary,
    point_from_metrics,
    series_table,
)
from repro.serving.metrics import compute_metrics
from tests.conftest import make_request, tiny_generator


class TestHarness:
    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_setup("gpt5")

    @pytest.mark.parametrize("model", sorted(MODEL_SETUPS))
    def test_setups_build(self, model):
        setup = build_setup(model)
        engine = setup.build_engine()
        assert engine.target_roofline.baseline_decode_latency > 0

    def test_unknown_system(self):
        setup = build_setup("llama70b")
        with pytest.raises(KeyError):
            make_scheduler("nonsense", setup.build_engine())

    @pytest.mark.parametrize(
        "system,expected",
        [
            ("adaserve", "AdaServe"),
            ("vllm", "vLLM"),
            ("sarathi", "Sarathi-Serve"),
            ("vllm-spec-6", "vLLM-Spec(6)"),
            ("priority", "vLLM+Priority"),
            ("fastserve", "FastServe"),
            ("vtc", "VTC"),
        ],
    )
    def test_all_systems_instantiable(self, system, expected):
        setup = build_setup("llama70b")
        sched = make_scheduler(system, setup.build_engine())
        assert sched.name == expected

    def test_run_once_does_not_mutate_inputs(self):
        setup = build_setup("llama70b")
        reqs = tiny_generator(setup.target_roofline).steady(4.0, 2.0)
        before = [(r.n_generated, r.state) for r in reqs]
        run_once(setup, "vllm", reqs)
        assert [(r.n_generated, r.state) for r in reqs] == before

    def test_run_once_repeatable(self):
        setup = build_setup("llama70b")
        reqs = tiny_generator(setup.target_roofline).steady(4.0, 2.0)
        a = run_once(setup, "adaserve", reqs)
        b = run_once(setup, "adaserve", reqs)
        assert a.sim_time_s == b.sim_time_s
        assert a.metrics.attainment == b.metrics.attainment


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_point_from_metrics(self):
        req = make_request(rid=0, max_new_tokens=4, tpot_slo=1.0)
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 0.0)
        req.commit_tokens(4, 2, 0.2)
        m = compute_metrics([req])
        p = point_from_metrics(2.5, "vLLM", m)
        assert p.x == 2.5
        assert p.attainment == 1.0

    def test_series_table_pivot(self):
        pts = [
            SeriesPoint(1.0, "A", 0.9, 100, 0.1, 2.0),
            SeriesPoint(1.0, "B", 0.8, 90, 0.2, 0.0),
            SeriesPoint(2.0, "A", 0.7, 80, 0.3, 1.5),
        ]
        table = series_table(pts, value="attainment")
        assert "0.900" in table and "0.800" in table and "0.700" in table
        assert "-" in table  # missing (2.0, B) cell

    def test_best_baseline_excludes_adaserve(self):
        pts = [
            SeriesPoint(1.0, "AdaServe", 0.99, 500, 0.01, 3.0),
            SeriesPoint(1.0, "vLLM", 0.5, 100, 0.5, 0.0),
            SeriesPoint(1.0, "vLLM-Spec(6)", 0.8, 300, 0.2, 2.0),
        ]
        best = best_baseline(pts, 1.0, "attainment")
        assert best.system == "vLLM-Spec(6)"

    def test_improvement_summary(self):
        pts = [
            SeriesPoint(1.0, "AdaServe", 0.95, 400, 0.05, 3.0),
            SeriesPoint(1.0, "vLLM-Spec(6)", 0.80, 200, 0.20, 2.0),
        ]
        summary = improvement_summary(pts)
        assert summary["max_violation_reduction"] == pytest.approx(4.0)
        assert summary["max_goodput_ratio"] == pytest.approx(2.0)

    def test_improvement_summary_inf_when_zero_violations(self):
        pts = [
            SeriesPoint(1.0, "AdaServe", 1.0, 400, 0.0, 3.0),
            SeriesPoint(1.0, "vLLM", 0.8, 200, 0.2, 0.0),
        ]
        assert improvement_summary(pts)["max_violation_reduction"] == float("inf")
