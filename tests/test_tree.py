"""Tests for draft token trees."""

from __future__ import annotations

import pytest

from repro.core.tree import TokenTree


def chain_tree(probs: list[float]) -> TokenTree:
    """Root -> chain of nodes with the given conditional probs."""
    tree = TokenTree(0, 100)
    node = tree.root
    for i, p in enumerate(probs):
        node = tree.add_child(node, i + 1, 100 + i + 1, p)
    return tree


class TestConstruction:
    def test_root_properties(self):
        tree = TokenTree(7, 999)
        assert tree.root.is_root
        assert tree.root.token_id == 7
        assert tree.root.ctx_hash == 999
        assert tree.root.path_prob == 1.0
        assert tree.size == 1
        assert tree.num_speculated == 0
        assert tree.depth == 0

    def test_add_child_path_prob(self):
        tree = TokenTree(0, 1)
        a = tree.add_child(tree.root, 1, 2, 0.5)
        b = tree.add_child(a, 2, 3, 0.4)
        assert a.path_prob == 0.5
        assert b.path_prob == pytest.approx(0.2)
        assert b.depth == 2
        assert b.parent is a

    def test_invalid_prob_rejected(self):
        tree = TokenTree(0, 1)
        with pytest.raises(ValueError):
            tree.add_child(tree.root, 1, 2, 1.5)

    def test_path_tokens(self):
        tree = chain_tree([0.9, 0.8, 0.7])
        leaf = tree._nodes[-1]
        assert leaf.path_tokens() == [1, 2, 3]
        assert tree.root.path_tokens() == []

    def test_nodes_iteration(self):
        tree = chain_tree([0.9, 0.8])
        assert len(list(tree.nodes())) == 3
        assert len(list(tree.nodes(include_root=False))) == 2


class TestSelection:
    def test_selected_counts(self):
        tree = chain_tree([0.9, 0.8])
        nodes = list(tree.nodes(include_root=False))
        nodes[0].selected = True
        assert tree.num_selected() == 1
        assert tree.num_selected(include_root=True) == 2

    def test_selected_path_prob_sum(self):
        tree = chain_tree([0.5, 0.5])
        for n in tree.nodes(include_root=False):
            n.selected = True
        assert tree.selected_path_prob_sum() == pytest.approx(0.5 + 0.25)

    def test_clear_selection(self):
        tree = chain_tree([0.5])
        next(tree.nodes(include_root=False)).selected = True
        tree.clear_selection()
        assert tree.num_selected() == 0

    def test_connectivity_check(self):
        tree = TokenTree(0, 1)
        a = tree.add_child(tree.root, 1, 2, 0.9)
        b = tree.add_child(a, 2, 3, 0.8)
        b.selected = True  # orphan: parent a not selected
        assert not tree.is_selection_connected()
        a.selected = True
        assert tree.is_selection_connected()

    def test_child_of_root_always_connected(self):
        tree = TokenTree(0, 1)
        a = tree.add_child(tree.root, 1, 2, 0.9)
        a.selected = True
        assert tree.is_selection_connected()


class TestExtraction:
    def test_extract_rejects_disconnected(self):
        tree = TokenTree(0, 1)
        a = tree.add_child(tree.root, 1, 2, 0.9)
        b = tree.add_child(a, 2, 3, 0.8)
        b.selected = True
        with pytest.raises(ValueError):
            tree.extract_selected()

    def test_extract_structure(self):
        tree = TokenTree(0, 1)
        a = tree.add_child(tree.root, 1, 10, 0.9)
        b = tree.add_child(tree.root, 2, 11, 0.5)
        c = tree.add_child(a, 3, 12, 0.8)
        a.selected = True
        c.selected = True
        out = tree.extract_selected()
        assert out.size == 3  # root + a + c
        assert out.root.ctx_hash == 1
        (a2,) = out.root.children
        assert a2.token_id == 1 and a2.ctx_hash == 10
        (c2,) = a2.children
        assert c2.token_id == 3 and c2.ctx_hash == 12

    def test_extract_empty_selection(self):
        tree = chain_tree([0.9])
        out = tree.extract_selected()
        assert out.size == 1

    def test_extract_preserves_path_probs(self):
        tree = chain_tree([0.5, 0.4])
        for n in tree.nodes(include_root=False):
            n.selected = True
        out = tree.extract_selected()
        leaf = list(out.nodes())[-1]
        assert leaf.path_prob == pytest.approx(0.2)

    def test_extract_is_independent_copy(self):
        tree = chain_tree([0.9])
        child = next(tree.nodes(include_root=False))
        child.selected = True
        out = tree.extract_selected()
        tree.clear_selection()
        assert out.size == 2  # unaffected by source mutation

    def test_map_nodes(self):
        tree = chain_tree([0.9, 0.8])
        seen = []
        tree.map_nodes(lambda n: seen.append(n.depth))
        assert seen == [0, 1, 2]
