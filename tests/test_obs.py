"""Tests for the observability subsystem (:mod:`repro.obs`).

The subsystem's contract has three load-bearing clauses:

- **passive**: an observed run's report is byte-identical to the same
  run unobserved (and obs-off runs keep reproducing the committed
  golden digests);
- **deterministic**: fixed-seed traced runs export byte-identical
  Perfetto and time-series JSON across repeats;
- **cache-neutral**: the ``obs`` section never reaches the cache key or
  the serialized spec.
"""

from __future__ import annotations

import json
from typing import ClassVar

import pytest

from repro.analysis.export import report_to_json
from repro.analysis.runner import run_spec, run_traced
from repro.analysis.spec import ExperimentSpec
from repro.obs import (
    FLEET_TRACK,
    GaugeSampler,
    ObsSpec,
    TraceCollector,
    format_slowest_table,
    perfetto_json,
    perfetto_trace,
    series_to_dict,
    series_to_json,
    slowest_requests,
)
from repro.obs.export import FLEET_PID
from tests.conftest import make_request


def _spec(**kw) -> ExperimentSpec:
    kw.setdefault("model", "llama70b")
    kw.setdefault("seed", 0)
    return ExperimentSpec.create(**kw)


#: Small chaos fleet: crash replica 1 at t=4, restart 2s later.  The
#: sampler assertions below are pinned to this exact scenario.
_CHAOS_KW = dict(
    system="vllm",
    rps=14.0,
    duration_s=10.0,
    trace="bursty",
    replicas=2,
    router="round-robin",
    faults=("crash:at=4,replica=1,restart=2",),
)


class TestObsSpec:
    def test_defaults_disabled(self):
        spec = ObsSpec()
        assert not spec.trace and not spec.iteration_log
        assert not spec.enabled

    def test_enabled_variants(self):
        assert ObsSpec(trace=True).enabled
        assert ObsSpec(iteration_log=True).enabled

    @pytest.mark.parametrize("period", [0.0, -1.0, float("nan"), float("inf")])
    def test_sample_period_validation(self, period):
        with pytest.raises(ValueError):
            ObsSpec(sample_every_s=period)

    def test_cache_key_and_serialization_neutrality(self):
        plain = _spec(system="vllm", rps=4.0, duration_s=6.0)
        traced = _spec(
            system="vllm",
            rps=4.0,
            duration_s=6.0,
            obs=ObsSpec(trace=True, sample_every_s=0.1, iteration_log=True),
        )
        # Observability knobs must never fork cache keys or exports.
        assert plain.digest() == traced.digest()
        assert "obs" not in traced.to_dict()
        roundtrip = ExperimentSpec.from_dict(traced.to_dict())
        assert not roundtrip.obs.enabled


class TestGaugeSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaugeSampler(period_s=0.0)
        with pytest.raises(ValueError):
            GaugeSampler(capacity=1)

    def test_unbound_catch_up_is_noop(self):
        sampler = GaugeSampler()
        sampler.catch_up(100.0)
        assert len(sampler) == 0

    def test_ring_compaction_doubles_stride(self):
        sampler = GaugeSampler(period_s=1.0, capacity=8)
        seen: list[float] = []
        sampler.bind(lambda t: seen.append(t) or t)
        sampler.catch_up(100.0)
        # Memory stays bounded while the full span remains covered.
        assert len(sampler.samples) <= 8
        assert sampler.period_s > sampler.requested_period_s
        assert sampler.samples[-1] >= 96.0
        assert seen == sorted(seen)

    def test_catch_up_fires_every_pending_tick(self):
        sampler = GaugeSampler(period_s=0.5, capacity=64)
        sampler.bind(lambda t: t)
        sampler.catch_up(2.0)
        assert sampler.samples == [0.0, 0.5, 1.0, 1.5, 2.0]
        # A later catch-up never re-fires past ticks.
        sampler.catch_up(2.0)
        assert len(sampler) == 5


class TestTracer:
    def test_lifecycle_emissions(self):
        collector = TraceCollector()
        tracer = collector.tracer(3)
        req = make_request(rid=7)
        tracer.enqueue(0.5, req)
        tracer.prefill(1.0, 0.25, req, tokens=32)
        req.decode_start = 1.25
        req.last_token_time = 2.0
        req.finish_time = 2.0
        tracer.finish(req)
        kinds = collector.kinds()
        assert {"enqueue", "prefill", "decode", "finish"} <= kinds
        assert all(e.replica == 3 for e in collector.events)
        assert [e.kind for e in collector.for_request(7)] == [
            "enqueue",
            "prefill",
            "decode",
            "finish",
        ]
        (decode,) = collector.of_kind("decode")
        assert decode.t == 1.25 and decode.dur == pytest.approx(0.75)

    def test_preempt_stamps_iteration_start(self):
        collector = TraceCollector()
        tracer = collector.tracer(0)
        tracer.now = 4.5
        tracer.preempt(make_request(rid=1), drop_kv=True)
        (ev,) = collector.of_kind("preempt")
        assert ev.t == 4.5
        assert ev.data == {"drop_kv": True}


class TestObservationInvariance:
    """Observed runs must not change a single byte of the report."""

    def test_solo_run_invariant(self):
        spec = _spec(system="adaserve", rps=4.0, duration_s=6.0)
        plain = report_to_json(run_spec(spec))
        traced_spec = _spec(
            system="adaserve",
            rps=4.0,
            duration_s=6.0,
            obs=ObsSpec(trace=True, sample_every_s=0.25, iteration_log=True),
        )
        report, observer = run_traced(traced_spec)
        assert report_to_json(report) == plain
        assert len(observer.collector) > 0
        assert len(observer.sampler) > 0

    def test_chaos_fleet_invariant(self):
        plain = report_to_json(run_spec(_spec(**_CHAOS_KW)))
        report, observer = run_traced(
            _spec(**_CHAOS_KW, obs=ObsSpec(trace=True))
        )
        assert report_to_json(report) == plain
        assert {"crash", "restart", "failover"} <= observer.collector.kinds()

    def test_golden_digest_survives_observation(self):
        # The committed golden digest for this scenario must hold even
        # with every observability knob on.
        from tests.test_golden_equivalence import GOLDEN, _digest

        name, kw, want = GOLDEN[0]
        assert name == "solo-vllm"
        traced = _spec(**kw, obs=ObsSpec(trace=True, iteration_log=True))
        report, _ = run_traced(traced)
        import hashlib

        got = hashlib.sha256(report_to_json(report).encode("utf-8")).hexdigest()
        assert got == want == _digest(_spec(**kw))


class TestDeterminism:
    def test_trace_exports_byte_identical_across_reruns(self):
        def run():
            spec = _spec(
                **_CHAOS_KW, obs=ObsSpec(trace=True, iteration_log=True)
            )
            report, observer = run_traced(spec)
            return (
                perfetto_json(
                    observer.collector, observer.sampler, chaos=report.chaos
                ),
                series_to_json(observer),
            )

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]


class TestPerfettoExport:
    @pytest.fixture(scope="class")
    def traced(self):
        report, observer = run_traced(
            _spec(**_CHAOS_KW, obs=ObsSpec(trace=True))
        )
        return report, observer

    def test_structure(self, traced):
        report, observer = traced
        payload = json.loads(
            perfetto_json(observer.collector, observer.sampler, chaos=report.chaos)
        )
        events = payload["traceEvents"]
        assert payload["otherData"]["trace_schema"] == 1
        names = {e.get("name") for e in events}
        # Per-replica process tracks plus the synthetic fleet track.
        process_names = {
            e["args"]["name"] for e in events if e.get("name") == "process_name"
        }
        assert {"replica 0", "replica 1", "fleet"} <= process_names
        assert {"enqueue", "prefill", "decode", "finish", "crash", "restart"} <= names
        # Complete spans carry durations; instants carry a scope.
        for e in events:
            if e.get("ph") == "X":
                assert e["dur"] >= 0
            if e.get("ph") == "i":
                assert e["s"] in ("t", "p")
        # Chaos incident windows land on the fleet track.
        incidents = [e for e in events if e.get("name") == "incident"]
        assert incidents and all(e["pid"] == FLEET_PID for e in incidents)
        # Gauge counters are present for both replicas.
        counter_pids = {e["pid"] for e in events if e.get("ph") == "C"}
        assert {0, 1, FLEET_PID} <= counter_pids

    def test_fleet_track_mapping(self, traced):
        _report, observer = traced
        crash = observer.collector.of_kind("crash")[0]
        assert crash.replica != FLEET_TRACK  # crashes belong to a replica
        payload = perfetto_trace(observer.collector)
        (ev,) = [e for e in payload["traceEvents"] if e.get("name") == "crash"]
        assert ev["pid"] == crash.replica


class TestSamplerUnderChaos:
    """Satellite: crash-window samples tell the failure story."""

    @pytest.fixture(scope="class")
    def samples(self):
        _report, observer = run_traced(
            _spec(**_CHAOS_KW, obs=ObsSpec(trace=True, sample_every_s=0.5))
        )
        return observer.sampler.samples

    def test_dead_replica_reads_empty_and_failed(self, samples):
        window = [s for s in samples if 4.0 < s.t < 6.0]
        assert window, "no samples landed in the crash window"
        for s in window:
            row = s.row(1)
            assert row[1] == "failed"
            assert row[2] == 0 and row[3] == 0  # waiting, running
            assert s.fleet[0] == 1 and s.fleet[3] == 1  # live, failed

    def test_survivor_backlog_rises(self, samples):
        pre = max((s for s in samples if s.t <= 4.0), key=lambda s: s.t)
        window = [s for s in samples if 4.0 < s.t < 6.0]
        pre_backlog = pre.row(0)[2] + pre.row(0)[3]
        peak = max(s.row(0)[2] + s.row(0)[3] for s in window)
        assert peak > pre_backlog

    def test_recovery_restores_fleet_counts(self, samples):
        post = [s for s in samples if s.t >= 6.5]
        assert post and all(s.fleet[0] == 2 and s.fleet[3] == 0 for s in post)


class TestIterationLogWiring:
    def test_solo_observer_attaches_log(self):
        report, observer = run_traced(
            _spec(
                system="adaserve",
                rps=4.0,
                duration_s=6.0,
                obs=ObsSpec(trace=False, iteration_log=True),
            )
        )
        assert observer.collector is None and observer.sampler is None
        log = observer.iteration_logs[0]
        # Not every loop iteration records (drain steps don't), but the
        # bulk of the run must be logged without any manual wiring.
        assert 0 < len(log) <= report.iterations
        assert log.of_kind("speculative")

    def test_crash_replacement_appends_to_same_log(self):
        # AdaServe is the one scheduler that records iteration telemetry.
        kw = dict(_CHAOS_KW, system="adaserve")
        _report, observer = run_traced(
            _spec(**kw, obs=ObsSpec(trace=True, iteration_log=True))
        )
        # Replica 1's log spans its pre-crash and replacement engines:
        # records exist both before the crash (t < 4) and after the
        # restart (t > 6), keyed by the one replica index.
        times = [rec.time_s for rec in observer.iteration_logs[1].records]
        assert any(t < 4.0 for t in times)
        assert any(t > 6.0 for t in times)

    def test_series_export_includes_logs(self):
        _report, observer = run_traced(
            _spec(
                system="adaserve",
                rps=4.0,
                duration_s=6.0,
                obs=ObsSpec(trace=True, iteration_log=True),
            )
        )
        payload = series_to_dict(observer)
        assert payload["samples"]
        assert payload["iteration_logs"]["0"]
        rec = payload["iteration_logs"]["0"][0]
        assert {"time_s", "kind", "batch_size", "latency_s"} <= rec.keys()


class TestSlowestRequests:
    @staticmethod
    def _finished(rid: int, arrival: float, finish: float):
        from repro.serving.request import RequestState

        req = make_request(rid=rid, arrival=arrival)
        req.finish_time = finish
        req.state = RequestState.FINISHED
        return req

    def test_unfinished_rank_first(self):
        fast = self._finished(1, 0.0, 1.0)
        slow = self._finished(2, 0.0, 9.0)
        stuck = make_request(rid=3, arrival=5.0)
        ranked = slowest_requests([fast, slow, stuck], n=2)
        assert [r.rid for r in ranked] == [3, 2]

    def test_table_formats(self):
        req = self._finished(1, 0.0, 2.0)
        plain = format_slowest_table([req])
        md = format_slowest_table([req], markdown=True)
        assert "rid" in plain and "finished" in plain
        assert md.startswith("| rid |")
        assert format_slowest_table([]) == "(no requests)"


class TestTraceCLI:
    ARGS: ClassVar[list[str]] = [
        "trace",
        "--replicas", "2",
        "--faults", "crash:at=4,replica=1,restart=2",
        "--duration", "10",
        "--rps", "14",
        "--system", "vllm",
        "--seed", "0",
    ]

    def test_end_to_end_and_deterministic(self, tmp_path, capsys):
        from repro.cli import main

        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            series = tmp_path / f"series-{name}"
            argv = [*self.ARGS, 
                "--out", str(out),
                "--series-out", str(series),
                "--iteration-log",
            ]
            assert main(argv) == 0
            outs.append((out.read_bytes(), series.read_bytes()))
        assert outs[0] == outs[1]
        payload = json.loads(outs[0][0])
        assert any(
            e.get("name") == "incident" for e in payload["traceEvents"]
        )

    def test_markdown_table_on_stdout(self, tmp_path, capsys):
        from repro.cli import main

        argv = [*self.ARGS, "--markdown", "--out", str(tmp_path / "t.json")]
        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert stdout.lstrip().startswith("| rid |")
