"""Property-based tests on the serving layer: whole-simulation invariants.

Hypothesis generates small workloads and scheduler choices; every run
must satisfy the conservation/monotonicity invariants regardless of the
policy under test.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import (
    FastServeScheduler,
    SarathiScheduler,
    SmartSpecScheduler,
    VLLMScheduler,
    VLLMSpecScheduler,
    VTCScheduler,
)
from repro.core.scheduler import AdaServeScheduler
from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS
from repro.model.pair import ModelPair
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import KVCacheManager
from repro.serving.request import Request
from repro.serving.server import ServingSimulator

_PAIR = ModelPair.build(vocab_size=2000, seed=77, alignment=0.85, predictability=0.7)
_TARGET_RL = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
_DRAFT_RL = RooflineModel(DEPLOYMENT_PRESETS["llama1b-1xa100"])

_SCHEDULERS = {
    "vllm": VLLMScheduler,
    "sarathi": SarathiScheduler,
    "fastserve": FastServeScheduler,
    "vtc": VTCScheduler,
    "spec": lambda e: VLLMSpecScheduler(e, spec_len=4),
    "smartspec": lambda e: SmartSpecScheduler(e, k_max=4),
    "adaserve": AdaServeScheduler,
}

_request_strategy = st.builds(
    dict,
    arrival=st.floats(0.0, 3.0),
    prompt=st.integers(5, 200),
    out=st.integers(1, 25),
    slo=st.sampled_from([0.02, 0.03, 0.05, 0.15]),
    pred=st.sampled_from([0.6, 0.75, 0.85]),
)


def _build(requests_spec):
    return [
        Request(
            rid=i,
            category="strict" if spec["slo"] <= 0.03 else "lax",
            arrival_time=spec["arrival"],
            prompt_len=spec["prompt"],
            max_new_tokens=spec["out"],
            tpot_slo=spec["slo"],
            predictability=spec["pred"],
            priority=0 if spec["slo"] <= 0.03 else 1,
        )
        for i, spec in enumerate(requests_spec)
    ]


@given(
    st.sampled_from(sorted(_SCHEDULERS)),
    st.lists(_request_strategy, min_size=1, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_simulation_invariants(policy, requests_spec):
    requests = _build(requests_spec)
    engine = SimulatedEngine(
        _PAIR, _TARGET_RL, _DRAFT_RL, KVCacheManager(150_000), seed=77
    )
    scheduler = _SCHEDULERS[policy](engine)
    report = ServingSimulator(engine, scheduler, requests, max_sim_time_s=120.0).run()
    m = report.metrics

    # Conservation: every request accounted for exactly once.
    assert m.num_requests == len(requests)
    seen = sorted(r.rid for r in report.requests)
    assert seen == list(range(len(requests)))

    # All work completes (workload is tiny relative to the horizon).
    assert m.num_finished == len(requests)

    for req in report.requests:
        # Token conservation.
        assert req.n_generated == req.max_new_tokens
        # Causality: decode starts after arrival; tokens after decode start.
        assert req.decode_start is not None
        assert req.decode_start >= req.arrival_time
        assert req.first_token_time >= req.decode_start
        assert req.last_token_time >= req.first_token_time
        assert req.finish_time == req.last_token_time
        # Speculation accounting is consistent.
        assert 0 <= req.accepted_draft_tokens <= req.n_generated

    # Attained is a subset of finished; tokens split consistently.
    assert m.num_attained <= m.num_finished
    assert m.attained_tokens <= m.total_tokens
    assert m.goodput <= m.throughput + 1e-9

    # KV fully released after the run.
    assert engine.kv.used_blocks == 0

    # Busy time never exceeds simulated span (single device).
    assert engine.phase_times.total <= report.sim_time_s + 1e-6
