"""Tests for the declarative ExperimentSpec and grid expansion."""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import ExperimentConfig
from repro.analysis.spec import (
    ClusterSpec,
    ExperimentSpec,
    SystemSpec,
    WorkloadSpec,
    apply_axis,
    expand_grid,
    parse_grid_axis,
)
from repro.registry import SpecError, UnknownParamError

#: Every legacy system name maps to its explicit parameterized spelling.
LEGACY_EQUIVALENTS = {
    "adaserve": "adaserve:n_max=16,slack=1.5,margin=0.9,chunk=256",
    "vllm": "vllm",
    "sarathi": "sarathi:chunk=256",
    "vllm-spec-4": "vllm-spec:k=4",
    "vllm-spec-6": "vllm-spec:k=6",
    "vllm-spec-8": "vllm-spec:k=8",
    "priority": "priority:cap=8",
    "fastserve": "fastserve",
    "vtc": "vtc",
    "smartspec": "smartspec:k_max=8",
}


def _spec(**overrides) -> ExperimentSpec:
    base = dict(
        model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=7, trace="steady"
    )
    base.update(overrides)
    return ExperimentSpec.create(**base)


class TestCanonicalization:
    @pytest.mark.parametrize("legacy,parameterized", sorted(LEGACY_EQUIVALENTS.items()))
    def test_alias_cache_key_byte_identical_to_parameterized_form(
        self, legacy, parameterized
    ):
        a, b = _spec(system=legacy), _spec(system=parameterized)
        assert a == b
        assert a.digest() == b.digest()
        canonical_a = json.dumps(a.to_dict(), sort_keys=True, separators=(",", ":"))
        canonical_b = json.dumps(b.to_dict(), sort_keys=True, separators=(",", ":"))
        assert canonical_a.encode() == canonical_b.encode()  # byte-identical

    def test_distinct_parameters_fork_the_key(self):
        assert _spec(system="vllm-spec:k=6").digest() != _spec(system="vllm-spec:k=8").digest()
        assert _spec(system="adaserve:n_max=4").digest() != _spec(system="adaserve").digest()

    def test_trace_params_are_canonical_and_keyed(self):
        default = _spec(trace="diurnal")
        spelled = _spec(trace="diurnal:peak_to_trough=4.0")
        tuned = _spec(trace="diurnal:peak_to_trough=6")
        assert default == spelled
        assert default.workload.trace == "diurnal"
        assert tuned.workload.trace == "diurnal:peak_to_trough=6.0"
        assert tuned.digest() != default.digest()

    def test_router_params_are_canonical_and_keyed(self):
        default = _spec(replicas=3, router="affinity")
        spelled = _spec(replicas=3, router="affinity:reserve=auto")
        pinned = _spec(replicas=3, router="affinity:reserve=0.4")
        assert default == spelled
        assert pinned.cluster.router == "affinity:reserve=0.4"
        assert pinned.digest() != default.digest()

    def test_spec_strings_case_insensitive(self):
        assert _spec(system="VLLM") == _spec(system="vllm")


class TestShape:
    def test_to_dict_is_nested_and_json_serializable(self):
        d = _spec(replicas=2, router="p2c").to_dict()
        assert set(d) == {"workload", "system", "cluster"}
        assert d["system"]["name"] == "vllm"
        assert d["workload"]["rps"] == 2.0
        assert d["cluster"]["router"] == "p2c"
        json.dumps(d)

    def test_from_dict_round_trips(self):
        for spec in (
            _spec(),
            _spec(mix={"coding": 0.7, "chatbot": 0.3}),
            _spec(replicas=2, router="affinity:reserve=0.4", autoscale={"max_replicas": 6}),
        ):
            assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_flat_accessors_read_through_sections(self):
        spec = _spec(replicas=2, router="p2c", slo_scale=1.5)
        assert spec.model == "llama70b"
        assert spec.system_name == "vllm"
        assert (spec.rps, spec.duration_s, spec.seed) == (2.0, 4.0, 7)
        assert (spec.trace, spec.slo_scale) == ("steady", 1.5)
        assert (spec.replicas, spec.router) == (2, "p2c")
        assert spec.max_sim_time_s == 1800.0
        assert spec.is_cluster

    def test_sections_constructible_directly(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(trace="steady", rps=2.0, duration_s=4.0, seed=7),
            system=SystemSpec(name="vllm-spec-8", model="llama70b"),
            cluster=ClusterSpec(),
        )
        assert spec == _spec(system="vllm-spec:k=8")

    def test_with_replica_touches_only_the_workload_seed(self):
        spec = _spec()
        derived = spec.with_replica(2)
        assert derived.system == spec.system and derived.cluster == spec.cluster
        assert derived.workload.seed != spec.workload.seed
        assert derived == spec.with_replica(2)

    def test_experiment_config_is_an_alias(self):
        assert ExperimentConfig is ExperimentSpec

    def test_create_requires_the_result_determining_core(self):
        # Forgetting the seed must be a loud TypeError, not a silent
        # seed=0 run (the old flat create's contract).
        with pytest.raises(TypeError):
            ExperimentSpec.create(model="llama70b", system="vllm", rps=2.0, duration_s=4.0)
        with pytest.raises(TypeError):
            ExperimentSpec.create(system="vllm", rps=2.0, duration_s=4.0, seed=0)


class TestValidation:
    def test_rejects_nonpositive_workload_knobs(self):
        with pytest.raises(ValueError):
            _spec(rps=0.0)
        with pytest.raises(ValueError):
            _spec(duration_s=-1.0)
        with pytest.raises(ValueError):
            _spec(slo_scale=0.0)
        with pytest.raises(ValueError):
            _spec(max_sim_time_s=0.0)

    def test_rejects_non_finite_workload_knobs(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                _spec(rps=bad)
            with pytest.raises(ValueError):
                _spec(duration_s=bad)
            with pytest.raises(ValueError):
                _spec(slo_scale=bad)

    def test_from_dict_rejects_flat_v2_shapes(self):
        with pytest.raises(SpecError, match="workload, system, cluster"):
            ExperimentSpec.from_dict(
                {"model": "qwen32b", "system": "vllm", "rps": 8.0, "seed": 5}
            )

    def test_rejects_unknown_components(self):
        with pytest.raises(ValueError):
            _spec(system="gpt5")
        with pytest.raises(ValueError):
            _spec(trace="sinusoidal")
        with pytest.raises(ValueError):
            _spec(model="llama405b")


class TestGrid:
    def test_parse_grid_axis(self):
        axis = parse_grid_axis("system.k=2,4, 6")
        assert axis.path == "system.k" and axis.values == ("2", "4", "6")

    @pytest.mark.parametrize("bad", ["", "system.k", "=2", "k=2", "system.k="])
    def test_parse_grid_axis_malformed(self, bad):
        with pytest.raises(SpecError):
            parse_grid_axis(bad)

    def test_system_axis_reparameterizes_canonically(self):
        base = _spec(system="vllm-spec")
        cells = expand_grid([base], [parse_grid_axis("system.k=2,4,8")])
        assert [c.system.name for c in cells] == ["vllm-spec:k=2", "vllm-spec", "vllm-spec:k=8"]
        assert len({c.digest() for c in cells}) == 3

    def test_cartesian_product_of_axes(self):
        base = _spec(system="vllm-spec")
        cells = expand_grid(
            [base],
            [parse_grid_axis("system.k=2,4"), parse_grid_axis("workload.rps=1.0,2.0,3.0")],
        )
        assert len(cells) == 6
        assert {(c.system.name, c.rps) for c in cells} == {
            (name, rps)
            for name in ("vllm-spec:k=2", "vllm-spec")
            for rps in (1.0, 2.0, 3.0)
        }

    def test_unknown_param_names_alternatives(self):
        with pytest.raises(UnknownParamError, match="declared parameters"):
            apply_axis(_spec(system="vllm-spec"), "system.q", "3")

    def test_unknown_section_and_field(self):
        with pytest.raises(SpecError, match="sections"):
            apply_axis(_spec(), "bogus.k", "3")
        with pytest.raises(SpecError, match="workload axis"):
            apply_axis(_spec(), "workload.color", "red")

    def test_router_axis_requires_cluster_point(self):
        with pytest.raises(SpecError, match="replicas"):
            apply_axis(_spec(), "router.reserve", "0.4")
        cell = apply_axis(_spec(replicas=3, router="affinity"), "router.reserve", "0.4")
        assert cell.cluster.router == "affinity:reserve=0.4"

    def test_trace_and_cluster_axes(self):
        cell = apply_axis(_spec(trace="diurnal"), "trace.peak_to_trough", "6")
        assert cell.workload.trace == "diurnal:peak_to_trough=6.0"
        cell = apply_axis(_spec(), "cluster.replicas", "4")
        assert cell.cluster.replicas == 4 and cell.is_cluster

    def test_workload_axis_type_error(self):
        with pytest.raises(SpecError, match="expects a"):
            apply_axis(_spec(), "workload.rps", "fast")

    def test_replica_axis_over_autoscaled_spec_reports_ceiling_honestly(self):
        base = _spec(replicas=2, autoscale={})  # ceiling canonicalized to 4
        grown = apply_axis(base, "cluster.replicas", "4")
        assert grown.cluster.replicas == 4
        # Growing past the baked ceiling is a real constraint violation,
        # not an int-parse failure — the autoscaler's error surfaces.
        with pytest.raises(ValueError, match="below"):
            apply_axis(base, "cluster.replicas", "8")
