"""Tests for the deterministic hashing/uniform utilities."""

from __future__ import annotations

import pytest

from repro._rng import MASK64, hash_seed, mix, randint, splitmix64, uniform, uniforms


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_distinct_inputs_distinct_outputs(self):
        outs = {splitmix64(i) for i in range(1000)}
        assert len(outs) == 1000

    def test_stays_in_64_bits(self):
        for x in (0, 1, MASK64, 2**63, 987654321987654321):
            assert 0 <= splitmix64(x) <= MASK64

    def test_avalanche_flips_many_bits(self):
        # Flipping one input bit should change roughly half the output bits.
        a = splitmix64(0x1234)
        b = splitmix64(0x1235)
        assert 16 <= bin(a ^ b).count("1") <= 48


class TestMix:
    def test_order_sensitive(self):
        h1 = mix(mix(0, 1), 2)
        h2 = mix(mix(0, 2), 1)
        assert h1 != h2

    def test_token_sensitivity(self):
        base = hash_seed(1, 2)
        assert mix(base, 5) != mix(base, 6)

    def test_hash_seed_varies_with_parts(self):
        assert hash_seed(1) != hash_seed(2)
        assert hash_seed(1, 2) != hash_seed(2, 1)


class TestUniform:
    def test_range(self):
        for salt in range(200):
            u = uniform(123456789, salt)
            assert 0.0 <= u < 1.0

    def test_deterministic(self):
        assert uniform(42, 7) == uniform(42, 7)

    def test_mean_near_half(self):
        vals = [uniform(hash_seed(9, i), 3) for i in range(4000)]
        mean = sum(vals) / len(vals)
        assert abs(mean - 0.5) < 0.03

    def test_uniforms_matches_count(self):
        assert len(uniforms(5, 6, 17)) == 17

    def test_uniforms_values_in_range(self):
        assert all(0.0 <= u < 1.0 for u in uniforms(5, 6, 100))

    def test_uniforms_not_constant(self):
        vals = uniforms(5, 6, 50)
        assert len(set(vals)) > 40

    def test_different_salts_independent(self):
        a = uniforms(77, 1, 100)
        b = uniforms(77, 2, 100)
        assert a != b


class TestRandint:
    def test_in_range(self):
        for salt in range(300):
            v = randint(99, salt, 10, 20)
            assert 10 <= v < 20

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            randint(1, 2, 5, 5)

    def test_covers_range(self):
        seen = {randint(3, s, 0, 8) for s in range(200)}
        assert seen == set(range(8))
