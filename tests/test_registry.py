"""Tests for the typed component registries and the spec-string grammar."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harness import SYSTEM_NAMES, build_setup, make_scheduler
from repro.analysis.runner import TRACE_KINDS
from repro.cluster.router import ROUTER_NAMES, make_router
from repro.registry import (
    MODELS,
    ROUTERS,
    SYSTEMS,
    TRACES,
    Param,
    Registry,
    SpecError,
    UnknownComponentError,
    UnknownParamError,
    parse_spec,
)


class TestGrammar:
    def test_bare_name(self):
        assert parse_spec("adaserve") == ("adaserve", {})

    def test_params(self):
        assert parse_spec("vllm-spec:k=8") == ("vllm-spec", {"k": "8"})
        assert parse_spec(" Affinity : reserve=0.4 , x=auto ") == (
            "affinity",
            {"reserve": "0.4", "x": "auto"},
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", ":k=1", "name:", "name:k", "name:k=", "name:=1", "name:k=1,k=2", "name:k=1,,"],
    )
    def test_malformed(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)

    def test_non_string(self):
        with pytest.raises(SpecError):
            parse_spec(42)


class TestParam:
    def test_int_parse_and_format(self):
        p = Param("k", "int", default=4)
        assert p.parse("8") == 8
        assert p.format(8) == "8"
        with pytest.raises(SpecError, match="expects a int"):
            p.parse("eight")

    def test_float_round_trip(self):
        p = Param("x", "float", default=1.0)
        for v in (0.1, 1e-7, 12345.6789, 2.0):
            assert p.parse(p.format(v)) == v

    def test_bool(self):
        p = Param("flag", "bool", default=False)
        assert p.parse("true") is True and p.parse("0") is False
        assert p.format(True) == "true"
        with pytest.raises(SpecError):
            p.parse("yes")

    def test_auto(self):
        p = Param("reserve", "float", default=None, allow_auto=True)
        assert p.parse("auto") is None
        assert p.format(None) == "auto"
        strict = Param("x", "float", default=1.0)
        with pytest.raises(SpecError):
            strict.parse("auto")

    def test_coerce_rejects_fractional_int(self):
        p = Param("k", "int", default=4)
        assert p.coerce(6.0) == 6
        with pytest.raises(SpecError):
            p.coerce(6.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Param("k", "complex")

    def test_bounds_checked_on_parse_and_coerce(self):
        p = Param("k", "int", default=4, minimum=1)
        assert p.parse("1") == 1
        with pytest.raises(SpecError, match=r"in \[1, inf\)"):
            p.parse("0")
        with pytest.raises(SpecError):
            p.coerce(0)
        open_unit = Param(
            "r", "float", default=0.5,
            minimum=0.0, maximum=1.0, exclusive_min=True, exclusive_max=True,
        )
        assert open_unit.parse("0.5") == 0.5
        for bad in ("0", "1", "-0.1", "1.5"):
            with pytest.raises(SpecError, match=r"in \(0, 1\)"):
                open_unit.parse(bad)

    def test_bounds_shown_in_describe(self):
        p = Param("k", "int", default=4, minimum=1, help="speculation length")
        assert p.describe() == "k: int = 4 (in [1, inf)) — speculation length"


class TestScratchRegistry:
    def _registry(self):
        reg = Registry("widget")

        @reg.register(
            "gadget",
            params=[
                Param("size", "int", default=3),
                Param("rate", "float", default=0.5),
                Param("mode", "str", default="fast"),
            ],
            aliases={"gadget-9": {"size": 9}},
        )
        def gadget(size=3, rate=0.5, mode="fast"):
            return (size, rate, mode)

        return reg

    def test_duplicate_registration_rejected(self):
        reg = self._registry()
        with pytest.raises(ValueError, match="duplicate"):
            reg.register("gadget")(lambda: None)
        with pytest.raises(ValueError, match="duplicate"):
            reg.register("gadget-9")(lambda: None)

    def test_alias_resolves_with_bindings(self):
        reg = self._registry()
        resolved = reg.resolve("gadget-9")
        assert resolved.name == "gadget"
        assert resolved.params == {"size": 9, "rate": 0.5, "mode": "fast"}
        assert resolved.canonical == "gadget:size=9"

    def test_alias_binding_cannot_be_overridden(self):
        reg = self._registry()
        with pytest.raises(SpecError, match="fixed"):
            reg.resolve("gadget-9:size=2")
        # Other params remain settable through the alias.
        assert reg.resolve("gadget-9:rate=0.25").params["rate"] == 0.25

    def test_required_param(self):
        reg = Registry("widget")
        reg.register("strict", params=[Param("n", "int")])(lambda n: n)
        with pytest.raises(SpecError, match="requires parameter 'n'"):
            reg.resolve("strict")
        assert reg.create("strict:n=5") == 5

    def test_create_filters_unacceptable_kwargs(self):
        reg = self._registry()
        assert reg.create("gadget", seed=7) == (3, 0.5, "fast")  # seed dropped

    def test_create_call_site_overrides_win(self):
        reg = self._registry()
        assert reg.create("gadget:size=5", size=11)[0] == 11

    def test_canonical_sorts_and_drops_defaults(self):
        reg = self._registry()
        assert reg.canonical("gadget:mode=fast,rate=0.5,size=3") == "gadget"
        assert reg.canonical("gadget:size=7,rate=0.25") == "gadget:rate=0.25,size=7"

    def test_with_params(self):
        reg = self._registry()
        assert reg.with_params("gadget", size=7) == "gadget:size=7"
        assert reg.with_params("gadget:size=7", size="3") == "gadget"
        with pytest.raises(UnknownParamError, match="declared parameters"):
            reg.with_params("gadget", girth=1)

    @settings(max_examples=60, deadline=None)
    @given(
        size=st.integers(-(10**6), 10**6),
        rate=st.floats(allow_nan=False, allow_infinity=False),
        mode=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=12),
    )
    def test_parse_canonical_parse_round_trips(self, size, rate, mode):
        """Property: parse -> canonical string -> parse is a fixed point."""
        reg = self._registry()
        spec = f"gadget:mode={mode},rate={reg.resolve('gadget').component.param('rate').format(rate)},size={size}"
        first = reg.resolve(spec)
        canonical = first.canonical
        second = reg.resolve(canonical)
        assert second.params == first.params
        assert second.canonical == canonical  # idempotent


class TestBuiltinRegistries:
    def test_unknown_name_error_names_alternatives(self):
        with pytest.raises(UnknownComponentError) as exc:
            SYSTEMS.resolve("nonsense")
        message = str(exc.value)
        assert "nonsense" in message and "adaserve" in message and "vllm-spec-8" in message

    def test_unknown_param_error_names_alternatives(self):
        with pytest.raises(UnknownParamError) as exc:
            SYSTEMS.resolve("vllm-spec:q=3")
        message = str(exc.value)
        assert "'q'" in message and "['k']" in message

    def test_error_types_bridge_keyerror_and_valueerror(self):
        for exc_type in (KeyError, ValueError):
            with pytest.raises(exc_type):
                SYSTEMS.resolve("nonsense")
            with pytest.raises(exc_type):
                SYSTEMS.resolve("vllm-spec:q=3")

    def test_legacy_system_names_all_registered(self):
        for name in SYSTEM_NAMES:
            assert name in SYSTEMS, name

    def test_router_and_trace_names_match_registries(self):
        assert ROUTERS.names() == ROUTER_NAMES
        assert set(TRACES.names()) == set(TRACE_KINDS)

    def test_models_registered(self):
        assert MODELS.names() == ("llama70b", "qwen32b")
        assert build_setup("qwen32b", seed=3).seed == 3

    def test_vllm_spec_aliases_canonicalize(self):
        assert SYSTEMS.canonical("vllm-spec-4") == SYSTEMS.canonical("vllm-spec:k=4")
        assert SYSTEMS.canonical("vllm-spec-8") == "vllm-spec:k=8"
        # Spelled-out default collapses to the bare name.
        assert SYSTEMS.canonical("vllm-spec:k=4") == "vllm-spec"

    def test_every_system_component_lists_its_schema(self):
        rows = {row["name"]: row for row in SYSTEMS.describe()}
        assert any("k: int = 4" in p for p in rows["vllm-spec"]["params"])
        assert any(a.startswith("vllm-spec-6") for a in rows["vllm-spec"]["aliases"])
        assert any("n_max" in p for p in rows["adaserve"]["params"])


class TestComponentCreation:
    def test_make_scheduler_parameterized_specs(self):
        engine = build_setup("llama70b").build_engine()
        assert make_scheduler("vllm-spec:k=3", engine).spec_len == 3
        assert make_scheduler("vllm-spec-6", engine).spec_len == 6
        assert make_scheduler("adaserve:n_max=4", engine).n_max == 4
        assert make_scheduler("sarathi:chunk=128", engine).chunk_budget == 128
        assert make_scheduler("priority:cap=2", engine).urgent_batch_cap == 2
        assert make_scheduler("smartspec:k_max=5", engine).k_max == 5

    def test_make_scheduler_overrides_beat_spec(self):
        engine = build_setup("llama70b").build_engine()
        sched = make_scheduler("adaserve:n_max=4", engine, n_max=9)
        assert sched.n_max == 9

    def test_make_router_parameterized_specs(self):
        assert make_router("affinity:reserve=0.3").reserved_fraction == 0.3
        assert make_router("affinity:reserve=auto").reserved_fraction is None
        assert make_router("p2c", seed=11).seed == 11
        # Policies without a seed parameter silently drop the wiring kwarg.
        make_router("round-robin", seed=11)
        make_router("least-loaded", seed=11)

    def test_invalid_param_value_surfaces(self):
        with pytest.raises(SpecError):
            make_router("affinity:reserve=wide")

    def test_out_of_range_values_fail_at_resolution(self):
        with pytest.raises(SpecError, match="must be in"):
            SYSTEMS.resolve("vllm-spec:k=0")
        with pytest.raises(SpecError, match="must be in"):
            ROUTERS.resolve("affinity:reserve=1.5")
        with pytest.raises(SpecError, match="must be in"):
            TRACES.resolve("diurnal:peak_to_trough=0.5")
