"""Tests for the SLO accounting math (§3)."""

from __future__ import annotations

import pytest

from repro.core.slo import (
    SLOClass,
    average_tpot,
    capped_requirement,
    is_on_track,
    min_accept_requirement,
)


class TestSLOClass:
    def test_valid(self):
        assert SLOClass("chat", 0.05).tpot_s == 0.05

    def test_invalid(self):
        with pytest.raises(ValueError):
            SLOClass("bad", 0.0)


class TestRequirement:
    def test_fresh_request_needs_one_iteration_worth(self):
        # No history: A = t_spec / tpot.
        a = min_accept_requirement(0.0, 0, 0.030, 0.030)
        assert a == pytest.approx(1.0)

    def test_behind_schedule_needs_more(self):
        # 100ms elapsed, 1 token done, 30ms iteration, 30ms SLO:
        # (0.1 + 0.03)/0.03 - 1 = 3.33
        a = min_accept_requirement(0.100, 1, 0.030, 0.030)
        assert a == pytest.approx(13 / 3 - 1)

    def test_ahead_of_schedule_negative(self):
        a = min_accept_requirement(0.010, 5, 0.030, 0.030)
        assert a < 0

    def test_scales_inverse_with_slo(self):
        tight = min_accept_requirement(0.1, 0, 0.03, 0.020)
        loose = min_accept_requirement(0.1, 0, 0.03, 0.150)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ValueError):
            min_accept_requirement(0.1, 0, 0.03, 0.0)
        with pytest.raises(ValueError):
            min_accept_requirement(-0.1, 0, 0.03, 0.05)

    def test_satisfying_requirement_attains_slo(self):
        # If exactly A(r) tokens are accepted, the post-iteration average
        # TPOT equals the SLO.
        elapsed, done, t_spec, slo = 0.20, 3, 0.04, 0.05
        a = min_accept_requirement(elapsed, done, t_spec, slo)
        new_avg = (elapsed + t_spec) / (done + a)
        assert new_avg == pytest.approx(slo)


class TestCap:
    def test_cap_applies(self):
        assert capped_requirement(10.0, 4) == 5.0

    def test_no_cap_when_small(self):
        assert capped_requirement(2.0, 4) == 2.0

    def test_negative_passthrough(self):
        assert capped_requirement(-1.0, 4) == -1.0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            capped_requirement(1.0, -1)


class TestTracking:
    def test_on_track_no_tokens(self):
        assert is_on_track(1.0, 0, 0.05)

    def test_on_track_boundary(self):
        assert is_on_track(0.10, 2, 0.05)
        assert not is_on_track(0.101, 2, 0.05)

    def test_average_tpot(self):
        assert average_tpot(0.5, 10) == pytest.approx(0.05)
        assert average_tpot(0.5, 0) == float("inf")
