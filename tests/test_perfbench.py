"""Unit tests for the perf-tracking subsystem (repro.perfbench).

The suite execution itself is covered by the benchmark smoke job (it
runs real simulations); here we pin the cheap pure parts: suite
composition, the stable result schema, and the baseline comparison
logic — perf regressions warn, fixed-seed digest divergence errors.
"""

from __future__ import annotations

from repro.perfbench import build_suite, compare_to_baseline, latest_baseline
from repro.perfbench.suite import BENCH_SCHEMA_VERSION


def _result(names_and_rates, suite="full", digests=None):
    digests = digests or {}
    return {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "scenarios": [
            {"name": name, "iters_per_s": rate, **digests.get(name, {})}
            for name, rate in names_and_rates
        ],
        "aggregate": {
            "iters_per_s": sum(rate for _, rate in names_and_rates)
            / max(1, len(names_and_rates))
        },
    }


class TestSuiteComposition:
    def test_standard_scenarios(self):
        suite = build_suite(quick=False)
        assert [s.name for s in suite] == [
            "solo-adaserve",
            "fleet-4r",
            "sessions-prefix",
            "chaos-churn",
            "sweep-12pt",
        ]
        by_name = {s.name: s for s in suite}
        assert len(by_name["sweep-12pt"].specs) == 12
        assert by_name["fleet-4r"].specs[0].cluster.replicas == 4
        assert by_name["sessions-prefix"].specs[0].system.prefix_cache

    def test_chaos_scenario_declares_faults(self):
        by_name = {s.name: s for s in build_suite(quick=True)}
        spec = by_name["chaos-churn"].specs[0]
        assert spec.chaos.enabled
        assert spec.is_cluster
        kinds = [f.partition(":")[0] for f in spec.chaos.faults]
        assert kinds == ["crash", "straggler"]
        # Fault times must sit inside the quick trace so quick and full
        # runs exercise the same chaos path.
        assert all("at=" in f for f in spec.chaos.faults)

    def test_quick_uses_same_scenarios_shorter_traces(self):
        full = build_suite(quick=False)
        quick = build_suite(quick=True)
        assert [s.name for s in quick] == [s.name for s in full]
        for fs, qs in zip(full, quick):
            assert len(fs.specs) == len(qs.specs)
            for f, q in zip(fs.specs, qs.specs):
                assert q.workload.duration_s < f.workload.duration_s


class TestBaselineComparison:
    def test_no_warning_when_faster(self):
        current = _result([("a", 200.0), ("b", 300.0)])
        baseline = _result([("a", 100.0), ("b", 150.0)])
        summary, warnings, errors = compare_to_baseline(current, baseline)
        assert summary["comparable"]
        assert warnings == []
        assert errors == []
        assert summary["aggregate"]["speedup"] == 2.0
        assert summary["per_scenario"]["a"]["speedup"] == 2.0

    def test_warns_on_30_percent_drop(self):
        current = _result([("a", 60.0)])
        baseline = _result([("a", 100.0)])
        _, warnings, errors = compare_to_baseline(current, baseline)
        assert any("dropped" in w for w in warnings)
        assert errors == []

    def test_no_warning_within_threshold(self):
        current = _result([("a", 80.0)])
        baseline = _result([("a", 100.0)])
        _, warnings, _ = compare_to_baseline(current, baseline)
        assert warnings == []

    def test_suite_mismatch_is_flagged_but_compared(self):
        current = _result([("a", 100.0)], suite="quick")
        baseline = _result([("a", 100.0)], suite="full")
        summary, warnings, _ = compare_to_baseline(current, baseline)
        assert summary["comparable"]
        assert any("suite" in w for w in warnings)

    def test_embedded_sibling_suite_is_preferred(self):
        current = _result([("a", 100.0)], suite="quick")
        baseline = _result([("a", 400.0)], suite="full")
        baseline["quick"] = _result([("a", 100.0)], suite="quick")
        summary, warnings, _ = compare_to_baseline(current, baseline)
        assert warnings == []  # compared against the embedded quick run
        assert summary["per_scenario"]["a"]["speedup"] == 1.0

    def test_schema_mismatch_skips_comparison(self):
        current = _result([("a", 100.0)])
        baseline = _result([("a", 100.0)])
        baseline["bench_schema"] = -1
        summary, warnings, errors = compare_to_baseline(current, baseline)
        assert not summary["comparable"]
        assert warnings
        assert errors == []

    def test_unknown_scenarios_are_ignored(self):
        current = _result([("new-scenario", 10.0)])
        baseline = _result([("old-scenario", 99.0)])
        summary, warnings, errors = compare_to_baseline(current, baseline)
        assert summary["per_scenario"] == {}
        assert errors == []


class TestDigestGate:
    def test_matching_digests_pass(self):
        d = {"a": {"digest": "sha256:aaa"}}
        current = _result([("a", 100.0)], digests=d)
        baseline = _result([("a", 100.0)], digests=d)
        _, _, errors = compare_to_baseline(current, baseline)
        assert errors == []

    def test_diverged_digest_is_hard_error(self):
        current = _result([("a", 100.0)], digests={"a": {"digest": "sha256:aaa"}})
        baseline = _result([("a", 100.0)], digests={"a": {"digest": "sha256:bbb"}})
        _, warnings, errors = compare_to_baseline(current, baseline)
        assert len(errors) == 1
        assert "digest" in errors[0]
        assert warnings == []

    def test_digest_checked_against_embedded_sibling_suite(self):
        current = _result(
            [("a", 100.0)], suite="quick", digests={"a": {"digest": "sha256:aaa"}}
        )
        baseline = _result([("a", 100.0)], suite="full")
        baseline["quick"] = _result(
            [("a", 100.0)], suite="quick", digests={"a": {"digest": "sha256:bbb"}}
        )
        _, _, errors = compare_to_baseline(current, baseline)
        assert len(errors) == 1

    def test_cross_suite_digests_not_compared(self):
        # quick vs full traces legitimately differ; no determinism claim.
        current = _result(
            [("a", 100.0)], suite="quick", digests={"a": {"digest": "sha256:aaa"}}
        )
        baseline = _result(
            [("a", 100.0)], suite="full", digests={"a": {"digest": "sha256:bbb"}}
        )
        _, warnings, errors = compare_to_baseline(current, baseline)
        assert errors == []
        assert any("suite" in w for w in warnings)

    def test_scenario_missing_from_baseline_skipped(self):
        current = _result([("new", 100.0)], digests={"new": {"digest": "sha256:aaa"}})
        baseline = _result([("old", 100.0)], digests={"old": {"digest": "sha256:bbb"}})
        _, _, errors = compare_to_baseline(current, baseline)
        assert errors == []


class TestLatestBaseline:
    def test_picks_highest_pr_number(self, tmp_path):
        (tmp_path / "BENCH_PR5.json").write_text("{}")
        (tmp_path / "BENCH_PR12.json").write_text("{}")
        (tmp_path / "BENCH_PR6.json").write_text("{}")
        assert latest_baseline(tmp_path).name == "BENCH_PR12.json"

    def test_ignores_non_matching_names(self, tmp_path):
        (tmp_path / "BENCH_PRx.json").write_text("{}")
        (tmp_path / "BENCH_PR.json").write_text("{}")
        assert latest_baseline(tmp_path) is None

    def test_empty_directory(self, tmp_path):
        assert latest_baseline(tmp_path) is None
