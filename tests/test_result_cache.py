"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

from repro.analysis.cache import (
    SCHEMA_VERSION,
    ResultCache,
    config_key,
    default_cache_dir,
)
from repro.analysis.runner import ExperimentConfig


def _config(**overrides) -> ExperimentConfig:
    base = dict(
        model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=7, trace="steady"
    )
    base.update(overrides)
    return ExperimentConfig.create(**base)


class TestKey:
    def test_stable_across_instances(self):
        assert _config().digest() == _config().digest()
        assert config_key(_config()) == config_key(_config().to_dict())

    def test_seed_is_part_of_the_key(self):
        assert _config(seed=7).digest() != _config(seed=8).digest()

    def test_trace_kind_is_part_of_the_key(self):
        assert _config(trace="steady").digest() != _config(trace="bursty").digest()

    def test_every_field_reaches_the_key(self):
        base = _config().digest()
        assert _config(rps=2.5).digest() != base
        assert _config(duration_s=5.0).digest() != base
        assert _config(slo_scale=2.0).digest() != base
        assert _config(system="sarathi").digest() != base
        assert _config(max_sim_time_s=60.0).digest() != base

    def test_code_fingerprint_is_part_of_the_key(self, monkeypatch):
        from repro.analysis import cache as cache_mod

        base = _config().digest()
        assert cache_mod.code_fingerprint()  # computed and non-empty
        monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT", "simulated-code-change")
        assert _config().digest() != base

    def test_mix_is_canonicalized(self):
        a = _config(mix={"chatbot": 0.5, "coding": 0.5})
        b = _config(mix={"coding": 0.5, "chatbot": 0.5})
        assert a.digest() == b.digest()
        assert a.digest() != _config(mix={"chatbot": 0.4, "coding": 0.6}).digest()


class TestRoundTrip:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_config()) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = {"scheduler": "vLLM", "metrics": {"goodput": 1.0}}
        path = cache.put(_config(), report)
        assert path.is_file()
        record = cache.get(_config())
        assert record is not None
        assert record["schema"] == SCHEMA_VERSION
        assert record["report"] == report
        assert record["config"] == _config().to_dict()
        assert record["key"] == _config().digest()
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_get_is_keyed_not_positional(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_config(seed=1), {"r": 1})
        assert cache.get(_config(seed=2)) is None
        assert cache.get(_config(seed=1))["report"] == {"r": 1}


class TestInvalidation:
    def test_stale_schema_version_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_config(), {"r": 1})
        path = cache.path_for(_config())
        record = json.loads(path.read_text())
        record["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(record))
        assert cache.get(_config()) is None
        assert not path.exists()
        assert cache.stats.invalidated == 1
        assert cache.stats.misses == 1

    def test_corrupted_record_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_config(), {"r": 1})
        path = cache.path_for(_config())
        path.write_text("{truncated-garbage")
        assert cache.get(_config()) is None
        assert not path.exists()
        # The slot is usable again after recovery.
        cache.put(_config(), {"r": 2})
        assert cache.get(_config())["report"] == {"r": 2}

    def test_non_dict_record_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(_config())
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.get(_config()) is None
        assert cache.stats.invalidated == 1


class TestPrune:
    def test_prune_removes_stranded_and_keeps_current(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_config(), {"r": 1})
        keep = cache.path_for(_config())
        stranded = tmp_path / "00" / ("0" * 64 + ".json")
        stranded.parent.mkdir(parents=True)
        stale = json.loads(keep.read_text())
        stale["code"] = "previous-simulator-version"
        stranded.write_text(json.dumps(stale))
        garbage = tmp_path / "00" / "junk.json"
        garbage.write_text("{not json")
        orphan_tmp = keep.with_name(f"{keep.name}.tmp.9999")
        orphan_tmp.write_text("partial write")
        assert cache.prune() == 3
        assert keep.exists()
        assert not stranded.exists()
        assert not garbage.exists()
        assert not orphan_tmp.exists()
        assert cache.get(_config())["report"] == {"r": 1}

    def test_prune_missing_root(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").prune() == 0


class TestStats:
    def test_summary_line(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get(_config())
        cache.put(_config(), {"r": 1})
        cache.get(_config())
        assert cache.stats.summary() == "cache: 1 hits, 1 misses, 1 stored"


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert str(default_cache_dir()) == ".repro-cache"
