"""Bit-identity of the vectorized batch generator (repro.model.batchgen).

``prefetch`` warms the shared distribution memos with numpy-generated
rows; every cached entry must be *exactly* what the scalar path would
have produced — token ids and IEEE-754 probability bits alike.  Each
test captures the vector-generated distributions, clears the shared
memos, regenerates the same queries through the scalar path, and
compares bit for bit (including the duplicate-draw repair path).
"""

from __future__ import annotations

import pytest

from repro.model import batchgen
from repro.model.pair import ModelPair
from repro.model.stochastic_lm import StochasticLM, TokenDistribution
from repro.model.vocab import Vocabulary

pytestmark = pytest.mark.skipif(
    not batchgen.AVAILABLE, reason="numpy unavailable; prefetch is a no-op"
)


def _ctxs(lm, tag: int, n: int) -> list[int]:
    return [lm.context_of([tag, i]) for i in range(n)]


def _assert_identical(a: TokenDistribution, b: TokenDistribution) -> None:
    assert a.token_ids == b.token_ids
    assert a.probs == b.probs  # exact float equality


class TestTargetPrefetch:
    @pytest.mark.parametrize("center", [None, 0.62, 0.80])
    def test_matches_scalar(self, center):
        pair = ModelPair.build(seed=1)
        ctxs = _ctxs(pair.target, 11, 64)
        pair.target.prefetch([(c, center) for c in ctxs])
        vec = [pair.target.distribution(c, center) for c in ctxs]
        pair.clear_caches()
        for c, v in zip(ctxs, vec):
            _assert_identical(v, pair.target.distribution(c, center))

    def test_small_batches_are_no_ops(self):
        pair = ModelPair.build(seed=2)
        pair.clear_caches()
        ctxs = _ctxs(pair.target, 3, 4)
        pair.target.prefetch([(c, None) for c in ctxs])
        assert all(c not in pair.target._cache for c in ctxs)


class TestDraftPrefetch:
    @pytest.mark.parametrize("center", [None, 0.7])
    def test_matches_scalar(self, center):
        pair = ModelPair.build(seed=3, alignment=0.85)
        ctxs = _ctxs(pair.target, 17, 80)
        pair.draft.prefetch([(c, center) for c in ctxs])
        vec_draft = [pair.draft.distribution(c, center) for c in ctxs]
        vec_tgt = [pair.target.distribution(c, center) for c in ctxs]
        pair.clear_caches()
        for c, vd, vt in zip(ctxs, vec_draft, vec_tgt):
            _assert_identical(vd, pair.draft.distribution(c, center))
            # The target memo was warmed with identical rows too.
            _assert_identical(vt, pair.target.distribution(c, center))

    def test_perfectly_aligned_draft_shares_target(self):
        pair = ModelPair.build(seed=4, alignment=1.0)
        pair.clear_caches()
        ctxs = _ctxs(pair.target, 23, 32)
        pair.draft.prefetch([(c, None) for c in ctxs])
        for c in ctxs:
            assert pair.draft.distribution(c) is pair.target.distribution(c)

    def test_mixed_centers_in_one_batch(self):
        pair = ModelPair.build(seed=5)
        ctxs = _ctxs(pair.target, 29, 48)
        centers = [None, 0.62, 0.70, 0.80]
        items = [(c, centers[i % 4]) for i, c in enumerate(ctxs)]
        pair.draft.prefetch(items)
        vec = [pair.draft.distribution(c, center) for c, center in items]
        pair.clear_caches()
        for (c, center), v in zip(items, vec):
            _assert_identical(v, pair.draft.distribution(c, center))


class TestDuplicateRepair:
    def test_collided_rows_match_scalar(self):
        # A tiny vocabulary forces id collisions in nearly every row,
        # exercising the scalar repair path inside the vector kernel.
        lm = StochasticLM(Vocabulary(40), seed=6)
        ctxs = [lm.context_of([31, i]) for i in range(64)]
        lm.prefetch([(c, None) for c in ctxs])
        vec = [lm.distribution(c) for c in ctxs]
        lm.clear_cache()
        for c, v in zip(ctxs, vec):
            ref = lm.distribution(c)
            _assert_identical(v, ref)
            assert len(set(v.token_ids)) == len(v.token_ids)


class TestTokenDistribution:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TokenDistribution((1, 2), (0.5,))

    def test_equality_and_hash(self):
        a = TokenDistribution((1, 2), (0.8, 0.2))
        b = TokenDistribution((1, 2), (0.8, 0.2))
        assert a == b and hash(a) == hash(b)
        assert a != TokenDistribution((1, 3), (0.8, 0.2))
