"""Tests for GPU/model specifications and deployments (Table 1)."""

from __future__ import annotations

import pytest

from repro.hardware.spec import (
    DEPLOYMENT_PRESETS,
    GPU_PRESETS,
    MODEL_PRESETS,
    DeploymentSpec,
    GPUSpec,
    ModelSpec,
)


class TestGPUSpec:
    def test_presets_valid(self):
        for spec in GPU_PRESETS.values():
            assert spec.flops > 0 and spec.mem_bandwidth > 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", flops=0, mem_bandwidth=1, mem_bytes=1)

    def test_h100_faster_than_a100(self):
        assert GPU_PRESETS["h100-80g"].flops > GPU_PRESETS["a100-80g"].flops
        assert GPU_PRESETS["h100-80g"].mem_bandwidth > GPU_PRESETS["a100-80g"].mem_bandwidth


class TestModelSpec:
    def test_weight_bytes_fp16(self):
        m = MODEL_PRESETS["llama-3.1-70b"]
        assert m.weight_bytes == m.n_params * 2

    def test_flops_per_token(self):
        m = MODEL_PRESETS["qwen2.5-32b"]
        assert m.flops_per_token == 2.0 * m.n_params

    def test_head_dim(self):
        m = MODEL_PRESETS["llama-3.1-70b"]
        assert m.head_dim == m.hidden_size // m.n_heads

    def test_kv_bytes_gqa(self):
        m = MODEL_PRESETS["llama-3.1-70b"]
        # 80 layers x 8 kv heads x 128 head dim x 2 (K,V) x 2 bytes
        assert m.kv_bytes_per_token == 2 * 80 * 8 * 128 * 2

    def test_invalid_hidden_size(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", 1e9, 10, hidden_size=100, n_heads=7, n_kv_heads=7)

    def test_draft_much_smaller_than_target(self):
        assert (
            MODEL_PRESETS["llama-3.2-1b"].n_params
            < MODEL_PRESETS["llama-3.1-70b"].n_params / 30
        )


class TestDeploymentSpec:
    def test_table1_presets_fit(self):
        for dep in DEPLOYMENT_PRESETS.values():
            assert dep.model.weight_bytes <= dep.gpu.mem_bytes * dep.tensor_parallel

    def test_70b_does_not_fit_single_a100(self):
        with pytest.raises(ValueError):
            DeploymentSpec(MODEL_PRESETS["llama-3.1-70b"], GPU_PRESETS["a100-80g"], 1)

    def test_invalid_tp(self):
        with pytest.raises(ValueError):
            DeploymentSpec(MODEL_PRESETS["llama-3.2-1b"], GPU_PRESETS["a100-80g"], 0)

    def test_kv_capacity_positive(self):
        dep = DEPLOYMENT_PRESETS["llama70b-4xa100"]
        assert dep.kv_capacity_tokens > 10_000

    def test_kv_capacity_shrinks_with_weights(self):
        big = DEPLOYMENT_PRESETS["llama70b-4xa100"]
        small = DeploymentSpec(
            MODEL_PRESETS["llama-3.1-8b"], GPU_PRESETS["a100-80g"], 4
        )
        # Same GPUs, smaller model => more KV bytes available.
        assert small.kv_capacity_bytes > big.kv_capacity_bytes

    def test_table1_rows_present(self):
        assert "llama70b-4xa100" in DEPLOYMENT_PRESETS
        assert DEPLOYMENT_PRESETS["llama70b-4xa100"].tensor_parallel == 4
        assert "qwen32b-2xa100" in DEPLOYMENT_PRESETS
        assert DEPLOYMENT_PRESETS["qwen32b-2xa100"].tensor_parallel == 2
