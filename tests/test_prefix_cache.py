"""Tests for the prefix-cache subsystem (repro.prefixcache).

Covers the token-identity streams, the refcounted shared-block manager
(including the KV edge cases: block rounding at boundaries, exactly-full
``can_fit``, double-``free`` idempotence, and the refcounted eviction
paths), and the engine/scheduler integration hooks.
"""

from __future__ import annotations

import pytest

from repro.prefixcache import PrefixCacheManager, block_keys, token_ids
from repro.serving.kv_cache import KVCacheManager, OutOfKVCache
from repro.serving.request import Request


def session_request(rid, prompt_len, session=0, out=16, sys_ns=901):
    """A request riding shareable streams: 48 system-prompt tokens, then
    the session stream for the rest of the prompt."""
    sess_ns = 7000 + session
    segments = ((sys_ns, 48), (sess_ns, prompt_len - 48))
    return Request(
        rid=rid, category="chatbot", arrival_time=0.0, prompt_len=prompt_len,
        max_new_tokens=out, tpot_slo=0.05, session_id=session,
        prompt_segments=segments,
    )


def cold_request(rid, prompt_len=64, out=8):
    return Request(
        rid=rid, category="chatbot", arrival_time=0.0, prompt_len=prompt_len,
        max_new_tokens=out, tpot_slo=0.05,
    )


class TestTokenStreams:
    def test_cold_requests_have_disjoint_streams(self):
        a, b = cold_request(1), cold_request(2)
        assert token_ids(a, 32) != token_ids(b, 32)

    def test_segments_compose_and_extend(self):
        req = Request(
            rid=5, category="c", arrival_time=0.0, prompt_len=60,
            max_new_tokens=10, tpot_slo=0.05,
            prompt_segments=((11, 40), (22, 20)),
        )
        ids = token_ids(req, 70)  # prompt + 10 generated
        assert len(ids) == 70
        assert ids[:40] == token_ids(req, 40)
        # Generated tokens continue the *final* segment's stream.
        longer = Request(
            rid=6, category="c", arrival_time=0.0, prompt_len=70,
            max_new_tokens=1, tpot_slo=0.05,
            prompt_segments=((11, 40), (22, 30)),
        )
        assert token_ids(longer, 70) == ids

    def test_block_keys_chain_full_blocks_only(self):
        ids = token_ids(cold_request(3), 40)
        keys = block_keys(ids, 16)
        assert len(keys) == 2  # 40 tokens -> 2 full blocks, partial tail unkeyed
        assert block_keys(ids[:32], 16) == keys
        # A single differing token anywhere in the prefix changes every
        # later key (keys commit to the whole prefix).
        mutated = list(ids)
        mutated[0] ^= 1
        assert block_keys(mutated, 16)[0] != keys[0]


class TestBlockRounding:
    """Block-boundary edge cases on both manager variants."""

    @pytest.mark.parametrize("manager", [KVCacheManager, PrefixCacheManager])
    def test_blocks_for_boundaries(self, manager):
        kv = manager(1600, block_size=16)
        assert kv.blocks_for(0) == 0
        assert kv.blocks_for(15) == 1
        assert kv.blocks_for(16) == 1
        assert kv.blocks_for(17) == 2
        assert kv.blocks_for(160) == 10
        with pytest.raises(ValueError):
            kv.blocks_for(-1)

    @pytest.mark.parametrize("manager", [KVCacheManager, PrefixCacheManager])
    def test_can_fit_exactly_full(self, manager):
        kv = manager(160, block_size=16)
        assert kv.can_fit(1, 160)
        kv.ensure(1, 160)
        # Growing the same request to its own footprint still fits; any
        # fresh allocation (even one token) does not.
        assert kv.can_fit(1, 160)
        assert not kv.can_fit(2, 1)
        with pytest.raises(OutOfKVCache):
            kv.ensure(2, 1)

    @pytest.mark.parametrize("manager", [KVCacheManager, PrefixCacheManager])
    def test_double_free_is_idempotent(self, manager):
        kv = manager(160, block_size=16)
        kv.ensure(1, 100)
        first = kv.free(1)
        assert first == kv.blocks_for(100)
        assert kv.free(1) == 0
        assert kv.used_blocks == 0
        assert not kv.holds(1)

    def test_match_rounds_down_to_full_blocks(self):
        kv = PrefixCacheManager(1600, block_size=16)
        req = cold_request(1, prompt_len=70)
        ids = token_ids(req, 70)
        kv.lock_prefix(1, ids)
        kv.ensure(1, 70)
        kv.commit_prefix(1, ids)
        kv.free(1)
        # 70 tokens -> 4 full blocks cached; matching yields 64, never 70.
        assert kv.match_prefix(ids) == 64
        assert kv.match_prefix(ids[:63]) == 48


class TestPrefixSharing:
    def test_second_turn_matches_previous_context(self):
        kv = PrefixCacheManager(1600, block_size=16)
        t1 = session_request(1, prompt_len=80, out=20)
        ids1 = token_ids(t1, 100)  # prompt + generated
        assert kv.lock_prefix(1, token_ids(t1, 80)) == 0
        kv.ensure(1, 100)
        kv.commit_prefix(1, ids1)
        kv.free(1)
        t2 = session_request(2, prompt_len=120)
        cached = kv.lock_prefix(2, token_ids(t2, 120))
        assert cached == 96  # floor(100 / 16) blocks
        stats = kv.prefix_stats()
        assert stats.hits == 1 and stats.hit_tokens == 96

    def test_shared_blocks_counted_once(self):
        kv = PrefixCacheManager(1600, block_size=16)
        t1 = session_request(1, prompt_len=80)
        kv.lock_prefix(1, token_ids(t1, 80))
        kv.ensure(1, 80)
        kv.commit_prefix(1, token_ids(t1, 80))
        used_before = kv.used_blocks
        # A second request over the identical prompt adds only its
        # private tail, not another copy of the shared blocks.
        t2 = session_request(2, prompt_len=80)
        assert kv.lock_prefix(2, token_ids(t2, 80)) == 80
        kv.ensure(2, 80)
        assert kv.used_blocks == used_before
        kv.free(1)
        # Blocks referenced by request 2 survive request 1's free.
        assert kv.match_prefix(token_ids(t2, 80)) == 80

    def test_commit_deduplicates_concurrent_identical_chains(self):
        kv = PrefixCacheManager(1600, block_size=16)
        a = session_request(1, prompt_len=64)
        b = session_request(2, prompt_len=64)
        for req in (a, b):  # both allocated before either commits
            kv.lock_prefix(req.rid, token_ids(req, 64))
            kv.ensure(req.rid, 64)
        assert kv.used_blocks == 8
        kv.commit_prefix(1, token_ids(a, 64))
        assert kv.used_blocks == 8  # reclassified, not copied
        kv.commit_prefix(2, token_ids(b, 64))
        assert kv.used_blocks == 4  # b's private copies deduplicated away
        kv.free(1)
        kv.free(2)
        assert kv.used_blocks == 4  # cached, unreferenced

    def test_lock_is_idempotent_per_request(self):
        kv = PrefixCacheManager(1600, block_size=16)
        seeded = cold_request(1, prompt_len=64)
        ids = token_ids(seeded, 64)
        kv.lock_prefix(1, ids)
        kv.ensure(1, 64)
        kv.commit_prefix(1, ids)
        kv.free(1)
        again = cold_request(2, prompt_len=64)
        again.prompt_segments = seeded.prompt_segments  # force same stream
        ids2 = token_ids(seeded, 64)
        first = kv.lock_prefix(2, ids2)
        assert first == 64
        assert kv.lock_prefix(2, ids2) == first
        assert kv.prefix_stats().lookups == 2  # retry not double-counted


class TestRefcountedEviction:
    def test_unreferenced_blocks_evicted_under_pressure(self):
        kv = PrefixCacheManager(320, block_size=16)  # 20 blocks
        for rid in range(3):
            req = cold_request(rid, prompt_len=64)
            ids = token_ids(req, 64)
            kv.lock_prefix(rid, ids)
            kv.ensure(rid, 64)
            kv.commit_prefix(rid, ids)
            kv.free(rid)
        assert kv.prefix_stats().cached_blocks == 12
        # A fresh 16-block allocation forces LRU eviction of cached blocks.
        kv.ensure(99, 256)
        stats = kv.prefix_stats()
        assert stats.evicted_blocks >= 8
        assert kv.used_blocks <= kv.total_blocks

    def test_referenced_blocks_are_never_evicted(self):
        kv = PrefixCacheManager(320, block_size=16)
        pinned = cold_request(1, prompt_len=64)
        ids = token_ids(pinned, 64)
        kv.lock_prefix(1, ids)
        kv.ensure(1, 64)
        kv.commit_prefix(1, ids)  # 4 shared blocks, still referenced by rid 1
        with pytest.raises(OutOfKVCache):
            kv.ensure(2, 320)  # would need the pinned blocks
        assert kv.match_prefix(ids) == 64

    def test_eviction_is_lru(self):
        kv = PrefixCacheManager(320, block_size=16)
        old = cold_request(1, prompt_len=64)
        new = cold_request(2, prompt_len=64)
        for req in (old, new):
            ids = token_ids(req, 64)
            kv.lock_prefix(req.rid, ids)
            kv.ensure(req.rid, 64)
            kv.commit_prefix(req.rid, ids)
            kv.free(req.rid)
        kv.ensure(99, 256)  # 16 blocks; 20 total, 8 cached -> evict 4
        assert kv.match_prefix(token_ids(old, 64)) == 0  # oldest chain gone
        assert kv.match_prefix(token_ids(new, 64)) == 64  # newest kept

    def test_free_releases_references_not_cache(self):
        kv = PrefixCacheManager(320, block_size=16)
        req = cold_request(1, prompt_len=64)
        ids = token_ids(req, 64)
        kv.lock_prefix(1, ids)
        kv.ensure(1, 64)
        kv.commit_prefix(1, ids)
        released = kv.free(1)
        assert released == 4  # all four blocks were shared by then
        assert kv.free(1) == 0  # idempotent with references too
        stats = kv.prefix_stats()
        assert stats.cached_blocks == 4
        assert stats.unreferenced_blocks == 4


class TestInertness:
    """On prefix-free workloads, enabling the cache cannot change results."""

    @pytest.mark.parametrize("system", ["vllm", "sarathi", "adaserve"])
    def test_cold_trace_results_identical(self, system, tiny_workload):
        from repro.analysis.harness import build_setup, run_once

        reports = []
        for prefix_cache in (False, True):
            setup = build_setup("llama70b", seed=5, prefix_cache=prefix_cache)
            reports.append(
                run_once(setup, system, tiny_workload, max_sim_time_s=300.0)
            )
        off, on = reports
        assert on.metrics == off.metrics
        assert on.sim_time_s == off.sim_time_s
        assert on.iterations == off.iterations
        assert on.metrics.prefix_hit_requests == 0


class TestEngineIntegration:
    def _engine(self, pair, target_roofline, draft_roofline, capacity=200_000):
        from repro.serving.engine import SimulatedEngine

        kv = PrefixCacheManager(capacity)
        return SimulatedEngine(pair, target_roofline, draft_roofline, kv, seed=42)

    def test_prefill_charges_only_uncached_suffix(
        self, pair, target_roofline, draft_roofline
    ):
        from repro.baselines.vllm import VLLMScheduler

        engine = self._engine(pair, target_roofline, draft_roofline)
        scheduler = VLLMScheduler(engine)
        first = session_request(0, prompt_len=512, out=4)
        scheduler.admit(first)
        assert first.cached_prompt_tokens == 0
        cold_latency = scheduler.step(0.0)
        while not first.is_finished:
            scheduler.step(1.0)
        scheduler.finalize()
        # Same stream, longer turn: the prompt prefix is now cached.
        second = session_request(1, prompt_len=560, out=4)
        second.prompt_segments = (
            (first.prompt_segments[0][0], 48),
            (first.prompt_segments[1][0], 512),
        )
        scheduler.admit(second)
        assert second.cached_prompt_tokens == 0  # matched at batch entry, not admission
        warm_latency = scheduler.step(10.0)
        assert second.cached_prompt_tokens > 0
        assert warm_latency < cold_latency

    def test_preempt_with_drop_rematches_its_own_blocks(
        self, pair, target_roofline, draft_roofline
    ):
        from repro.baselines.vllm import VLLMScheduler

        engine = self._engine(pair, target_roofline, draft_roofline)
        scheduler = VLLMScheduler(engine)
        req = session_request(0, prompt_len=512, out=8)
        scheduler.admit(req)
        scheduler.step(0.0)  # prefill completes -> prompt blocks committed
        assert req.prefilled == req.prompt_len
        engine.preempt(req, drop_kv=True)  # refs dropped, prefilled reset
        if req in scheduler.running:
            scheduler.running.remove(req)
        assert req.prefilled == 0
        scheduler.waiting.appendleft(req)
        before = req.cached_prompt_tokens
        scheduler.step(1.0)  # prefill batch re-locks against its own blocks
        assert req.cached_prompt_tokens > before
        assert req.prefilled == req.prompt_len  # only the suffix was recomputed

    def test_queued_requests_pin_nothing(
        self, pair, target_roofline, draft_roofline
    ):
        """A request that cannot enter its prefill batch rolls its lock back.

        This is the no-regression guarantee: enabling the prefix cache
        must never pin blocks for waiting requests, so no allocation
        fails that would have succeeded with the plain manager.
        """
        from repro.baselines.vllm import VLLMScheduler

        # Room for the cached chain, then a hog takes every free block.
        engine = self._engine(pair, target_roofline, draft_roofline, capacity=1024)
        scheduler = VLLMScheduler(engine)
        seeder = session_request(0, prompt_len=512, out=4)
        scheduler.admit(seeder)
        while scheduler.has_work():
            scheduler.step(0.0)
        scheduler.finalize()  # 512-token chain cached, unreferenced
        engine.kv.ensure(99, 512)  # hog: zero truly-free blocks remain
        blocked = session_request(1, prompt_len=512, out=4)
        blocked.prompt_segments = seeder.prompt_segments
        scheduler.admit(blocked)
        # Batch entry matches the prefix but the private tail cannot be
        # allocated -> the fresh lock is rolled back in full.
        assert scheduler._take_prefill_batch() == []
        assert blocked.prefilled == 0
        assert blocked.cached_prompt_tokens == 0
        assert not engine.kv.holds(blocked.rid)
        # Nothing stays pinned: the hog can still grow over the cached
        # chain, exactly as it could with the plain manager.
        engine.kv.ensure(99, 1024)
        assert engine.kv.used_blocks == engine.kv.total_blocks
        assert engine.kv.prefix_stats().cached_blocks == 0

    def test_segmentless_requests_bypass_the_cache(
        self, pair, target_roofline, draft_roofline
    ):
        from repro.baselines.vllm import VLLMScheduler

        engine = self._engine(pair, target_roofline, draft_roofline)
        scheduler = VLLMScheduler(engine)
        req = cold_request(0, prompt_len=128, out=4)
        scheduler.admit(req)
        while scheduler.has_work():
            scheduler.step(0.0)
        scheduler.finalize()
        stats = engine.kv.prefix_stats()
        # Private streams are unmatchable: no lookups, nothing committed.
        assert stats.lookups == 0
        assert stats.cached_blocks == 0

    def test_whole_prompt_cached_still_prefills_one_token(
        self, pair, target_roofline, draft_roofline
    ):
        from repro.baselines.vllm import VLLMScheduler

        engine = self._engine(pair, target_roofline, draft_roofline)
        scheduler = VLLMScheduler(engine)
        first = session_request(0, prompt_len=128, out=4)
        scheduler.admit(first)
        while scheduler.has_work():
            scheduler.step(0.0)
        scheduler.finalize()
        clone = session_request(1, prompt_len=128, out=4)
        clone.prompt_segments = first.prompt_segments
        scheduler.admit(clone)
        scheduler.step(10.0)  # the batch-entry match runs here
        # Block-aligned full match is capped: at least one prompt token
        # remains for the context-installing prefill iteration (which
        # this step then executed, completing the prompt).
        assert clone.cached_prompt_tokens == 127
        assert clone.prefilled == clone.prompt_len
