"""Golden-equivalence digests for the optimized simulation loops.

PR 5 rewrote the hot simulation paths (fleet event heap, memoized cost
model, incremental scheduler bookkeeping, single-sort metrics) under a
hard constraint: **every fixed-seed run stays byte-identical** to the
unoptimized implementation.  These tests pin that guarantee.

Each scenario below was executed on the pre-optimization code and its
strict-JSON report export (``report_to_json`` — sorted keys, no NaN
tokens, every aggregate and per-category statistic) hashed with SHA-256.
The digests are committed; the optimized loops must reproduce them
byte-for-byte.  A digest mismatch means an "optimization" changed
simulation semantics — floats included — and must not ship.

If simulator *semantics* change intentionally in a future PR, recompute
the digests with ``python -m tests.test_golden_equivalence`` (this module
is runnable) and say so in the PR description.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.export import report_to_json
from repro.analysis.runner import run_spec
from repro.analysis.spec import ExperimentSpec


def _digest(spec: ExperimentSpec) -> str:
    """SHA-256 of the run's strict-JSON export (fresh engines, no cache)."""
    report = run_spec(spec)
    return hashlib.sha256(report_to_json(report).encode("utf-8")).hexdigest()


def _spec(**kw) -> ExperimentSpec:
    kw.setdefault("model", "llama70b")
    kw.setdefault("seed", 0)
    return ExperimentSpec.create(**kw)


#: (scenario name, spec kwargs, digest of the unoptimized implementation).
GOLDEN = [
    (
        "solo-vllm",
        dict(system="vllm", rps=5.0, duration_s=12.0, trace="bursty"),
        "68c346f1c37abee76316f77bbfbb2da8c0c443047176863d7551b24664e65fb2",
    ),
    (
        "solo-adaserve",
        dict(system="adaserve", rps=4.0, duration_s=10.0, trace="bursty"),
        "4c349363b08ce596295f6fddcb981a0fcc2bcc13ebda511186d9d5d66e217239",
    ),
    (
        "solo-sarathi-qwen",
        dict(model="qwen32b", system="sarathi", rps=4.0, duration_s=10.0, trace="steady", seed=3),
        "97eb0d3af954ad1deff1888a834a61bf0e16d329bec336763e4750f6e9fcaf31",
    ),
    (
        "solo-vllm-spec",
        dict(system="vllm-spec:k=4", rps=4.0, duration_s=10.0, trace="phased", seed=1),
        "630583d5d16bf6bb907b774de287292928e9797528386bf63e992ba536ef5033",
    ),
    (
        "fleet-least-loaded",
        dict(system="vllm", rps=12.0, duration_s=12.0, trace="diurnal", replicas=3, router="least-loaded"),
        "36675868d05cd8155e22e1678ddb97106b30179fb248ae49b24ae272d3def100",
    ),
    (
        "fleet-autoscale-p2c",
        dict(
            system="vllm",
            rps=14.0,
            duration_s=12.0,
            trace="bursty",
            replicas=2,
            router="p2c",
            autoscale={"max_replicas": 4, "warmup_s": 2.0},
            seed=2,
        ),
        "80297b2bdc85fc63fada7bf54796337cecc033d93881112784de808c2079cc20",
    ),
    (
        "sessions-prefix-cache",
        dict(system="vllm", rps=6.0, duration_s=12.0, trace="sessions", prefix_cache=True),
        "2fb5b5cb4cb4c12ef29ed4ab739624feb829fd94093f5663c0692b6126d55c57",
    ),
    (
        "sessions-prefix-affinity-fleet",
        dict(
            system="vllm",
            rps=8.0,
            duration_s=12.0,
            trace="sessions:turns=4,think_time=2.0",
            prefix_cache=True,
            replicas=2,
            router="prefix-affinity",
            seed=1,
        ),
        "3e2f2183135a5f34d2c6346760f0b85d0ebe3a572b2fa657f3024bb7c5075917",
    ),
    # Chaos scenarios (PR 6): fixed-seed fault injection must be exactly
    # as reproducible as every other run — the whole fault timeline
    # (including auto-placed draws) is a pure function of the spec.
    (
        "chaos-crash-straggler-fleet",
        dict(
            system="vllm",
            rps=9.0,
            duration_s=12.0,
            trace="sessions",
            prefix_cache=True,
            replicas=3,
            router="prefix-affinity",
            faults=("crash:at=4,replica=1,restart=3", "straggler:at=2,replica=0,slow=1.5,duration=5"),
        ),
        "6584468208605d6b340d54df304e2987775a399294d5bb21b143a5395ae9da9c",
    ),
    (
        "chaos-auto-faults",
        dict(
            system="vllm",
            rps=10.0,
            duration_s=12.0,
            trace="bursty",
            replicas=3,
            router="least-loaded",
            faults=("crash", "straggler:slow=2.0"),
            seed=4,
        ),
        "42690dc163aae93c63cddd7111a01180ceddd1757a8c929a755f6a47fa18b48b",
    ),
]


@pytest.mark.parametrize(
    "name,kwargs,expected", GOLDEN, ids=[name for name, _, _ in GOLDEN]
)
def test_golden_digest(name: str, kwargs: dict, expected: str) -> None:
    """The optimized loops reproduce the unoptimized export, byte for byte."""
    assert _digest(_spec(**kwargs)) == expected, (
        f"scenario {name!r} diverged from the pre-optimization golden digest; "
        "a performance change altered simulation semantics"
    )


def _main() -> None:  # pragma: no cover - digest (re)generation helper
    for name, kwargs, _ in GOLDEN:
        print(f'    "{_digest(_spec(**kwargs))}",  # {name}')


if __name__ == "__main__":  # pragma: no cover
    _main()
