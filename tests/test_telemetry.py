"""Tests for per-iteration telemetry."""

from __future__ import annotations

import pytest

from repro.core.scheduler import AdaServeScheduler
from repro.serving.server import ServingSimulator
from repro.serving.telemetry import IterationLog, IterationRecord
from tests.conftest import make_request


def _rec(t=0.0, kind="speculative", batch=4, latency=0.03, **kw):
    return IterationRecord(
        time_s=t, kind=kind, batch_size=batch, latency_s=latency, **kw
    )


class TestLog:
    def test_append_and_len(self):
        log = IterationLog()
        log.record(_rec())
        log.record(_rec(t=1.0, kind="prefill"))
        assert len(log) == 2

    def test_of_kind(self):
        log = IterationLog()
        log.record(_rec(kind="prefill"))
        log.record(_rec(kind="speculative"))
        assert len(log.of_kind("speculative")) == 1

    def test_series(self):
        log = IterationLog()
        log.record(_rec(t=0.0, depth=2))
        log.record(_rec(t=1.0, depth=4))
        assert log.series("depth") == [(0.0, 2.0), (1.0, 4.0)]

    def test_bucketed_mean(self):
        log = IterationLog()
        log.record(_rec(t=0.1, depth=2))
        log.record(_rec(t=0.2, depth=4))
        log.record(_rec(t=1.5, depth=6))
        out = log.bucketed_mean("depth", 1.0)
        assert out == [(0.0, 3.0), (1.0, 6.0)]

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            IterationLog().bucketed_mean("depth", 0)

    def test_empty_bucketed(self):
        assert IterationLog().bucketed_mean("depth", 1.0) == []

    def test_tokens_per_second(self):
        rec = _rec(latency=0.05, tokens_committed=10)
        assert rec.tokens_per_second == pytest.approx(200.0)

    def test_mean_accepted_when(self):
        log = IterationLog()
        log.record(_rec(batch=2, tokens_accepted=4))
        log.record(_rec(batch=10, tokens_accepted=10))
        assert log.mean_accepted_when(min_batch=5) == pytest.approx(1.0)
        assert log.mean_accepted_when(min_batch=1) == pytest.approx(1.5)
        assert log.mean_accepted_when(min_batch=100) == 0.0


class TestEngineIntegration:
    def test_disabled_by_default(self, engine):
        assert engine.telemetry is None

    def test_adaserve_records_iterations(self, engine):
        engine.telemetry = IterationLog()
        reqs = [
            make_request(rid=i, arrival=0.05 * i, prompt_len=20, max_new_tokens=6)
            for i in range(5)
        ]
        ServingSimulator(engine, AdaServeScheduler(engine), reqs).run()
        log = engine.telemetry
        spec = log.of_kind("speculative")
        assert spec
        for r in spec:
            assert r.batch_size >= 1
            assert r.depth >= 1
            assert r.width >= 1
            assert r.latency_s > 0
            assert r.tokens_committed >= r.batch_size  # >= 1 token/request
            assert 0 <= r.tokens_accepted <= r.tokens_committed

    def test_times_monotone(self, engine):
        engine.telemetry = IterationLog()
        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=12)]
        ServingSimulator(engine, AdaServeScheduler(engine), reqs).run()
        times = [r.time_s for r in engine.telemetry.records]
        assert times == sorted(times)

    def test_observer_attaches_log(self, engine):
        # The obs layer wires the (formerly manual) IterationLog without
        # the caller touching engine.telemetry.
        from repro.obs import RunObserver

        observer = RunObserver(trace=False, iteration_log=True)
        observer.attach_engine(engine, replica=0)
        assert engine.telemetry is observer.iteration_logs[0]
        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=12)]
        ServingSimulator(engine, AdaServeScheduler(engine), reqs).run()
        assert len(observer.iteration_logs[0]) > 0
