"""Tests for the simulated execution engine."""

from __future__ import annotations

import pytest

from repro.serving.request import RequestState
from tests.conftest import make_request


def queued(rid=0, prompt=32, out=16, **kw):
    return make_request(rid=rid, prompt_len=prompt, max_new_tokens=out, **kw)


def running(engine, rid=0, prompt=32, out=16, **kw):
    req = queued(rid, prompt, out, **kw)
    engine.prefill([(req, req.prompt_len)], now=0.0)
    return req


class TestPrefill:
    def test_empty_batch_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.prefill([], 0.0)

    def test_full_prefill_starts_decode(self, engine):
        req = queued()
        latency = engine.prefill([(req, 32)], now=1.0)
        assert latency > 0
        assert req.state == RequestState.RUNNING
        assert req.decode_start == pytest.approx(1.0 + latency)
        assert req.ctx == engine.root_ctx(req)

    def test_chunked_prefill_stays_incomplete(self, engine):
        req = queued(prompt=100)
        engine.prefill([(req, 60)], now=0.0)
        assert req.state == RequestState.PREFILLING
        assert req.decode_start is None

    def test_longer_prompts_cost_more(self, engine):
        short = engine.prefill([(queued(0, prompt=64), 64)], 0.0)
        long = engine.prefill([(queued(1, prompt=2048), 2048)], 0.0)
        assert long > short

    def test_phase_accounting(self, engine):
        engine.prefill([(queued(), 32)], 0.0)
        assert engine.phase_times.prefill_s > 0
        assert engine.phase_times.decode_s == 0


class TestDecode:
    def test_decode_commits_one_token_each(self, engine):
        reqs = [running(engine, rid=i) for i in range(3)]
        latency = engine.decode(reqs, now=2.0)
        for r in reqs:
            assert r.n_generated == 1
            assert r.last_token_time == pytest.approx(2.0 + latency)

    def test_decode_deterministic_tokens(self, engine):
        r1 = running(engine, rid=7)
        ctx_before = r1.ctx
        engine.decode([r1], 0.0)
        expected = engine.pair.target_sample(ctx_before, r1.predictability)
        assert r1.ctx == engine.pair.extend(ctx_before, expected)

    def test_empty_decode_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.decode([], 0.0)

    def test_decode_latency_grows_with_batch(self, engine):
        # Far past saturation, bigger batches take longer.
        a = [running(engine, rid=i) for i in range(2)]
        lat_small = engine.decode(a, 0.0)
        b = [running(engine, rid=100 + i) for i in range(150)]
        lat_big = engine.decode(b, 0.0)
        assert lat_big > lat_small


class TestMixedStep:
    def test_mixed_commits_both(self, engine):
        dec = running(engine, rid=1)
        pre = queued(rid=2, prompt=100)
        latency = engine.mixed_step([dec], [(pre, 40)], now=1.0)
        assert dec.n_generated == 1
        assert pre.prefilled == 40
        assert latency > 0

    def test_mixed_completes_prefill(self, engine):
        pre = queued(rid=2, prompt=50)
        engine.mixed_step([], [(pre, 50)], now=0.0)
        assert pre.state == RequestState.RUNNING

    def test_empty_mixed_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.mixed_step([], [], 0.0)

    def test_phase_split(self, engine):
        dec = running(engine, rid=1)
        engine.phase_times.prefill_s = 0.0  # reset after setup prefill
        pre = queued(rid=2, prompt=100)
        engine.mixed_step([dec], [(pre, 40)], now=0.0)
        assert engine.phase_times.prefill_s > 0
        assert engine.phase_times.decode_s > 0


class TestSpecCosts:
    def test_draft_cost_positive(self, engine):
        cost = engine.draft_cost((4, 8, 8))
        assert cost > 0
        assert engine.phase_times.speculation_s == pytest.approx(cost)

    def test_draft_graph_reuse_cheaper(self, engine):
        # Two identical beams: the second replays captured graphs.
        first = engine.draft_cost((4, 8, 8))
        second = engine.draft_cost((4, 8, 8))
        assert second < first

    def test_sequence_draft_cost_steps(self, engine):
        one = engine.sequence_draft_cost(1, 8)
        four = engine.sequence_draft_cost(4, 8)
        assert four > 3 * one * 0.9

    def test_verify_cost_grows_with_tokens(self, engine):
        small = engine.verify_cost(10)
        large = engine.verify_cost(500)
        assert large > small

    def test_verify_prefill_split(self, engine):
        engine.verify_cost(50, extra_prefill_tokens=50)
        assert engine.phase_times.prefill_s > 0
        assert engine.phase_times.verification_s > 0

    def test_scheduling_accounting(self, engine):
        engine.account_scheduling(0.001)
        assert engine.phase_times.scheduling_s == pytest.approx(0.001)

    def test_breakdown_sums_to_one(self, engine):
        engine.verify_cost(50)
        engine.draft_cost((4,))
        engine.account_scheduling(1e-4)
        bd = engine.phase_times.breakdown()
        assert sum(bd.values()) == pytest.approx(1.0)


class TestLifecycle:
    def test_finish_frees_kv(self, engine):
        req = running(engine, rid=3, out=1)
        engine.kv.ensure(req.rid, req.kv_tokens)
        engine.decode([req], 0.0)
        assert req.is_finished
        engine.finish(req)
        assert not engine.kv.holds(req.rid)

    def test_finish_unfinished_rejected(self, engine):
        req = running(engine, rid=4)
        with pytest.raises(ValueError):
            engine.finish(req)

    def test_preempt_drop_kv(self, engine):
        req = running(engine, rid=5)
        engine.kv.ensure(req.rid, req.kv_tokens)
        engine.preempt(req, drop_kv=True)
        assert not engine.kv.holds(req.rid)
        assert req.prefilled == 0
