"""Tests for serving metrics (attainment, goodput, violation reduction)."""

from __future__ import annotations

import pytest

from repro.serving.metrics import (
    _percentile,
    _percentile_sorted,
    compute_metrics,
    violation_reduction,
)
from tests.conftest import make_request


def finished_request(rid, category="coding", arrival=0.0, slo=0.05, tokens=10, duration=0.3):
    """A request that finished `tokens` tokens over `duration` seconds."""
    req = make_request(
        rid=rid, category=category, arrival=arrival,
        max_new_tokens=tokens, tpot_slo=slo,
    )
    req.advance_prefill(req.prompt_len)
    start = arrival + 0.1
    req.begin_decode(1, start)
    req.commit_tokens(tokens, 2, start + duration)
    return req


class TestPercentile:
    """The sort-once fast path must match nearest-rank on the raw list.

    ``compute_metrics`` used to call ``_percentile`` (which sorts) four
    times per category sample; it now sorts once and indexes through
    ``_percentile_sorted``.  Both must agree for every quantile — and
    ``_percentile`` itself must be order-insensitive.
    """

    @pytest.mark.parametrize(
        "values",
        [
            [0.3],
            [0.5, 0.1],
            [0.9, 0.1, 0.5, 0.5, 0.2],
            [float(i % 7) * 0.01 for i in range(100)],
            [0.25] * 10,  # all ties
        ],
    )
    @pytest.mark.parametrize("q", [0.0, 1.0, 50.0, 90.0, 99.0, 100.0])
    def test_sorted_fast_path_matches(self, values, q):
        assert _percentile_sorted(sorted(values), q) == _percentile(values, q)

    @pytest.mark.parametrize("q", [0.0, 50.0, 99.0, 100.0])
    def test_percentile_on_presorted_input_unchanged(self, q):
        # Old behavior: _percentile(sorted list) — sorting a sorted list
        # is the identity, so the result must be unchanged.
        values = [0.05, 0.1, 0.1, 0.2, 0.4, 0.9]
        assert _percentile(values, q) == _percentile(sorted(values), q)

    def test_nearest_rank_definition(self):
        values = [0.4, 0.1, 0.2, 0.3]
        # rank = ceil(q/100 * 4): q=50 -> rank 2 -> 0.2; q=99 -> rank 4.
        assert _percentile(values, 50.0) == 0.2
        assert _percentile(values, 99.0) == 0.4
        assert _percentile(values, 0.0) == 0.1  # rank floors at 1

    def test_empty_inputs_raise(self):
        # NaN-on-empty was a strict-JSON (allow_nan=False) landmine and
        # broke dataclass equality; empty samples are a caller bug —
        # callers guard and report None (the CategoryMetrics convention).
        with pytest.raises(ValueError, match="empty sample"):
            _percentile([], 50.0)
        with pytest.raises(ValueError, match="empty sample"):
            _percentile_sorted([], 50.0)


class TestComputeMetrics:
    def test_empty(self):
        m = compute_metrics([])
        assert m.num_requests == 0
        assert m.attainment == 0.0
        assert m.goodput == 0.0

    def test_all_attained(self):
        # 10 tokens over 0.3s = 30ms/token <= 50ms SLO.
        reqs = [finished_request(i) for i in range(4)]
        m = compute_metrics(reqs)
        assert m.attainment == 1.0
        assert m.violation_rate == 0.0
        assert m.num_finished == 4

    def test_mixed_attainment(self):
        ok = [finished_request(i, duration=0.3) for i in range(3)]
        bad = [finished_request(10 + i, duration=1.0) for i in range(1)]
        m = compute_metrics(ok + bad)
        assert m.attainment == pytest.approx(0.75)

    def test_unfinished_counts_as_violation(self):
        ok = finished_request(0)
        pending = make_request(rid=1)
        m = compute_metrics([ok, pending])
        assert m.num_requests == 2
        assert m.num_attained == 1
        assert m.attainment == pytest.approx(0.5)

    def test_goodput_counts_attained_tokens_only(self):
        ok = finished_request(0, tokens=10, duration=0.3)
        bad = finished_request(1, tokens=20, duration=2.0)
        m = compute_metrics([ok, bad])
        # Span: first arrival 0.0 to last finish 0.1 + 2.0.
        assert m.span_s == pytest.approx(2.1)
        assert m.goodput == pytest.approx(10 / 2.1)
        assert m.throughput == pytest.approx(30 / 2.1)

    def test_per_category(self):
        a = finished_request(0, category="coding", duration=0.3)
        b = finished_request(1, category="chatbot", duration=1.0)
        m = compute_metrics([a, b])
        assert m.per_category["coding"].attainment == 1.0
        assert m.per_category["chatbot"].attainment == 0.0
        assert m.per_category["chatbot"].mean_tpot_s == pytest.approx(0.1)

    def test_mean_accepted_per_verify(self):
        a = finished_request(0)
        a.verify_steps = 4
        a.accepted_draft_tokens = 10
        b = finished_request(1)
        b.verify_steps = 6
        b.accepted_draft_tokens = 5
        m = compute_metrics([a, b])
        assert m.mean_accepted_per_verify == pytest.approx(15 / 10)

    def test_no_verify_steps_zero(self):
        m = compute_metrics([finished_request(0)])
        assert m.mean_accepted_per_verify == 0.0


class TestEmptyCategories:
    """Categories with zero completed requests degrade to None/0, never raise."""

    def test_category_with_no_finished_requests(self):
        ok = finished_request(0, category="coding")
        pending = make_request(rid=1, category="chatbot")  # never finishes
        m = compute_metrics([ok, pending])
        cm = m.per_category["chatbot"]
        assert cm.num_requests == 1
        assert cm.num_attained == 0
        assert cm.attainment == 0.0
        # None, not NaN: NaN sentinels broke dataclass equality between
        # byte-identical runs and strict-JSON allow_nan=False export —
        # the RunMetrics.mean_ttft_s convention applies everywhere.
        for stat in (
            cm.mean_tpot_s, cm.p50_tpot_s, cm.p99_tpot_s,
            cm.mean_ttft_s, cm.p50_ttft_s, cm.p99_ttft_s,
        ):
            assert stat is None

    def test_empty_category_metrics_compare_equal(self):
        # Regression: with NaN sentinels, two identical runs produced
        # CategoryMetrics that compared unequal (NaN != NaN).
        def metrics():
            return compute_metrics(
                [finished_request(0), make_request(rid=1, category="chatbot")]
            )

        assert metrics() == metrics()
        assert metrics().per_category["chatbot"] == metrics().per_category["chatbot"]

    def test_no_finished_requests_at_all(self):
        m = compute_metrics([make_request(rid=i) for i in range(3)])
        assert m.num_finished == 0
        assert m.attainment == 0.0
        assert m.goodput == 0.0
        assert m.mean_ttft_s is None
        again = compute_metrics([make_request(rid=i) for i in range(3)])
        assert m == again  # full equality, no NaN sentinels anywhere

    def test_empty_category_serializes_to_strict_json(self):
        from repro.analysis.export import metrics_from_dict, metrics_to_dict
        import json

        m = compute_metrics([finished_request(0), make_request(rid=1, category="chatbot")])
        text = json.dumps(metrics_to_dict(m), allow_nan=False)  # no NaN tokens
        back = metrics_from_dict(json.loads(text))
        assert back.per_category["chatbot"].mean_tpot_s is None
        assert back.num_requests == m.num_requests
        assert back == m  # None round-trips; NaN could not

    def test_prefix_fields_aggregate_from_requests(self):
        a = finished_request(0)
        a.cached_prompt_tokens = 96
        b = finished_request(1)
        m = compute_metrics([a, b])
        assert m.prefix_hit_requests == 1
        assert m.prefill_tokens_saved == 96
        assert m.prefix_hit_rate == 0.5
        assert m.mean_ttft_s == pytest.approx((a.ttft + b.ttft) / 2)

    def test_empty_run_prefix_defaults(self):
        m = compute_metrics([])
        assert m.prefix_hit_rate == 0.0
        assert m.prefill_tokens_saved == 0


class TestViolationReduction:
    def test_ratio(self):
        base = compute_metrics(
            [*(finished_request(i, duration=2.0) for i in range(2)), finished_request(9, duration=0.3)]
        )  # 2/3 violations
        good = compute_metrics(
            [
                *(finished_request(i, duration=2.0) for i in range(1)),
                *[finished_request(8, duration=0.3)] * 1,
                finished_request(7, duration=0.3),
            ]
        )  # 1/3 violations
        assert violation_reduction(base, good) == pytest.approx(2.0)

    def test_zero_improved_violations(self):
        base = compute_metrics([finished_request(0, duration=2.0)])
        good = compute_metrics([finished_request(0, duration=0.3)])
        assert violation_reduction(base, good) == float("inf")

    def test_both_zero(self):
        good = compute_metrics([finished_request(0, duration=0.3)])
        assert violation_reduction(good, good) == 1.0
