"""Tests for the deterministic chaos subsystem (repro.chaos).

Covers the fault grammar and seeded materialization, the ChaosSpec
config section, crash/evacuation mechanics at the replica level, the
fleet's autonomic recovery (re-queue, re-route, re-home, restart), the
router re-homing edge cases from the issue (mid-prefill crash, draining
crash, double crash), and the incident report.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import config_key
from repro.analysis.export import report_to_dict
from repro.analysis.harness import make_scheduler
from repro.analysis.spec import ChaosSpec, ExperimentSpec
from repro.chaos import ChaosLog, FaultEvent, FaultSchedule, build_chaos_report
from repro.chaos.report import format_incident_table
from repro.cluster.fleet import FleetSimulator
from repro.cluster.replica import Replica
from repro.cluster.router import PrefixAffinityRouter, RoundRobinRouter
from repro.registry import FAULTS, SpecError
from repro.serving.request import RequestState
from tests.conftest import make_request
from tests.test_cluster import fleet_workload, small_engine, vllm_factory


def spec_events(specs, seed=0, window_s=100.0, num_replicas=3):
    return FaultSchedule.from_specs(
        specs, seed=seed, window_s=window_s, num_replicas=num_replicas
    ).events


# ----------------------------------------------------------------------
# Fault grammar + schedule materialization
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_explicit_crash(self):
        (event,) = spec_events(["crash:at=120,replica=1,restart=5"])
        assert event == FaultEvent(at_s=120.0, kind="crash", replica=1, restart_s=5.0)

    def test_explicit_straggler(self):
        (event,) = spec_events(["straggler:slow=2.5,at=30,replica=0,duration=40"])
        assert event.kind == "straggler"
        assert event.slow == 2.5
        assert event.duration_s == 40.0

    def test_scale_delay(self):
        (event,) = spec_events(["scale-delay:extra=7"])
        assert event == FaultEvent(at_s=0.0, kind="scale-delay", extra_s=7.0)

    def test_auto_draws_are_deterministic(self):
        a = spec_events(["crash", "straggler"], seed=11)
        b = spec_events(["crash", "straggler"], seed=11)
        assert a == b
        c = spec_events(["crash", "straggler"], seed=12)
        assert a != c

    def test_auto_time_inside_busy_middle(self):
        for seed in range(20):
            (event,) = spec_events(["crash"], seed=seed, window_s=100.0)
            assert 15.0 <= event.at_s <= 75.0

    def test_auto_replica_in_range(self):
        for seed in range(20):
            (event,) = spec_events(["crash"], seed=seed, num_replicas=4)
            assert 0 <= event.replica < 4

    def test_later_declaration_never_perturbs_earlier_draws(self):
        (alone,) = spec_events(["crash"], seed=3)
        first, _ = spec_events(["crash", "straggler"], seed=3)
        assert alone == first

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(events=(FaultEvent(at_s=1.0, kind="crash", replica=0),))

    def test_canonicalization_drops_defaults(self):
        assert FAULTS.canonical("crash:restart=20") == "crash"
        assert FAULTS.canonical("straggler:slow=2.0") == "straggler"
        assert FAULTS.canonical("crash:at=120,replica=1") == "crash:at=120.0,replica=1"

    def test_invalid_spec_rejected(self):
        with pytest.raises(SpecError):
            spec_events(["crash:restart=-1"])
        with pytest.raises(SpecError):
            spec_events(["straggler:slow=0.5"])
        with pytest.raises(KeyError):
            spec_events(["meteor-strike"])


# ----------------------------------------------------------------------
# ChaosSpec config section
# ----------------------------------------------------------------------
class TestChaosSpec:
    def base(self, **kw):
        kw.setdefault("model", "llama70b")
        kw.setdefault("seed", 0)
        kw.setdefault("system", "vllm")
        kw.setdefault("rps", 2.0)
        kw.setdefault("duration_s", 4.0)
        return ExperimentSpec.create(**kw)

    def test_str_becomes_one_tuple(self):
        assert ChaosSpec(faults="crash").faults == ("crash",)
        assert ChaosSpec(faults=None).faults == ()

    def test_enabled(self):
        assert not ChaosSpec().enabled
        assert ChaosSpec(faults=("crash",)).enabled

    def test_chaos_forces_cluster_path(self):
        spec = self.base(faults=("crash",))
        assert spec.cluster.replicas == 1
        assert spec.is_cluster

    def test_to_dict_omits_section_when_disabled(self):
        assert "chaos" not in self.base().to_dict()
        assert self.base(faults=("crash",)).to_dict()["chaos"] == {"faults": ["crash"]}

    def test_round_trip(self):
        spec = self.base(faults=("crash:at=120.0,replica=1", "straggler"))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_cache_key_canonicalizes_defaulted_knobs(self):
        # An explicitly defaulted knob and the bare name are one key; a
        # chaos section changes the key vs a chaos-free config.
        assert config_key(self.base(faults=("crash:restart=20",))) == config_key(
            self.base(faults=("crash",))
        )
        assert config_key(self.base(faults=("crash",))) != config_key(self.base())


# ----------------------------------------------------------------------
# Fleet recovery (integration)
# ----------------------------------------------------------------------
def chaos_fleet(requests, schedule, router=None, replicas=3):
    return FleetSimulator(
        vllm_factory,
        requests,
        router if router is not None else RoundRobinRouter(),
        replicas,
        fault_schedule=schedule,
    )


class TestFleetRecovery:
    def test_crash_requeues_and_recovers(self):
        requests = fleet_workload(n=30, duration_s=8.0, rps=6.0)
        schedule = FaultSchedule.from_specs(
            ["crash:at=2,replica=1,restart=3"], seed=0, window_s=8.0, num_replicas=3
        )
        report = chaos_fleet(requests, schedule).run()
        chaos = report.chaos
        assert chaos is not None
        assert chaos["num_crashes"] == 1
        (crash,) = chaos["crashes"]
        assert crash["replica"] == 1
        assert crash["restart_at_s"] == 5.0
        assert crash["requests_lost"] == 0
        assert chaos["requests_lost"] == 0
        # Every in-flight request on the dead replica was re-queued and
        # finished elsewhere (or back on the restarted replica).
        assert all(r.is_finished for r in report.summary.requests)
        disrupted = [r for r in report.summary.requests if r.failover_count > 0]
        assert len(disrupted) == crash["requeued"] > 0
        assert {e["kind"] for e in chaos["events"]} == {"crash", "restart"}

    def test_fixed_seed_chaos_run_is_byte_identical(self):
        def run_once():
            requests = fleet_workload(n=30, duration_s=8.0, rps=6.0)
            schedule = FaultSchedule.from_specs(
                ["crash:at=2,replica=1,restart=3", "straggler:at=1,replica=0,slow=1.5"],
                seed=7,
                window_s=8.0,
                num_replicas=3,
            )
            report = chaos_fleet(requests, schedule).run()
            return json.dumps(report_to_dict(report.summary), sort_keys=True)

        assert run_once() == run_once()

    def test_empty_schedule_bit_identical_to_none(self):
        def run_with(schedule):
            requests = fleet_workload(n=30, duration_s=8.0, rps=6.0)
            report = chaos_fleet(requests, schedule).run()
            return json.dumps(report_to_dict(report.summary), sort_keys=True)

        assert run_with(None) == run_with(FaultSchedule())

    def test_straggler_degrades_then_restores(self):
        requests = fleet_workload(n=30, duration_s=8.0, rps=6.0)
        schedule = FaultSchedule.from_specs(
            ["straggler:at=1,replica=0,slow=3.0,duration=4"],
            seed=0,
            window_s=8.0,
            num_replicas=3,
        )
        fleet = chaos_fleet(requests, schedule)
        report = fleet.run()
        chaos = report.chaos
        kinds = [e["kind"] for e in chaos["events"]]
        assert kinds == ["straggler", "straggler-end"]
        assert chaos["num_stragglers"] == 1
        # The degradation window closed: the engine is healthy again.
        assert fleet.replicas[0].engine.slow_factor == 1.0
        assert all(r.is_finished for r in report.summary.requests)

    def test_unbounded_straggler_slows_run(self):
        requests = fleet_workload(n=30, duration_s=8.0, rps=6.0)

        def sim_time(specs):
            schedule = (
                FaultSchedule.from_specs(specs, seed=0, window_s=8.0, num_replicas=3)
                if specs
                else None
            )
            reqs = [r.fresh_copy() for r in requests]
            return chaos_fleet(reqs, schedule).run().summary.sim_time_s

        assert sim_time(["straggler:at=0,replica=0,slow=4.0"]) > sim_time(None)

    def test_crash_on_single_replica_fleet_queues_until_restart(self):
        # Degenerate but must not drop requests: the only replica dies,
        # arrivals queue on it, and everything completes after restart.
        requests = fleet_workload(n=10, duration_s=6.0, rps=2.0)
        schedule = FaultSchedule.from_specs(
            ["crash:at=1,replica=0,restart=2"], seed=0, window_s=6.0, num_replicas=1
        )
        report = chaos_fleet(requests, schedule, replicas=1).run()
        assert all(r.is_finished for r in report.summary.requests)
        assert report.chaos["requests_lost"] == 0

    def test_prefix_affinity_rehomes_after_crash(self):
        router = PrefixAffinityRouter()
        requests = fleet_workload(n=24, duration_s=8.0, rps=4.0)
        for i, req in enumerate(requests):
            req.session_id = i % 4
        schedule = FaultSchedule.from_specs(
            ["crash:at=2,replica=0,restart=4"], seed=0, window_s=8.0, num_replicas=3
        )
        report = chaos_fleet(requests, schedule, router=router).run()
        assert all(r.is_finished for r in report.summary.requests)
        # No session can still be homed on the crashed replica at the
        # crash instant; homes seen afterwards are legitimate re-homes.
        assert report.chaos["num_crashes"] == 1


# ----------------------------------------------------------------------
# Edge cases from the issue (unit level)
# ----------------------------------------------------------------------
def make_replica(index=0, system="vllm", seed=42):
    engine = small_engine(seed=seed)
    return Replica(index, engine, make_scheduler(system, engine))


class TestCrashEdgeCases:
    def test_crash_mid_prefill_resets_and_requeues(self):
        # Sarathi chunks prefill (256-token budget), so one step leaves a
        # long prompt genuinely mid-prefill — the issue's "crash while a
        # session's turn is mid-prefill".
        replica = make_replica(system="sarathi")
        req = make_request(rid=1, prompt_len=1024, max_new_tokens=8)
        req.session_id = 9
        replica.admit(req, 0.0)
        replica.step()
        assert 0 < req.prefilled < req.prompt_len  # mid-prefill
        engine = small_engine(seed=43)
        victims = replica.crash(engine, make_scheduler("sarathi", engine))
        assert victims == [req]
        req.fail_over()  # what the fleet does to every victim
        assert req.state is RequestState.QUEUED
        assert req.prefilled == 0 and req.ctx == 0
        assert req.failover_count == 1
        # The fresh engine starts with an empty KV (all blocks were lost).
        assert replica.engine.kv.used_blocks == 0
        # The request is re-servable from scratch on any replica.
        other = make_replica(index=1, seed=44)
        other.admit(req, replica.local_now)
        while other.has_work():
            other.step()
        assert req.is_finished

    def test_crash_of_draining_replica_retires_immediately(self):
        requests = fleet_workload(n=12, duration_s=6.0, rps=3.0)
        fleet = chaos_fleet(requests, FaultSchedule(), replicas=3)
        fleet._chaos_log = ChaosLog()  # unit test: drive faults by hand
        victim = fleet.replicas[1]
        fleet._drain(victim)
        assert victim.draining
        fleet._apply_crash(
            FaultEvent(at_s=1.0, kind="crash", replica=1, restart_s=5.0), 1.0
        )
        # Drain + crash = immediate retirement: no restart is scheduled
        # and the replica never rejoins.
        assert victim.retired and not victim.draining and not victim.failed
        assert not any(e.kind == "restart" for e in fleet._chaos_events)
        (record,) = fleet._chaos_log.records
        assert record["was_draining"] is True
        assert record["restart_at_s"] is None

    def test_double_crash_same_replica_after_restart(self):
        requests = fleet_workload(n=40, duration_s=10.0, rps=6.0)
        schedule = FaultSchedule.from_specs(
            ["crash:at=1,replica=1,restart=2", "crash:at=5,replica=1,restart=2"],
            seed=0,
            window_s=10.0,
            num_replicas=3,
        )
        report = chaos_fleet(requests, schedule).run()
        chaos = report.chaos
        assert chaos["num_crashes"] == 2
        assert [c["replica"] for c in chaos["crashes"]] == [1, 1]
        kinds = [e["kind"] for e in chaos["events"]]
        assert kinds.count("restart") == 2
        assert all(r.is_finished for r in report.summary.requests)

    def test_crash_while_down_is_skipped(self):
        requests = fleet_workload(n=20, duration_s=8.0, rps=4.0)
        schedule = FaultSchedule.from_specs(
            # Second crash lands inside the first one's outage window.
            ["crash:at=1,replica=1,restart=6", "crash:at=3,replica=1,restart=6"],
            seed=0,
            window_s=8.0,
            num_replicas=3,
        )
        report = chaos_fleet(requests, schedule).run()
        chaos = report.chaos
        assert chaos["num_crashes"] == 1
        skipped = [e for e in chaos["events"] if e["kind"] == "crash-skipped"]
        assert len(skipped) == 1 and skipped[0]["reason"] == "already down"

    def test_crash_of_unknown_replica_is_skipped(self):
        requests = fleet_workload(n=10, duration_s=6.0, rps=2.0)
        schedule = FaultSchedule.from_specs(
            ["crash:at=1,replica=7"], seed=0, window_s=6.0, num_replicas=3
        )
        report = chaos_fleet(requests, schedule).run()
        assert report.chaos["num_crashes"] == 0
        (event,) = report.chaos["events"]
        assert event["kind"] == "crash-skipped"

    def test_crash_mid_straggler_does_not_unslow_fresh_engine(self):
        requests = fleet_workload(n=12, duration_s=6.0, rps=3.0)
        fleet = chaos_fleet(requests, FaultSchedule(), replicas=2)
        fleet._chaos_log = ChaosLog()  # unit test: drive faults by hand
        fleet._apply_fault(
            FaultEvent(at_s=1.0, kind="straggler", replica=0, slow=2.0, duration_s=5.0),
            1.0,
        )
        assert fleet.replicas[0].engine.slow_factor == 2.0
        fleet._apply_crash(
            FaultEvent(at_s=2.0, kind="crash", replica=0, restart_s=1.0), 2.0
        )
        # The crash swapped in a fresh, healthy engine.
        assert fleet.replicas[0].engine.slow_factor == 1.0
        # The stale straggler-end must not touch it (and logs nothing).
        before = len(fleet._chaos_log.records)
        fleet._apply_fault(
            FaultEvent(at_s=6.0, kind="straggler-end", replica=0, slow=2.0), 6.0
        )
        assert fleet.replicas[0].engine.slow_factor == 1.0
        assert len(fleet._chaos_log.records) == before

    def test_failed_replica_not_routable(self):
        replica = make_replica()
        assert replica.routable(now=0.0)
        replica.failed = True
        assert not replica.routable(now=0.0)


# ----------------------------------------------------------------------
# Incident report
# ----------------------------------------------------------------------
class TestIncidentReport:
    def crash_log(self, requeued=(1,)):
        log = ChaosLog()
        log.note(2.0, "crash", replica=0, restart_at_s=4.0, was_draining=False,
                 requeued=list(requeued))
        return log

    def finished(self, rid, arrival=2.5, finish=5.0, attained=True):
        req = make_request(rid=rid, arrival=arrival)
        req.state = RequestState.FINISHED
        req.finish_time = finish
        req.n_generated = req.max_new_tokens
        req.decode_start = arrival
        req.last_token_time = finish
        req.tpot_slo = 1e9 if attained else 0.0  # avg_tpot is finite > 0
        req.failover_count = 1
        return req

    def test_recovery_time_is_last_evacuee_finish(self):
        report = build_chaos_report(
            self.crash_log(requeued=(1, 2)),
            [self.finished(1, finish=5.0), self.finished(2, finish=7.5)],
            sim_time_s=10.0,
        )
        (crash,) = report["crashes"]
        assert crash["recovered_at_s"] == 7.5
        assert crash["recovery_time_s"] == 5.5
        assert report["mean_recovery_time_s"] == 5.5
        assert report["incident_windows"] == [[2.0, 7.5]]

    def test_lost_request_means_no_recovery(self):
        lost = make_request(rid=1, arrival=2.5)
        lost.failover_count = 1
        report = build_chaos_report(self.crash_log(), [lost], sim_time_s=10.0)
        (crash,) = report["crashes"]
        assert crash["requests_lost"] == 1
        assert crash["recovered_at_s"] is None
        assert crash["recovery_time_s"] is None
        assert report["requests_lost"] == 1
        # The incident window extends to end of run when never recovered.
        assert report["incident_windows"] == [[2.0, 10.0]]

    def test_incident_window_attainment_counts_arrivals_inside(self):
        inside_ok = self.finished(1, arrival=3.0)
        inside_bad = self.finished(2, arrival=4.0, attained=False)
        outside = self.finished(3, arrival=9.0)
        report = build_chaos_report(
            self.crash_log(requeued=(1,)),
            [inside_ok, inside_bad, outside],
            sim_time_s=10.0,
        )
        incident = report["incident"]
        assert incident["num_requests"] == 2
        assert incident["num_attained"] == 1
        assert incident["attainment"] == 0.5

    def test_overlapping_windows_merge(self):
        log = ChaosLog()
        log.note(2.0, "crash", replica=0, restart_at_s=3.0, was_draining=False,
                 requeued=[1])
        log.note(4.0, "crash", replica=1, restart_at_s=5.0, was_draining=False,
                 requeued=[2])
        report = build_chaos_report(
            log,
            [self.finished(1, finish=5.0), self.finished(2, arrival=4.5, finish=6.0)],
            sim_time_s=10.0,
        )
        assert report["incident_windows"] == [[2.0, 6.0]]

    def test_report_is_strict_json(self):
        lost = make_request(rid=1, arrival=2.5)
        lost.failover_count = 1
        report = build_chaos_report(self.crash_log(), [lost], sim_time_s=10.0)
        json.dumps(report, allow_nan=False)  # no NaN anywhere

    def test_markdown_table_renders(self):
        report = build_chaos_report(
            self.crash_log(), [self.finished(1)], sim_time_s=10.0
        )
        text = format_incident_table(report, markdown=True)
        assert text.startswith("| t (s) | event | replica | detail |")
        assert "- crashes: 1" in text
        plain = format_incident_table(report)
        assert "crash" in plain and "|" not in plain.splitlines()[0]
