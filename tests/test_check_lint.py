"""Determinism linter: one positive and one negative fixture per rule.

Fixtures are source strings linted under synthetic ``src/repro/...``
paths, so scoping (which rules apply where) is exercised exactly as it
is on the real tree.  The last test holds the actual repo to the gate:
``lint_paths`` over ``src/repro`` must be clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import __version__ as repro_version
from repro.check import (
    CHECK_SCHEMA_VERSION,
    RULES,
    format_result,
    lint_file,
    lint_paths,
)
from repro.check.cli import main as check_main
from repro.check.report import result_to_dict
from repro.check.rules import RPD005_EXCLUSIONS

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint_src(source: str, relpath: str = "core/fixture.py"):
    """Lint a fixture string as if it lived at ``src/repro/<relpath>``."""
    path = Path("src/repro") / relpath
    return lint_file(path, source=textwrap.dedent(source))


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# RPD001: raw RNG
# ----------------------------------------------------------------------
class TestRPD001:
    @pytest.mark.parametrize(
        "line",
        [
            "import random",
            "from random import Random",
            "import numpy.random",
            "from numpy import random",
            "from numpy.random import default_rng",
        ],
    )
    def test_raw_rng_import_flagged(self, line):
        findings, _ = lint_src(line + "\n")
        assert rules_of(findings) == ["RPD001"]

    def test_numpy_random_attribute_flagged(self):
        findings, _ = lint_src("rng = np.random.default_rng(0)\n")
        assert "RPD001" in rules_of(findings)

    def test_derived_rng_clean(self):
        findings, _ = lint_src(
            """
            from repro._rng import derive_seed

            seed = derive_seed(0, "fleet", 1)
            """
        )
        assert findings == []

    def test_rng_module_itself_exempt(self):
        findings, _ = lint_src("import random\n", relpath="_rng.py")
        assert findings == []


# ----------------------------------------------------------------------
# RPD002: wall clock
# ----------------------------------------------------------------------
class TestRPD002:
    @pytest.mark.parametrize(
        "line",
        [
            "t = time.time()",
            "t = time.perf_counter()",
            "t = time.monotonic_ns()",
            "from time import monotonic",
            "now = datetime.now()",
            "now = datetime.datetime.now()",
            "day = date.today()",
        ],
    )
    def test_wallclock_flagged(self, line):
        findings, _ = lint_src(line + "\n")
        assert "RPD002" in rules_of(findings)

    def test_sim_clock_clean(self):
        findings, _ = lint_src(
            """
            def step(clock):
                return clock.now + 0.5
            """
        )
        assert findings == []

    def test_perfbench_exempt(self):
        findings, _ = lint_src(
            "t = time.perf_counter()\n", relpath="perfbench/fixture.py"
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPD003: unordered iteration
# ----------------------------------------------------------------------
class TestRPD003:
    @pytest.mark.parametrize(
        "src",
        [
            "for x in {1, 2}:\n    pass",
            "for p in os.listdir(d):\n    pass",
            "ys = [y for y in {1, 2}]",
            "total = sum({1.0, 2.0})",
            "xs = list(set(items))",
            "xs = tuple(frozenset(items))",
        ],
    )
    def test_unordered_flagged(self, src):
        findings, _ = lint_src(src + "\n")
        assert "RPD003" in rules_of(findings)

    @pytest.mark.parametrize(
        "src",
        [
            "for x in sorted({1, 2}):\n    pass",
            "for p in sorted(os.listdir(d)):\n    pass",
            "m = max({1, 2})",  # order-independent reduction
            "n = len({1, 2})",
            "total = sum([1.0, 2.0])",
        ],
    )
    def test_ordered_clean(self, src):
        findings, _ = lint_src(src + "\n")
        assert findings == []

    def test_perfbench_exempt(self):
        findings, _ = lint_src(
            "for x in {1, 2}:\n    pass\n", relpath="perfbench/fixture.py"
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPD004: unguarded obs call sites
# ----------------------------------------------------------------------
class TestRPD004:
    def test_unguarded_call_flagged(self):
        findings, _ = lint_src(
            """
            def step(self):
                self.obs.record(1)
            """
        )
        assert rules_of(findings) == ["RPD004"]

    def test_unguarded_store_flagged(self):
        findings, _ = lint_src(
            """
            def step(tracer, now):
                tracer.now = now
            """
        )
        assert rules_of(findings) == ["RPD004"]

    def test_guarded_call_clean(self):
        findings, _ = lint_src(
            """
            def step(self):
                if self.obs is not None:
                    self.obs.record(1)
            """
        )
        assert findings == []

    def test_guard_clause_proves_rest_of_suite(self):
        findings, _ = lint_src(
            """
            def step(tracer, now):
                if tracer is None:
                    return
                tracer.now = now
                tracer.emit("step")
            """
        )
        assert findings == []

    def test_boolop_guard_clean(self):
        findings, _ = lint_src(
            """
            def step(sampler, t):
                sampler is not None and sampler.catch_up(t)
            """
        )
        assert findings == []

    def test_guard_does_not_leak_to_other_receiver(self):
        findings, _ = lint_src(
            """
            def step(self, other):
                if self.obs is not None:
                    other.obs.record(1)
            """
        )
        assert rules_of(findings) == ["RPD004"]

    def test_obs_package_exempt(self):
        findings, _ = lint_src(
            """
            def flush(tracer):
                tracer.emit("x")
            """,
            relpath="obs/fixture.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPD005: Spec field coverage in to_dict
# ----------------------------------------------------------------------
_SPEC_TEMPLATE = """
class WidgetSpec:
    alpha: int = 1
    beta: float = 2.0
    _cache: dict | None = None

    def to_dict(self):
        return {{"alpha": self.alpha{extra}}}
"""


class TestRPD005:
    def test_missing_field_flagged(self):
        findings, _ = lint_src(_SPEC_TEMPLATE.format(extra=""))
        assert rules_of(findings) == ["RPD005"]
        assert "WidgetSpec.beta" in findings[0].message

    def test_covered_fields_clean(self):
        findings, _ = lint_src(
            _SPEC_TEMPLATE.format(extra=', "beta": self.beta')
        )
        assert findings == []

    def test_private_fields_skipped(self):
        # _cache never appears in to_dict yet is not flagged above.
        findings, _ = lint_src(
            _SPEC_TEMPLATE.format(extra=', "beta": self.beta')
        )
        assert findings == []

    def test_class_without_to_dict_skipped(self):
        findings, _ = lint_src(
            """
            class WidgetSpec:
                alpha: int = 1
            """
        )
        assert findings == []

    def test_explicit_exclusion_honored(self):
        cls, field = next(iter(RPD005_EXCLUSIONS)).split(".")
        findings, _ = lint_src(
            f"""
            class {cls}:
                {field}: object = None

                def to_dict(self):
                    return {{}}
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPD006: Param bounds
# ----------------------------------------------------------------------
class TestRPD006:
    def test_unbounded_numeric_param_flagged(self):
        findings, _ = lint_src('P = Param("k", "int", default=4)\n')
        assert rules_of(findings) == ["RPD006"]
        assert "'k'" in findings[0].message

    def test_unbounded_kind_kwarg_flagged(self):
        findings, _ = lint_src('P = Param("slow", kind="float")\n')
        assert rules_of(findings) == ["RPD006"]

    @pytest.mark.parametrize(
        "src",
        [
            'P = Param("k", "int", minimum=1)',
            'P = Param("slow", "float", exclusive_min=0.0)',
            'P = Param("cap", "int", maximum=64)',
            'P = Param("name", "str")',  # non-numeric: bounds meaningless
        ],
    )
    def test_bounded_or_non_numeric_clean(self, src):
        findings, _ = lint_src(src + "\n")
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions + RPD000
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_honored_suppression_silences_finding(self):
        findings, sups = lint_src(
            "t = time.time()  # repro: allow[RPD002] reason: fixture\n"
        )
        assert findings == []
        assert [s.rule for s in sups] == ["RPD002"]
        assert sups[0].used
        assert sups[0].reason == "fixture"

    def test_suppression_is_rule_specific(self):
        # An allow for a different rule does not silence the finding.
        findings, _ = lint_src("t = time.time()  # repro: allow[RPD003]\n")
        assert set(rules_of(findings)) == {"RPD002", "RPD000"}

    def test_unused_suppression_becomes_rpd000(self):
        findings, sups = lint_src("x = 1  # repro: allow[RPD002]\n")
        assert rules_of(findings) == ["RPD000"]
        assert findings[0].line == 1
        assert not sups[0].used

    def test_multi_rule_suppression(self):
        findings, sups = lint_src(
            "total = sum({t for t in (time.time(),)})"
            "  # repro: allow[RPD002, RPD003] reason: fixture\n"
        )
        assert findings == []
        assert sorted(s.rule for s in sups) == ["RPD002", "RPD003"]
        assert all(s.used for s in sups)


# ----------------------------------------------------------------------
# Report formats + CLI
# ----------------------------------------------------------------------
class TestReport:
    def _dirty_tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import random\nt = time.time()\n")
        return tmp_path / "repro"

    def test_json_envelope(self, tmp_path):
        result = lint_paths([self._dirty_tree(tmp_path)])
        payload = result_to_dict(result)
        assert payload["schema_version"] == CHECK_SCHEMA_VERSION
        assert payload["repro_version"] == repro_version
        assert payload["files_checked"] == 1
        assert payload["ok"] is False
        assert [f["rule"] for f in payload["findings"]] == ["RPD001", "RPD002"]
        finding = payload["findings"][0]
        assert finding["title"] == RULES["RPD001"].title
        assert finding["path"].endswith("bad.py")
        assert finding["line"] == 1 and finding["col"] >= 1
        # Strict JSON: round-trips with sorted keys, no NaN.
        assert json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))

    def test_text_format_names_positions(self, tmp_path):
        result = lint_paths([self._dirty_tree(tmp_path)])
        text = format_result(result)
        assert "bad.py:1:1: RPD001" in text
        assert "checked 1 file(s): 2 finding(s)" in text

    def test_cli_exit_status(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        assert check_main([str(tree)]) == 1
        assert "RPD001" in capsys.readouterr().out
        (tree / "core" / "bad.py").write_text("x = 1\n")
        assert check_main([str(tree)]) == 0

    def test_cli_json_flag(self, tmp_path, capsys):
        tree = self._dirty_tree(tmp_path)
        assert check_main(["--json", str(tree)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == CHECK_SCHEMA_VERSION
        assert not payload["ok"]

    def test_main_cli_check_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        tree = self._dirty_tree(tmp_path)
        assert main(["check", "lint", str(tree)]) == 1
        assert "RPD001" in capsys.readouterr().out

    def test_list_checks_discovery(self, capsys):
        from repro.cli import main

        assert main(["list", "checks"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


# ----------------------------------------------------------------------
# The actual tree is the final fixture: the gate must pass on it.
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_repo_lints_clean(self):
        result = lint_paths([REPO_SRC])
        assert result.ok, "\n" + "\n".join(f.format() for f in result.findings)
        assert result.files_checked > 50
        # The deliberate wall-clock exceptions are inventoried and used.
        used = [s for s in result.suppressions if s.used]
        assert len(used) >= 2
        assert all(s.reason for s in used), "suppressions must carry reasons"
