"""Tests for adaptive (d, w) control (Equations 8-9) and grid search."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveController, clip, grid_search_constants


class TestClip:
    def test_inside(self):
        assert clip(10, 1, 5) == 5

    def test_below(self):
        assert clip(10, 1, -3) == 1

    def test_above(self):
        assert clip(10, 1, 42) == 10

    def test_empty_range(self):
        with pytest.raises(ValueError):
            clip(1, 10, 5)


class TestConfig:
    def test_defaults_valid(self):
        AdaptiveConfig()

    def test_invalid_depth_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(d_min=5, d_max=2)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(w_max=0)


class TestController:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            AdaptiveController(0, 10)

    def test_equation8_formula(self):
        # d = clip(Dmax, Dmin, floor(B1/(n+c1)) - 1)
        ctl = AdaptiveController(120, 200, AdaptiveConfig(d_min=1, d_max=8, c1=1.0))
        assert ctl.depth(9) == 8  # floor(120/10)-1 = 11 -> clipped to 8
        assert ctl.depth(39) == 2  # floor(120/40)-1 = 2
        assert ctl.depth(119) == 1  # floor(120/120)-1 = 0 -> clipped to 1

    def test_equation9_formula(self):
        # w = clip(Wmax, 1, floor(B2/n) + c2)
        ctl = AdaptiveController(120, 200, AdaptiveConfig(w_max=4, c2=0))
        assert ctl.width(10) == 4  # 20 -> clipped
        assert ctl.width(100) == 2
        assert ctl.width(300) == 1  # 0 -> clipped up to 1

    def test_c2_shifts_width(self):
        base = AdaptiveController(120, 200, AdaptiveConfig(w_max=8, c2=0))
        shifted = AdaptiveController(120, 200, AdaptiveConfig(w_max=8, c2=2))
        assert shifted.width(100) == base.width(100) + 2

    def test_monotone_decreasing_in_load(self):
        ctl = AdaptiveController(120, 160)
        depths = [ctl.depth(n) for n in (1, 5, 20, 60, 120)]
        widths = [ctl.width(n) for n in (1, 5, 20, 60, 120)]
        assert depths == sorted(depths, reverse=True)
        assert widths == sorted(widths, reverse=True)

    def test_bounds_respected_everywhere(self):
        cfg = AdaptiveConfig(d_min=2, d_max=6, w_max=3)
        ctl = AdaptiveController(150, 150, cfg)
        for n in range(1, 400, 7):
            d, w = ctl.params(n)
            assert cfg.d_min <= d <= cfg.d_max
            assert 1 <= w <= cfg.w_max

    def test_invalid_n(self):
        ctl = AdaptiveController(100, 100)
        with pytest.raises(ValueError):
            ctl.depth(0)
        with pytest.raises(ValueError):
            ctl.width(0)


class TestGridSearch:
    def test_finds_maximum(self):
        # Score peaks at c1=1.0, c2=1.
        def score(c1, c2):
            return -((c1 - 1.0) ** 2) - (c2 - 1) ** 2

        c1, c2, s = grid_search_constants(score)
        assert (c1, c2) == (1.0, 1)
        assert s == 0.0

    def test_custom_grids(self):
        calls = []

        def score(c1, c2):
            calls.append((c1, c2))
            return c1 + c2

        c1, c2, _ = grid_search_constants(score, c1_grid=(0.0, 5.0), c2_grid=(0, 3))
        assert (c1, c2) == (5.0, 3)
        assert len(calls) == 4
