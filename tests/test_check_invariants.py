"""Runtime invariant sanitizer: failure paths and byte-transparency.

Two obligations, tested separately:

- **It catches corruption.**  Each invariant family gets a test that
  deliberately breaks simulator state (a skewed refcount, a backwards
  event, a dropped request) and asserts the violation report names the
  right invariant, replica, request, and block.
- **It changes nothing.**  Golden scenarios (the committed digests of
  :mod:`tests.test_golden_equivalence`) must reproduce byte-for-byte
  with the sanitizer attached — thousands of checks, zero drift.
"""

from __future__ import annotations

import hashlib
from types import SimpleNamespace

import pytest

from repro.analysis.export import report_to_json
from repro.analysis.runner import run_spec
from repro.analysis.spec import ExperimentSpec
from repro.check import InvariantChecker, InvariantViolation
from repro.prefixcache import PrefixCacheManager
from repro.serving.kv_cache import KVCacheManager
from tests.conftest import make_request
from tests.test_golden_equivalence import GOLDEN


def violation(call, *args, **kwargs) -> InvariantViolation:
    with pytest.raises(InvariantViolation) as exc_info:
        call(*args, **kwargs)
    return exc_info.value


# ----------------------------------------------------------------------
# KV accounting
# ----------------------------------------------------------------------
class TestKVInvariants:
    def test_clean_kv_passes(self):
        kv = KVCacheManager(capacity_tokens=1024)
        kv.ensure(rid=1, tokens=100)
        checker = InvariantChecker()
        checker.check_kv(kv, "admit", replica=0, rid=1)
        assert checker.checks == 1

    def test_used_counter_skew_detected(self):
        kv = KVCacheManager(capacity_tokens=1024)
        kv.ensure(rid=1, tokens=100)
        kv._used += 1  # corrupt: counter no longer matches allocations
        v = violation(InvariantChecker().check_kv, kv, "finish", replica=3, rid=1)
        assert v.invariant == "kv-conservation"
        assert v.replica == 3 and v.rid == 1
        assert "after finish" in v.message

    def test_negative_allocation_detected(self):
        kv = KVCacheManager(capacity_tokens=1024)
        kv.ensure(rid=7, tokens=64)
        kv._allocated[7] = -1
        kv._used = -1
        v = violation(InvariantChecker().check_kv, kv, "preempt", rid=7)
        assert v.invariant == "kv-allocation"
        assert "request 7" in v.message


class TestPrefixInvariants:
    def _shared_kv(self) -> PrefixCacheManager:
        kv = PrefixCacheManager(capacity_tokens=1024)
        kv.ensure(rid=1, tokens=64)  # 4 blocks private
        kv.commit_keys(1, [101, 102])  # two of them published as shared
        kv.lock_keys(2, [101, 102])  # a second request references the chain
        return kv

    def test_clean_prefix_state_passes(self):
        checker = InvariantChecker()
        checker.check_kv(self._shared_kv(), "admit", rid=2)

    def test_refcount_skew_names_block(self):
        kv = self._shared_kv()
        kv._shared[102].refcount += 1  # corrupt one block's refcount
        v = violation(InvariantChecker().check_kv, kv, "admit", replica=1, rid=2)
        assert v.invariant == "prefix-refcount"
        assert v.block == 102
        assert v.replica == 1 and v.rid == 2
        assert "2 live chain(s)" in v.message

    def test_dangling_chain_reference_detected(self):
        kv = self._shared_kv()
        del kv._shared[102]  # chain still names the evicted block
        v = violation(InvariantChecker().check_kv, kv, "evacuate")
        assert v.invariant == "prefix-refcount"
        assert v.block == 102

    def test_unreferenced_count_skew_detected(self):
        kv = self._shared_kv()
        kv._unreferenced += 1
        v = violation(InvariantChecker().check_kv, kv, "retire")
        assert v.invariant == "prefix-unreferenced"

    def test_children_count_skew_detected(self):
        kv = self._shared_kv()
        kv._shared[101].children = 5
        v = violation(InvariantChecker().check_kv, kv, "admit")
        assert v.invariant == "prefix-children"
        assert v.block == 101

    def test_broken_chain_linkage_detected(self):
        kv = self._shared_kv()
        # Repoint the child's parent (keeping the children tallies
        # consistent, so only the chain-linkage audit can catch it).
        kv._shared[102].parent = 999
        kv._shared[101].children = 0
        v = violation(InvariantChecker().check_kv, kv, "admit")
        assert v.invariant == "prefix-chain"
        assert v.block == 102
        assert "breaks at position 1" in v.message


# ----------------------------------------------------------------------
# Event-time monotonicity + sampler bounds
# ----------------------------------------------------------------------
class TestTimeInvariants:
    def test_event_time_must_not_regress(self):
        checker = InvariantChecker()
        checker.check_event_time(5.0)
        checker.check_event_time(5.0)  # equal is fine
        v = violation(checker.check_event_time, 4.0)
        assert v.invariant == "event-monotonicity"
        assert v.time == 4.0
        assert "after t=5.0" in v.message

    def test_float_slack_tolerated(self):
        checker = InvariantChecker()
        checker.check_event_time(5.0)
        checker.check_event_time(5.0 - 1e-13)  # within _EPS

    def test_replica_step_names_replica(self):
        checker = InvariantChecker()
        checker.check_replica_step(1, 3.0)
        checker.check_replica_step(2, 1.0)  # other replicas are independent
        v = violation(checker.check_replica_step, 1, 2.0)
        assert v.invariant == "replica-monotonicity"
        assert v.replica == 1
        assert "3.0 -> 2.0" in v.message

    def test_sampler_beyond_event_time_detected(self):
        sampler = SimpleNamespace(samples=[SimpleNamespace(t=10.0)])
        v = violation(InvariantChecker().check_sampler, sampler, 5.0)
        assert v.invariant == "sampler-bound"
        assert "t=10.0" in v.message

    def test_sampler_at_event_time_passes(self):
        sampler = SimpleNamespace(samples=[SimpleNamespace(t=5.0)])
        InvariantChecker().check_sampler(sampler, 5.0)


# ----------------------------------------------------------------------
# Request conservation
# ----------------------------------------------------------------------
class TestConservation:
    def test_exact_accounting_passes(self):
        reqs = [make_request(rid=i) for i in range(3)]
        InvariantChecker().check_conservation(reqs, list(reversed(reqs)), "merge")

    def test_dropped_request_named(self):
        reqs = [make_request(rid=i) for i in range(3)]
        v = violation(
            InvariantChecker().check_conservation, reqs, reqs[:2], "fleet merge"
        )
        assert v.invariant == "request-conservation"
        assert v.rid == 2
        assert "at fleet merge" in v.message
        assert "missing rids [2]" in v.message

    def test_duplicated_request_named(self):
        reqs = [make_request(rid=i) for i in range(2)]
        v = violation(
            InvariantChecker().check_conservation,
            reqs,
            [*reqs, reqs[0]],
            "solo drain",
        )
        assert "duplicated/unknown rids [0]" in v.message

    def test_violation_report_is_structured(self):
        v = InvariantViolation(
            "request-conservation", "boom", replica=2, rid=7, block=3, time=1.5
        )
        assert v.to_dict() == {
            "invariant": "request-conservation",
            "message": "boom",
            "replica": 2,
            "rid": 7,
            "block": 3,
            "time": 1.5,
        }
        assert v.format() == (
            "invariant request-conservation violated: boom "
            "[replica=2 rid=7 block=3 t=1.5]"
        )
        assert isinstance(v, AssertionError)


# ----------------------------------------------------------------------
# End-to-end transparency: golden digests with the sanitizer attached
# ----------------------------------------------------------------------
_GOLDEN_UNDER_CHECK = [
    "sessions-prefix-affinity-fleet",  # prefix sharing across a fleet
    "chaos-crash-straggler-fleet",  # crash + straggler + prefix cache
]


class TestEndToEnd:
    @pytest.mark.parametrize("name", _GOLDEN_UNDER_CHECK)
    def test_golden_digest_unchanged_under_invariants(self, name):
        kwargs, expected = next(
            (kw, digest) for n, kw, digest in GOLDEN if n == name
        )
        checker = InvariantChecker()
        report = run_spec(
            ExperimentSpec.create(model="llama70b", seed=kwargs.pop("seed", 0), **kwargs),
            invariants=checker,
        )
        digest = hashlib.sha256(report_to_json(report).encode("utf-8")).hexdigest()
        assert digest == expected, "sanitizer must not perturb simulation"
        assert checker.checks > 1000  # it actually ran, densely

    def test_solo_run_checked(self):
        checker = InvariantChecker()
        spec = ExperimentSpec.create(
            model="llama70b",
            system="vllm",
            rps=6.0,
            duration_s=6.0,
            trace="sessions",
            prefix_cache=True,
            seed=3,
        )
        baseline = report_to_json(run_spec(spec))
        checked = report_to_json(run_spec(spec, invariants=checker))
        assert checked == baseline
        assert checker.checks > 100

    def test_cli_flag_reports_checks(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "run",
                    "--system",
                    "vllm",
                    "--rps",
                    "2.0",
                    "--duration",
                    "4",
                    "--trace",
                    "steady",
                    "--check-invariants",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "invariants: ok (" in captured.err
        assert "cache: bypassed (--check-invariants always simulates)" in captured.out

    def test_cli_surfaces_violation(self, capsys, monkeypatch):
        import repro.analysis.runner as runner_mod
        from repro.cli import main

        def explode(config, observer=None, invariants=None):
            raise InvariantViolation("kv-conservation", "synthetic", replica=1, rid=4)

        monkeypatch.setattr(runner_mod, "run_spec", explode)
        code = main(
            [
                "run",
                "--system",
                "vllm",
                "--rps",
                "2.0",
                "--duration",
                "4",
                "--check-invariants",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "invariant kv-conservation violated" in err
        assert "replica=1" in err and "rid=4" in err
