"""Tests for the SmartSpec-style adaptive-chain baseline."""

from __future__ import annotations

import pytest

from repro.baselines.smartspec import SmartSpecScheduler
from repro.serving.server import ServingSimulator
from tests.conftest import make_request


class TestPolicy:
    def test_invalid_k_max(self, engine):
        with pytest.raises(ValueError):
            SmartSpecScheduler(engine, k_max=0)

    def test_expected_accepted_geometric(self, engine):
        s = SmartSpecScheduler(engine)
        # p=0.5: E = 0.5 + 0.25 + 0.125 = 0.875 for k=3.
        assert s._expected_accepted(3, 0.5) == pytest.approx(0.875)
        assert s._expected_accepted(2, 1.0) == 2.0

    def test_choose_k_bounds(self, engine):
        s = SmartSpecScheduler(engine, k_max=6)
        for n in (1, 8, 64):
            assert 1 <= s.choose_k(n, 0) <= 6

    def test_high_acceptance_longer_chains(self, engine):
        s = SmartSpecScheduler(engine)
        s.acceptance_ema = 0.9
        k_high = s.choose_k(4, 0)
        s.acceptance_ema = 0.15
        k_low = s.choose_k(4, 0)
        assert k_high > k_low

    def test_load_shortens_chains(self, engine):
        # Large batches make per-token verification expensive, so the
        # goodput-optimal k shrinks.
        s = SmartSpecScheduler(engine)
        s.acceptance_ema = 0.7
        assert s.choose_k(200, 0) <= s.choose_k(2, 0)

    def test_ema_update_and_clamp(self, engine):
        s = SmartSpecScheduler(engine)
        start = s.acceptance_ema
        s._observe(0, 10)
        assert s.acceptance_ema < start
        for _ in range(100):
            s._observe(0, 10)
        assert s.acceptance_ema == pytest.approx(0.05)
        for _ in range(200):
            s._observe(10, 10)
        assert s.acceptance_ema == pytest.approx(0.95)

    def test_observe_zero_proposed_noop(self, engine):
        s = SmartSpecScheduler(engine)
        before = s.acceptance_ema
        s._observe(0, 0)
        assert s.acceptance_ema == before


class TestServing:
    def test_completes_workload(self, engine):
        reqs = [
            make_request(rid=i, arrival=0.05 * i, prompt_len=30, max_new_tokens=8)
            for i in range(8)
        ]
        report = ServingSimulator(engine, SmartSpecScheduler(engine), reqs).run()
        assert report.metrics.num_finished == 8
        assert report.metrics.mean_accepted_per_verify >= 0

    def test_never_overshoots_cap(self, engine):
        s = SmartSpecScheduler(engine)
        r = make_request(rid=0, prompt_len=10, max_new_tokens=2, predictability=0.95)
        r.advance_prefill(10)
        r.begin_decode(engine.root_ctx(r), 0.0)
        s.running.append(r)
        s.step(0.0)
        assert r.n_generated <= 2

    def test_acceptance_feedback_loop(self, engine):
        # After serving a predictable workload the EMA should rise above
        # the conservative default.
        reqs = [
            make_request(
                rid=i, arrival=0.02 * i, prompt_len=20, max_new_tokens=30,
                predictability=0.92,
            )
            for i in range(6)
        ]
        s = SmartSpecScheduler(engine)
        ServingSimulator(engine, s, reqs).run()
        assert s.acceptance_ema > 0.7
