"""Tests for the CLI and result export."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import (
    metrics_to_dict,
    points_from_json,
    points_to_csv,
    points_to_json,
    report_to_dict,
    report_to_json,
)
from repro.analysis.report import SeriesPoint
from repro.cli import build_parser, main
from repro.serving.metrics import compute_metrics
from tests.conftest import make_request


def _finished_request(rid=0):
    req = make_request(rid=rid, max_new_tokens=4, tpot_slo=1.0)
    req.advance_prefill(req.prompt_len)
    req.begin_decode(1, 0.0)
    req.commit_tokens(4, 2, 0.2)
    return req


class TestExport:
    def test_metrics_roundtrip_fields(self):
        m = compute_metrics([_finished_request()])
        d = metrics_to_dict(m)
        assert d["num_requests"] == 1
        assert d["attainment"] == 1.0
        assert "coding" in d["per_category"]
        json.dumps(d)  # serializable

    def test_points_csv(self):
        pts = [
            SeriesPoint(2.0, "B", 0.8, 90, 0.2, 0.0),
            SeriesPoint(1.0, "A", 0.9, 100, 0.1, 2.0),
        ]
        csv_text = points_to_csv(pts)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("x,system")
        assert lines[1].startswith("1.0,A")  # sorted by x
        assert len(lines) == 3

    def test_points_json_roundtrip(self):
        pts = [SeriesPoint(1.0, "A", 0.9, 100.0, 0.1, 2.0)]
        back = points_from_json(points_to_json(pts))
        assert back == pts

    def test_report_serialization(self, engine):
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=3)]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        d = report_to_dict(report)
        assert d["scheduler"] == "vLLM"
        assert d["metrics"]["num_finished"] == 1
        parsed = json.loads(report_to_json(report))
        assert parsed["iterations"] == report.iterations


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--system", "vllm", "--rps", "2.0"])
        assert args.system == "vllm"
        args = parser.parse_args(["sweep", "--systems", "adaserve", "--rps", "2.0", "3.0"])
        assert args.rps == [2.0, 3.0]
        args = parser.parse_args(["profile", "--model", "qwen32b"])
        assert args.model == "qwen32b"

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "bogus"])

    def test_profile_command(self, capsys):
        assert main(["profile", "--model", "llama70b"]) == 0
        out = capsys.readouterr().out
        assert "baseline decode latency" in out
        assert "token budget" in out

    def test_run_command_small(self, capsys):
        rc = main(
            ["run", "--system", "vllm", "--rps", "1.0", "--duration", "4",
             "--trace", "steady"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "attainment" in out
        assert "category" in out

    def test_sweep_command_small(self, capsys):
        rc = main(
            ["sweep", "--systems", "vllm", "--rps", "1.0", "--duration", "4",
             "--trace", "steady"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO attainment" in out
        assert "Goodput" in out
