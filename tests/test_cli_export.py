"""Tests for the CLI and result export."""

from __future__ import annotations

import json
from typing import ClassVar

import pytest

from repro import __version__ as repro_version
from repro.analysis.export import REPORT_SCHEMA_VERSION
from repro.analysis.export import (
    metrics_from_dict,
    metrics_to_dict,
    point_from_record,
    points_from_json,
    points_to_csv,
    points_to_json,
    report_from_dict,
    report_to_dict,
    report_to_json,
)
from repro.analysis.report import SeriesPoint
from repro.cli import build_parser, main
from repro.serving.metrics import compute_metrics
from tests.conftest import make_request


def _finished_request(rid=0):
    req = make_request(rid=rid, max_new_tokens=4, tpot_slo=1.0)
    req.advance_prefill(req.prompt_len)
    req.begin_decode(1, 0.0)
    req.commit_tokens(4, 2, 0.2)
    return req


class TestExport:
    def test_metrics_roundtrip_fields(self):
        m = compute_metrics([_finished_request()])
        d = metrics_to_dict(m)
        assert d["num_requests"] == 1
        assert d["attainment"] == 1.0
        assert "coding" in d["per_category"]
        json.dumps(d)  # serializable

    def test_points_csv(self):
        pts = [
            SeriesPoint(2.0, "B", 0.8, 90, 0.2, 0.0),
            SeriesPoint(1.0, "A", 0.9, 100, 0.1, 2.0),
        ]
        csv_text = points_to_csv(pts)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("x,system")
        assert lines[1].startswith("1.0,A")  # sorted by x
        assert len(lines) == 3

    def test_points_json_roundtrip(self):
        pts = [SeriesPoint(1.0, "A", 0.9, 100.0, 0.1, 2.0)]
        back = points_from_json(points_to_json(pts))
        assert back == pts

    def test_report_serialization(self, engine):
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=3)]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        d = report_to_dict(report)
        assert d["scheduler"] == "vLLM"
        assert d["metrics"]["num_finished"] == 1
        parsed = json.loads(report_to_json(report))
        assert parsed["iterations"] == report.iterations

    def test_metrics_dict_roundtrip(self):
        m = compute_metrics([_finished_request()])
        back = metrics_from_dict(metrics_to_dict(m))
        assert back == m
        assert back.attainment == m.attainment
        assert back.per_category.keys() == m.per_category.keys()

    def test_report_dict_roundtrip(self, engine):
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=3)]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        back = report_from_dict(report_to_dict(report))
        assert back.scheduler_name == report.scheduler_name
        assert back.metrics == report.metrics
        assert back.phase_breakdown == report.phase_breakdown
        assert back.iterations == report.iterations
        assert back.requests == []  # per-request detail is not serialized

    def test_point_from_record(self, engine):
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        reqs = [make_request(rid=0, prompt_len=10, max_new_tokens=3)]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        record = {"config": {"rps": 2.5}, "report": report_to_dict(report)}
        p = point_from_record(record)
        assert p.x == 2.5
        assert p.system == "vLLM"
        assert p.goodput == report.metrics.goodput


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--system", "vllm", "--rps", "2.0"])
        assert args.system == "vllm"
        args = parser.parse_args(["sweep", "--systems", "adaserve", "--rps", "2.0", "3.0"])
        assert args.rps == [2.0, 3.0]
        args = parser.parse_args(["profile", "--model", "qwen32b"])
        assert args.model == "qwen32b"

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "bogus"])

    def test_profile_command(self, capsys):
        assert main(["profile", "--model", "llama70b"]) == 0
        out = capsys.readouterr().out
        assert "baseline decode latency" in out
        assert "token budget" in out

    def test_run_command_small(self, capsys):
        rc = main(
            ["run", "--system", "vllm", "--rps", "1.0", "--duration", "4",
             "--trace", "steady"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "attainment" in out
        assert "category" in out

    def test_sweep_command_small(self, capsys):
        rc = main(
            ["sweep", "--systems", "vllm", "--rps", "1.0", "--duration", "4",
             "--trace", "steady", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO attainment" in out
        assert "Goodput" in out
        assert "cache: disabled" in out


class TestCLICluster:
    _CLUSTER: ClassVar[list[str]] = ["cluster", "--system", "vllm", "--replicas", "2", "--router", "p2c",
                "--rps", "3.0", "--duration", "4", "--trace", "steady", "--no-cache"]

    def test_cluster_command_runs(self, capsys):
        assert main(self._CLUSTER) == 0
        out = capsys.readouterr().out
        assert "vLLM x2 [p2c]" in out
        assert "router: p2c" in out

    def test_cluster_autoscale_flag(self, capsys):
        argv = [*self._CLUSTER, "--autoscale", "--max-replicas", "3", "--warmup", "1.0"]
        assert main(argv) == 0
        assert "autoscale: on" in capsys.readouterr().out

    def test_autoscale_knobs_require_autoscale_flag(self, capsys):
        assert main([*self._CLUSTER, "--max-replicas", "4"]) == 2
        assert "--autoscale" in capsys.readouterr().err
        assert main([*self._CLUSTER, "--warmup", "1.0"]) == 2

    def test_max_replicas_must_cover_initial_fleet(self, capsys):
        argv = [*self._CLUSTER, "--autoscale", "--max-replicas", "1"]
        assert main(argv) == 2
        assert "must be >=" in capsys.readouterr().err

    def test_negative_warmup_rejected(self, capsys):
        argv = [*self._CLUSTER, "--autoscale", "--warmup", "-1"]
        assert main(argv) == 2
        assert "--warmup" in capsys.readouterr().err

    def test_cluster_router_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--router", "dns"])

    def test_sweep_accepts_cluster_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--replicas", "2", "--router", "least-loaded"]
        )
        assert args.replicas == 2
        assert args.router == "least-loaded"

    def test_sweep_router_requires_replicas(self, capsys):
        argv = ["sweep", "--systems", "vllm", "--rps", "1.0", "--duration", "4",
                "--trace", "steady", "--no-cache", "--router", "p2c"]
        assert main(argv) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_cluster_router_inert_without_fleet(self, capsys):
        argv = ["cluster", "--system", "vllm", "--replicas", "1", "--router", "p2c",
                "--rps", "3.0", "--duration", "4", "--trace", "steady", "--no-cache"]
        assert main(argv) == 2
        assert "no effect" in capsys.readouterr().err


class TestCLIOut:
    def test_run_out_writes_strict_report_json(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        argv = ["run", "--system", "vllm", "--rps", "1.0", "--duration", "4",
                "--trace", "steady", "--no-cache", "--out", str(out_file)]
        assert main(argv) == 0
        payload = json.loads(out_file.read_text())
        assert payload["scheduler"] == "vLLM"
        assert payload["metrics"]["num_requests"] > 0
        # Exports are self-describing: schema + package version embedded.
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["repro_version"] == repro_version
        assert "NaN" not in out_file.read_text()

    def test_sweep_out_writes_points_json(self, capsys, tmp_path):
        out_file = tmp_path / "points.json"
        argv = ["sweep", "--systems", "vllm", "--rps", "1.0", "2.0", "--duration", "4",
                "--trace", "steady", "--no-cache", "--out", str(out_file)]
        assert main(argv) == 0
        payload = json.loads(out_file.read_text())
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["repro_version"] == repro_version
        points = payload["points"]
        assert sorted(p["x"] for p in points) == [1.0, 2.0]
        assert all(p["system"] == "vLLM" for p in points)

    def test_cluster_out_writes_report_json(self, capsys, tmp_path):
        out_file = tmp_path / "cluster.json"
        argv = ["cluster", "--system", "vllm", "--replicas", "2", "--rps", "3.0",
                "--duration", "4", "--trace", "steady", "--no-cache",
                "--out", str(out_file)]
        assert main(argv) == 0
        payload = json.loads(out_file.read_text())
        assert payload["scheduler"].startswith("vLLM x2")


class TestCLISweepDedupe:
    def test_duplicate_rps_simulated_and_reported_once(self, capsys):
        argv = ["sweep", "--systems", "vllm", "--rps", "1.0", "1.0", "2.0",
                "--duration", "4", "--trace", "steady", "--no-cache"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "simulations executed: 2" in captured.out
        # One progress line and one table row per unique point.
        assert captured.err.count("done:") == 2
        attainment_table = captured.out.split("SLO attainment:")[1].split("Goodput")[0]
        rows = [ln for ln in attainment_table.strip().splitlines()[2:] if ln.strip()]
        assert len(rows) == 2


class TestCLICache:
    _RUN: ClassVar[list[str]] = ["run", "--system", "vllm", "--rps", "1.0", "--duration", "4",
            "--trace", "steady"]
    _SWEEP: ClassVar[list[str]] = ["sweep", "--systems", "vllm", "sarathi", "--rps", "1.0", "2.0",
              "--duration", "4", "--trace", "steady"]

    def test_parser_cache_flags(self):
        args = build_parser().parse_args([*self._SWEEP, "--jobs", "4", "--no-cache"])
        assert args.jobs == 4
        assert args.no_cache
        args = build_parser().parse_args([*self._RUN, "--cache-dir", "/tmp/x"])
        assert args.cache_dir == "/tmp/x"

    def test_jobs_rejected_where_meaningless_or_invalid(self):
        with pytest.raises(SystemExit):  # run is a single point; no --jobs
            build_parser().parse_args([*self._RUN, "--jobs", "2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args([*self._SWEEP, "--jobs", "0"])

    def test_cache_prune_command(self, capsys, tmp_path):
        argv = [*self._RUN, "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        # Strand the record by rewriting its embedded code fingerprint.
        [path] = list(tmp_path.rglob("*.json"))
        record = json.loads(path.read_text())
        record["code"] = "an-older-simulator"
        path.write_text(json.dumps(record))
        # Dry run reports the stranded record without touching it.
        assert main(["cache-prune", "--dry-run", "--cache-dir", str(tmp_path)]) == 0
        assert "would remove 1 stale record(s)" in capsys.readouterr().out
        assert path.exists()
        assert main(["cache-prune", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 stale record(s)" in capsys.readouterr().out
        assert not path.exists()
        assert main(["cache-prune", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 0 stale record(s)" in capsys.readouterr().out

    def test_repeated_run_hits_cache(self, capsys, tmp_path):
        argv = [*self._RUN, "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "simulations executed: 1" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "simulations executed: 0" in warm
        # Identical results whether simulated or read back from cache.
        def strip(text):
            return [ln for ln in text.splitlines() if not ln.startswith("cache:")]

        assert strip(cold) == strip(warm)

    def test_repeated_sweep_runs_zero_simulations(self, capsys, tmp_path):
        argv = [*self._SWEEP, "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "simulations executed: 4" in capsys.readouterr().out
        assert main(argv) == 0
        assert "simulations executed: 0" in capsys.readouterr().out

    def test_no_cache_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main([*self._RUN, "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "cache").exists()
