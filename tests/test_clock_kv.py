"""Tests for the simulation clock, arrival stream and KV-cache manager."""

from __future__ import annotations

import pytest

from repro.serving.clock import ArrivalStream, SimClock
from repro.serving.kv_cache import KVCacheManager, OutOfKVCache
from tests.conftest import make_request


class TestClock:
    def test_advance(self):
        c = SimClock()
        assert c.advance(1.5) == 1.5
        assert c.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        c = SimClock(10.0)
        c.advance_to(12.0)
        assert c.now == 12.0

    def test_advance_to_past_rejected(self):
        c = SimClock(10.0)
        with pytest.raises(ValueError):
            c.advance_to(9.0)


class TestArrivalStream:
    def test_sorted_release(self):
        reqs = [make_request(rid=i, arrival=t) for i, t in enumerate([3.0, 1.0, 2.0])]
        stream = ArrivalStream(reqs)
        assert [r.arrival_time for r in stream.release_until(2.5)] == [1.0, 2.0]
        assert stream.next_arrival == 3.0
        assert len(stream) == 1

    def test_exhaustion(self):
        stream = ArrivalStream([make_request(arrival=1.0)])
        stream.release_until(5.0)
        assert stream.exhausted
        assert stream.next_arrival is None

    def test_release_boundary_inclusive(self):
        stream = ArrivalStream([make_request(arrival=1.0)])
        assert len(stream.release_until(1.0)) == 1

    def test_empty(self):
        stream = ArrivalStream([])
        assert stream.exhausted
        assert stream.release_until(100.0) == []


class TestKVCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KVCacheManager(capacity_tokens=4, block_size=16)

    def test_blocks_for_ceil(self):
        kv = KVCacheManager(1600, block_size=16)
        assert kv.blocks_for(0) == 0
        assert kv.blocks_for(1) == 1
        assert kv.blocks_for(16) == 1
        assert kv.blocks_for(17) == 2

    def test_ensure_grows_monotonically(self):
        kv = KVCacheManager(1600, block_size=16)
        kv.ensure(1, 20)
        assert kv.allocation(1) == 2
        kv.ensure(1, 10)  # shrink request: no-op
        assert kv.allocation(1) == 2
        kv.ensure(1, 40)
        assert kv.allocation(1) == 3

    def test_used_blocks_tracked(self):
        kv = KVCacheManager(1600, block_size=16)
        kv.ensure(1, 32)
        kv.ensure(2, 16)
        assert kv.used_blocks == 3
        assert kv.free_blocks == 100 - 3

    def test_out_of_capacity(self):
        kv = KVCacheManager(160, block_size=16)  # 10 blocks
        kv.ensure(1, 150)
        with pytest.raises(OutOfKVCache):
            kv.ensure(2, 32)
        # Failed allocation must not change state.
        assert kv.allocation(2) == 0
        assert kv.used_blocks == 10

    def test_free_returns_blocks(self):
        kv = KVCacheManager(1600, block_size=16)
        kv.ensure(1, 64)
        assert kv.free(1) == 4
        assert kv.used_blocks == 0
        assert kv.free(1) == 0  # double free is harmless

    def test_can_fit(self):
        kv = KVCacheManager(160, block_size=16)
        assert kv.can_fit(1, 160)
        kv.ensure(1, 80)
        assert kv.can_fit(1, 160)  # growing own allocation
        assert not kv.can_fit(2, 160)
        assert kv.can_fit(2, 80)

    def test_stats(self):
        kv = KVCacheManager(1600, block_size=16)
        kv.ensure(1, 16)
        s = kv.stats()
        assert s.total_blocks == 100
        assert s.used_blocks == 1
        assert s.num_requests == 1
        assert s.utilization == pytest.approx(0.01)

    def test_holds(self):
        kv = KVCacheManager(1600)
        assert not kv.holds(5)
        kv.ensure(5, 1)
        assert kv.holds(5)
