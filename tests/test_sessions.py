"""Tests for multi-turn session workloads and prefix-affinity routing."""

from __future__ import annotations

import pytest

from repro.analysis.spec import ExperimentSpec, apply_axis
from repro.cluster.router import PrefixAffinityRouter
from repro.prefixcache import token_ids
from repro.registry import TRACES, SpecError
from repro.workloads.sessions import SessionGenerator
from tests.conftest import make_request, tiny_generator


@pytest.fixture
def session_requests(target_roofline):
    gen = tiny_generator(target_roofline, seed=11)
    return SessionGenerator(
        gen, turns=4, system_prompt=64, think_time_s=1.0
    ).generate(duration_s=30.0, rps=4.0)


class TestSessionGenerator:
    def test_deterministic(self, target_roofline, session_requests):
        again = SessionGenerator(
            tiny_generator(target_roofline, seed=11),
            turns=4, system_prompt=64, think_time_s=1.0,
        ).generate(duration_s=30.0, rps=4.0)
        assert [
            (r.rid, r.arrival_time, r.prompt_len, r.session_id, r.prompt_segments)
            for r in session_requests
        ] == [
            (r.rid, r.arrival_time, r.prompt_len, r.session_id, r.prompt_segments)
            for r in again
        ]

    def test_rids_follow_arrival_order(self, session_requests):
        arrivals = [r.arrival_time for r in session_requests]
        assert arrivals == sorted(arrivals)
        assert [r.rid for r in session_requests] == list(range(len(session_requests)))
        assert all(r.arrival_time < 30.0 for r in session_requests)

    def test_sessions_are_multi_turn_and_growing(self, session_requests):
        by_session: dict[int, list] = {}
        for r in session_requests:
            by_session.setdefault(r.session_id, []).append(r)
        multi = [s for s in by_session.values() if len(s) > 1]
        assert multi, "expected at least one multi-turn session in the window"
        for turns in multi:
            turns.sort(key=lambda r: r.turn_index)
            for a, b in zip(turns, turns[1:]):
                assert b.turn_index == a.turn_index + 1
                assert b.arrival_time > a.arrival_time
                # History grows by last turn's user message + answer.
                assert b.prompt_len > a.prompt_len

    def test_turn_prompt_extends_previous_context(self, session_requests):
        """The prefix-reuse invariant: turn k+1's token stream starts with
        turn k's full prompt + generated answer."""
        by_session: dict[int, list] = {}
        for r in session_requests:
            by_session.setdefault(r.session_id, []).append(r)
        checked = 0
        for turns in by_session.values():
            turns.sort(key=lambda r: r.turn_index)
            for a, b in zip(turns, turns[1:]):
                context = a.prompt_len + a.max_new_tokens
                assert token_ids(b, context) == token_ids(a, context)
                checked += 1
        assert checked > 0

    def test_system_prompt_shared_across_sessions(self, session_requests):
        firsts = [r for r in session_requests if r.turn_index == 0]
        assert len({r.session_id for r in firsts}) > 1
        a, b = firsts[0], firsts[1]
        assert token_ids(a, 64) == token_ids(b, 64)  # the system prompt
        assert token_ids(a, 80) != token_ids(b, 80)  # then they diverge

    def test_categories_constant_within_session(self, session_requests):
        by_session: dict[int, set] = {}
        for r in session_requests:
            by_session.setdefault(r.session_id, set()).add(r.category)
        assert all(len(cats) == 1 for cats in by_session.values())

    def test_parameter_validation(self, target_roofline):
        gen = tiny_generator(target_roofline)
        with pytest.raises(ValueError):
            SessionGenerator(gen, turns=0)
        with pytest.raises(ValueError):
            SessionGenerator(gen, system_prompt=-1)
        with pytest.raises(ValueError):
            SessionGenerator(gen, think_time_s=-0.1)
        with pytest.raises(KeyError):
            SessionGenerator(gen).generate(10.0, 2.0, mix={"nope": 1.0})


class TestTraceRegistration:
    def test_sessions_and_agentic_registered(self):
        names = TRACES.names()
        assert "sessions" in names and "agentic" in names

    def test_canonicalization_drops_defaults(self):
        assert TRACES.canonical("sessions") == "sessions"
        assert (
            TRACES.canonical("sessions:turns=6,system_prompt=256,think_time=4.0")
            == "sessions"
        )
        assert TRACES.canonical("agentic:turns=10") == "agentic"
        assert TRACES.canonical("sessions:turns=3") == "sessions:turns=3"

    def test_factory_produces_session_requests(self, target_roofline):
        gen = tiny_generator(target_roofline, seed=2)
        reqs = TRACES.create("agentic", gen, 12.0, 4.0, turns=3, system_prompt=32)
        assert reqs
        assert all(r.session_id is not None for r in reqs)
        assert all(r.prompt_segments for r in reqs)

    def test_grid_axis_over_trace_params(self):
        base = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0,
            trace="sessions",
        )
        cell = apply_axis(base, "trace.turns", "3")
        assert cell.workload.trace == "sessions:turns=3"
        with pytest.raises(SpecError):
            apply_axis(base, "trace.nope", "3")

    def test_invalid_params_fail_at_parse_time(self):
        with pytest.raises(SpecError):
            TRACES.canonical("sessions:turns=0")
        with pytest.raises(SpecError):
            TRACES.canonical("sessions:think_time=-1")


class TestPrefixCacheSpec:
    def test_defaulted_prefix_knobs_share_keys(self):
        """Schema-v4 canonicalization: an explicit default equals omission."""
        implicit = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0
        )
        explicit = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0,
            prefix_cache=False,
        )
        assert implicit == explicit
        assert implicit.digest() == explicit.digest()

    def test_prefix_cache_forks_the_key(self):
        base = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0
        )
        cached = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0,
            prefix_cache=True,
        )
        assert base.digest() != cached.digest()
        assert cached.prefix_cache and not base.prefix_cache

    def test_round_trips_through_dict(self):
        spec = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0,
            trace="sessions:turns=3", prefix_cache=True,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_grid_axis_system_prefix_cache(self):
        base = ExperimentSpec.create(
            model="llama70b", system="vllm", rps=4.0, duration_s=10.0, seed=0
        )
        on = apply_axis(base, "system.prefix_cache", "true")
        assert on.prefix_cache
        assert apply_axis(on, "system.prefix_cache", "false") == base
        with pytest.raises(SpecError):
            apply_axis(base, "system.prefix_cache", "maybe")


class _FakeReplica:
    def __init__(self, index, queued_tokens=0):
        self.index = index
        self.queued_tokens = queued_tokens


class TestPrefixAffinityRouter:
    def test_follow_up_turns_stick_to_home(self):
        router = PrefixAffinityRouter()
        replicas = [_FakeReplica(0, 50), _FakeReplica(1, 10), _FakeReplica(2, 99)]
        first = make_request(rid=1)
        first.session_id = 7
        assert router.route(first, replicas).index == 1  # least loaded
        replicas[1].queued_tokens = 1_000_000  # home became the busiest
        follow = make_request(rid=2)
        follow.session_id = 7
        assert router.route(follow, replicas).index == 1  # still sticky

    def test_sessionless_requests_route_least_loaded(self):
        router = PrefixAffinityRouter()
        replicas = [_FakeReplica(0, 50), _FakeReplica(1, 10)]
        assert router.route(make_request(rid=1), replicas).index == 1
        assert not router._home

    def test_unroutable_home_falls_back_and_rehomes(self):
        router = PrefixAffinityRouter()
        replicas = [_FakeReplica(0, 50), _FakeReplica(1, 10)]
        first = make_request(rid=1)
        first.session_id = 3
        assert router.route(first, replicas).index == 1
        # Replica 1 drained out of the routable set.
        survivors = [_FakeReplica(0, 50), _FakeReplica(2, 80)]
        follow = make_request(rid=2)
        follow.session_id = 3
        assert router.route(follow, survivors).index == 0
        assert router._home[3] == 0  # re-homed for the rest of the session
