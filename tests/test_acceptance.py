"""Tests for verification semantics and Theorem 3.1 quantities."""

from __future__ import annotations

import math

from repro.core.speculation import build_candidate_tree
from repro.core.tree import TokenTree
from repro.model.acceptance import (
    expected_accepted_tokens,
    true_path_probability,
    verify_sequence,
    verify_tree,
)


class TestVerifySequence:
    def test_empty_chain_yields_correction(self, pair):
        ctx = pair.context_of([1])
        n, corr, new_ctx = verify_sequence(pair, ctx, [])
        assert n == 0
        assert corr == pair.target_sample(ctx)
        assert new_ctx == pair.extend(ctx, corr)

    def test_perfect_chain_fully_accepted(self, pair):
        # Build the chain from the target's own emissions: all accepted.
        ctx = pair.context_of([2, 3])
        chain = []
        c = ctx
        for _ in range(5):
            t = pair.target_sample(c)
            chain.append(t)
            c = pair.extend(c, t)
        n, corr, _ = verify_sequence(pair, ctx, chain)
        assert n == 5
        assert corr == pair.target_sample(c)

    def test_mismatch_stops_acceptance(self, pair):
        ctx = pair.context_of([4])
        right = pair.target_sample(ctx)
        wrong = right + 1
        n, corr, new_ctx = verify_sequence(pair, ctx, [wrong, 0, 0])
        assert n == 0
        assert corr == right
        assert new_ctx == pair.extend(ctx, right)

    def test_partial_acceptance(self, pair):
        ctx = pair.context_of([6])
        t1 = pair.target_sample(ctx)
        ctx1 = pair.extend(ctx, t1)
        wrong = pair.target_sample(ctx1) + 1
        n, corr, _ = verify_sequence(pair, ctx, [t1, wrong])
        assert n == 1
        assert corr == pair.target_sample(ctx1)

    def test_center_changes_outcome_statistics(self, pair):
        # With a high predictability center, greedy draft chains are
        # accepted more often than with a low one.
        def mean_accept(center: float) -> float:
            total = 0
            for i in range(150):
                ctx = pair.context_of([i, 7])
                chain = []
                c = ctx
                for _ in range(4):
                    tok, _ = pair.draft_children(c, 1, center)[0]
                    chain.append(tok)
                    c = pair.extend(c, tok)
                n, _, _ = verify_sequence(pair, ctx, chain, center)
                total += n
            return total / 150

        assert mean_accept(0.9) > mean_accept(0.3) + 0.5


class TestVerifyTree:
    def test_single_root_tree(self, pair):
        ctx = pair.context_of([1, 1])
        tree = TokenTree(0, ctx)
        accepted, corr, new_ctx = verify_tree(pair, tree.root)
        assert accepted == []
        assert corr == pair.target_sample(ctx)
        assert new_ctx == pair.extend(ctx, corr)

    def test_accepts_matching_child(self, pair):
        ctx = pair.context_of([3, 1])
        tree = TokenTree(0, ctx)
        emitted = pair.target_sample(ctx)
        child = tree.add_child(tree.root, emitted, pair.extend(ctx, emitted), 0.9)
        accepted, corr, _ = verify_tree(pair, tree.root)
        assert accepted[0] is child
        assert corr == pair.target_sample(child.ctx_hash)

    def test_rejects_non_matching_children(self, pair):
        ctx = pair.context_of([3, 2])
        emitted = pair.target_sample(ctx)
        tree = TokenTree(0, ctx)
        tree.add_child(tree.root, emitted + 1, pair.extend(ctx, emitted + 1), 0.5)
        tree.add_child(tree.root, emitted + 2, pair.extend(ctx, emitted + 2), 0.4)
        accepted, corr, _ = verify_tree(pair, tree.root)
        assert accepted == []
        assert corr == emitted

    def test_accepted_path_is_root_path(self, pair):
        # Accepted nodes must form a parent chain from the root.
        ctx = pair.context_of([9, 9])
        tree = build_candidate_tree(pair, 0, ctx, depth=4, width=3)
        accepted, _, _ = verify_tree(pair, tree.root)
        prev = tree.root
        for node in accepted:
            assert node.parent is prev
            prev = node

    def test_tree_vs_sequence_consistency(self, pair):
        # A chain-shaped tree verifies identically to verify_sequence.
        ctx = pair.context_of([5, 5])
        tokens = []
        c = ctx
        tree = TokenTree(0, ctx)
        node = tree.root
        for _ in range(3):
            tok, p = pair.draft_children(c, 1)[0]
            tokens.append(tok)
            c = pair.extend(c, tok)
            node = tree.add_child(node, tok, c, p)
        n_seq, corr_seq, ctx_seq = verify_sequence(pair, ctx, tokens)
        accepted, corr_tree, ctx_tree = verify_tree(pair, tree.root)
        assert len(accepted) == n_seq
        assert corr_tree == corr_seq
        assert ctx_tree == ctx_seq


class TestTheorem31:
    def test_true_path_probability_product(self, pair):
        ctx = pair.context_of([1, 2, 3])
        d0 = pair.target_distribution(ctx)
        t0 = d0.token_ids[0]
        ctx1 = pair.extend(ctx, t0)
        d1 = pair.target_distribution(ctx1)
        t1 = d1.token_ids[1]
        expected = d0.probs[0] * d1.probs[1]
        assert math.isclose(true_path_probability(pair, ctx, [t0, t1]), expected)

    def test_zero_for_unsupported_token(self, pair):
        ctx = pair.context_of([1])
        outside = max(pair.target_distribution(ctx).token_ids) + 1
        assert true_path_probability(pair, ctx, [outside, 0]) == 0.0

    def test_expectation_decomposition_monte_carlo(self, pair):
        # E[acc(T)] computed by Theorem 3.1 must match the empirical mean
        # of accepted counts across an ensemble of contexts.
        total_expected = 0.0
        total_actual = 0
        n = 400
        for i in range(n):
            ctx = pair.context_of([i, 13])
            tree = build_candidate_tree(pair, 0, ctx, depth=3, width=2)
            total_expected += expected_accepted_tokens(pair, tree.root)
            accepted, _, _ = verify_tree(pair, tree.root)
            total_actual += len(accepted)
        assert abs(total_expected / n - total_actual / n) < 0.12

    def test_expectation_additive_in_nodes(self, pair):
        # Adding a node increases E[acc] by exactly its true path prob.
        ctx = pair.context_of([2, 2])
        tree = TokenTree(0, ctx)
        before = expected_accepted_tokens(pair, tree.root)
        tok = pair.target_distribution(ctx).token_ids[0]
        tree.add_child(tree.root, tok, pair.extend(ctx, tok), 0.5)
        after = expected_accepted_tokens(pair, tree.root)
        assert math.isclose(after - before, true_path_probability(pair, ctx, [tok]))

    def test_sibling_acceptance_probs_sum_to_one(self, pair):
        # Appendix A: children of one node have acceptance probs summing
        # to 1 when the full support is enumerated.
        ctx = pair.context_of([8])
        dist = pair.target_distribution(ctx)
        assert math.isclose(sum(pair.accept_prob(ctx, t) for t in dist.token_ids), 1.0)
