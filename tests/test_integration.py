"""Cross-module integration tests: full serving scenarios.

These exercise the complete stack (workload -> scheduler -> engine ->
metrics) on small but realistic scenarios, asserting the qualitative
relationships the paper's evaluation rests on.
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import build_setup, run_once
from repro.workloads.categories import urgent_mix
from repro.workloads.generator import WorkloadGenerator
from tests.conftest import tiny_generator


@pytest.fixture(scope="module")
def setup():
    return build_setup("llama70b")


@pytest.fixture(scope="module")
def workload(setup):
    # Real datasets, short trace: enough load to create contention.
    gen = WorkloadGenerator(setup.target_roofline, seed=11)
    return gen.steady(duration_s=25.0, rps=3.5)


class TestLossless:
    def test_speculation_is_lossless(self, setup):
        """AdaServe must emit exactly the tokens plain decoding would.

        Speculative decoding is lossless: with the same model pair, the
        final context hash of every request equals the one produced by
        token-by-token autoregressive decoding.
        """
        gen = tiny_generator(setup.target_roofline, seed=13)
        reqs = gen.steady(duration_s=4.0, rps=2.0)

        ada = run_once(setup, "adaserve", reqs)
        base = run_once(setup, "vllm", reqs)
        ada_ctx = {r.rid: r.ctx for r in ada.requests if r.is_finished}
        base_ctx = {r.rid: r.ctx for r in base.requests if r.is_finished}
        shared = set(ada_ctx) & set(base_ctx)
        assert shared
        for rid in shared:
            assert ada_ctx[rid] == base_ctx[rid], f"request {rid} diverged"

    def test_vllm_spec_is_lossless(self, setup):
        gen = tiny_generator(setup.target_roofline, seed=17)
        reqs = gen.steady(duration_s=4.0, rps=2.0)
        spec = run_once(setup, "vllm-spec-6", reqs)
        base = run_once(setup, "vllm", reqs)
        spec_ctx = {r.rid: r.ctx for r in spec.requests if r.is_finished}
        base_ctx = {r.rid: r.ctx for r in base.requests if r.is_finished}
        for rid in set(spec_ctx) & set(base_ctx):
            assert spec_ctx[rid] == base_ctx[rid]


class TestQualitativeOrdering:
    def test_adaserve_at_least_best_baseline(self, setup, workload):
        ada = run_once(setup, "adaserve", workload)
        spec = run_once(setup, "vllm-spec-6", workload)
        vllm = run_once(setup, "vllm", workload)
        best = max(spec.metrics.attainment, vllm.metrics.attainment)
        assert ada.metrics.attainment >= best - 0.02

    def test_speculation_beats_plain_batching_on_strict(self, setup, workload):
        spec = run_once(setup, "vllm-spec-6", workload)
        vllm = run_once(setup, "vllm", workload)
        assert (
            spec.metrics.per_category["coding"].attainment
            >= vllm.metrics.per_category["coding"].attainment
        )

    def test_all_systems_complete(self, setup, workload):
        for system in ("adaserve", "vllm", "sarathi", "vllm-spec-4", "fastserve", "vtc", "priority"):
            report = run_once(setup, system, workload, max_sim_time_s=600.0)
            assert report.metrics.num_finished == report.metrics.num_requests, system

    def test_goodput_bounded_by_throughput(self, setup, workload):
        for system in ("adaserve", "vllm"):
            m = run_once(setup, system, workload).metrics
            assert m.goodput <= m.throughput + 1e-9


class TestLoadResponse:
    def test_attainment_degrades_with_load(self, setup):
        gen = WorkloadGenerator(setup.target_roofline, seed=21)
        light = run_once(setup, "adaserve", gen.steady(20.0, 1.5))
        heavy = run_once(setup, "adaserve", gen.steady(20.0, 6.0))
        assert light.metrics.attainment >= heavy.metrics.attainment

    def test_acceptance_decreases_with_load(self, setup):
        # Adaptive control shrinks the beam under load, reducing mean
        # accepted tokens per verification (Figure 12's trend).
        gen = WorkloadGenerator(setup.target_roofline, seed=23)
        light = run_once(setup, "adaserve", gen.steady(20.0, 1.5))
        heavy = run_once(setup, "adaserve", gen.steady(20.0, 6.0))
        assert (
            light.metrics.mean_accepted_per_verify
            >= heavy.metrics.mean_accepted_per_verify
        )

    def test_static_spec_acceptance_stable(self, setup):
        gen = WorkloadGenerator(setup.target_roofline, seed=25)
        light = run_once(setup, "vllm-spec-6", gen.steady(20.0, 1.5))
        heavy = run_once(setup, "vllm-spec-6", gen.steady(20.0, 5.0))
        assert light.metrics.mean_accepted_per_verify == pytest.approx(
            heavy.metrics.mean_accepted_per_verify, abs=0.6
        )


class TestUrgentFractionResponse:
    def test_continuous_batching_collapses_with_urgency(self, setup):
        gen = WorkloadGenerator(setup.target_roofline, seed=27)
        lo = run_once(setup, "vllm", gen.steady(20.0, 3.0, mix=urgent_mix(0.3)))
        hi = run_once(setup, "vllm", gen.steady(20.0, 3.0, mix=urgent_mix(0.9)))
        assert hi.metrics.attainment <= lo.metrics.attainment + 0.05

    def test_adaserve_stays_high_with_urgency(self, setup):
        gen = WorkloadGenerator(setup.target_roofline, seed=27)
        hi = run_once(setup, "adaserve", gen.steady(20.0, 3.0, mix=urgent_mix(0.9)))
        assert hi.metrics.attainment > 0.8
