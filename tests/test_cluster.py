"""Tests for the cluster layer: replicas, routers, autoscaler, fleet."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import report_to_dict
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.fleet import FleetSimulator
from repro.cluster.replica import Replica
from repro.cluster.router import (
    ROUTER_NAMES,
    AffinityRouter,
    LeastLoadedRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    make_router,
)
from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS
from repro.model.pair import ModelPair
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import KVCacheManager
from repro.serving.metrics import compute_metrics
from tests.conftest import make_request, tiny_generator


def small_engine(seed: int = 42) -> SimulatedEngine:
    """A fresh small engine (the conftest ``engine`` fixture, per call)."""
    pair = ModelPair.build(vocab_size=1000, seed=seed, alignment=0.85, predictability=0.7)
    target = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
    draft = RooflineModel(DEPLOYMENT_PRESETS["llama1b-1xa100"])
    return SimulatedEngine(pair, target, draft, KVCacheManager(200_000), seed=seed)


def vllm_factory(index: int):
    from repro.baselines.vllm import VLLMScheduler

    engine = small_engine(seed=100 + index)
    return engine, VLLMScheduler(engine)


def fleet_workload(n: int = 40, duration_s: float = 10.0, rps: float = 6.0):
    roofline = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
    return tiny_generator(roofline).steady(duration_s=duration_s, rps=rps)[:n]


def make_fleet(requests, router, replicas=3, **kwargs) -> FleetSimulator:
    return FleetSimulator(vllm_factory, requests, router, replicas, **kwargs)


class FakeReplica:
    """Stand-in with fixed load for router unit tests."""

    def __init__(self, index: int, queued_tokens: int = 0):
        self.index = index
        self.queued_tokens = queued_tokens


class TestRouters:
    def test_registry(self):
        for name in ROUTER_NAMES:
            assert make_router(name, seed=1).name == name
        with pytest.raises(KeyError):
            make_router("random")

    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        replicas = [FakeReplica(i) for i in range(3)]
        picks = [router.route(make_request(rid=i), replicas).index for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_min_tokens(self):
        router = LeastLoadedRouter()
        replicas = [FakeReplica(0, 50), FakeReplica(1, 10), FakeReplica(2, 30)]
        assert router.route(make_request(), replicas).index == 1

    def test_least_loaded_tie_breaks_by_index(self):
        replicas = [FakeReplica(0, 10), FakeReplica(1, 10)]
        assert LeastLoadedRouter().route(make_request(), replicas).index == 0

    def test_p2c_considers_two_distinct(self):
        router = PowerOfTwoRouter(seed=7)
        replicas = [FakeReplica(i, queued_tokens=100 * i) for i in range(4)]
        # Whatever the sampled pair, the pick can never be the single
        # worst replica unless both samples landed on it — impossible
        # since samples are distinct.
        for rid in range(50):
            pick = router.route(make_request(rid=rid), replicas)
            assert pick.index != 3 or pick.queued_tokens < 300

    def test_p2c_deterministic_per_rid(self):
        replicas = [FakeReplica(i, queued_tokens=i) for i in range(5)]
        a = [PowerOfTwoRouter(seed=3).route(make_request(rid=r), replicas).index for r in range(20)]
        b = [PowerOfTwoRouter(seed=3).route(make_request(rid=r), replicas).index for r in range(20)]
        assert a == b
        c = [PowerOfTwoRouter(seed=4).route(make_request(rid=r), replicas).index for r in range(20)]
        assert a != c  # different seed, different stream

    def test_affinity_partitions_by_priority(self):
        router = AffinityRouter(reserved_fraction=0.5)
        replicas = [FakeReplica(i) for i in range(4)]
        urgent = make_request(rid=0, priority=0)
        relaxed = make_request(rid=1, priority=1)
        assert router.route(urgent, replicas).index in (0, 1)
        assert router.route(relaxed, replicas).index in (2, 3)

    def test_affinity_single_replica_serves_all(self):
        router = AffinityRouter()
        only = [FakeReplica(0)]
        assert router.route(make_request(priority=0), only).index == 0
        assert router.route(make_request(priority=1), only).index == 0

    def test_affinity_adaptive_reservation_tracks_urgent_share(self):
        router = AffinityRouter()
        # All-urgent traffic pushes the reservation to the ceiling (n-1).
        replicas = [FakeReplica(i) for i in range(4)]
        for rid in range(20):
            router.route(make_request(rid=rid, priority=0), replicas)
        assert router._num_reserved(4) == 3
        # Mostly-relaxed traffic shrinks it back down.
        for rid in range(200):
            router.route(make_request(rid=100 + rid, priority=1), replicas)
        assert router._num_reserved(4) == 1

    def test_affinity_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AffinityRouter(reserved_fraction=1.0)


class TestAutoscaler:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_queue=1.0, scale_down_queue=2.0)

    def test_from_mapping_rejects_unknown_and_coerces_counts(self):
        config = AutoscalerConfig.from_mapping({"max_replicas": 6.0, "warmup_s": 1.5})
        assert config.max_replicas == 6
        assert config.warmup_s == 1.5
        with pytest.raises(KeyError):
            AutoscalerConfig.from_mapping({"bogus": 1})

    def _replica(self, index, queued, available_at=0.0):
        engine, scheduler = vllm_factory(index)
        replica = Replica(index, engine, scheduler, available_at=available_at)
        for rid in range(queued):
            replica.admit(make_request(rid=index * 100 + rid), 0.0)
        return replica

    def test_scales_up_on_deep_queues(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_queue=2.0, max_replicas=4))
        replicas = [self._replica(0, queued=5)]
        assert scaler.decide(0.0, replicas) == 1

    def test_scales_down_when_idle(self):
        scaler = Autoscaler(AutoscalerConfig(min_replicas=1, scale_down_queue=1.0))
        replicas = [self._replica(0, queued=0), self._replica(1, queued=0)]
        assert scaler.decide(0.0, replicas) == -1

    def test_respects_min_replicas(self):
        scaler = Autoscaler(AutoscalerConfig(min_replicas=1))
        assert scaler.decide(0.0, [self._replica(0, queued=0)]) == 0

    def test_throttled_by_check_interval(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_queue=2.0, check_interval_s=10.0))
        replicas = [self._replica(0, queued=5)]
        assert scaler.decide(0.0, replicas) == 1
        assert scaler.decide(5.0, replicas) == 0  # inside the interval
        assert scaler.decide(10.0, replicas) == 1

    def test_warming_replicas_dampen_scale_up(self):
        config = AutoscalerConfig(scale_up_queue=3.0, max_replicas=4)
        # Queue of 5 on one warm replica: mean depth 5 > 3 -> scale up.
        replicas = [self._replica(0, queued=5)]
        assert Autoscaler(config).decide(0.0, replicas) == 1
        # Same queue with capacity already warming: mean 5/2 < 3 -> hold.
        replicas.append(self._replica(1, 0, available_at=99.0))
        assert Autoscaler(config).decide(0.0, replicas) == 0

    def test_resolve_defaults_ceiling_and_validates(self):
        config = AutoscalerConfig.resolve({}, initial_replicas=3)
        assert config.max_replicas == 6
        explicit = AutoscalerConfig.resolve({"max_replicas": 6}, initial_replicas=3)
        assert explicit == config
        with pytest.raises(ValueError, match="below"):
            AutoscalerConfig.resolve({"max_replicas": 2}, initial_replicas=3)


class TestFleetSimulator:
    def test_metrics_merge_equals_union_of_replica_requests(self):
        """Fleet RunMetrics == compute_metrics over the union (property)."""
        report = make_fleet(fleet_workload(), RoundRobinRouter(), replicas=3).run()
        union = [req for rep in report.replica_reports for req in rep.requests]
        assert len(union) == report.summary.metrics.num_requests
        assert compute_metrics(union) == report.summary.metrics
        # Per-replica metrics are internally consistent with the merge.
        assert sum(r.metrics.num_requests for r in report.replica_reports) == len(union)
        assert sum(r.metrics.num_finished for r in report.replica_reports) == (
            report.summary.metrics.num_finished
        )

    def test_summary_spans_the_last_iteration(self):
        report = make_fleet(fleet_workload(), RoundRobinRouter(), replicas=2).run()
        finishes = [
            req.finish_time
            for rep in report.replica_reports
            for req in rep.requests
            if req.finish_time is not None
        ]
        assert report.summary.sim_time_s >= max(finishes)

    def test_every_request_routed_exactly_once(self):
        requests = fleet_workload()
        report = make_fleet(requests, LeastLoadedRouter(), replicas=3).run()
        routed = sorted(
            req.rid for rep in report.replica_reports for req in rep.requests
        )
        assert routed == sorted(r.rid for r in requests)

    @pytest.mark.parametrize("router_name", ROUTER_NAMES)
    def test_fixed_seed_runs_are_byte_identical(self, router_name):
        def run_once():
            report = make_fleet(
                fleet_workload(), make_router(router_name, seed=11), replicas=3
            ).run()
            return json.dumps(report_to_dict(report.summary), sort_keys=True)

        assert run_once() == run_once()

    def test_single_replica_fleet_matches_serving_simulator(self):
        """A 1-replica fleet is exactly the single-engine simulation."""
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        requests = fleet_workload()
        fleet_report = make_fleet(requests, RoundRobinRouter(), replicas=1).run()

        engine = small_engine(seed=100)  # vllm_factory's replica-0 seed
        solo = ServingSimulator(
            engine, VLLMScheduler(engine), fleet_workload()
        ).run()
        assert fleet_report.summary.metrics == solo.metrics
        assert fleet_report.summary.iterations == solo.iterations
        assert fleet_report.summary.sim_time_s == pytest.approx(solo.sim_time_s)
        assert fleet_report.summary.phase_breakdown == solo.phase_breakdown

    def test_horizon_cutoff_matches_serving_simulator(self):
        """A capped 1-replica fleet stops exactly where the solo loop does."""
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        horizon = 6.0
        fleet_report = make_fleet(
            fleet_workload(n=60, rps=12.0),
            RoundRobinRouter(),
            replicas=1,
            max_sim_time_s=horizon,
        ).run()
        engine = small_engine(seed=100)  # vllm_factory's replica-0 seed
        solo = ServingSimulator(
            engine,
            VLLMScheduler(engine),
            fleet_workload(n=60, rps=12.0),
            max_sim_time_s=horizon,
        ).run()
        assert solo.metrics.num_finished < 60  # the cap actually bites
        assert fleet_report.summary.iterations == solo.iterations
        assert fleet_report.summary.metrics == solo.metrics

    def test_pending_arrivals_reach_idle_replicas_at_horizon(self):
        """A capped replica must not end the run while an idle one can serve.

        R0's single giant prefill iteration crosses the horizon; the
        relaxed request arriving before the horizon must still be routed
        to idle R1 and counted (not silently dropped from metrics).
        """
        urgent = make_request(
            rid=0, priority=0, arrival=0.0,
            prompt_len=20000, max_new_tokens=100, tpot_slo=0.02,
        )
        relaxed = make_request(
            rid=1, priority=1, arrival=0.4,
            prompt_len=32, max_new_tokens=4, tpot_slo=1.0,
        )
        report = FleetSimulator(
            vllm_factory,
            [urgent, relaxed],
            AffinityRouter(reserved_fraction=0.5),
            2,
            max_sim_time_s=0.5,
        ).run()
        m = report.summary.metrics
        assert m.num_requests == 2
        assert m.num_finished == 1  # relaxed served by R1; urgent capped

    def test_more_replicas_do_not_hurt_attainment(self):
        requests = fleet_workload(n=60, rps=12.0)
        one = make_fleet(fleet_workload(n=60, rps=12.0), RoundRobinRouter(), replicas=1).run()
        four = make_fleet(requests, RoundRobinRouter(), replicas=4).run()
        assert four.attainment >= one.attainment

    def test_routable_fallback_prefers_warming_over_draining(self):
        fleet = make_fleet(fleet_workload(n=5), RoundRobinRouter(), replicas=2)
        draining, warming = fleet.replicas
        # Drive the transitions through the fleet's bookkeeping (the
        # routable pool is maintained incrementally): drain replica 0,
        # and re-home replica 1 as a pending warm-up — the state _spawn
        # puts autoscaled additions in.
        fleet._drain(draining)
        warming.available_at = warming.local_now = 50.0
        fleet._pool.clear()
        fleet._warming.append(warming)
        assert fleet._routable(10.0) == [warming]
        # Only drainers left: still never drop a request.
        fleet._drain(warming)
        assert fleet._routable(10.0) == [draining, warming]

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            make_fleet([], RoundRobinRouter(), replicas=0)

    def test_autoscaler_adds_warm_up_delayed_replicas(self):
        config = AutoscalerConfig(
            min_replicas=1,
            max_replicas=3,
            check_interval_s=0.5,
            scale_up_queue=1.5,
            warmup_s=2.0,
        )
        report = make_fleet(
            fleet_workload(n=60, rps=20.0),
            LeastLoadedRouter(),
            replicas=1,
            autoscaler_config=config,
        ).run()
        ups = [e for e in report.scale_events if e.action == "up"]
        assert ups, "deep queues at rps=20 on one replica must trigger scale-up"
        assert report.num_replicas_peak > 1
        # Peak counts concurrently live replicas and respects the ceiling
        # even if scale-down/scale-up cycles created more over the run.
        assert report.num_replicas_peak <= 3
        assert f"x{report.num_replicas_peak} " in report.summary.scheduler_name
        # Scaled-up replicas only start serving after their warm-up.
        for event, rep in zip(ups, report.replica_reports[1:]):
            finished = [r for r in rep.requests if r.first_token_time is not None]
            for req in finished:
                assert req.first_token_time >= event.time_s + config.warmup_s

    def test_cluster_config_fields_change_the_cache_key(self):
        from repro.analysis.runner import ExperimentConfig

        base = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0
        )
        cluster = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
            replicas=2, router="p2c",
        )
        autoscaled = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
            replicas=2, router="p2c", autoscale={"max_replicas": 4},
        )
        digests = {base.digest(), cluster.digest(), autoscaled.digest()}
        assert len(digests) == 3
        assert not base.is_cluster
        assert cluster.is_cluster and autoscaled.is_cluster

    def test_solo_config_canonicalizes_inert_router(self):
        from repro.analysis.runner import ExperimentConfig

        solo = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
            router="p2c",  # no replicas/autoscale: router never consulted
        )
        default = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0
        )
        assert solo.router == "round-robin"
        assert solo.digest() == default.digest()

    def test_autoscale_defaults_canonicalized_in_cache_key(self):
        from repro.analysis.runner import ExperimentConfig

        implicit = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
            replicas=2, autoscale={},
        )
        explicit = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
            replicas=2, autoscale={"max_replicas": 4, "warmup_s": 5.0},
        )
        assert implicit.digest() == explicit.digest()
        assert implicit.is_cluster  # empty mapping still means "on"
        non_default = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
            replicas=2, autoscale={"max_replicas": 6},
        )
        assert non_default.digest() != implicit.digest()
        # Invalid ceilings fail at config construction, not mid-sweep.
        with pytest.raises(ValueError, match="below"):
            ExperimentConfig.create(
                model="llama70b", system="vllm", rps=2.0, duration_s=4.0, seed=0,
                replicas=4, autoscale={"max_replicas": 2},
            )

    def test_config_rejects_unknown_router_and_bad_replicas(self):
        from repro.analysis.runner import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig.create(
                model="llama70b", system="vllm", rps=2.0, duration_s=4.0,
                seed=0, router="dns",
            )
        with pytest.raises(ValueError):
            ExperimentConfig.create(
                model="llama70b", system="vllm", rps=2.0, duration_s=4.0,
                seed=0, replicas=0,
            )

    def test_run_cluster_rejects_ceiling_below_initial_fleet(self):
        from repro.analysis.harness import build_setup, run_cluster

        setup = build_setup("llama70b", seed=0)
        with pytest.raises(ValueError, match="below"):
            run_cluster(
                setup, "vllm", fleet_workload(n=5),
                replicas=4, autoscale={"max_replicas": 2},
            )

    def test_execute_point_dispatches_to_cluster(self):
        from repro.analysis.runner import ExperimentConfig, execute_point

        config = ExperimentConfig.create(
            model="llama70b", system="vllm", rps=3.0, duration_s=4.0, seed=0,
            trace="steady", replicas=2, router="least-loaded",
        )
        record = execute_point(config)
        assert record["scheduler"] == "vLLM x2 [least-loaded]"
        assert record["metrics"]["num_requests"] > 0
        # Two invocations are identical (the cache round-trip contract).
        assert execute_point(config) == record

    def test_draining_replica_finishes_its_work(self):
        config = AutoscalerConfig(
            min_replicas=1,
            max_replicas=2,
            check_interval_s=0.5,
            scale_up_queue=2.0,
            scale_down_queue=1.0,
            warmup_s=0.5,
        )
        # Burst then silence: the fleet scales up, then drains back down.
        requests = fleet_workload(n=50, duration_s=4.0, rps=14.0)
        report = make_fleet(
            requests, LeastLoadedRouter(), replicas=1, autoscaler_config=config
        ).run()
        routed = sorted(
            req.rid for rep in report.replica_reports for req in rep.requests
        )
        assert routed == sorted(r.rid for r in requests)
        assert report.summary.metrics.num_finished == len(requests)
