"""Shared fixtures: small, fast model pairs and serving setups."""

from __future__ import annotations

import pytest

from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS
from repro.model.pair import ModelPair
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import KVCacheManager
from repro.serving.request import Request
from repro.workloads.datasets import DATASETS
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture
def pair() -> ModelPair:
    """Small deterministic model pair."""
    return ModelPair.build(vocab_size=1000, seed=42, alignment=0.85, predictability=0.7)


@pytest.fixture
def perfect_pair() -> ModelPair:
    """Pair whose draft is a perfect surrogate (alignment = 1)."""
    return ModelPair.build(vocab_size=1000, seed=7, alignment=1.0, predictability=0.7)


@pytest.fixture
def target_roofline() -> RooflineModel:
    """Llama-70B on 4xA100 cost model."""
    return RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])


@pytest.fixture
def draft_roofline() -> RooflineModel:
    """Llama-1B draft cost model."""
    return RooflineModel(DEPLOYMENT_PRESETS["llama1b-1xa100"])


@pytest.fixture
def engine(pair, target_roofline, draft_roofline) -> SimulatedEngine:
    """Engine over the small pair and real rooflines."""
    kv = KVCacheManager(capacity_tokens=200_000)
    return SimulatedEngine(pair, target_roofline, draft_roofline, kv, seed=42)


def make_request(
    rid: int = 0,
    category: str = "coding",
    arrival: float = 0.0,
    prompt_len: int = 32,
    max_new_tokens: int = 16,
    tpot_slo: float = 0.05,
    predictability: float = 0.75,
    priority: int = 0,
) -> Request:
    """Hand-built request with sane defaults."""
    return Request(
        rid=rid,
        category=category,
        arrival_time=arrival,
        prompt_len=prompt_len,
        max_new_tokens=max_new_tokens,
        tpot_slo=tpot_slo,
        predictability=predictability,
        priority=priority,
    )


def tiny_generator(roofline: RooflineModel, seed: int = 5) -> WorkloadGenerator:
    """Workload generator with every category mapped to the tiny dataset."""
    gen = WorkloadGenerator(roofline, seed=seed)
    tiny = DATASETS["tiny"]
    gen.datasets = {name: tiny for name in gen.datasets}
    return gen


@pytest.fixture
def tiny_workload(target_roofline) -> list[Request]:
    """A small mixed workload using the tiny dataset (fast sims)."""
    return tiny_generator(target_roofline).steady(duration_s=8.0, rps=3.0)
