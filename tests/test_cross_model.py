"""Cross-setup checks: both Table 1 deployments behave consistently."""

from __future__ import annotations

import pytest

from repro.analysis.harness import MODEL_SETUPS, build_setup, run_once
from repro.hardware.profiler import HardwareProfiler
from tests.conftest import tiny_generator


@pytest.fixture(scope="module", params=sorted(MODEL_SETUPS))
def model_name(request):
    return request.param


@pytest.fixture(scope="module")
def setup(model_name):
    return build_setup(model_name, seed=3)


@pytest.fixture(scope="module")
def workload(setup):
    return tiny_generator(setup.target_roofline, seed=3).steady(6.0, 3.0)


class TestDeployments:
    def test_baseline_in_expected_band(self, setup):
        base = setup.target_roofline.baseline_decode_latency
        assert 0.010 < base < 0.040

    def test_draft_order_of_magnitude_faster(self, setup):
        from repro.hardware.roofline import RooflineModel

        draft = RooflineModel(setup.draft_deployment)
        assert draft.baseline_decode_latency < setup.target_roofline.baseline_decode_latency / 5

    def test_budget_profile_consistent(self, setup):
        prof = HardwareProfiler(setup.target_roofline).profile()
        assert prof.token_budget >= prof.saturation_tokens
        assert prof.latency_ratio <= 1.5 + 1e-9

    def test_coding_slo_tracks_each_baseline(self, setup):
        from repro.workloads.generator import WorkloadGenerator

        gen = WorkloadGenerator(setup.target_roofline, seed=1)
        reqs = gen.steady(30.0, 2.0)
        coding = next(r for r in reqs if r.category == "coding")
        assert coding.tpot_slo == pytest.approx(
            1.2 * setup.target_roofline.baseline_decode_latency
        )


@pytest.mark.parametrize("system", ["adaserve", "vllm", "vllm-spec-4", "smartspec"])
class TestEveryCombination:
    def test_runs_and_finishes(self, setup, workload, system):
        report = run_once(setup, system, workload, max_sim_time_s=300.0)
        assert report.metrics.num_finished == report.metrics.num_requests

    def test_repeatable(self, setup, workload, system):
        a = run_once(setup, system, workload, max_sim_time_s=300.0)
        b = run_once(setup, system, workload, max_sim_time_s=300.0)
        assert a.sim_time_s == b.sim_time_s
        assert a.metrics.total_tokens == b.metrics.total_tokens
        assert a.metrics.num_attained == b.metrics.num_attained
