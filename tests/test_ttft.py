"""Tests for TTFT accounting (extension to the paper's TPOT-only metrics)."""

from __future__ import annotations

import pytest

from repro.serving.metrics import compute_metrics
from tests.conftest import make_request


class TestRequestTTFT:
    def test_infinite_before_first_token(self):
        req = make_request()
        assert req.ttft == float("inf")

    def test_ttft_from_arrival(self):
        req = make_request(arrival=2.0, max_new_tokens=5)
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 2.5)
        req.commit_tokens(1, 2, 2.8)
        assert req.ttft == pytest.approx(0.8)

    def test_ttft_fixed_after_first_commit(self):
        req = make_request(arrival=0.0, max_new_tokens=5)
        req.advance_prefill(req.prompt_len)
        req.begin_decode(1, 0.1)
        req.commit_tokens(1, 2, 0.3)
        req.commit_tokens(2, 3, 0.9)
        assert req.ttft == pytest.approx(0.3)


class TestCategoryTTFT:
    def test_aggregated_per_category(self):
        reqs = []
        for i, ttft in enumerate([0.2, 0.4]):
            r = make_request(rid=i, arrival=0.0, max_new_tokens=2, tpot_slo=1.0)
            r.advance_prefill(r.prompt_len)
            r.begin_decode(1, 0.05)
            r.commit_tokens(1, 2, ttft)
            r.commit_tokens(1, 3, ttft + 0.1)
            reqs.append(r)
        m = compute_metrics(reqs)
        cm = m.per_category["coding"]
        assert cm.mean_ttft_s == pytest.approx(0.3)
        assert cm.p99_ttft_s == pytest.approx(0.4)

    def test_none_when_no_finishers(self):
        m = compute_metrics([make_request()])
        cm = m.per_category["coding"]
        assert cm.mean_ttft_s is None  # no samples, no sentinel

    def test_chunked_prefill_improves_decode_ttft_story(self, engine):
        # Sanity at the system level: TTFT is finite and ordered after a
        # real run (prefill time is part of TTFT).
        from repro.baselines.vllm import VLLMScheduler
        from repro.serving.server import ServingSimulator

        reqs = [
            make_request(rid=i, arrival=0.1 * i, prompt_len=100 * (i + 1), max_new_tokens=4)
            for i in range(3)
        ]
        report = ServingSimulator(engine, VLLMScheduler(engine), reqs).run()
        for r in report.requests:
            assert 0 < r.ttft < float("inf")
