"""Tests for the SLO-customized and throughput-optimized selection phases."""

from __future__ import annotations

import pytest

from repro.core.selection import select_tokens
from repro.core.speculation import speculate_batch
from repro.core.tree import TokenTree


def build_manual_tree(spec: dict) -> TokenTree:
    """Tree from {token: (prob, {children})} nested dicts."""
    tree = TokenTree(0, 1000)

    def add(parent, sub: dict, ctx: int):
        for tok, (prob, children) in sub.items():
            node = tree.add_child(parent, tok, ctx * 31 + tok, prob)
            add(node, children, ctx * 31 + tok)

    add(tree.root, spec, 1000)
    return tree


@pytest.fixture
def trees(pair):
    roots = [(0, pair.context_of([i, i])) for i in range(4)]
    return speculate_batch(pair, roots, depth=4, width=3).trees


class TestBudget:
    def test_budget_never_exceeded(self, trees):
        res = select_tokens(trees, [2.0, 2.0, 2.0, 2.0], budget=10)
        assert res.budget_used <= 10
        total_selected = sum(t.num_selected() for t in trees)
        assert res.budget_used == len(trees) + total_selected

    def test_roots_must_fit(self, trees):
        with pytest.raises(ValueError):
            select_tokens(trees, [0.0] * 4, budget=3)

    def test_budget_fully_spent_when_candidates_remain(self, trees):
        res = select_tokens(trees, [0.0] * 4, budget=12)
        assert res.budget_remaining == 0

    def test_budget_underspent_when_candidates_exhausted(self, trees):
        # Candidate trees have 4*12=48 non-root nodes total; budget 100
        # cannot be filled.
        res = select_tokens(trees, [0.0] * 4, budget=100)
        assert res.budget_used == 4 + 48
        assert res.budget_remaining == 100 - 52

    def test_requirements_length_checked(self, trees):
        with pytest.raises(ValueError):
            select_tokens(trees, [1.0], budget=10)


class TestSLOPhase:
    def test_satisfied_requests_marked(self, trees):
        res = select_tokens(trees, [1.2] * 4, budget=30)
        assert all(s.slo_satisfied for s in res.selections)
        for s in res.selections:
            assert s.expected_accepted >= min(s.requirement, 1.0)

    def test_zero_requirement_needs_no_slo_tokens(self, trees):
        res = select_tokens(trees, [0.0] * 4, budget=20)
        assert all(s.slo_tokens == 0 for s in res.selections)
        assert all(s.slo_satisfied for s in res.selections)

    def test_n_max_cap(self, trees):
        res = select_tokens(trees, [100.0] * 4, budget=40, n_max=2)
        assert all(s.slo_tokens <= 2 for s in res.selections)

    def test_descending_requirement_priority(self, pair):
        # With a budget only large enough for one request's needs, the
        # request with the larger A(r) gets the SLO tokens.
        roots = [(0, pair.context_of([7])), (0, pair.context_of([8]))]
        trees = speculate_batch(pair, roots, depth=3, width=2).trees
        res = select_tokens(trees, [1.2, 3.0], budget=2 + 3, n_max=8)
        hungry = res.selections[1]
        modest = res.selections[0]
        assert hungry.slo_tokens >= modest.slo_tokens

    def test_requirement_capped_at_depth_plus_one(self, trees):
        res = select_tokens(trees, [100.0] * 4, budget=60, depth=4)
        assert all(s.capped_requirement == 5.0 for s in res.selections)


class TestThroughputPhase:
    def test_greedy_invariant_across_trees(self, pair):
        # Global-greedy invariant: every selected node's path probability
        # is >= every *selectable-but-unselected* node's (a node is
        # selectable when its parent is selected or the root).
        roots = [(0, pair.context_of([1])), (0, pair.context_of([2]))]
        trees = speculate_batch(
            pair, roots, depth=3, width=3, centers=[0.95, 0.15]
        ).trees
        select_tokens(trees, [0.0, 0.0], budget=2 + 6)
        selected = [
            n for t in trees for n in t.nodes(include_root=False) if n.selected
        ]
        frontier_unselected = [
            n
            for t in trees
            for n in t.nodes(include_root=False)
            if not n.selected and (n.parent.is_root or n.parent.selected)
        ]
        assert len(selected) == 6
        assert min(n.path_prob for n in selected) >= max(
            n.path_prob for n in frontier_unselected
        )

    def test_global_greedy_selects_max_prob_order(self):
        # Manual trees with known probabilities: the selected set must be
        # the top-k path probabilities among *selectable* (frontier) nodes.
        t1 = build_manual_tree({1: (0.9, {2: (0.8, {})}), 3: (0.2, {})})
        t2 = build_manual_tree({1: (0.6, {2: (0.5, {})}), 3: (0.3, {})})
        res = select_tokens([t1, t2], [0.0, 0.0], budget=2 + 3)
        sel1 = {n.token_id for n in t1.nodes(include_root=False) if n.selected}
        sel2 = {n.token_id for n in t2.nodes(include_root=False) if n.selected}
        # Top-3 path probs: 0.9, 0.72 (=0.9*0.8), 0.6.
        assert sel1 == {1, 2}
        assert sel2 == {1}


class TestValidity:
    def test_selection_connected(self, trees):
        select_tokens(trees, [2.0] * 4, budget=20)
        assert all(t.is_selection_connected() for t in trees)

    def test_extractable(self, trees):
        select_tokens(trees, [1.5] * 4, budget=16)
        for t in trees:
            extracted = t.extract_selected()
            assert extracted.num_speculated == t.num_selected()

    def test_reselection_resets(self, trees):
        select_tokens(trees, [3.0] * 4, budget=30)
        first = [t.num_selected() for t in trees]
        res = select_tokens(trees, [0.0] * 4, budget=4)
        assert all(t.num_selected() == 0 for t in trees)
        assert res.budget_used == 4

    def test_expected_accepted_consistent(self, trees):
        res = select_tokens(trees, [2.0] * 4, budget=24)
        for sel, tree in zip(res.selections, trees):
            assert sel.expected_accepted == pytest.approx(
                1.0 + tree.selected_path_prob_sum()
            )

    def test_candidates_scanned_counted(self, trees):
        res = select_tokens(trees, [2.0] * 4, budget=24)
        assert res.candidates_scanned == sum(t.num_selected() for t in trees)
