"""Streaming metrics accumulator (repro.serving.streaming).

``StreamingRunMetrics`` makes run metrics O(1) in request count: online
sums for every mean/counter plus deterministic fixed-size reservoirs
for percentiles.  The contract tested here:

- **exact-at-small-n**: while every per-category sample count fits the
  reservoir capacity (the default 4096 dwarfs any test run), the
  streamed :class:`RunMetrics` equals ``compute_metrics`` *as a whole
  dataclass* — sums, counters, and percentiles alike;
- **bounded beyond capacity**: with a deliberately tiny reservoir the
  percentile estimate stays within the expected rank-error band;
- **deterministic**: reservoirs are keyed splitmix64 streams — same
  feed, same sample, no global RNG;
- the ``metrics`` spec knob forks cache keys only for ``streaming``
  (``exact`` stays invisible so existing keys and goldens survive).
"""

from __future__ import annotations

import pytest

from repro.analysis.spec import ExperimentSpec, SpecError
from repro.serving.metrics import compute_metrics
from repro.serving.streaming import (
    RESERVOIR_CAPACITY,
    Reservoir,
    StreamingRunMetrics,
    aggregate_metrics,
)


def _finished_requests(target_roofline, n_seed: int = 0):
    """A finished workload with per-category samples (one real sim)."""
    from repro.analysis.harness import build_setup, run_once
    from repro.workloads.generator import WorkloadGenerator

    setup = build_setup("llama70b", seed=n_seed)
    gen = WorkloadGenerator(setup.target_roofline, seed=n_seed)
    requests = gen.steady(20.0, 4.0)
    # The harness clones its input; the finished state lives in the
    # report's requests.
    return run_once(setup, "vllm", requests).requests


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_streaming_equals_exact_below_capacity(self, target_roofline, seed):
        requests = _finished_requests(target_roofline, seed)
        exact = compute_metrics(requests)
        acc = StreamingRunMetrics()
        for r in requests:
            acc.add(r)
        assert acc.finalize() == exact  # full dataclass equality

    def test_aggregate_metrics_dispatch(self, target_roofline):
        requests = _finished_requests(target_roofline)
        assert aggregate_metrics(requests, "exact") == compute_metrics(requests)
        assert aggregate_metrics(requests, "streaming") == compute_metrics(requests)
        with pytest.raises(ValueError, match="metrics mode"):
            aggregate_metrics(requests, "approximate")

    def test_empty_run(self):
        assert StreamingRunMetrics().finalize() == compute_metrics([])

    def test_add_all_matches_add(self, target_roofline):
        requests = _finished_requests(target_roofline)
        one = StreamingRunMetrics()
        for r in requests:
            one.add(r)
        bulk = StreamingRunMetrics()
        bulk.add_all(requests)
        assert one.finalize() == bulk.finalize()

    def test_simulator_streaming_mode_matches_exact(self, target_roofline):
        from repro.analysis.harness import build_setup, run_once
        from repro.workloads.generator import WorkloadGenerator

        setup = build_setup("llama70b", seed=2)
        gen = WorkloadGenerator(setup.target_roofline, seed=2)
        requests = gen.steady(15.0, 4.0)
        exact = run_once(setup, "vllm", requests, metrics_mode="exact")
        streaming = run_once(setup, "vllm", requests, metrics_mode="streaming")
        assert streaming.metrics == exact.metrics
        assert streaming.sim_time_s == exact.sim_time_s


class TestReservoir:
    def test_exact_until_capacity(self):
        res = Reservoir(key=123, capacity=8)
        for v in [5.0, 1.0, 3.0]:
            res.add(v)
        assert res.is_exact
        assert res.percentile(50.0) == sorted([5.0, 1.0, 3.0])[1]

    def test_deterministic_same_key_same_feed(self):
        a, b = Reservoir(key=7, capacity=16), Reservoir(key=7, capacity=16)
        for i in range(1000):
            a.add(float(i))
            b.add(float(i))
        assert not a.is_exact
        assert a.percentile(99.0) == b.percentile(99.0)

    def test_bounded_rank_error_beyond_capacity(self):
        # 10k uniform values through a 256-slot reservoir: the p50
        # estimate's rank error concentrates around sqrt(q(1-q)/K)
        # (~3.1% of the range here); 6 sigma gives a deterministic-seed
        # margin without being vacuous.
        res = Reservoir(key=42, capacity=256)
        n = 10_000
        for i in range(n):
            res.add(i / n)
        estimate = res.percentile(50.0)
        assert abs(estimate - 0.5) < 6 * (0.25 / 256) ** 0.5

    def test_empty_reservoir_has_no_percentile(self):
        res = Reservoir(key=1, capacity=4)
        with pytest.raises(ValueError):
            res.percentile(50.0)

    def test_default_capacity_is_committed(self):
        assert RESERVOIR_CAPACITY == 4096


def _spec(**kw):
    kw.setdefault("model", "llama70b")
    kw.setdefault("system", "vllm")
    kw.setdefault("rps", 2.0)
    kw.setdefault("duration_s", 4.0)
    kw.setdefault("seed", 0)
    return ExperimentSpec.create(**kw)


class TestSpecKnob:
    def test_exact_is_invisible_in_cache_key(self):
        base = _spec()
        explicit = _spec(metrics="exact")
        assert "metrics" not in base.to_dict()["system"]
        assert base.digest() == explicit.digest()

    def test_streaming_forks_cache_key(self):
        exact = _spec()
        streaming = _spec(metrics="streaming")
        assert streaming.to_dict()["system"]["metrics"] == "streaming"
        assert streaming.digest() != exact.digest()
        assert streaming.metrics == "streaming"

    def test_invalid_mode_rejected(self):
        with pytest.raises(SpecError):
            _spec(metrics="sometimes")
