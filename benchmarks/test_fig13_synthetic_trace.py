"""Figure 13: arrival pattern of the synthetic workload-fluctuation trace.

Each category's request rate peaks at a different time (chat, then coding,
then summarization), creating bursty per-application traffic on top of a
small base rate — the input for the Figure 14 sensitivity study.
"""

from __future__ import annotations

from benchmarks.common import SEED
from repro.workloads.trace import phased_trace, trace_frequency

_DURATION_S = 360.0
_CATS = ("chatbot", "coding", "summarization")
_PEAK_RPS = 3.2
_BASE_RPS = 0.4
_BIN_S = 15.0


def _build():
    pairs = phased_trace(_DURATION_S, list(_CATS), _PEAK_RPS, _BASE_RPS, seed=SEED)
    per_cat = {
        cat: trace_frequency([t for t, c in pairs if c == cat], _BIN_S, _DURATION_S)
        for cat in _CATS
    }
    return pairs, per_cat


def test_fig13_phased_trace(benchmark):
    pairs, per_cat = benchmark.pedantic(_build, rounds=1, iterations=1)

    print("\n=== Figure 13: per-category request rate over time ===")
    n_bins = len(next(iter(per_cat.values())))
    print("min   " + "  ".join(f"{c[:5]:>5s}" for c in _CATS))
    for b in range(0, n_bins, 2):
        t_min = b * _BIN_S / 60
        print(
            f"{t_min:4.1f}  "
            + "  ".join(f"{per_cat[c][b] / _BIN_S:5.2f}" for c in _CATS)
        )

    # Peaks are staggered in the configured order.
    def peak_time(cat):
        counts = per_cat[cat]
        return max(range(len(counts)), key=counts.__getitem__) * _BIN_S

    assert peak_time("chatbot") < peak_time("coding") < peak_time("summarization")
    # Each category's peak rate is well above its own off-peak rate.
    for cat in _CATS:
        counts = per_cat[cat]
        third = len(counts) // 3
        peak = max(counts)
        off = min(sum(counts[:third]), sum(counts[-third:])) / third
        assert peak / _BIN_S > 2.0 * max(off / _BIN_S, 0.05)
