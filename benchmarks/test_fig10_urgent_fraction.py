"""Figure 10: SLO attainment and goodput vs. urgent-request proportion.

RPS fixed at 4.0; the share of category-1 (urgent coding) requests sweeps
over {30, 50, 70, 90}%, remainder split between chatbot and summarization.

Paper shape: continuous-batching systems (vLLM, Sarathi) degrade as
urgency grows; SD-based systems hold steady or *improve* (fewer
summarization requests means less long-prompt prefill interference);
AdaServe stays on top throughout, with up to 4.3x fewer violations and
up to 64% more goodput than the best baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.common import E2E_SYSTEMS, adaserve_dominates, run_system
from repro.analysis.report import point_from_metrics, series_table
from repro.workloads.categories import urgent_mix

_FRACTIONS = (0.3, 0.5, 0.7, 0.9)
_RPS = 4.0
_MODELS = ("llama70b", "qwen32b")


def _sweep(model: str):
    points = []
    for frac in _FRACTIONS:
        for system in E2E_SYSTEMS:
            report = run_system(model, system, _RPS, mix=urgent_mix(frac))
            points.append(
                point_from_metrics(frac * 100, report.scheduler_name, report.metrics)
            )
    return points


@pytest.mark.parametrize("model", _MODELS)
def test_fig10_urgent_fraction(benchmark, model):
    points = benchmark.pedantic(_sweep, args=(model,), rounds=1, iterations=1)

    print(f"\n=== Figure 10 ({model}): SLO attainment vs urgent % ===")
    print(series_table(points, value="attainment", x_label="urgent%"))
    print(f"\n=== Figure 10 ({model}): goodput vs urgent % ===")
    print(series_table(points, value="goodput", x_label="urgent%"))

    checks = adaserve_dominates(points, "attainment", tolerance=0.03)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks)

    def series(system, metric):
        return [
            getattr(next(p for p in points if p.x == f * 100 and p.system == system), metric)
            for f in _FRACTIONS
        ]

    # Continuous batching degrades as urgency grows.
    vllm = series("vLLM", "attainment")
    assert vllm[-1] <= vllm[0] + 0.05
    # AdaServe stays high and stable across the sweep.
    ada = series("AdaServe", "attainment")
    assert min(ada) > 0.75
    assert max(ada) - min(ada) < 0.25
