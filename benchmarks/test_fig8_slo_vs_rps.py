"""Figure 8: SLO attainment vs. request rate (both models, six systems).

Paper shape: AdaServe tops every RPS point; vLLM-Spec is the strongest
baseline but degrades faster as RPS grows; vLLM/Sarathi sit lowest under
the 60/20/20 latency-critical mix.  Headline: up to 2.1x (Llama) / 1.6x
(Qwen) attainment over the best baseline, up to 4.3x / 3.2x fewer
violations at the highest RPS.
"""

from __future__ import annotations

import pytest

from benchmarks.common import RPS_SWEEP, adaserve_dominates, rps_sweep
from repro.analysis.report import improvement_summary, series_table


@pytest.mark.parametrize("model", sorted(RPS_SWEEP))
def test_fig8_slo_attainment(benchmark, model):
    points = benchmark.pedantic(rps_sweep, args=(model,), rounds=1, iterations=1)

    print(f"\n=== Figure 8 ({model}): SLO attainment vs RPS ===")
    print(series_table(points, value="attainment", x_label="RPS"))
    summary = improvement_summary(points)
    print(
        f"max violation reduction vs best baseline: "
        f"{summary['max_violation_reduction']:.2f}x (paper: up to 4.3x)"
    )
    checks = adaserve_dominates(points, "attainment", tolerance=0.03)
    for c in checks:
        print(c)

    # Shape assertions: AdaServe never below the best baseline (within
    # tolerance) and strictly better at the highest RPS.
    assert all(c.passed for c in checks)
    top_rps = max(RPS_SWEEP[model])
    ada = next(p for p in points if p.x == top_rps and p.system == "AdaServe")
    best_other = max(
        (p for p in points if p.x == top_rps and p.system != "AdaServe"),
        key=lambda p: p.attainment,
    )
    assert ada.attainment > best_other.attainment
    # Attainment decreases with load for AdaServe (monotone trend, loose).
    ada_series = [p.attainment for p in points if p.system == "AdaServe"]
    assert ada_series[0] >= ada_series[-1]
