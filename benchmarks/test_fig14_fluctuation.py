"""Figure 14: SLO attainment under the synthetic fluctuating trace.

Each category's traffic peaks at a different time (Figure 13); the bursts
stress per-application adaptivity.  Paper shape (bar chart): AdaServe
highest (~84/83%), then Sarathi, vLLM, and the vLLM-Spec variants in
decreasing order of speculation length.
"""

from __future__ import annotations

import pytest

from benchmarks.common import E2E_SYSTEMS, SEED, setup_for
from repro.analysis.harness import run_once
from repro.analysis.report import format_table
from repro.workloads.generator import WorkloadGenerator

_DURATION_S = 150.0
_PEAK_RPS = 3.6
_BASE_RPS = 0.4
_MODELS = ("llama70b", "qwen32b")


def _run_all(model: str):
    setup = setup_for(model)
    gen = WorkloadGenerator(setup.target_roofline, seed=SEED)
    requests = gen.phased(_DURATION_S, _PEAK_RPS, _BASE_RPS)
    results = {}
    for system in E2E_SYSTEMS:
        report = run_once(setup, system, requests, max_sim_time_s=1800.0)
        results[report.scheduler_name] = report
    return results


@pytest.mark.parametrize("model", _MODELS)
def test_fig14_synthetic_trace_attainment(benchmark, model):
    results = benchmark.pedantic(_run_all, args=(model,), rounds=1, iterations=1)

    print(f"\n=== Figure 14 ({model}): SLO attainment under the synthetic trace ===")
    rows = [
        [name, f"{report.metrics.attainment * 100:.1f}%", f"{report.metrics.goodput:.0f}"]
        for name, report in sorted(
            results.items(), key=lambda kv: -kv[1].metrics.attainment
        )
    ]
    print(format_table(["system", "attainment", "goodput tok/s"], rows))

    ada = results["AdaServe"].metrics.attainment
    best_other = max(
        r.metrics.attainment for n, r in results.items() if n != "AdaServe"
    )
    assert ada >= best_other - 0.02
    assert ada > 0.7  # bursts are absorbed, not collapsed under
