"""Prefix-reuse scenario: session workloads, shared KV, affinity routing.

Beyond-the-paper scenario enabled by the prefix-cache subsystem
(:mod:`repro.prefixcache`): multi-turn chat sessions repeat an
ever-growing prompt prefix, so

- a prefix-sharing KV manager serves most prompt tokens from cache
  (hit rate and prefill-tokens-saved are reported fleet metrics);
- at cluster scale, *where* a turn lands decides whether its prefix is
  resident: the ``prefix-affinity`` router pins sessions to their home
  replica and beats load-only routing (least-loaded) on mean TTFT and
  goodput, because a hit skips nearly the whole prefill;
- everything stays a pure function of the spec: fixed-seed reruns are
  byte-identical, and schema-v4 canonicalization keys defaulted prefix
  knobs identically to plain v4 configs.

Runs through the shared result cache and is ``smoke``-marked for CI.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SEED, benchmark_cache
from repro.analysis.report import point_from_metrics, series_table
from repro.analysis.runner import ExperimentConfig, SweepRunner

pytestmark = pytest.mark.smoke

_MODEL = "llama70b"
_REPLICAS = 4
_RPS = 14.0
_DURATION_S = 20.0
_TRACE = "sessions:turns=5,think_time=2.0"


def _session_config(
    router: str,
    prefix_cache: bool = True,
    replicas: int = _REPLICAS,
    system: str = "vllm",
) -> ExperimentConfig:
    return ExperimentConfig.create(
        model=_MODEL,
        system=system,
        rps=_RPS,
        duration_s=_DURATION_S,
        seed=SEED,
        trace=_TRACE,
        prefix_cache=prefix_cache,
        replicas=replicas,
        router=router,
    )


def test_prefix_cache_serves_session_prefixes(benchmark):
    """Solo engine, sessions trace: hits > 0, prefill work saved, TTFT down."""
    cached = _session_config("round-robin", prefix_cache=True, replicas=1)
    cold = _session_config("round-robin", prefix_cache=False, replicas=1)
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = benchmark.pedantic(runner.run, args=([cached, cold],), rounds=1, iterations=1)
    hit, miss = (r.report.metrics for r in results)

    print(
        f"\n=== Solo ({_MODEL}, {_TRACE}): prefix cache on vs off ===\n"
        f"  on : hit rate {hit.prefix_hit_rate:.2f}  saved {hit.prefill_tokens_saved} tok  "
        f"mean TTFT {hit.mean_ttft_s:.3f}s  goodput {hit.goodput:.0f}\n"
        f"  off: hit rate {miss.prefix_hit_rate:.2f}  saved {miss.prefill_tokens_saved} tok  "
        f"mean TTFT {miss.mean_ttft_s:.3f}s  goodput {miss.goodput:.0f}"
    )
    assert hit.prefix_hit_rate > 0
    assert hit.prefill_tokens_saved > 0
    assert miss.prefix_hit_rate == 0.0
    assert miss.prefill_tokens_saved == 0
    # Skipped prefill shows up directly as time-to-first-token.
    assert hit.mean_ttft_s < miss.mean_ttft_s


def test_prefix_affinity_beats_least_loaded_on_sessions(benchmark):
    """Fleet: session stickiness beats pure load balancing on TTFT/goodput."""
    routers = ("prefix-affinity", "least-loaded", "round-robin")
    configs = [_session_config(router) for router in routers]
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = benchmark.pedantic(runner.run, args=(configs,), rounds=1, iterations=1)
    by_router = dict(zip(routers, (r.report.metrics for r in results)))

    points = [
        point_from_metrics(_RPS, r.report.scheduler_name, r.report.metrics)
        for r in results
    ]
    print(f"\n=== Cluster ({_MODEL}, {_REPLICAS} replicas, {_TRACE}) ===")
    print(series_table(points, value="goodput", x_label="RPS"))
    for router, m in by_router.items():
        print(
            f"  {router:16s} mean TTFT {m.mean_ttft_s:.3f}s  "
            f"hit rate {m.prefix_hit_rate:.2f}  saved {m.prefill_tokens_saved} tok  "
            f"attainment {m.attainment:.3f}"
        )

    affinity = by_router["prefix-affinity"]
    least = by_router["least-loaded"]
    # Routing to the prefix-holding replica is a strict TTFT win over
    # routing to the least-loaded one: the hit skips almost all prefill.
    assert affinity.mean_ttft_s < least.mean_ttft_s
    # It also saves strictly more prefill work (follow-up turns land on
    # warm KV instead of recomputing their history elsewhere) and turns
    # that into goodput.
    assert affinity.prefill_tokens_saved > least.prefill_tokens_saved
    assert affinity.goodput > least.goodput


def test_prefix_points_deterministic_and_canonicalized(tmp_path):
    """(c) byte-identical fixed-seed reruns + schema-v4 key canonicalization."""
    from repro.analysis.cache import ResultCache

    configs = [
        _session_config("prefix-affinity"),
        _session_config("round-robin", prefix_cache=False, replicas=1),
    ]
    cache = ResultCache(tmp_path)

    cold = SweepRunner(cache=cache, jobs=1)
    first = cold.run(configs)
    assert cold.executed == len(configs)

    warm = SweepRunner(cache=cache, jobs=1)
    second = warm.run(configs)
    assert warm.executed == 0
    assert all(r.from_cache for r in second)
    for a, b in zip(first, second):
        assert cache.path_for(a.config).read_bytes() == cache.path_for(b.config).read_bytes()
        assert a.report.metrics == b.report.metrics

    # v4 canonicalization: defaulted prefix knobs (prefix_cache=False,
    # spelled-out trace defaults) share keys with plain v4 configs.
    plain = ExperimentConfig.create(
        model=_MODEL, system="vllm", rps=_RPS, duration_s=_DURATION_S, seed=SEED
    )
    spelled = ExperimentConfig.create(
        model=_MODEL, system="vllm", rps=_RPS, duration_s=_DURATION_S, seed=SEED,
        trace="bursty:burstiness=0.5", prefix_cache=False,
    )
    assert plain == spelled
    assert plain.digest() == spelled.digest()
    sessions_default = ExperimentConfig.create(
        model=_MODEL, system="vllm", rps=_RPS, duration_s=_DURATION_S, seed=SEED,
        trace="sessions:turns=6,system_prompt=256,think_time=4.0",
    )
    assert sessions_default.trace == "sessions"
