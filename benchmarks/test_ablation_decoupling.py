"""Ablation: decoupled speculate/select vs. interleaved Algorithm 1.

§4.2 Challenge 2: running Algorithm 1 directly requires one draft decode
per inserted node (B - n sequential steps), while the decoupled pipeline
needs only d parallel steps.  This bench quantifies both the draft-step
saving and the solution quality retained (expected accepted tokens of the
decoupled selection vs. the oracle optimum).
"""

from __future__ import annotations

from benchmarks.common import SEED
from repro.analysis.report import format_table
from repro.core.optimal import construct_optimal_trees
from repro.core.selection import select_tokens
from repro.core.speculation import speculate_batch
from repro.model.pair import ModelPair

_BATCH = 16
_BUDGET = 96
_DEPTH = 4
_WIDTH = 4


def _compare():
    # Use a perfectly aligned pair so the decoupled pipeline's only
    # disadvantage is beam truncation, isolating the design trade-off.
    pair = ModelPair.build(vocab_size=5000, seed=SEED, alignment=1.0, predictability=0.72)
    roots = [(0, pair.context_of([i, 5])) for i in range(_BATCH)]
    requirements = [1.5] * _BATCH

    optimal = construct_optimal_trees(pair, roots, requirements, _BUDGET)
    assert not isinstance(optimal, str)

    spec = speculate_batch(pair, roots, _DEPTH, _WIDTH)
    selection = select_tokens(spec.trees, requirements, budget=_BUDGET, depth=_DEPTH)
    decoupled_value = sum(s.expected_accepted for s in selection.selections)

    return {
        "optimal_value": optimal.total_expected,
        "optimal_draft_steps": optimal.draft_decode_steps,
        "decoupled_value": decoupled_value,
        "decoupled_draft_steps": _DEPTH,
    }


def test_ablation_decoupling(benchmark):
    r = benchmark.pedantic(_compare, rounds=1, iterations=1)

    print("\n=== Ablation: interleaved Algorithm 1 vs decoupled pipeline ===")
    print(
        format_table(
            ["variant", "E[accepted]", "sequential draft steps"],
            [
                ["Algorithm 1 (oracle, interleaved)", f"{r['optimal_value']:.2f}", str(r["optimal_draft_steps"])],
                ["Speculate+select (decoupled)", f"{r['decoupled_value']:.2f}", str(r["decoupled_draft_steps"])],
            ],
        )
    )
    ratio = r["decoupled_value"] / r["optimal_value"]
    saving = r["optimal_draft_steps"] / r["decoupled_draft_steps"]
    print(f"quality retained: {ratio * 100:.1f}%   draft-step saving: {saving:.0f}x")

    # The paper's claim: near-optimal quality at a fraction of the steps.
    assert r["decoupled_draft_steps"] <= _DEPTH
    assert r["optimal_draft_steps"] == _BUDGET - _BATCH
    assert ratio > 0.85
    assert saving > 5
