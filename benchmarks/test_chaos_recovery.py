"""Chaos recovery scenario: replica churn, autonomic re-routing, SLOs.

Beyond-the-paper scenario enabled by the fault-injection subsystem
(:mod:`repro.chaos`): replicas crash mid-run (losing their KV and shared
prefix blocks) and restart cold, while the fleet recovers autonomically —
in-flight requests are re-queued and re-routed, sessions are re-homed,
lost prefixes re-prefilled.

What the scenario pins down:

- **no request is dropped**: everything evacuated from a dead replica
  finishes elsewhere (or back on the restarted replica), and the incident
  report's recovery-time / requests-lost metrics say so;
- under churn, prefix-affinity routing with crash re-homing strictly
  beats naive round-robin on goodput *and* p99 urgent TTFT: stickiness
  keeps surviving homes warm, while round-robin re-prefills session
  history all over the fleet;
- fixed-seed chaos runs are byte-identical across repeats (the fault
  timeline is part of the experiment spec).

Runs through the shared result cache and is ``smoke``-marked for CI; the
incident table printed here is the same one ``repro chaos-report``
exports for the CI job summary.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SEED, benchmark_cache
from repro.analysis.runner import ExperimentConfig, SweepRunner
from repro.chaos import format_incident_table

pytestmark = pytest.mark.smoke

_MODEL = "llama70b"
_REPLICAS = 4
_RPS = 14.0
_DURATION_S = 20.0
_TRACE = "sessions:turns=5,think_time=2.0"
#: Replica churn: two staggered crashes with cold restarts.
_FAULTS = (
    "crash:at=6,replica=1,restart=4",
    "crash:at=12,replica=2,restart=4",
)
#: The latency-stringent (baseline-relative SLO) category of the paper mix.
_URGENT_CATEGORY = "coding"


def _churn_config(router: str) -> ExperimentConfig:
    return ExperimentConfig.create(
        model=_MODEL,
        system="vllm",
        rps=_RPS,
        duration_s=_DURATION_S,
        seed=SEED,
        trace=_TRACE,
        prefix_cache=True,
        replicas=_REPLICAS,
        router=router,
        faults=_FAULTS,
    )


def test_recovery_under_churn(benchmark):
    """Crashes evacuate cleanly: nothing lost, recovery time bounded."""
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = benchmark.pedantic(
        runner.run, args=([_churn_config("prefix-affinity")],), rounds=1, iterations=1
    )
    report = results[0].report
    chaos = report.chaos
    assert chaos is not None
    print(f"\n=== Incident report ({_MODEL}, {_REPLICAS} replicas, {_TRACE}) ===")
    print(format_incident_table(chaos))

    assert chaos["num_crashes"] == 2
    # Autonomic recovery: every evacuated request finished somewhere.
    assert chaos["requests_lost"] == 0
    assert report.metrics.requests_lost == 0
    assert report.metrics.requests_disrupted > 0
    for crash in chaos["crashes"]:
        assert crash["requeued"] > 0
        assert crash["recovery_time_s"] is not None
        # Recovered within the run, not merely "by the end of time".
        assert crash["recovery_time_s"] < _DURATION_S
    assert chaos["mean_recovery_time_s"] > 0.0
    # Service during the incident windows stayed useful (not a blackout).
    assert chaos["incident"]["attainment"] > 0.5


def test_affinity_rehoming_beats_round_robin_under_churn(benchmark):
    """Stickiness + re-homing wins goodput and p99 urgent TTFT under churn."""
    routers = ("prefix-affinity", "round-robin")
    configs = [_churn_config(router) for router in routers]
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = benchmark.pedantic(runner.run, args=(configs,), rounds=1, iterations=1)
    by_router = dict(zip(routers, (r.report for r in results)))

    print(f"\n=== Churn ({_MODEL}, {_REPLICAS} replicas, faults: {', '.join(_FAULTS)}) ===")
    for router, report in by_router.items():
        m = report.metrics
        urgent = m.per_category[_URGENT_CATEGORY]
        print(
            f"  {router:16s} goodput {m.goodput:7.0f}  "
            f"p99 {_URGENT_CATEGORY} TTFT {urgent.p99_ttft_s:.3f}s  "
            f"hit rate {m.prefix_hit_rate:.2f}  disrupted {m.requests_disrupted}  "
            f"mean recovery {report.chaos['mean_recovery_time_s']:.2f}s"
        )

    affinity = by_router["prefix-affinity"].metrics
    naive = by_router["round-robin"].metrics
    # Strict wins: warm homes serve follow-up turns through the churn,
    # while round-robin re-prefills session history all over the fleet.
    assert affinity.goodput > naive.goodput
    assert (
        affinity.per_category[_URGENT_CATEGORY].p99_ttft_s
        < naive.per_category[_URGENT_CATEGORY].p99_ttft_s
    )
    # Neither policy loses work — the recovery guarantee is router-agnostic.
    assert by_router["prefix-affinity"].chaos["requests_lost"] == 0
    assert by_router["round-robin"].chaos["requests_lost"] == 0


def test_chaos_points_deterministic(tmp_path):
    """Fixed-seed chaos runs are byte-identical and cache-stable."""
    from repro.analysis.cache import ResultCache

    configs = [_churn_config("prefix-affinity")]
    cache = ResultCache(tmp_path)

    cold = SweepRunner(cache=cache, jobs=1)
    first = cold.run(configs)
    assert cold.executed == 1

    warm = SweepRunner(cache=cache, jobs=1)
    second = warm.run(configs)
    assert warm.executed == 0
    assert second[0].from_cache
    assert (
        cache.path_for(first[0].config).read_bytes()
        == cache.path_for(second[0].config).read_bytes()
    )
    assert first[0].report.chaos == second[0].report.chaos
