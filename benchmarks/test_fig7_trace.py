"""Figure 7: request frequency over time of the real-world trace.

Reproduces the trace *shape*: bursty, time-varying arrival frequency with
a mean rescaled to the target RPS (the paper truncates and rescales the
Splitwise production trace the same way).
"""

from __future__ import annotations

from benchmarks.common import SEED
from repro.workloads.trace import bursty_trace, trace_frequency

_DURATION_S = 1200.0  # 20-minute window, as in the paper's figure
_TARGET_RPS = 2.0
_BIN_S = 12.0


def _build():
    arrivals = bursty_trace(_DURATION_S, _TARGET_RPS, seed=SEED, burstiness=0.6)
    return arrivals, trace_frequency(arrivals, _BIN_S, _DURATION_S)


def test_fig7_trace_shape(benchmark):
    arrivals, counts = benchmark.pedantic(_build, rounds=1, iterations=1)

    print("\n=== Figure 7: request frequency over time (bin = 12 s) ===")
    peak = max(counts) or 1
    for minute in range(0, 20, 2):
        lo = int(minute * 60 / _BIN_S)
        hi = int((minute + 2) * 60 / _BIN_S)
        window = counts[lo:hi]
        mean = sum(window) / len(window)
        bar = "#" * int(40 * mean / peak)
        print(f"{minute:4.1f}m  {mean:6.1f} req/bin  {bar}")

    # Mean rate matches the rescaling target.
    assert abs(len(arrivals) / _DURATION_S - _TARGET_RPS) < 0.3
    # Bursty: peak well above mean, variance overdispersed.
    mean_count = sum(counts) / len(counts)
    assert max(counts) > 1.8 * mean_count
    var = sum((c - mean_count) ** 2 for c in counts) / len(counts)
    assert var > mean_count  # super-Poissonian
    # Never fully idle for long stretches (trace floor).
    quiet = sum(1 for c in counts if c == 0)
    assert quiet < len(counts) * 0.3
