"""Ablation: the per-request token cap n_max in SLO-customized selection.

§4.3 step 2: without a cap, a request far behind its SLO can drain the
budget on low-probability nodes (diminishing returns), starving the rest
of the batch.  Sweeps n_max and reports attainment/goodput; also checks
the micro-level mechanism directly on one selection round.
"""

from __future__ import annotations

from benchmarks.common import SEED, setup_for
from repro.analysis.harness import run_once
from repro.analysis.report import format_table
from repro.core.selection import select_tokens
from repro.core.speculation import speculate_batch
from repro.model.pair import ModelPair
from repro.workloads.generator import WorkloadGenerator

_RPS = 4.2
_DURATION_S = 40.0
_N_MAX_SWEEP = (2, 4, 8, 16, 64)


def _run_sweep():
    setup = setup_for("llama70b")
    gen = WorkloadGenerator(setup.target_roofline, seed=SEED)
    requests = gen.bursty(_DURATION_S, _RPS)
    return {
        n_max: run_once(setup, "adaserve", requests, n_max=n_max)
        for n_max in _N_MAX_SWEEP
    }


def test_ablation_nmax_sweep(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: n_max (SLO-phase per-request cap) ===")
    rows = [
        [str(n), f"{r.metrics.attainment * 100:.1f}%", f"{r.metrics.goodput:.0f}"]
        for n, r in results.items()
    ]
    print(format_table(["n_max", "attainment", "goodput"], rows))

    # Extremely small caps hurt (SLO phase cannot secure urgent requests);
    # moderate caps should be no worse than an effectively uncapped one.
    moderate = max(results[n].metrics.attainment for n in (4, 8, 16))
    assert moderate >= results[64].metrics.attainment - 0.03
    assert moderate >= results[2].metrics.attainment - 0.02


def test_nmax_prevents_budget_monopoly():
    # Micro check: one hopeless low-predictability request + several
    # normal ones.  Without a cap the hopeless request eats the budget.
    pair = ModelPair.build(vocab_size=5000, seed=SEED, alignment=0.9)
    roots = [(0, pair.context_of([i, 9])) for i in range(5)]
    centers = [0.1, 0.8, 0.8, 0.8, 0.8]
    requirements = [6.0, 1.2, 1.2, 1.2, 1.2]  # request 0 is hopeless
    budget = 5 + 12

    trees_uncapped = speculate_batch(pair, roots, 5, 4, centers=centers).trees
    uncapped = select_tokens(trees_uncapped, requirements, budget=budget, n_max=1000)
    trees_capped = speculate_batch(pair, roots, 5, 4, centers=centers).trees
    capped = select_tokens(trees_capped, requirements, budget=budget, n_max=4)

    hog_uncapped = uncapped.selections[0].slo_tokens
    hog_capped = capped.selections[0].slo_tokens
    print(f"\nhopeless request SLO tokens: uncapped={hog_uncapped}, capped={hog_capped}")
    assert hog_capped <= 4 < hog_uncapped
    # The cap redistributes budget: others' expected acceptance improves.
    others_capped = sum(s.expected_accepted for s in capped.selections[1:])
    others_uncapped = sum(s.expected_accepted for s in uncapped.selections[1:])
    assert others_capped >= others_uncapped
