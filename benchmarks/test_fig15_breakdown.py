"""Figure 15: latency breakdown of SLO-customized speculative decoding.

Measures the share of serving time spent in scheduling (CPU-side token
selection), speculation (draft model) and verification (target model).
Paper result: scheduling is 0.31-0.41% of serving time — negligible.

Two measurements are reported:

- the *simulated* phase breakdown of a full serving run (scheduling priced
  by the deterministic cost model the scheduler uses);
- the *measured* wall-clock of the pure-CPU selection implementation per
  iteration, which calibrates that cost model.
"""

from __future__ import annotations

import time

from benchmarks.common import SEED, run_system
from repro.core.pipeline import BatchItem, run_iteration
from repro.analysis.report import format_table


def _serving_breakdown():
    report = run_system("llama70b", "adaserve", 3.8)
    return report.phase_breakdown


def test_fig15_breakdown(benchmark):
    breakdown = benchmark.pedantic(_serving_breakdown, rounds=1, iterations=1)

    print("\n=== Figure 15: latency breakdown (llama70b, RPS 3.8) ===")
    rows = [[phase, f"{share * 100:.2f}%"] for phase, share in sorted(breakdown.items())]
    print(format_table(["phase", "share"], rows))

    gpu_decode_phases = (
        breakdown.get("speculation", 0)
        + breakdown.get("verification", 0)
        + breakdown.get("prefill", 0)
    )
    sched = breakdown.get("scheduling", 0)
    # The paper's headline: scheduling overhead is < 1% of serving time.
    assert sched < 0.01
    assert gpu_decode_phases > 0.9


def test_fig15_selection_cpu_measured(pair_fixture=None):
    """Measured CPU time of Algorithm 2's selection phases per iteration."""
    from repro.model.pair import ModelPair

    pair = ModelPair.from_preset("llama70b-1b", seed=SEED)
    items = [
        BatchItem(root_token=0, root_ctx=pair.context_of([i, 3]), requirement=1.5)
        for i in range(32)
    ]
    # Warm the model caches so we time selection, not distribution draws.
    run_iteration(pair, items, depth=4, width=4, budget=120)
    t0 = time.perf_counter()
    n = 20
    cpu = 0.0
    for _ in range(n):
        result = run_iteration(pair, items, depth=4, width=4, budget=120)
        cpu += result.selection_cpu_s
    wall = time.perf_counter() - t0
    per_iter_cpu = cpu / n
    print(f"\nmeasured selection CPU: {per_iter_cpu * 1e6:.0f} us/iteration "
          f"(batch 32, budget 120); pipeline wall {wall / n * 1e3:.1f} ms/iter")
    # The deterministic cost model (20us + 0.2us/candidate, <=120
    # candidates -> <=44us) must be the same order of magnitude.
    assert per_iter_cpu < 1e-3
