"""Smoke sweep for the parallel experiment runner (``pytest -m smoke``).

A deliberately small grid — two systems at two RPS points over a
six-second trace — fanned out over two worker processes, then replayed
from the warm cache.  The whole module runs in well under a minute, so
CI (and anyone touching the runner) gets an end-to-end check of the
parallel path without paying for the full figure sweeps.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SEED
from repro.analysis.cache import ResultCache
from repro.analysis.export import points_from_cache
from repro.analysis.runner import ExperimentConfig, SweepRunner

pytestmark = pytest.mark.smoke

_SYSTEMS = ("adaserve", "vllm")
_RPS = (1.5, 2.5)


def _grid() -> list[ExperimentConfig]:
    base = ExperimentConfig.create(
        model="llama70b", system="adaserve", rps=1.0, duration_s=6.0, seed=SEED
    )
    # Replica seeding keeps the smoke grid disjoint from the figure caches.
    seed = base.with_replica(0).seed
    return [
        ExperimentConfig.create(
            model="llama70b", system=system, rps=rps, duration_s=6.0, seed=seed
        )
        for rps in _RPS
        for system in _SYSTEMS
    ]


def test_parallel_smoke_sweep(tmp_path):
    cache = ResultCache(tmp_path)
    cold = SweepRunner(cache=cache, jobs=2)
    results = cold.run(_grid())

    assert cold.executed == len(results) == len(_RPS) * len(_SYSTEMS)
    assert {r.report.scheduler_name for r in results} == {"AdaServe", "vLLM"}
    assert all(r.report.metrics.num_requests > 0 for r in results)

    points = points_from_cache(cache, _grid())
    assert {p.x for p in points} == set(_RPS)

    warm = SweepRunner(cache=cache, jobs=2)
    replay = warm.run(_grid())
    assert warm.executed == 0
    assert all(r.from_cache for r in replay)
    assert [r.report.metrics for r in replay] == [r.report.metrics for r in results]
