"""Ablation: attributing AdaServe's gains (trees + SLO-customization vs
pure adaptivity vs static speculation).

Three points in the design space on the same high-pressure workload:

- vLLM-Spec(6): static chains (no adaptivity, no SLO-awareness);
- SmartSpec: adaptive chain lengths optimizing goodput (adaptivity only);
- AdaServe: adaptive *trees* with per-request SLO-customized selection.

Paper positioning (§7): SmartSpec "adaptively tunes draft sequence
lengths" but "neither supports tree-based decoding nor accounts for
heterogeneous request demands"; AdaServe's gains should therefore persist
over SmartSpec, especially on the strict category.
"""

from __future__ import annotations

from benchmarks.common import run_system
from repro.analysis.report import format_table

_RPS = 4.6
_SYSTEMS = ("vllm-spec-6", "smartspec", "adaserve")


def _run_all():
    return {
        (report := run_system("llama70b", system, _RPS)).scheduler_name: report
        for system in _SYSTEMS
    }


def test_ablation_tree_vs_chain(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    print("\n=== Ablation: static chains vs adaptive chains vs SLO-customized trees ===")
    rows = []
    for name, report in results.items():
        m = report.metrics
        rows.append(
            [
                name,
                f"{m.attainment * 100:.1f}%",
                f"{m.goodput:.0f}",
                f"{m.per_category['coding'].attainment * 100:.0f}%",
                f"{m.mean_accepted_per_verify:.2f}",
            ]
        )
    print(
        format_table(
            ["system", "attainment", "goodput", "coding attain", "acc/verify"], rows
        )
    )

    ada = results["AdaServe"].metrics
    smart = results["SmartSpec"].metrics
    static = results["vLLM-Spec(6)"].metrics

    # SLO-customized trees beat adaptivity-only on the strict category.
    assert (
        ada.per_category["coding"].attainment
        >= smart.per_category["coding"].attainment - 0.02
    )
    # And overall attainment follows the design-space ordering.
    assert ada.attainment >= max(smart.attainment, static.attainment) - 0.02
