"""Figure 11: SLO attainment and goodput vs. SLO scale.

RPS fixed at 4.0, urgent share 60%; the urgent category's TPOT SLO is
scaled by {1.6, 1.4, 1.2, 1.0, 0.8, 0.6} x the baseline-relative default.

Paper shape: everyone degrades as SLOs tighten; continuous-batching
systems collapse below scale 1.0 (a uniform decode iteration simply takes
longer than the SLO allows), SD systems keep functioning below 1.0, and
AdaServe holds the best attainment/goodput everywhere — up to 4.61x fewer
violations and 1.38x goodput vs the best baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.common import E2E_SYSTEMS, adaserve_dominates, run_system
from repro.analysis.report import point_from_metrics, series_table
from repro.workloads.categories import urgent_mix

_SCALES = (1.6, 1.4, 1.2, 1.0, 0.8, 0.6)
_RPS = 4.0
_MIX = urgent_mix(0.6)
_MODELS = ("llama70b", "qwen32b")


def _sweep(model: str):
    points = []
    for scale in _SCALES:
        for system in E2E_SYSTEMS:
            report = run_system(model, system, _RPS, mix=_MIX, slo_scale=scale)
            points.append(
                point_from_metrics(scale, report.scheduler_name, report.metrics)
            )
    return points


@pytest.mark.parametrize("model", _MODELS)
def test_fig11_slo_scale(benchmark, model):
    points = benchmark.pedantic(_sweep, args=(model,), rounds=1, iterations=1)

    print(f"\n=== Figure 11 ({model}): SLO attainment vs SLO scale ===")
    print(series_table(points, value="attainment", x_label="scale"))
    print(f"\n=== Figure 11 ({model}): goodput vs SLO scale ===")
    print(series_table(points, value="goodput", x_label="scale"))

    # Tolerance is wider at the extreme end of the sweep: at scale 0.6
    # every system is far past its operating point and the static
    # deep-speculation baselines can edge ahead by a few points (see
    # EXPERIMENTS.md).
    checks = adaserve_dominates(points, "attainment", tolerance=0.08)
    for c in checks:
        print(c)
    assert all(c.passed for c in checks)

    def series(system):
        return [
            next(p for p in points if p.x == s and p.system == system).attainment
            for s in _SCALES
        ]

    # Tighter SLOs hurt everyone (loose monotonicity over the sweep ends).
    ada = series("AdaServe")
    assert ada[0] >= ada[-1]
    # Continuous batching collapses below scale 1.0 (strict iterations are
    # simply unattainable at uniform per-token latency).
    vllm = series("vLLM")
    assert vllm[-1] < 0.45
    # AdaServe sustains sub-1.0 scales far better than vLLM.
    assert ada[-1] > vllm[-1] + 0.2
