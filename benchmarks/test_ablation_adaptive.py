"""Ablation: adaptive (d, w) control (Equations 8-9) vs. fixed beams.

Runs AdaServe on a bursty workload with the adaptive controller against
variants pinned to fixed (d, w).  Expectation: small fixed beams give up
speedup at low load, large fixed beams waste speculation at high load;
the adaptive policy is at least competitive with the best fixed setting
without knowing the load in advance.
"""

from __future__ import annotations

from benchmarks.common import SEED, setup_for
from repro.analysis.harness import run_once
from repro.analysis.report import format_table
from repro.core.adaptive import AdaptiveConfig
from repro.workloads.generator import WorkloadGenerator

_RPS = 5.0
_DURATION_S = 40.0


def _fixed(d: int, w: int) -> AdaptiveConfig:
    return AdaptiveConfig(d_min=d, d_max=d, w_max=w, c1=0.0, c2=w)


def _run_variants():
    setup = setup_for("llama70b")
    gen = WorkloadGenerator(setup.target_roofline, seed=SEED)
    requests = gen.bursty(_DURATION_S, _RPS)
    out = {}
    out["adaptive"] = run_once(setup, "adaserve", requests)
    for d, w in ((1, 1), (2, 2), (6, 4), (8, 4)):
        out[f"fixed d={d} w={w}"] = run_once(
            setup, "adaserve", requests, adaptive=_fixed(d, w)
        )
    return out


def test_ablation_adaptive_control(benchmark):
    results = benchmark.pedantic(_run_variants, rounds=1, iterations=1)

    print("\n=== Ablation: adaptive vs fixed speculation parameters ===")
    rows = [
        [
            name,
            f"{r.metrics.attainment * 100:.1f}%",
            f"{r.metrics.goodput:.0f}",
            f"{r.metrics.mean_accepted_per_verify:.2f}",
        ]
        for name, r in results.items()
    ]
    print(format_table(["variant", "attainment", "goodput", "mean accepted"], rows))

    adaptive = results["adaptive"].metrics
    best_fixed = max(
        (r.metrics for n, r in results.items() if n != "adaptive"),
        key=lambda m: m.attainment,
    )
    # Adaptive is competitive with the best fixed beam chosen in hindsight.
    assert adaptive.attainment >= best_fixed.attainment - 0.05
    # And clearly better than the worst fixed beam.
    worst_fixed = min(
        (r.metrics for n, r in results.items() if n != "adaptive"),
        key=lambda m: m.attainment,
    )
    assert adaptive.attainment > worst_fixed.attainment
