"""Shared machinery for the figure/table benchmarks.

Each benchmark reproduces one piece of the paper's evaluation.  The
end-to-end figures (8, 9, 12) share one RPS sweep per model, so sweep
results are memoized at module scope and reused across benchmark files
within a pytest session.

Scale note: traces are shorter than the paper's (tens of seconds rather
than tens of minutes) to keep the full benchmark run in minutes on a
laptop; the contention regime (prefill utilization and RPS range) matches
the paper's setup, which is what the reproduced *shapes* depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.harness import Setup, build_setup, run_once
from repro.analysis.report import SeriesPoint, point_from_metrics
from repro.serving.server import SimulationReport
from repro.workloads.generator import WorkloadGenerator

#: Systems compared in the end-to-end figures (Figures 8-12, 14).
E2E_SYSTEMS = ("adaserve", "vllm", "sarathi", "vllm-spec-4", "vllm-spec-6", "vllm-spec-8")

#: RPS sweeps per model (Figure 8/9 x-axes).
RPS_SWEEP = {
    "llama70b": (2.6, 3.0, 3.4, 3.8, 4.2, 4.6, 5.0),
    "qwen32b": (2.4, 2.8, 3.2, 3.6, 4.0, 4.4),
}

#: Trace length for the end-to-end sweeps (seconds).
SWEEP_DURATION_S = 45.0

#: Workload seed for all benchmarks (results are deterministic given it).
SEED = 1234

_SETUPS: dict[str, Setup] = {}
_SWEEP_CACHE: dict[tuple, list[SeriesPoint]] = {}
_REPORT_CACHE: dict[tuple, SimulationReport] = {}


def setup_for(model: str) -> Setup:
    """Memoized deployment setup."""
    if model not in _SETUPS:
        _SETUPS[model] = build_setup(model, seed=SEED)
    return _SETUPS[model]


def run_system(
    model: str,
    system: str,
    rps: float,
    duration_s: float = SWEEP_DURATION_S,
    mix: dict[str, float] | None = None,
    slo_scale: float = 1.0,
    trace: str = "bursty",
) -> SimulationReport:
    """Memoized single-system run on a standard workload."""
    mix_key = tuple(sorted(mix.items())) if mix else None
    key = (model, system, rps, duration_s, mix_key, slo_scale, trace)
    if key not in _REPORT_CACHE:
        setup = setup_for(model)
        gen = WorkloadGenerator(setup.target_roofline, seed=SEED, slo_scale=slo_scale)
        if trace == "bursty":
            requests = gen.bursty(duration_s, rps, mix=mix)
        elif trace == "steady":
            requests = gen.steady(duration_s, rps, mix=mix)
        else:
            raise ValueError(f"unknown trace kind {trace!r}")
        _REPORT_CACHE[key] = run_once(setup, system, requests, max_sim_time_s=1800.0)
    return _REPORT_CACHE[key]


def rps_sweep(model: str, systems: tuple[str, ...] = E2E_SYSTEMS) -> list[SeriesPoint]:
    """The Figure 8/9/12 sweep: every system at every RPS point."""
    key = (model, systems)
    if key not in _SWEEP_CACHE:
        points: list[SeriesPoint] = []
        for rps in RPS_SWEEP[model]:
            for system in systems:
                report = run_system(model, system, rps)
                points.append(
                    point_from_metrics(rps, report.scheduler_name, report.metrics)
                )
        _SWEEP_CACHE[key] = points
    return _SWEEP_CACHE[key]


@dataclass(frozen=True)
class FigureCheck:
    """A soft shape assertion outcome (recorded in printed output)."""

    description: str
    passed: bool

    def __str__(self) -> str:
        return f"[{'ok' if self.passed else 'MISS'}] {self.description}"


def adaserve_dominates(points: list[SeriesPoint], metric: str, tolerance: float) -> list[FigureCheck]:
    """Per-x checks that AdaServe >= best baseline - tolerance."""
    checks = []
    for x in sorted({p.x for p in points}):
        ada = next((p for p in points if p.x == x and p.system == "AdaServe"), None)
        others = [p for p in points if p.x == x and p.system != "AdaServe"]
        if ada is None or not others:
            continue
        best = max(getattr(p, metric) for p in others)
        ok = getattr(ada, metric) >= best - tolerance
        checks.append(
            FigureCheck(
                f"x={x:g}: AdaServe {metric} {getattr(ada, metric):.3f} vs best baseline {best:.3f}",
                ok,
            )
        )
    return checks
