"""Shared machinery for the figure/table benchmarks.

Each benchmark reproduces one piece of the paper's evaluation.  The
end-to-end figures (8, 9, 12) share one RPS sweep per model; all shared
runs go through :mod:`repro.analysis.runner` and the content-addressed
result cache (:mod:`repro.analysis.cache`), so results are reused across
benchmark files, pytest sessions, CLI invocations, and CI jobs alike.
Set ``REPRO_CACHE_DIR`` to relocate the cache and ``REPRO_JOBS`` to fan
the shared sweeps out over worker processes.

Scale note: traces are shorter than the paper's (tens of seconds rather
than tens of minutes) to keep the full benchmark run in minutes on a
laptop; the contention regime (prefill utilization and RPS range) matches
the paper's setup, which is what the reproduced *shapes* depend on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.analysis.cache import ResultCache
from repro.analysis.harness import Setup, build_setup
from repro.analysis.report import SeriesPoint, point_from_metrics
from repro.analysis.runner import ExperimentSpec, SweepRunner
from repro.serving.server import SimulationReport

#: Systems compared in the end-to-end figures (Figures 8-12, 14).
E2E_SYSTEMS = ("adaserve", "vllm", "sarathi", "vllm-spec-4", "vllm-spec-6", "vllm-spec-8")

#: RPS sweeps per model (Figure 8/9 x-axes).
RPS_SWEEP = {
    "llama70b": (2.6, 3.0, 3.4, 3.8, 4.2, 4.6, 5.0),
    "qwen32b": (2.4, 2.8, 3.2, 3.6, 4.0, 4.4),
}

#: Trace length for the end-to-end sweeps (seconds).
SWEEP_DURATION_S = 45.0

#: Workload seed for all benchmarks (results are deterministic given it).
SEED = 1234

_CACHE: ResultCache | None = None


def benchmark_cache() -> ResultCache:
    """The session-wide result cache (one instance, so stats aggregate)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = ResultCache()
    return _CACHE


def benchmark_jobs() -> int:
    """Worker processes for shared sweeps (``REPRO_JOBS``, default serial)."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def setup_for(model: str) -> Setup:
    """Deployment setup under the benchmark seed."""
    return build_setup(model, seed=SEED)


def standard_config(
    model: str,
    system: str,
    rps: float,
    duration_s: float = SWEEP_DURATION_S,
    mix: dict[str, float] | None = None,
    slo_scale: float = 1.0,
    trace: str = "bursty",
) -> ExperimentSpec:
    """A standard-workload experiment point (seed and trace explicit).

    ``system`` and ``trace`` accept any registry spec string
    (``vllm-spec:k=8``, ``diurnal:peak_to_trough=6``, ...).
    """
    return ExperimentSpec.create(
        model=model,
        system=system,
        rps=rps,
        duration_s=duration_s,
        seed=SEED,
        trace=trace,
        slo_scale=slo_scale,
        mix=mix,
        max_sim_time_s=1800.0,
    )


def run_system(
    model: str,
    system: str,
    rps: float,
    duration_s: float = SWEEP_DURATION_S,
    mix: dict[str, float] | None = None,
    slo_scale: float = 1.0,
    trace: str = "bursty",
) -> SimulationReport:
    """Cached single-system run on a standard workload."""
    config = standard_config(model, system, rps, duration_s, mix, slo_scale, trace)
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    return runner.run([config])[0].report


def rps_sweep(model: str, systems: tuple[str, ...] = E2E_SYSTEMS) -> list[SeriesPoint]:
    """The Figure 8/9/12 sweep: every system at every RPS point."""
    configs = [
        standard_config(model, system, rps)
        for rps in RPS_SWEEP[model]
        for system in systems
    ]
    runner = SweepRunner(cache=benchmark_cache(), jobs=benchmark_jobs())
    return [
        point_from_metrics(r.config.rps, r.report.scheduler_name, r.report.metrics)
        for r in runner.run(configs)
    ]


@dataclass(frozen=True)
class FigureCheck:
    """A soft shape assertion outcome (recorded in printed output)."""

    description: str
    passed: bool

    def __str__(self) -> str:
        return f"[{'ok' if self.passed else 'MISS'}] {self.description}"


def adaserve_dominates(points: list[SeriesPoint], metric: str, tolerance: float) -> list[FigureCheck]:
    """Per-x checks that AdaServe >= best baseline - tolerance."""
    checks = []
    for x in sorted({p.x for p in points}):
        ada = next((p for p in points if p.x == x and p.system == "AdaServe"), None)
        others = [p for p in points if p.x == x and p.system != "AdaServe"]
        if ada is None or not others:
            continue
        best = max(getattr(p, metric) for p in others)
        ok = getattr(ada, metric) >= best - tolerance
        checks.append(
            FigureCheck(
                f"x={x:g}: AdaServe {metric} {getattr(ada, metric):.3f} vs best baseline {best:.3f}",
                ok,
            )
        )
    return checks
