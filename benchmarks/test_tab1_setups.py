"""Table 1: evaluation setups (models, parallelism, GPUs).

Verifies the encoded deployments match the paper's table and reports the
derived hardware quantities (baseline latency, profiled token budget, KV
capacity) each serving run depends on.
"""

from __future__ import annotations

from benchmarks.common import setup_for
from repro.analysis.report import format_table
from repro.hardware.profiler import HardwareProfiler


def _profile_all():
    rows = []
    for model, tp_expected, draft_name in (
        ("llama70b", 4, "llama-3.2-1b"),
        ("qwen32b", 2, "qwen2.5-0.5b"),
    ):
        setup = setup_for(model)
        target = setup.target_deployment
        rl = setup.target_roofline
        prof = HardwareProfiler(rl).profile()
        rows.append(
            {
                "model": target.model.name,
                "parallelism": f"{target.tensor_parallel}-way TP",
                "gpus": f"{target.tensor_parallel} x {target.gpu.name}",
                "draft": setup.draft_deployment.model.name,
                "baseline_ms": rl.baseline_decode_latency * 1e3,
                "budget": prof.token_budget,
                "kv_tokens": target.kv_capacity_tokens,
                "tp_expected": tp_expected,
                "draft_expected": draft_name,
            }
        )
    return rows


def test_tab1_setups(benchmark):
    rows = benchmark.pedantic(_profile_all, rounds=1, iterations=1)

    print("\n=== Table 1: evaluation setups ===")
    print(
        format_table(
            ["model", "parallelism", "GPUs", "draft", "baseline", "budget B", "KV tokens"],
            [
                [
                    r["model"],
                    r["parallelism"],
                    r["gpus"],
                    r["draft"],
                    f"{r['baseline_ms']:.1f} ms",
                    str(r["budget"]),
                    str(r["kv_tokens"]),
                ]
                for r in rows
            ],
        )
    )

    for r in rows:
        assert r["parallelism"] == f"{r['tp_expected']}-way TP"
        assert r["draft"] == r["draft_expected"]
        assert "a100" in r["gpus"]
        # Derived quantities in plausible ranges for these deployments.
        assert 10 < r["baseline_ms"] < 50
        assert 32 <= r["budget"] <= 1024
        assert r["kv_tokens"] > 50_000
