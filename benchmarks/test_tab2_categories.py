"""Table 2: request categories and their SLOs.

Verifies the encoded categories match the paper's table (coding copilot at
1.2x baseline latency, chatbot at 50 ms, summarization at 150 ms) and
reports the resolved SLOs plus workload statistics per category.
"""

from __future__ import annotations

from benchmarks.common import SEED, setup_for
from repro.analysis.report import format_table
from repro.workloads.categories import CATEGORIES
from repro.workloads.datasets import DATASETS
from repro.workloads.generator import WorkloadGenerator


def _build():
    setup = setup_for("llama70b")
    baseline = setup.target_roofline.baseline_decode_latency
    gen = WorkloadGenerator(setup.target_roofline, seed=SEED)
    reqs = gen.steady(duration_s=600.0, rps=3.0)
    stats = {}
    for name, cat in CATEGORIES.items():
        cat_reqs = [r for r in reqs if r.category == name]
        stats[name] = {
            "app": cat.app,
            "dataset": cat.dataset,
            "slo_ms": cat.resolve_slo(baseline) * 1e3,
            "mean_prompt": sum(r.prompt_len for r in cat_reqs) / len(cat_reqs),
            "mean_output": sum(r.max_new_tokens for r in cat_reqs) / len(cat_reqs),
            "predictability": cat.predictability,
        }
    return baseline, stats


def test_tab2_categories(benchmark):
    baseline, stats = benchmark.pedantic(_build, rounds=1, iterations=1)

    print(f"\n=== Table 2: request categories (baseline = {baseline * 1e3:.1f} ms) ===")
    print(
        format_table(
            ["category", "app", "dataset", "SLO", "prompt", "output", "pred"],
            [
                [
                    name,
                    s["app"],
                    s["dataset"],
                    f"{s['slo_ms']:.1f} ms",
                    f"{s['mean_prompt']:.0f}",
                    f"{s['mean_output']:.0f}",
                    f"{s['predictability']:.2f}",
                ]
                for name, s in stats.items()
            ],
        )
    )

    # Table 2 rows.
    assert abs(stats["coding"]["slo_ms"] - baseline * 1.2e3) < 1e-6
    assert stats["chatbot"]["slo_ms"] == 50.0
    assert stats["summarization"]["slo_ms"] == 150.0
    assert stats["coding"]["dataset"] == "humaneval"
    assert stats["chatbot"]["dataset"] == "alpaca"
    assert stats["summarization"]["dataset"] == "cnn_dailymail"
    # SLO strictness ordering: coding < chatbot < summarization.
    assert stats["coding"]["slo_ms"] < stats["chatbot"]["slo_ms"] < stats["summarization"]["slo_ms"]
    # Long-prompt class is the summarization one.
    assert stats["summarization"]["mean_prompt"] > 2 * stats["coding"]["mean_prompt"]
    # Dataset registry covers every category.
    assert all(s["dataset"] in DATASETS for s in stats.values())
