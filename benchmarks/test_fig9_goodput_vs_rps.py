"""Figure 9: goodput vs. request rate (both models, six systems).

Paper shape: AdaServe delivers the highest goodput at every RPS, up to
1.9x (Llama) / 1.7x (Qwen) over the best baseline; continuous-batching
systems plateau early because attained requests shrink with load.
"""

from __future__ import annotations

import pytest

from benchmarks.common import RPS_SWEEP, adaserve_dominates, rps_sweep
from repro.analysis.report import improvement_summary, series_table


@pytest.mark.parametrize("model", sorted(RPS_SWEEP))
def test_fig9_goodput(benchmark, model):
    points = benchmark.pedantic(rps_sweep, args=(model,), rounds=1, iterations=1)

    print(f"\n=== Figure 9 ({model}): goodput (tokens/s) vs RPS ===")
    print(series_table(points, value="goodput", x_label="RPS"))
    summary = improvement_summary(points)
    print(
        f"max goodput ratio vs best baseline: "
        f"{summary['max_goodput_ratio']:.2f}x (paper: up to 1.9x)"
    )
    checks = adaserve_dominates(points, "goodput", tolerance=20.0)
    for c in checks:
        print(c)

    assert all(c.passed for c in checks)
    # AdaServe leads the best baseline at every point (the margin over the
    # *best* SD baseline is modest while that baseline's attainment holds;
    # the paper's 1.9x headline corresponds to regimes where baseline
    # attainment collapses, visible in the Figure 10/11 goodput tables).
    assert summary["max_goodput_ratio"] >= 1.02
    # Against the reference continuous-batching system the gap is large.
    for x in sorted({p.x for p in points}):
        ada = next(p.goodput for p in points if p.x == x and p.system == "AdaServe")
        vllm = next(p.goodput for p in points if p.x == x and p.system == "vLLM")
        assert ada > 1.5 * vllm
