"""Ablation: context-aware trees (AdaServe/Eagle-2 style) vs static
topologies (Sequoia style).

§7: "Sequoia adjusts tree size based on hardware specifications and
applies dynamic programming to determine a global tree structure. In
contrast, Eagle-2 constructs the tree based on input context."  AdaServe's
candidate trees are context-aware.  This bench measures, at equal node
budgets, the expected and realized accepted tokens of

- the optimal *static* topology (rank-profiled DP), and
- the *context-aware* beam + greedy selection used by AdaServe.

Expected: context-aware wins or ties at every budget — it exploits
per-context probability spreads the static shape cannot see.
"""

from __future__ import annotations

from benchmarks.common import SEED
from repro.analysis.report import format_table
from repro.core.selection import select_tokens
from repro.core.speculation import build_candidate_tree
from repro.core.static_tree import (
    estimate_rank_probs,
    instantiate_topology,
    optimal_static_topology,
)
from repro.model.acceptance import verify_tree
from repro.model.pair import ModelPair

_BUDGETS = (2, 4, 8, 16)
_N_CONTEXTS = 250


def _compare():
    pair = ModelPair.build(vocab_size=8000, seed=SEED, alignment=0.9, predictability=0.72)
    profile_ctxs = [pair.context_of([i, 1]) for i in range(100)]
    rank_probs = estimate_rank_probs(pair, profile_ctxs, 4)

    rows = []
    for budget in _BUDGETS:
        topo, _dp_value = optimal_static_topology(rank_probs, budget)
        static_total = 0
        aware_total = 0
        for i in range(_N_CONTEXTS):
            ctx = pair.context_of([i, 7, i])
            # Static: stamp the precomputed topology.
            static_tree = instantiate_topology(pair, 0, ctx, topo)
            accepted, _, _ = verify_tree(pair, static_tree.root)
            static_total += len(accepted)
            # Context-aware: beam candidates + greedy selection to the
            # same node budget.
            cand = build_candidate_tree(pair, 0, ctx, depth=max(2, budget), width=4)
            select_tokens([cand], [0.0], budget=1 + budget)
            aware_tree = cand.extract_selected()
            accepted, _, _ = verify_tree(pair, aware_tree.root)
            aware_total += len(accepted)
        rows.append(
            (budget, static_total / _N_CONTEXTS, aware_total / _N_CONTEXTS)
        )
    return rank_probs, rows


def test_ablation_static_vs_context_trees(benchmark):
    rank_probs, rows = benchmark.pedantic(_compare, rounds=1, iterations=1)

    print("\n=== Ablation: static (Sequoia-style) vs context-aware trees ===")
    print(f"profiled rank acceptance: {[round(q, 3) for q in rank_probs]}")
    print(
        format_table(
            ["node budget", "static accepted/verify", "context-aware accepted/verify"],
            [[str(b), f"{s:.2f}", f"{a:.2f}"] for b, s, a in rows],
        )
    )

    for budget, static_acc, aware_acc in rows:
        assert aware_acc >= static_acc - 0.05, f"budget {budget}"
    # Both improve with budget.
    static_series = [s for _, s, _ in rows]
    aware_series = [a for _, _, a in rows]
    assert static_series == sorted(static_series)
    assert aware_series == sorted(aware_series)
