"""Figure 12: mean accepted tokens per request per verification vs RPS.

Paper shape: AdaServe's acceptance is high at low RPS (aggressive beams)
and decays as load shrinks the per-request budget; vLLM-Spec(n)'s static
strategy holds a flat acceptance regardless of load (and wastes compute
for it at high RPS — visible in Figures 8/9 rather than here).
"""

from __future__ import annotations

import pytest

from benchmarks.common import RPS_SWEEP, rps_sweep
from repro.analysis.report import series_table

_SYSTEMS = ("adaserve", "vllm-spec-4", "vllm-spec-6", "vllm-spec-8")


@pytest.mark.parametrize("model", sorted(RPS_SWEEP))
def test_fig12_mean_accepted(benchmark, model):
    all_points = benchmark.pedantic(rps_sweep, args=(model,), rounds=1, iterations=1)
    points = [
        p
        for p in all_points
        if p.system in ("AdaServe", "vLLM-Spec(4)", "vLLM-Spec(6)", "vLLM-Spec(8)")
    ]

    print(f"\n=== Figure 12 ({model}): mean accepted tokens/request/verify ===")
    print(series_table(points, value="mean_accepted", x_label="RPS"))

    xs = sorted({p.x for p in points})
    ada = [next(p.mean_accepted for p in points if p.x == x and p.system == "AdaServe") for x in xs]
    # AdaServe: decaying acceptance (low RPS speculates aggressively).
    assert ada[0] > ada[-1]
    # vLLM-Spec: roughly flat (static strategy), and ordered by spec len.
    for name in ("vLLM-Spec(4)", "vLLM-Spec(6)", "vLLM-Spec(8)"):
        series = [
            next(p.mean_accepted for p in points if p.x == x and p.system == name)
            for x in xs
        ]
        spread = max(series) - min(series)
        assert spread < 0.8, f"{name} acceptance should be ~flat, got spread {spread:.2f}"
    s4 = next(p.mean_accepted for p in points if p.x == xs[0] and p.system == "vLLM-Spec(4)")
    s8 = next(p.mean_accepted for p in points if p.x == xs[0] and p.system == "vLLM-Spec(8)")
    assert s8 >= s4  # longer chains accept at least as many
