"""Cluster-scale routing-policy comparison (beyond-the-paper scenario).

A 4-replica fleet serves the diurnal trace at cluster-scale RPS (~4x a
single engine's operating range) under each routing policy.  Expected
shape:

- for an SLO-unaware engine (vLLM continuous batching), affinity routing
  strictly improves urgent-category attainment over round-robin by
  isolating the stringent class on over-provisioned reserved replicas,
  trading fleet goodput for it — routing-level SLO awareness substitutes
  for the missing engine-level mechanism (AdaServe fleets, by contrast,
  handle the mixed-SLO batch in-engine and are router-insensitive until
  overload);
- load-aware policies (least-loaded, p2c) stay within tolerance of
  round-robin on fleet-wide attainment;
- an autoscaled fleet started at half size converges toward the static
  fleet's attainment, paying a warm-up penalty.

Runs through the shared result cache like every other benchmark, and is
``smoke``-marked: the grid is small enough for CI's cached-smoke job.
"""

from __future__ import annotations

import pytest

from benchmarks.common import SEED, benchmark_cache
from repro.analysis.report import point_from_metrics, series_table
from repro.analysis.runner import ExperimentConfig, SweepRunner
from repro.cluster.router import ROUTER_NAMES

pytestmark = pytest.mark.smoke

_MODEL = "llama70b"
_REPLICAS = 4
#: Cluster-scale load: ~4x the single-engine Figure 8 operating range.
_RPS = 16.0
_DURATION_S = 18.0


def _cluster_config(
    router: str, system: str = "vllm", autoscale: dict | None = None
) -> ExperimentConfig:
    return ExperimentConfig.create(
        model=_MODEL,
        system=system,
        rps=_RPS,
        duration_s=_DURATION_S,
        seed=SEED,
        trace="diurnal",
        replicas=_REPLICAS,
        router=router,
        autoscale=autoscale,
    )


def _urgent_attainment(report) -> float:
    return report.metrics.per_category["coding"].attainment


def test_cluster_router_comparison(benchmark):
    configs = [_cluster_config(router) for router in ROUTER_NAMES]
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = benchmark.pedantic(runner.run, args=(configs,), rounds=1, iterations=1)
    by_router = dict(zip(ROUTER_NAMES, results))

    points = [
        point_from_metrics(_RPS, r.report.scheduler_name, r.report.metrics)
        for r in results
    ]
    print(f"\n=== Cluster ({_MODEL}, {_REPLICAS} replicas, diurnal): attainment ===")
    print(series_table(points, value="attainment", x_label="RPS"))
    print("\nurgent (coding) attainment per router:")
    for router, result in by_router.items():
        print(f"  {router:12s} {_urgent_attainment(result.report):.3f}")

    for result in results:
        assert result.report.metrics.num_requests > 0

    # Affinity isolates the urgent class: strictly better urgent
    # attainment than round-robin under cluster-scale contention.
    assert _urgent_attainment(by_router["affinity"].report) > _urgent_attainment(
        by_router["round-robin"].report
    )
    # Load-aware routing does not lose to blind rotation fleet-wide.
    assert (
        by_router["least-loaded"].report.metrics.attainment
        >= by_router["round-robin"].report.metrics.attainment - 0.03
    )
    assert (
        by_router["p2c"].report.metrics.attainment
        >= by_router["round-robin"].report.metrics.attainment - 0.03
    )


def test_cluster_points_are_deterministic_and_cached(tmp_path):
    """Same fixed-seed grid twice: byte-identical records, zero re-runs."""
    from repro.analysis.cache import ResultCache

    configs = [_cluster_config(router) for router in ("round-robin", "p2c")]
    cache = ResultCache(tmp_path)

    cold = SweepRunner(cache=cache, jobs=1)
    first = cold.run(configs)
    assert cold.executed == len(configs)

    warm = SweepRunner(cache=cache, jobs=1)
    second = warm.run(configs)
    assert warm.executed == 0
    assert all(r.from_cache for r in second)
    for a, b in zip(first, second):
        assert cache.path_for(a.config).read_bytes() == cache.path_for(b.config).read_bytes()
        assert a.report.metrics == b.report.metrics


def test_cluster_autoscaling_converges(benchmark):
    """A half-size fleet with autoscaling approaches the static fleet."""
    static = _cluster_config("least-loaded", system="adaserve")
    scaled = ExperimentConfig.create(
        model=_MODEL,
        system="adaserve",
        rps=_RPS,
        duration_s=_DURATION_S,
        seed=SEED,
        trace="diurnal",
        replicas=_REPLICAS // 2,
        router="least-loaded",
        autoscale={"max_replicas": _REPLICAS, "warmup_s": 2.0},
    )
    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = benchmark.pedantic(
        runner.run, args=([static, scaled],), rounds=1, iterations=1
    )
    static_att = results[0].report.metrics.attainment
    scaled_att = results[1].report.metrics.attainment
    print(
        f"\nstatic x{_REPLICAS}: attainment {static_att:.3f}   "
        f"autoscaled {_REPLICAS // 2}->{_REPLICAS}: attainment {scaled_att:.3f}"
    )
    # Warm-up costs something, but scaling must recover most of the gap
    # versus a fleet that was full-size from the start.
    assert scaled_att >= static_att - 0.25
    assert scaled_att > 0.5
