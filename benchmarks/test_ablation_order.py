"""Ablation: SLO-phase processing order (descending A(r) vs arrival order).

Algorithm 2 line 9 sorts requests by descending requirement so that, when
the budget cannot satisfy everyone, the furthest-behind requests are
secured first.  This bench builds a budget crunch where the far-behind
requests arrived *last*: FIFO spends the budget on barely-behind requests
at the head of the queue, while the paper's ordering secures the requests
with the largest SLO debt.
"""

from __future__ import annotations

import heapq
import itertools

from benchmarks.common import SEED
from repro.analysis.report import format_table
from repro.core.selection import select_tokens
from repro.core.speculation import speculate_batch
from repro.model.pair import ModelPair

_N = 12
_DEPTH, _WIDTH = 4, 3
_N_MAX = 6
_BUDGET = _N + 12
#: First half barely behind (arrived first), second half far behind.
_REQUIREMENTS = [1.1] * 6 + [2.2] * 6
_BEHIND_THRESHOLD = 2.0


def _slo_phase_in_order(trees, requirements, order, budget, depth, n_max):
    """Run just the SLO phase visiting requests in the given order."""
    counter = itertools.count()
    for t in trees:
        t.clear_selection()
    remaining = budget - len(trees)
    satisfied = [False] * len(trees)
    for i in order:
        tree, req = trees[i], requirements[i]
        cap = min(req, float(depth + 1))
        acc = 1.0
        heap = [(-c.path_prob, next(counter), c) for c in tree.root.children]
        heapq.heapify(heap)
        taken = 0
        while acc < cap and heap and remaining > 0 and taken < n_max:
            _, _, node = heapq.heappop(heap)
            node.selected = True
            acc += node.path_prob
            for c in node.children:
                heapq.heappush(heap, (-c.path_prob, next(counter), c))
            remaining -= 1
            taken += 1
        satisfied[i] = acc >= cap
    return satisfied


def _compare():
    pair = ModelPair.build(vocab_size=5000, seed=SEED, alignment=0.95, predictability=0.7)
    roots = [(0, pair.context_of([i, 2])) for i in range(_N)]

    def behind_satisfied(satisfied):
        return sum(
            1
            for i, ok in enumerate(satisfied)
            if ok and _REQUIREMENTS[i] > _BEHIND_THRESHOLD
        )

    trees = speculate_batch(pair, roots, _DEPTH, _WIDTH).trees
    paper_order = sorted(range(_N), key=lambda i: _REQUIREMENTS[i], reverse=True)
    paper = _slo_phase_in_order(trees, _REQUIREMENTS, paper_order, _BUDGET, _DEPTH, _N_MAX)

    trees2 = speculate_batch(pair, roots, _DEPTH, _WIDTH).trees
    fifo = _slo_phase_in_order(trees2, _REQUIREMENTS, list(range(_N)), _BUDGET, _DEPTH, _N_MAX)

    # Cross-check the real implementation agrees with the paper ordering.
    trees3 = speculate_batch(pair, roots, _DEPTH, _WIDTH).trees
    real = select_tokens(trees3, _REQUIREMENTS, budget=_BUDGET, n_max=_N_MAX, depth=_DEPTH)
    real_behind = sum(
        1
        for s in real.selections
        if s.requirement > _BEHIND_THRESHOLD and s.slo_satisfied
    )

    return {
        "paper_total": sum(paper),
        "paper_behind": behind_satisfied(paper),
        "fifo_total": sum(fifo),
        "fifo_behind": behind_satisfied(fifo),
        "real_behind": real_behind,
    }


def test_ablation_slo_order(benchmark):
    r = benchmark.pedantic(_compare, rounds=1, iterations=1)

    print("\n=== Ablation: SLO-phase ordering under budget crunch ===")
    print(
        format_table(
            ["ordering", "satisfied (all)", "satisfied (far-behind)"],
            [
                ["descending A(r) (paper)", f"{r['paper_total']}/{_N}", f"{r['paper_behind']}/6"],
                ["arrival order (FIFO)", f"{r['fifo_total']}/{_N}", f"{r['fifo_behind']}/6"],
            ],
        )
    )

    # The paper's ordering secures strictly more of the far-behind
    # requests when the budget cannot cover everyone.
    assert r["paper_behind"] > r["fifo_behind"]
    # The production selection path matches the standalone SLO phase.
    assert r["real_behind"] == r["paper_behind"]
