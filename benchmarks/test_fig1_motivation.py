"""Figure 1: existing systems cannot serve multi-SLO workloads.

Two request categories (strict SLO1, relaxed SLO2) on five existing
systems.  Paper shape: every system except vLLM+Priority gives both
categories the *same* per-token latency, violating the strict SLO;
vLLM+Priority meets SLO1 but congests category 2 badly.
"""

from __future__ import annotations

from benchmarks.common import run_system, setup_for
from repro.analysis.report import format_table

_SYSTEMS = ("vllm", "sarathi", "priority", "fastserve", "vtc")
_MIX = {"coding": 0.5, "chatbot": 0.5}  # cat1 = strict, cat2 = relaxed
_RPS = 3.6


def _run_all():
    results = {}
    for system in _SYSTEMS:
        report = run_system("llama70b", system, _RPS, mix=_MIX, trace="steady")
        results[report.scheduler_name] = report
    return results


def test_fig1_per_token_latency(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    setup = setup_for("llama70b")
    slo1 = 1.2 * setup.target_roofline.baseline_decode_latency
    slo2 = 0.050

    print("\n=== Figure 1: per-token latency and violation rate by category ===")
    print(f"SLO1 (coding) = {slo1 * 1e3:.1f} ms, SLO2 (chatbot) = {slo2 * 1e3:.1f} ms")
    rows = []
    for name, report in results.items():
        cats = report.metrics.per_category
        rows.append(
            [
                name,
                f"{cats['coding'].mean_tpot_s * 1e3:.1f}",
                f"{(1 - cats['coding'].attainment) * 100:.0f}%",
                f"{cats['chatbot'].mean_tpot_s * 1e3:.1f}",
                f"{(1 - cats['chatbot'].attainment) * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["system", "cat1 ms/tok", "cat1 viol", "cat2 ms/tok", "cat2 viol"], rows
        )
    )

    # Uniform-batching systems give both categories ~equal latency.
    for name in ("vLLM", "VTC"):
        cats = results[name].metrics.per_category
        ratio = cats["coding"].mean_tpot_s / cats["chatbot"].mean_tpot_s
        assert 0.6 < ratio < 1.7, f"{name} should serve categories uniformly"

    # They violate the strict SLO much more than the relaxed one.
    vllm_cats = results["vLLM"].metrics.per_category
    assert vllm_cats["coding"].attainment < 0.7
    assert vllm_cats["chatbot"].attainment > vllm_cats["coding"].attainment

    # Priority nails the strict category but hurts the relaxed one.
    prio = results["vLLM+Priority"].metrics.per_category
    assert prio["coding"].attainment > vllm_cats["coding"].attainment
    assert prio["chatbot"].mean_tpot_s > vllm_cats["chatbot"].mean_tpot_s
