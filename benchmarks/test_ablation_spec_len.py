"""Ablation: static speculation length as a first-class sweep axis.

The paper evaluates vLLM-Spec at three hand-picked lengths (4/6/8,
Figures 8-12) because the flat API could only name them.  With the
registry, the speculation length ``k`` is a declared parameter of the
``vllm-spec`` component, so this benchmark sweeps it densely through the
standard grid machinery — ``expand_grid`` over ``system.k`` — exactly
what ``repro sweep --systems vllm-spec --grid system.k=...`` does.

Expected shape (§6.2's critique of static speculation, sampled finely):
under load, goodput as a function of k is not monotone — drafting more
tokens per request eventually floods verification and inflates iteration
latency — so the best k sits strictly inside the swept range's interior
or at least the extremes do not dominate everywhere.  We assert the
weak, robust form: the k-sweep is not constant, the extreme k=1 point
does not win goodput, and every point runs through the shared cache
(warm repeats execute zero simulations).

``smoke``-marked: ~8 short points, cached, well under CI budget.
"""

from __future__ import annotations

import pytest

from benchmarks.common import benchmark_cache, standard_config
from repro.analysis.report import format_table
from repro.analysis.runner import SweepRunner
from repro.analysis.spec import expand_grid, parse_grid_axis

pytestmark = pytest.mark.smoke

_MODEL = "llama70b"
#: Past the single-engine knee, where speculation length matters most.
_RPS = 4.6
_DURATION_S = 18.0
_K_SWEEP = (1, 2, 4, 6, 8, 12)


def _grid():
    base = standard_config(_MODEL, "vllm-spec", _RPS, duration_s=_DURATION_S)
    axis = parse_grid_axis("system.k=" + ",".join(str(k) for k in _K_SWEEP))
    return expand_grid([base], [axis])


def test_spec_length_ablation():
    grid = _grid()
    # The axis re-resolves the component spec per value: canonical names,
    # one per k, with the default k collapsing to the bare name.
    assert [c.system.name for c in grid] == [
        "vllm-spec:k=1", "vllm-spec:k=2", "vllm-spec", "vllm-spec:k=6",
        "vllm-spec:k=8", "vllm-spec:k=12",
    ]
    assert len({c.digest() for c in grid}) == len(grid)

    runner = SweepRunner(cache=benchmark_cache(), jobs=1)
    results = runner.run(grid)
    by_k = dict(zip(_K_SWEEP, results))

    print("\n=== Ablation: vLLM-Spec speculation length (registry axis) ===")
    rows = [
        [str(k), f"{r.report.metrics.attainment * 100:.1f}%",
         f"{r.report.metrics.goodput:.0f}",
         f"{r.report.metrics.mean_accepted_per_verify:.2f}"]
        for k, r in by_k.items()
    ]
    print(format_table(["k", "attainment", "goodput", "acc/verify"], rows))

    goodputs = {k: r.report.metrics.goodput for k, r in by_k.items()}
    assert len(set(goodputs.values())) > 1, "k must actually change the outcome"
    assert goodputs[1] < max(goodputs.values()), "no-speculation should not win goodput"
    # Acceptance per verify grows with k (longer chains accept more in
    # absolute terms), confirming the parameter reaches the scheduler.
    accepted = [by_k[k].report.metrics.mean_accepted_per_verify for k in _K_SWEEP]
    assert accepted == sorted(accepted)


def test_spec_length_ablation_warm_cache_is_free():
    SweepRunner(cache=benchmark_cache(), jobs=1).run(_grid())  # prime (cache hit or fill)
    warm = SweepRunner(cache=benchmark_cache(), jobs=1)
    warm.run(_grid())
    assert warm.executed == 0, "warm repeat of the ablation must run zero simulations"
