"""Setup shim.

The offline environment lacks the ``wheel`` package, so the PEP-517
editable path (which needs ``bdist_wheel``) fails.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
older pips) fall back to the legacy ``setup.py develop`` route.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
