"""Capacity planning with the hardware substrate.

Uses the roofline model and the profiling-based budget selection to answer
deployment questions without running a full simulation:

1. What baseline decode latency / verification budget does each
   (model, GPU, TP) placement give?  (Table 1's derived quantities.)
2. What TPOT SLOs are attainable at a given speculative acceptance rate?
3. How does the verification budget's latency slack trade off against
   iteration latency?

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.hardware import (
    DEPLOYMENT_PRESETS,
    GPU_PRESETS,
    MODEL_PRESETS,
    DeploymentSpec,
    HardwareProfiler,
    RooflineModel,
)


def placement_table() -> None:
    print("=" * 72)
    print("Placements: baseline latency, saturation point, budget, KV capacity")
    print("=" * 72)
    print(f"{'deployment':22s} {'base ms':>8s} {'sat tok':>8s} {'B(1.5x)':>8s} {'KV tokens':>10s}")
    for name, dep in DEPLOYMENT_PRESETS.items():
        rl = RooflineModel(dep)
        budget = HardwareProfiler(rl, slack=1.5).token_budget()
        print(
            f"{name:22s} {rl.baseline_decode_latency * 1e3:8.2f} "
            f"{rl.saturation_tokens():8d} {budget:8d} {dep.kv_capacity_tokens:10d}"
        )


def slo_feasibility() -> None:
    print("\n" + "=" * 72)
    print("SLO feasibility: tokens/iteration needed vs. speculation acceptance")
    print("=" * 72)
    rl = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
    draft = RooflineModel(DEPLOYMENT_PRESETS["llama1b-1xa100"])
    budget = HardwareProfiler(rl, slack=1.5).token_budget()
    # Typical AdaServe iteration: 3 draft steps + one verification pass.
    iteration = 3 * draft.baseline_decode_latency + rl.forward_latency(budget, 20_000)
    print(f"estimated speculative iteration latency: {iteration * 1e3:.1f} ms")
    for slo_ms in (20, 30, 40, 50, 100, 150):
        needed = iteration / (slo_ms * 1e-3)
        verdict = (
            "plain decoding suffices"
            if needed <= 1.0
            else f"needs >= {needed:.1f} tokens/iteration from speculation"
        )
        print(f"  TPOT SLO {slo_ms:4d} ms: {verdict}")


def budget_tradeoff() -> None:
    print("\n" + "=" * 72)
    print("Verification budget vs. latency (the knee the profiler picks)")
    print("=" * 72)
    rl = RooflineModel(DEPLOYMENT_PRESETS["llama70b-4xa100"])
    floor = rl.baseline_decode_latency
    print(f"{'slack':>6s} {'budget B':>9s} {'latency ms':>11s} {'x floor':>8s}")
    for slack in (1.1, 1.25, 1.5, 2.0, 3.0):
        prof = HardwareProfiler(rl, slack=slack).profile()
        print(
            f"{slack:6.2f} {prof.token_budget:9d} "
            f"{prof.budget_latency_s * 1e3:11.2f} {prof.budget_latency_s / floor:8.2f}"
        )


def cross_hardware() -> None:
    print("\n" + "=" * 72)
    print("Sensitivity: the same 8B model across GPU generations")
    print("=" * 72)
    model = MODEL_PRESETS["llama-3.1-8b"]
    for gpu_name in ("a100-80g", "h100-80g"):
        dep = DeploymentSpec(model, GPU_PRESETS[gpu_name], tensor_parallel=1)
        rl = RooflineModel(dep)
        budget = HardwareProfiler(rl, slack=1.5).token_budget()
        print(
            f"  {gpu_name:10s} baseline {rl.baseline_decode_latency * 1e3:6.2f} ms, "
            f"budget {budget:4d} tokens"
        )


if __name__ == "__main__":
    placement_table()
    slo_feasibility()
    budget_tradeoff()
    cross_hardware()
