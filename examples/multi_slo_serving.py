"""Multi-SLO serving scenario: the paper's headline comparison in miniature.

Serves a peak-load mix (60% coding copilot with a strict 1.2x-baseline
TPOT SLO, 20% chatbot at 50 ms, 20% summarization at 150 ms) over a bursty
arrival trace, on every system the paper evaluates, and prints the
attainment/goodput table plus per-category breakdowns.

Run:  python examples/multi_slo_serving.py [rps]
"""

from __future__ import annotations

import sys

from repro.analysis import build_setup, run_once
from repro.analysis.report import format_table
from repro.serving.metrics import violation_reduction
from repro.workloads import WorkloadGenerator

SYSTEMS = ("adaserve", "vllm-spec-6", "vllm-spec-8", "sarathi", "vllm", "vtc", "fastserve")


def main(rps: float = 4.2) -> None:
    setup = build_setup("llama70b")
    gen = WorkloadGenerator(setup.target_roofline, seed=3)
    requests = gen.bursty(duration_s=45.0, rps=rps)
    slos = sorted({(r.category, r.tpot_slo) for r in requests})
    print(f"workload: {len(requests)} requests at ~{rps} req/s")
    for cat, slo in slos:
        print(f"  {cat:14s} TPOT SLO {slo * 1e3:6.1f} ms")

    reports = {}
    for system in SYSTEMS:
        print(f"running {system} ...")
        reports[system] = run_once(setup, system, requests, max_sim_time_s=900.0)

    rows = []
    for system, report in sorted(
        reports.items(), key=lambda kv: -kv[1].metrics.attainment
    ):
        m = report.metrics
        per_cat = "  ".join(
            f"{cat[:4]}:{cm.attainment * 100:3.0f}%" for cat, cm in m.per_category.items()
        )
        rows.append(
            [
                report.scheduler_name,
                f"{m.attainment * 100:5.1f}%",
                f"{m.goodput:6.0f}",
                f"{m.mean_accepted_per_verify:.2f}",
                per_cat,
            ]
        )
    print()
    print(
        format_table(
            ["system", "attain", "goodput", "acc/verify", "per-category attainment"],
            rows,
        )
    )

    ada = reports["adaserve"].metrics
    best_name, best = max(
        ((s, r.metrics) for s, r in reports.items() if s != "adaserve"),
        key=lambda kv: kv[1].attainment,
    )
    print(
        f"\nAdaServe vs best baseline ({best_name}): "
        f"{violation_reduction(best, ada):.2f}x fewer violations, "
        f"{ada.goodput / best.goodput if best.goodput else float('inf'):.2f}x goodput"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 4.2)
