"""Multi-SLO serving scenario: the paper's headline comparison in miniature.

Serves a peak-load mix (60% coding copilot with a strict 1.2x-baseline
TPOT SLO, 20% chatbot at 50 ms, 20% summarization at 150 ms) over a bursty
arrival trace, on every system the paper evaluates, and prints the
attainment/goodput table plus per-category breakdowns.

Systems are registry spec strings (``repro list systems``): the two
speculative baselines are the *same* component at different speculation
lengths (``vllm-spec:k=6`` / ``vllm-spec:k=8``), not separately named
systems.  All points execute through the cached sweep runner, so a
second invocation performs zero simulations.

Run:  python examples/multi_slo_serving.py [rps]
"""

from __future__ import annotations

import sys

from repro.analysis import ExperimentSpec, ResultCache, SweepRunner, build_setup
from repro.analysis.report import format_table
from repro.serving.metrics import violation_reduction
from repro.workloads import WorkloadGenerator

SYSTEMS = (
    "adaserve",
    "vllm-spec:k=6",
    "vllm-spec:k=8",
    "sarathi",
    "vllm",
    "vtc",
    "fastserve",
)
SEED = 3
DURATION_S = 45.0


def main(rps: float = 4.2) -> None:
    setup = build_setup("llama70b", seed=SEED)
    gen = WorkloadGenerator(setup.target_roofline, seed=SEED)
    requests = gen.bursty(duration_s=DURATION_S, rps=rps)
    slos = sorted({(r.category, r.tpot_slo) for r in requests})
    print(f"workload: {len(requests)} requests at ~{rps} req/s")
    for cat, slo in slos:
        print(f"  {cat:14s} TPOT SLO {slo * 1e3:6.1f} ms")

    specs = [
        ExperimentSpec.create(
            model="llama70b",
            system=system,
            rps=rps,
            duration_s=DURATION_S,
            seed=SEED,
            max_sim_time_s=900.0,
        )
        for system in SYSTEMS
    ]
    runner = SweepRunner(cache=ResultCache(), jobs=1)

    def progress(result) -> None:
        source = "cached" if result.from_cache else "simulated"
        print(f"  done: {result.report.scheduler_name} ({source})", file=sys.stderr)

    reports = {
        spec.system.name: result.report
        for spec, result in zip(specs, runner.run(specs, on_result=progress))
    }

    rows = []
    for report in sorted(reports.values(), key=lambda r: -r.metrics.attainment):
        m = report.metrics
        per_cat = "  ".join(
            f"{cat[:4]}:{cm.attainment * 100:3.0f}%" for cat, cm in m.per_category.items()
        )
        rows.append(
            [
                report.scheduler_name,
                f"{m.attainment * 100:5.1f}%",
                f"{m.goodput:6.0f}",
                f"{m.mean_accepted_per_verify:.2f}",
                per_cat,
            ]
        )
    print()
    print(
        format_table(
            ["system", "attain", "goodput", "acc/verify", "per-category attainment"],
            rows,
        )
    )

    ada = reports["adaserve"].metrics
    best_name, best = max(
        ((name, r.metrics) for name, r in reports.items() if name != "adaserve"),
        key=lambda kv: kv[1].attainment,
    )
    print(
        f"\nAdaServe vs best baseline ({best_name}): "
        f"{violation_reduction(best, ada):.2f}x fewer violations, "
        f"{ada.goodput / best.goodput if best.goodput else float('inf'):.2f}x goodput"
    )
    print(runner.stats_line())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 4.2)
