"""Adaptive speculation under load swings (Equations 8-9 in action).

Serves a strongly bursty trace with AdaServe and reads the engine's
per-iteration telemetry to show the beam shape (d, w), batch size and
realized acceptance over time: the policy speculates aggressively in the
valleys and conservatively at the peaks.

Run:  python examples/adaptive_speculation.py
"""

from __future__ import annotations

from repro.analysis import build_setup
from repro.analysis.harness import make_scheduler
from repro.serving import ServingSimulator
from repro.serving.telemetry import IterationLog
from repro.workloads import WorkloadGenerator


def main() -> None:
    setup = build_setup("llama70b")
    gen = WorkloadGenerator(setup.target_roofline, seed=9)
    requests = gen.bursty(duration_s=60.0, rps=3.8)
    print(f"workload: {len(requests)} requests over 60 s (bursty)")

    engine = setup.build_engine()
    engine.telemetry = IterationLog()
    scheduler = make_scheduler("adaserve", engine)
    report = ServingSimulator(engine, scheduler, requests).run()
    log = engine.telemetry

    print(
        f"\nAdaServe: attainment {report.metrics.attainment * 100:.1f}%, "
        f"goodput {report.metrics.goodput:.0f} tok/s, "
        f"{len(log.of_kind('speculative'))} speculative iterations\n"
    )

    bucket = 5.0
    ns = dict(log.bucketed_mean("batch_size", bucket))
    ds = dict(log.bucketed_mean("depth", bucket))
    ws = dict(log.bucketed_mean("width", bucket))
    acc = dict(log.bucketed_mean("tokens_accepted", bucket))
    print("time    active n   depth d   width w   accepted/iter")
    for t in sorted(ns):
        bar = "#" * int(ns[t] / 2)
        print(
            f"{t:5.0f}s  {ns[t]:8.1f}  {ds.get(t, 0):8.1f}  "
            f"{ws.get(t, 0):8.1f}  {acc.get(t, 0):12.1f}  {bar}"
        )

    batch_series = [r.batch_size for r in log.of_kind("speculative")]
    depth_series = [r.depth for r in log.of_kind("speculative")]
    print(
        f"\nacross the run: n ranged {min(batch_series)}-{max(batch_series)}, "
        f"d ranged {min(depth_series)}-{max(depth_series)} — deeper beams when "
        f"the batch is small, shallow ones at the peaks (Equation 8)."
    )


if __name__ == "__main__":
    main()
