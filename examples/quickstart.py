"""Quickstart: one SLO-customized speculative decoding iteration, then a
small end-to-end serving comparison through the declarative API.

Part 2 shows the recommended library entry point: build an
:class:`~repro.analysis.ExperimentSpec` (systems are registry spec
strings — ``vllm``, ``vllm-spec:k=8``, ... — see ``repro list systems``)
and execute it with :class:`~repro.analysis.SweepRunner`, which caches
results on disk so re-running this script performs zero simulations.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import ExperimentSpec, ResultCache, SweepRunner
from repro.core.pipeline import BatchItem, run_iteration
from repro.model.pair import ModelPair


def single_iteration_demo() -> None:
    """Walk one speculate -> select -> verify iteration by hand."""
    print("=" * 70)
    print("Part 1: one SLO-customized speculative decoding iteration")
    print("=" * 70)

    pair = ModelPair.build(vocab_size=32_000, seed=0, alignment=0.9, predictability=0.75)

    # Two requests sharing one batch: one far behind its SLO (needs ~2.4
    # accepted tokens this iteration), one comfortably ahead.
    items = [
        BatchItem(root_token=0, root_ctx=pair.context_of([11, 12, 13]), requirement=2.4),
        BatchItem(root_token=0, root_ctx=pair.context_of([21, 22, 23]), requirement=0.2),
    ]
    result = run_iteration(pair, items, depth=4, width=3, budget=16)

    for i, (item, sel, out) in enumerate(
        zip(items, result.selection.selections, result.outcomes)
    ):
        print(f"\nrequest {i}: A(r) = {item.requirement}")
        print(f"  candidate tree: {sel.tree.size - 1} speculated tokens (beam d=4, w=3)")
        print(
            f"  selected {sel.num_selected} tokens "
            f"({sel.slo_tokens} for the SLO, {sel.throughput_tokens} for throughput), "
            f"E[accepted] ~= {sel.expected_accepted:.2f}"
        )
        print(
            f"  verification accepted {len(out.accepted_tokens)} draft tokens "
            f"+ 1 correction -> {out.tokens_generated} tokens committed"
        )
    print(f"\nbatch: {result.verify_tokens} tokens verified in one target pass, "
          f"selection took {result.selection_cpu_s * 1e6:.0f} us of CPU")


def serving_demo() -> None:
    """Serve a small multi-SLO workload with AdaServe vs vLLM."""
    print("\n" + "=" * 70)
    print("Part 2: serving a multi-SLO workload (Llama-70B on 4xA100, simulated)")
    print("=" * 70)

    specs = [
        ExperimentSpec.create(
            model="llama70b", system=system, rps=3.8, duration_s=30.0, seed=7
        )
        for system in ("vllm", "adaserve")
    ]
    print("\nworkload: bursty arrivals at ~3.8 req/s for 30 s "
          "(coding copilot / chatbot / summarization)")

    runner = SweepRunner(cache=ResultCache(), jobs=1)
    for result in runner.run(specs):
        m = result.report.metrics
        source = "cached" if result.from_cache else "simulated"
        print(f"\n{result.report.scheduler_name} ({source}):")
        print(f"  SLO attainment: {m.attainment * 100:.1f}%   goodput: {m.goodput:.0f} tok/s")
        for cat, cm in m.per_category.items():
            print(
                f"    {cat:14s} attainment {cm.attainment * 100:5.1f}%  "
                f"mean TPOT {cm.mean_tpot_s * 1e3:5.1f} ms"
            )
    print(f"\n{runner.stats_line()}")


if __name__ == "__main__":
    single_iteration_demo()
    serving_demo()
