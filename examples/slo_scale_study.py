"""SLO-scale study: how tight can TPOT targets get before systems break?

Reproduces the Figure 11 experiment interactively for one model: the
urgent category's SLO is scaled from generous (1.6x) to brutal (0.6x of
the baseline-relative default) and each system's attainment/goodput is
tabulated, together with the per-iteration token requirement the scale
implies — making the mechanism visible (a uniform decode iteration simply
cannot fit below scale ~1.0, speculation can).

The whole (scale x system) grid is declared as
:class:`~repro.analysis.ExperimentSpec` points — the SLO scale is just
the ``workload.slo_scale`` axis, expanded with the same grid machinery
``repro sweep --grid`` uses — and executed through the cached runner, so
repeated invocations perform zero simulations.

Run:  python examples/slo_scale_study.py [model]
"""

from __future__ import annotations

import sys

from repro.analysis import ExperimentSpec, ResultCache, SweepRunner, build_setup
from repro.analysis.report import format_table
from repro.analysis.spec import expand_grid, parse_grid_axis
from repro.workloads.categories import urgent_mix

SCALES = (1.6, 1.2, 1.0, 0.8, 0.6)
SYSTEMS = ("adaserve", "vllm-spec:k=6", "sarathi", "vllm")
RPS = 4.0
SEED = 17
DURATION_S = 30.0


def main(model: str = "llama70b") -> None:
    setup = build_setup(model)
    baseline = setup.target_roofline.baseline_decode_latency
    print(f"model: {model}, baseline decode latency {baseline * 1e3:.1f} ms")
    print("urgent SLO per scale (and tokens/iteration a ~40 ms SD iteration needs):")
    for scale in SCALES:
        slo = 1.2 * baseline * scale
        print(f"  scale {scale:>3}: SLO {slo * 1e3:5.1f} ms  ->  >= {0.040 / slo:.1f} tok/iter")

    base = [
        ExperimentSpec.create(
            model=model,
            system=system,
            rps=RPS,
            duration_s=DURATION_S,
            seed=SEED,
            mix=urgent_mix(0.6),
            max_sim_time_s=900.0,
        )
        for system in SYSTEMS
    ]
    axis = parse_grid_axis("workload.slo_scale=" + ",".join(str(s) for s in SCALES))
    grid = expand_grid(base, [axis])  # every system at every scale

    runner = SweepRunner(cache=ResultCache(), jobs=1)

    def progress(result) -> None:
        source = "cached" if result.from_cache else "simulated"
        print(
            f"  done: scale={result.config.workload.slo_scale:g} "
            f"{result.report.scheduler_name} ({source})",
            file=sys.stderr,
        )

    results = runner.run(grid, on_result=progress)
    by_point = {
        (r.config.workload.slo_scale, r.config.system.name): r.report for r in results
    }

    rows = []
    for scale in SCALES:
        cells = [f"{scale:g}"]
        for system in SYSTEMS:
            canonical = base[SYSTEMS.index(system)].system.name
            m = by_point[(scale, canonical)].metrics
            cells.append(f"{m.attainment * 100:5.1f}% / {m.goodput:4.0f}")
        rows.append(cells)

    print("\nattainment / goodput (tokens/s):")
    print(format_table(["scale", *SYSTEMS], rows))
    print(
        "\nReading: continuous batching (vllm, sarathi) collapses once the "
        "scale drops below 1.0 — a uniform iteration takes longer than the "
        "SLO allows. Speculative systems keep functioning; AdaServe holds "
        "the most attainment because it sizes each request's tree to its "
        "own requirement."
    )
    print(runner.stats_line())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama70b")
