"""SLO-scale study: how tight can TPOT targets get before systems break?

Reproduces the Figure 11 experiment interactively for one model: the
urgent category's SLO is scaled from generous (1.6x) to brutal (0.6x of
the baseline-relative default) and each system's attainment/goodput is
tabulated, together with the per-iteration token requirement the scale
implies — making the mechanism visible (a uniform decode iteration simply
cannot fit below scale ~1.0, speculation can).

Run:  python examples/slo_scale_study.py [model]
"""

from __future__ import annotations

import sys

from repro.analysis import build_setup, run_once
from repro.analysis.report import format_table
from repro.workloads import WorkloadGenerator
from repro.workloads.categories import urgent_mix

SCALES = (1.6, 1.2, 1.0, 0.8, 0.6)
SYSTEMS = ("adaserve", "vllm-spec-6", "sarathi", "vllm")
RPS = 4.0


def main(model: str = "llama70b") -> None:
    setup = build_setup(model)
    baseline = setup.target_roofline.baseline_decode_latency
    print(f"model: {model}, baseline decode latency {baseline * 1e3:.1f} ms")
    print("urgent SLO per scale (and tokens/iteration a ~40 ms SD iteration needs):")
    for scale in SCALES:
        slo = 1.2 * baseline * scale
        print(f"  scale {scale:>3}: SLO {slo * 1e3:5.1f} ms  ->  >= {0.040 / slo:.1f} tok/iter")

    rows = []
    for scale in SCALES:
        gen = WorkloadGenerator(setup.target_roofline, seed=17, slo_scale=scale)
        requests = gen.bursty(duration_s=35.0, rps=RPS, mix=urgent_mix(0.6))
        cells = [f"{scale:g}"]
        for system in SYSTEMS:
            report = run_once(setup, system, requests, max_sim_time_s=900.0)
            m = report.metrics
            cells.append(f"{m.attainment * 100:5.1f}% / {m.goodput:4.0f}")
            print(f"  done: scale={scale} {report.scheduler_name}", file=sys.stderr)
        rows.append(cells)

    print("\nattainment / goodput (tokens/s):")
    print(format_table(["scale"] + [s for s in SYSTEMS], rows))
    print(
        "\nReading: continuous batching (vllm, sarathi) collapses once the "
        "scale drops below 1.0 — a uniform iteration takes longer than the "
        "SLO allows. Speculative systems keep functioning; AdaServe holds "
        "the most attainment because it sizes each request's tree to its "
        "own requirement."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama70b")
