"""GPU cost-model substrate: specs, roofline latency, budget profiling."""

from repro.hardware.cuda_graph import CudaGraphModel
from repro.hardware.profiler import HardwareProfiler, ProfileResult, verify_budget
from repro.hardware.roofline import ForwardCost, RooflineModel
from repro.hardware.spec import (
    DEPLOYMENT_PRESETS,
    GPU_PRESETS,
    MODEL_PRESETS,
    DeploymentSpec,
    GPUSpec,
    ModelSpec,
)

__all__ = [
    "CudaGraphModel",
    "DeploymentSpec",
    "DEPLOYMENT_PRESETS",
    "ForwardCost",
    "GPUSpec",
    "GPU_PRESETS",
    "HardwareProfiler",
    "ModelSpec",
    "MODEL_PRESETS",
    "ProfileResult",
    "RooflineModel",
    "verify_budget",
]
