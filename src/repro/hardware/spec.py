"""Hardware and model specifications for the roofline cost model.

``GPUSpec`` captures the handful of device parameters the roofline needs;
``ModelSpec`` captures the transformer dimensions that determine weight
bytes, FLOPs per token and KV-cache bytes per token.  Presets cover the
paper's evaluation hardware (A100-80G nodes) and models (Table 1), plus the
draft models and a couple of extra devices for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """A GPU's roofline-relevant parameters.

    Attributes
    ----------
    name: marketing name.
    flops: dense half-precision throughput, FLOP/s.
    mem_bandwidth: HBM bandwidth, bytes/s.
    mem_bytes: device memory capacity, bytes.
    kernel_launch_s: CPU-side launch latency per kernel, seconds.
    nvlink_bandwidth: inter-GPU bandwidth for tensor-parallel collectives,
        bytes/s (per direction).
    """

    name: str
    flops: float
    mem_bandwidth: float
    mem_bytes: float
    kernel_launch_s: float = 4.0e-6
    nvlink_bandwidth: float = 300e9

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.mem_bandwidth <= 0 or self.mem_bytes <= 0:
            raise ValueError(f"invalid GPU spec: {self}")


@dataclass(frozen=True)
class ModelSpec:
    """A transformer's roofline-relevant dimensions.

    ``n_params`` is the total parameter count; per-token FLOPs are
    approximated as ``2 * n_params`` (one multiply-accumulate per weight).
    KV bytes per token follow from the attention geometry.
    """

    name: str
    n_params: float
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    bytes_per_param: int = 2  # fp16/bf16 weights

    def __post_init__(self) -> None:
        if self.n_params <= 0 or self.n_layers <= 0:
            raise ValueError(f"invalid model spec: {self}")
        if self.hidden_size % self.n_heads != 0:
            raise ValueError(f"hidden_size not divisible by n_heads: {self}")

    @property
    def head_dim(self) -> int:
        """Dimension of each attention head."""
        return self.hidden_size // self.n_heads

    @property
    def weight_bytes(self) -> float:
        """Total bytes of model weights."""
        return self.n_params * self.bytes_per_param

    @property
    def flops_per_token(self) -> float:
        """Dense FLOPs to process one token (forward pass)."""
        return 2.0 * self.n_params

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes appended per token (K and V, fp16)."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * 2


GPU_PRESETS: dict[str, GPUSpec] = {
    "a100-80g": GPUSpec("a100-80g", flops=312e12, mem_bandwidth=2.039e12, mem_bytes=80e9),
    "h100-80g": GPUSpec("h100-80g", flops=989e12, mem_bandwidth=3.35e12, mem_bytes=80e9),
    "l4-24g": GPUSpec("l4-24g", flops=121e12, mem_bandwidth=300e9, mem_bytes=24e9),
}

MODEL_PRESETS: dict[str, ModelSpec] = {
    # Targets (Table 1).
    "llama-3.1-70b": ModelSpec(
        "llama-3.1-70b", n_params=70.6e9, n_layers=80,
        hidden_size=8192, n_heads=64, n_kv_heads=8,
    ),
    "qwen2.5-32b": ModelSpec(
        "qwen2.5-32b", n_params=32.8e9, n_layers=64,
        hidden_size=5120, n_heads=40, n_kv_heads=8,
    ),
    # Drafts.
    "llama-3.2-1b": ModelSpec(
        "llama-3.2-1b", n_params=1.24e9, n_layers=16,
        hidden_size=2048, n_heads=32, n_kv_heads=8,
    ),
    "qwen2.5-0.5b": ModelSpec(
        "qwen2.5-0.5b", n_params=0.49e9, n_layers=24,
        hidden_size=896, n_heads=14, n_kv_heads=2,
    ),
    # Extra for sensitivity studies.
    "llama-3.1-8b": ModelSpec(
        "llama-3.1-8b", n_params=8.0e9, n_layers=32,
        hidden_size=4096, n_heads=32, n_kv_heads=8,
    ),
}


@dataclass(frozen=True)
class DeploymentSpec:
    """A (model, GPU, tensor-parallel degree) placement — one Table 1 row."""

    model: ModelSpec
    gpu: GPUSpec
    tensor_parallel: int = 1

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        if self.model.weight_bytes > self.gpu.mem_bytes * self.tensor_parallel:
            raise ValueError(
                f"{self.model.name} does not fit on {self.tensor_parallel}x {self.gpu.name}"
            )

    @property
    def kv_capacity_bytes(self) -> float:
        """Memory left for KV cache after weights and a 10% runtime reserve."""
        total = self.gpu.mem_bytes * self.tensor_parallel
        return max(0.0, total * 0.9 - self.model.weight_bytes)

    @property
    def kv_capacity_tokens(self) -> int:
        """How many cached tokens fit in the KV budget."""
        return int(self.kv_capacity_bytes / self.model.kv_bytes_per_token)


#: Table 1 deployments (target model placements) and draft placements.
DEPLOYMENT_PRESETS: dict[str, DeploymentSpec] = {
    "llama70b-4xa100": DeploymentSpec(
        MODEL_PRESETS["llama-3.1-70b"], GPU_PRESETS["a100-80g"], tensor_parallel=4
    ),
    "qwen32b-2xa100": DeploymentSpec(
        MODEL_PRESETS["qwen2.5-32b"], GPU_PRESETS["a100-80g"], tensor_parallel=2
    ),
    "llama1b-1xa100": DeploymentSpec(
        MODEL_PRESETS["llama-3.2-1b"], GPU_PRESETS["a100-80g"], tensor_parallel=1
    ),
    "qwen05b-1xa100": DeploymentSpec(
        MODEL_PRESETS["qwen2.5-0.5b"], GPU_PRESETS["a100-80g"], tensor_parallel=1
    ),
}
