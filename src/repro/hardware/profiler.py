"""Profiling-based token-budget selection.

The paper (§3, footnote 1): "The total budget is determined based on
hardware profiling.  AdaServe chooses an optimal budget that balances
decoding throughput and latency."

``HardwareProfiler`` reproduces that step against the roofline model: it
sweeps the number of batched verification tokens and returns the largest
budget whose iteration latency stays within a slack factor of the
memory-bound floor.  Inside that regime extra tokens are nearly free
(bandwidth-bound execution under-utilizes compute), so the budget marks
where verification stops being cheap — exactly the knee the paper's budget
sits at.

The same machinery derives the draft model's per-step token budget B2 used
by the adaptive controller (Equations 8-9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.roofline import RooflineModel

#: Default latency slack over the memory-bound floor when picking B.
DEFAULT_BUDGET_SLACK = 1.5

#: Resolution of the profiling sweep.
_SWEEP_STEP = 8
_SWEEP_MAX = 16_384


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of a budget-selection profile."""

    token_budget: int
    floor_latency_s: float
    budget_latency_s: float
    saturation_tokens: int
    sweep: tuple[tuple[int, float], ...]

    @property
    def latency_ratio(self) -> float:
        """Budget latency relative to the floor."""
        return self.budget_latency_s / self.floor_latency_s


class HardwareProfiler:
    """Selects token budgets by sweeping the roofline model."""

    def __init__(self, roofline: RooflineModel, slack: float = DEFAULT_BUDGET_SLACK) -> None:
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        self.roofline = roofline
        self.slack = slack

    def profile(self, typical_context_tokens: int = 0) -> ProfileResult:
        """Sweep batch tokens and pick the budget.

        Parameters
        ----------
        typical_context_tokens:
            Expected total KV-resident tokens during verification; folded
            into every sweep point so the budget accounts for attention
            cost at realistic occupancy.
        """
        floor = self.roofline.forward_latency(1, typical_context_tokens)
        limit = floor * self.slack
        sweep: list[tuple[int, float]] = []
        best = 1
        tokens = 1
        while tokens <= _SWEEP_MAX:
            lat = self.roofline.forward_latency(tokens, typical_context_tokens)
            sweep.append((tokens, lat))
            if lat <= limit:
                best = tokens
            else:
                break
            tokens = _SWEEP_STEP if tokens == 1 else tokens + _SWEEP_STEP
        return ProfileResult(
            token_budget=best,
            floor_latency_s=floor,
            budget_latency_s=self.roofline.forward_latency(best, typical_context_tokens),
            saturation_tokens=self.roofline.saturation_tokens(),
            sweep=tuple(sweep),
        )

    def token_budget(self, typical_context_tokens: int = 0) -> int:
        """Shorthand: just the selected budget B."""
        return self.profile(typical_context_tokens).token_budget


def verify_budget(
    roofline: RooflineModel,
    slack: float = DEFAULT_BUDGET_SLACK,
    typical_context_tokens: int = 0,
) -> int:
    """Module-level convenience wrapper used by schedulers."""
    return HardwareProfiler(roofline, slack).token_budget(typical_context_tokens)
