"""Roofline latency model for transformer forward passes.

The paper's scheduler is "hardware-aware" through exactly two quantities:
the per-iteration latency of a forward pass over a given number of batched
tokens, and the token budget B that keeps verification inside the
memory-bound regime (§3 footnote 1, §5).  This module supplies the first;
:mod:`repro.hardware.profiler` derives the second.

The model is the standard two-roof approximation:

    latency = max(weight_load_time, compute_time)      # whichever roof binds
            + kv_read_time                             # attention reads
            + tp_comm_time                             # tensor-parallel collectives
            + launch_overhead                          # kernel launches

- ``weight_load_time``: every decode iteration streams all weights from
  HBM once (split across TP ranks) — the memory roof that makes small-batch
  decoding bandwidth-bound.
- ``compute_time``: 2·params FLOPs per batched token over aggregate
  device FLOPs, derated by an efficiency factor — the compute roof that
  eventually binds as batched tokens grow.
- ``kv_read_time``: bytes of resident KV cache touched by attention.
- ``launch_overhead``: per-layer kernel launches; CUDA graphs (see
  :mod:`repro.hardware.cuda_graph`) replace this with a single replay cost.

Absolute numbers are approximations of A100-class hardware; what the
reproduction relies on is the *shape* (flat-then-linear in batched tokens),
which is what makes budgets and SLO math meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import DeploymentSpec

#: Fraction of peak FLOPs realistically achieved by dense GEMMs at serving
#: batch sizes (kernel inefficiency, attention, activation overheads).
DEFAULT_COMPUTE_EFFICIENCY = 0.45

#: Fraction of peak HBM bandwidth achieved when streaming weights.
DEFAULT_BANDWIDTH_EFFICIENCY = 0.85

#: Kernel launches per transformer layer (attention, MLP, norms, rotary...).
KERNELS_PER_LAYER = 12

#: Bytes moved per token per layer boundary for TP all-reduce (activations).
_TP_ACTIVATION_FACTOR = 2  # fp16 activations, two all-reduces per layer


@dataclass(frozen=True)
class ForwardCost:
    """Breakdown of one forward pass's latency (seconds)."""

    weight_time: float
    compute_time: float
    kv_time: float
    comm_time: float
    launch_time: float

    @property
    def total(self) -> float:
        """End-to-end latency of the pass."""
        return max(self.weight_time, self.compute_time) + self.kv_time + self.comm_time + self.launch_time


class RooflineModel:
    """Latency model for one deployed model (a Table 1 row).

    Parameters
    ----------
    deployment:
        Model/GPU/TP placement.
    compute_efficiency, bandwidth_efficiency:
        Derating factors applied to peak FLOPs / bandwidth.
    """

    def __init__(
        self,
        deployment: DeploymentSpec,
        compute_efficiency: float = DEFAULT_COMPUTE_EFFICIENCY,
        bandwidth_efficiency: float = DEFAULT_BANDWIDTH_EFFICIENCY,
    ) -> None:
        if not 0 < compute_efficiency <= 1 or not 0 < bandwidth_efficiency <= 1:
            raise ValueError("efficiency factors must be in (0, 1]")
        self.deployment = deployment
        self.compute_efficiency = compute_efficiency
        self.bandwidth_efficiency = bandwidth_efficiency
        model, gpu, tp = deployment.model, deployment.gpu, deployment.tensor_parallel
        # Precompute the constant rates.
        self._weight_time = model.weight_bytes / (
            tp * gpu.mem_bandwidth * bandwidth_efficiency
        )
        self._compute_per_token = model.flops_per_token / (
            tp * gpu.flops * compute_efficiency
        )
        self._kv_per_token = model.kv_bytes_per_token / (
            tp * gpu.mem_bandwidth * bandwidth_efficiency
        )
        if tp > 1:
            self._comm_per_token = (
                _TP_ACTIVATION_FACTOR
                * model.n_layers
                * model.hidden_size
                * 2  # bytes per activation element
                * (tp - 1)
                / (tp * gpu.nvlink_bandwidth)
            )
        else:
            self._comm_per_token = 0.0
        self._launch_time = model.n_layers * KERNELS_PER_LAYER * gpu.kernel_launch_s
        # Memoized end-to-end latencies keyed on the pass shape.  Decode
        # and speculation steps overwhelmingly repeat (batch, context,
        # launch) signatures within a run, and the model is a pure
        # function of them, so caching the float is exact — it skips the
        # ForwardCost construction, not any arithmetic variation.
        self._latency_cache: dict[tuple[int, int, float | None], float] = {}

    # ------------------------------------------------------------------
    def forward_cost(
        self,
        batch_tokens: int,
        context_tokens: int = 0,
        launch_overhead: float | None = None,
    ) -> ForwardCost:
        """Cost breakdown for one forward pass.

        Parameters
        ----------
        batch_tokens:
            Total new tokens processed across the batch (decode slots,
            speculative tokens, or prefill chunk tokens).
        context_tokens:
            Total KV-resident tokens attended over, summed across requests.
        launch_overhead:
            Override for launch time (CUDA-graph replay passes a smaller
            value); ``None`` uses the eager-launch cost.
        """
        if batch_tokens < 0 or context_tokens < 0:
            raise ValueError("token counts must be non-negative")
        return ForwardCost(
            weight_time=self._weight_time,
            compute_time=batch_tokens * self._compute_per_token,
            kv_time=context_tokens * self._kv_per_token,
            comm_time=batch_tokens * self._comm_per_token,
            launch_time=self._launch_time if launch_overhead is None else launch_overhead,
        )

    _LATENCY_CACHE_CAP = 1 << 16

    def forward_latency(
        self,
        batch_tokens: int,
        context_tokens: int = 0,
        launch_overhead: float | None = None,
    ) -> float:
        """End-to-end latency (seconds) of one forward pass.

        Memoized on the shape signature (decode and speculation steps
        overwhelmingly repeat shapes within a run); misses delegate to
        :meth:`forward_cost`, so there is exactly one latency formula.
        """
        key = (batch_tokens, context_tokens, launch_overhead)
        cache = self._latency_cache
        total = cache.get(key)
        if total is not None:
            return total
        total = self.forward_cost(batch_tokens, context_tokens, launch_overhead).total
        if len(cache) >= self._LATENCY_CACHE_CAP:
            cache.clear()
        cache[key] = total
        return total

    def decode_latency(self, batch_size: int, context_tokens: int = 0) -> float:
        """Latency of a plain autoregressive decode step (one token/request)."""
        return self.forward_latency(batch_size, context_tokens)

    def prefill_latency(self, prompt_tokens: int) -> float:
        """Latency to prefill ``prompt_tokens`` in one pass.

        Attention context during prefill averages half the prompt length.
        """
        return self.forward_latency(prompt_tokens, prompt_tokens // 2)

    @property
    def baseline_decode_latency(self) -> float:
        """Decode latency at near-zero load (batch of one, empty cache).

        This is the reference point the paper uses to define category-1
        SLOs ("1.2 x baseline latency", Table 2).
        """
        return self.forward_latency(1, 0)

    @property
    def memory_bound_floor(self) -> float:
        """The weight-streaming roof — the floor of any decode iteration."""
        return self._weight_time

    @property
    def compute_seconds_per_token(self) -> float:
        """Marginal compute time per additional batched token."""
        return self._compute_per_token

    def saturation_tokens(self) -> int:
        """Batched tokens at which the compute roof overtakes the memory roof."""
        return max(1, int(self._weight_time / self._compute_per_token))
