"""CUDA-graph launch-overhead model.

§5.2 of the paper: draft decoding steps 2..d perform identical work for a
fixed number of active requests, so their kernel sequences can be captured
once and replayed, collapsing per-kernel launch overhead into a single
graph replay.  This matters because the draft model is tiny — for a 1B
draft on an A100 the eager launch overhead (16 layers x 12 kernels x ~4us
~ 0.8ms) is comparable to the model's weight-streaming time, so removing
it visibly changes speculation cost.

``CudaGraphModel`` mimics the runtime behaviour:

- a graph is keyed by its *shape* (batch tokens per step);
- the first execution at a new shape pays eager launch cost plus a capture
  cost;
- subsequent executions at a cached shape pay only the replay cost;
- the cache holds a bounded number of shapes (real systems pre-capture a
  few bucket sizes), evicting least-recently-used.
"""

from __future__ import annotations

from collections import OrderedDict

#: One-time cost to capture a graph (instantiate + first replay), seconds.
DEFAULT_CAPTURE_COST_S = 1.0e-3

#: Cost to replay a captured graph, seconds.
DEFAULT_REPLAY_COST_S = 10.0e-6

#: Number of distinct shapes kept captured.
DEFAULT_CACHE_SHAPES = 64


class CudaGraphModel:
    """Tracks captured graph shapes and prices launch overhead accordingly."""

    def __init__(
        self,
        eager_launch_s: float,
        capture_cost_s: float = DEFAULT_CAPTURE_COST_S,
        replay_cost_s: float = DEFAULT_REPLAY_COST_S,
        cache_shapes: int = DEFAULT_CACHE_SHAPES,
        enabled: bool = True,
    ) -> None:
        if eager_launch_s < 0 or capture_cost_s < 0 or replay_cost_s < 0:
            raise ValueError("costs must be non-negative")
        self.eager_launch_s = eager_launch_s
        self.capture_cost_s = capture_cost_s
        self.replay_cost_s = replay_cost_s
        self.cache_shapes = cache_shapes
        self.enabled = enabled
        self._captured: OrderedDict[int, None] = OrderedDict()
        self.captures = 0
        self.replays = 0
        self.eager_launches = 0

    def launch_overhead(self, shape_tokens: int) -> float:
        """Launch overhead for a step processing ``shape_tokens`` tokens.

        Call once per executed step; updates the capture cache.
        """
        if not self.enabled:
            self.eager_launches += 1
            return self.eager_launch_s
        if shape_tokens in self._captured:
            self._captured.move_to_end(shape_tokens)
            self.replays += 1
            return self.replay_cost_s
        # Capture: pay eager launch for the capture pass plus capture cost.
        self._captured[shape_tokens] = None
        if len(self._captured) > self.cache_shapes:
            self._captured.popitem(last=False)
        self.captures += 1
        return self.eager_launch_s + self.capture_cost_s

    @property
    def hit_rate(self) -> float:
        """Fraction of graph-eligible steps served by replay."""
        total = self.captures + self.replays
        return self.replays / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the counters (keeps captured shapes)."""
        self.captures = 0
        self.replays = 0
        self.eager_launches = 0
