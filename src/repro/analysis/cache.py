"""Content-addressed on-disk cache for simulation results.

Every experiment point (model, system, rps, seed, trace, ...) is a pure
function of its configuration, so results are cached under a stable
SHA-256 digest of the canonical-JSON configuration plus a schema version.
Records are small JSON files laid out as::

    <cache root>/
        ab/
            ab3f...e1.json      # {"schema": 1, "key": ..., "config": ..., "report": ...}

Properties this buys:

- repeated sweeps (CLI runs, pytest sessions, CI jobs) are near-instant:
  a warm sweep executes **zero** simulations;
- interrupted sweeps resume: each point is committed (atomically, via a
  temp file + ``os.replace``) the moment it finishes;
- schema evolution is safe: bumping :data:`SCHEMA_VERSION` changes every
  key *and* invalidates any record read back with a stale in-record
  version, so stale records are never served;
- corrupted records (truncated writes, manual edits) are detected on
  read, deleted, and transparently treated as misses.

Keys also fold in a fingerprint of the simulator source tree
(:func:`code_fingerprint`), so records produced by different code never
collide: editing the simulator is an automatic cold cache, locally and
in CI, with no manual bump required.  :data:`SCHEMA_VERSION` still
guards the record layout itself.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

#: Bump whenever simulator semantics or the record layout change.
#: 2: cluster fields (replicas/router/autoscale) in configs, p50 latency
#: stats in category metrics — old records cold-start.
#: 3: nested ExperimentSpec configs (workload/system/cluster sections)
#: with registry-canonical component spec strings; v2 flat-config
#: records cold-start (``repro cache-prune`` removes the stranded files).
#: 4: prefix-cache subsystem — ``system.prefix_cache`` in configs,
#: TTFT/prefix-reuse aggregates (``mean_ttft_s``, ``prefix_hit_requests``,
#: ``prefill_tokens_saved``) in record metrics; v3 records cold-start.
#: The knob is canonicalized like every section field (an explicit
#: ``prefix_cache=False`` and the default are one key), so v4 non-session
#: configs never fork on it.
#: 5: chaos subsystem — an optional ``chaos`` config section (omitted
#: when no faults are declared, so chaos-free keys canonicalize exactly
#: as in v4), chaos/disruption keys in record reports (present only for
#: chaos runs).  Report *exports* keep their own pinned version (see
#: ``repro.analysis.export.REPORT_SCHEMA_VERSION``): a chaos-free export
#: is byte-identical to a v4 one.
SCHEMA_VERSION = 5

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` if set, else ``.repro-cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Digest of the simulator source tree (every ``repro/**/*.py``).

    Folded into every cache key so that results simulated by different
    code are distinct entries — a warm cache can never mask the effect
    of a simulator change.  Computed once per process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            # Only the source tree defines simulator behavior: skip
            # bytecode-cache directories so stray artifacts there (or
            # stale interpreter caches) can never perturb the
            # fingerprint in either direction.
            if "__pycache__" in path.parts:
                continue
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def _config_dict(config) -> dict:
    """Normalize a config (mapping or object with ``to_dict``) to a dict."""
    if isinstance(config, Mapping):
        return dict(config)
    to_dict = getattr(config, "to_dict", None)
    if to_dict is None:
        raise TypeError(f"config must be a mapping or have to_dict(): {config!r}")
    return to_dict()


def config_key(config) -> str:
    """Stable content address of an experiment configuration.

    SHA-256 over the canonical (sorted-key, compact) JSON of the config
    dict together with :data:`SCHEMA_VERSION` and the simulator
    :func:`code_fingerprint`.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_fingerprint(),
        "config": _config_dict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0  # corrupted or stale-schema records dropped

    def summary(self) -> str:
        """One-line report, e.g. for the CLI's cache-stats output."""
        line = f"cache: {self.hits} hits, {self.misses} misses, {self.stores} stored"
        if self.invalidated:
            line += f", {self.invalidated} invalidated"
        return line


@dataclass
class ResultCache:
    """Content-addressed store of simulation-report records.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).  ``None`` uses
        :func:`default_cache_dir`.
    """

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    def key_for(self, config) -> str:
        """Content address of ``config`` (see :func:`config_key`)."""
        return config_key(config)

    def path_for(self, config) -> Path:
        """On-disk location of the record for ``config``."""
        return self._path(self.key_for(config))

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, config) -> dict | None:
        """The full record for ``config``, or ``None`` on a miss.

        A record that cannot be parsed, lacks its report, or carries a
        stale schema version is deleted and reported as a miss.
        """
        path = self.path_for(config)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        record = self._validate(text)
        if record is None:
            path.unlink(missing_ok=True)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, config, report_dict: dict) -> Path:
        """Atomically store a serialized report for ``config``."""
        key = self.key_for(config)
        path = self._path(key)
        record = {
            "schema": SCHEMA_VERSION,
            "code": code_fingerprint(),
            "key": key,
            "config": _config_dict(config),
            "report": report_dict,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    def prune(self, dry_run: bool = False) -> int:
        """Delete records the current code can never serve.

        Keys embed the simulator :func:`code_fingerprint`, so every
        source edit strands the previous records (unreachable but still
        on disk).  Prune removes any record whose envelope doesn't match
        the current schema + fingerprint, plus unparsable files and
        temp files orphaned by interrupted atomic writes.
        Returns the number of files removed — or, with ``dry_run``, the
        number that *would* be removed, touching nothing.
        """
        if not self.root.is_dir():
            return 0
        current = code_fingerprint()
        removed = 0
        for path in sorted(self.root.rglob("*.json.tmp.*")):
            if not dry_run:
                path.unlink(missing_ok=True)
            removed += 1
        for path in sorted(self.root.rglob("*.json")):
            try:
                record = self._validate(path.read_text(encoding="utf-8"))
            except OSError:
                continue
            if record is None or record.get("code") != current:
                if not dry_run:
                    path.unlink(missing_ok=True)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(text: str) -> dict | None:
        """Parse a record and check its envelope; ``None`` if unusable."""
        try:
            record = json.loads(text)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema") != SCHEMA_VERSION:
            return None
        if not isinstance(record.get("report"), dict):
            return None
        if not isinstance(record.get("config"), dict):
            return None
        return record
