"""Experiment harness, declarative specs, parallel runner, result cache."""

from repro.analysis.cache import SCHEMA_VERSION, CacheStats, ResultCache, config_key
from repro.analysis.harness import (
    MODEL_SETUPS,
    SYSTEM_NAMES,
    Setup,
    build_setup,
    make_scheduler,
    run_cluster,
    run_once,
)
from repro.analysis.report import (
    SeriesPoint,
    best_baseline,
    format_table,
    improvement_summary,
    point_from_metrics,
    series_table,
)
from repro.analysis.runner import (
    ExperimentConfig,
    SweepResult,
    SweepRunner,
    derive_seed,
    execute_point,
)
from repro.analysis.spec import (
    ClusterSpec,
    ExperimentSpec,
    GridAxis,
    SystemSpec,
    WorkloadSpec,
    apply_axis,
    expand_grid,
    parse_grid_axis,
)

__all__ = [
    "MODEL_SETUPS",
    "SCHEMA_VERSION",
    "SYSTEM_NAMES",
    "CacheStats",
    "ClusterSpec",
    "ExperimentConfig",
    "ExperimentSpec",
    "GridAxis",
    "ResultCache",
    "Setup",
    "SeriesPoint",
    "SweepResult",
    "SweepRunner",
    "SystemSpec",
    "WorkloadSpec",
    "apply_axis",
    "best_baseline",
    "build_setup",
    "config_key",
    "derive_seed",
    "execute_point",
    "expand_grid",
    "format_table",
    "improvement_summary",
    "make_scheduler",
    "parse_grid_axis",
    "point_from_metrics",
    "run_cluster",
    "run_once",
    "series_table",
]
