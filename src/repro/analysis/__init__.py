"""Experiment harness, parallel runner, result cache, and formatting."""

from repro.analysis.cache import SCHEMA_VERSION, CacheStats, ResultCache, config_key
from repro.analysis.harness import (
    MODEL_SETUPS,
    SYSTEM_NAMES,
    Setup,
    build_setup,
    make_scheduler,
    run_cluster,
    run_once,
)
from repro.analysis.report import (
    SeriesPoint,
    best_baseline,
    format_table,
    improvement_summary,
    point_from_metrics,
    series_table,
)
from repro.analysis.runner import (
    ExperimentConfig,
    SweepResult,
    SweepRunner,
    derive_seed,
    execute_point,
)

__all__ = [
    "MODEL_SETUPS",
    "SCHEMA_VERSION",
    "SYSTEM_NAMES",
    "CacheStats",
    "ExperimentConfig",
    "ResultCache",
    "Setup",
    "SeriesPoint",
    "SweepResult",
    "SweepRunner",
    "best_baseline",
    "build_setup",
    "config_key",
    "derive_seed",
    "execute_point",
    "format_table",
    "improvement_summary",
    "make_scheduler",
    "point_from_metrics",
    "run_cluster",
    "run_once",
    "series_table",
]
