"""Experiment harness and result formatting."""

from repro.analysis.harness import (
    MODEL_SETUPS,
    SYSTEM_NAMES,
    Setup,
    build_setup,
    make_scheduler,
    run_once,
)
from repro.analysis.report import (
    SeriesPoint,
    best_baseline,
    format_table,
    improvement_summary,
    point_from_metrics,
    series_table,
)

__all__ = [
    "MODEL_SETUPS",
    "SYSTEM_NAMES",
    "Setup",
    "SeriesPoint",
    "best_baseline",
    "build_setup",
    "format_table",
    "improvement_summary",
    "make_scheduler",
    "point_from_metrics",
    "run_once",
    "series_table",
]
