"""Experiment harness: assemble engine + scheduler + workload and run.

Every benchmark and example builds its runs through this module so that
system construction is identical everywhere:

- :func:`build_setup` wires a model-pair preset to its Table 1 deployment
  (target + draft rooflines, KV manager);
- :func:`make_scheduler` instantiates any registered system from a spec
  string (``adaserve``, ``vllm-spec:k=8``, legacy ``vllm-spec-6``, ...);
- :func:`run_once` executes one (system, workload) simulation and returns
  the report;
- :func:`run_cluster` executes the same workload against a router-fronted
  fleet of replicas (see :mod:`repro.cluster`).

Schedulers, routers, and model setups are resolved through the typed
registries in :mod:`repro.registry` — components register themselves at
definition site, so adding a system never touches this module.  Engines
and schedulers are stateful, so a fresh pair is built per run (per
replica, for fleets).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro._rng import derive_seed
from repro import baselines as _baselines  # noqa: F401 - registers the baseline systems
from repro.chaos import FaultSchedule
from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.fleet import FleetReport, FleetSimulator
from repro.cluster.router import make_router
from repro.core import scheduler as _core_scheduler  # noqa: F401 - registers adaserve
from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS, DeploymentSpec
from repro.model.pair import ModelPair
from repro.prefixcache import PrefixCacheManager
from repro.registry import MODELS, SYSTEMS
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import KVCacheManager
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler
from repro.serving.server import ServingSimulator, SimulationReport

#: The two Table 1 setups: (pair preset, target deployment, draft deployment).
MODEL_SETUPS: dict[str, tuple[str, str, str]] = {
    "llama70b": ("llama70b-1b", "llama70b-4xa100", "llama1b-1xa100"),
    "qwen32b": ("qwen32b-05b", "qwen32b-2xa100", "qwen05b-1xa100"),
}

#: Legacy flat system names (kept for compatibility; the authoritative
#: enumeration, including parameter schemas, is ``repro.registry.SYSTEMS``).
SYSTEM_NAMES = (
    "adaserve",
    "vllm",
    "sarathi",
    "vllm-spec-4",
    "vllm-spec-6",
    "vllm-spec-8",
    "priority",
    "fastserve",
    "vtc",
    "smartspec",
)


@dataclass(frozen=True)
class Setup:
    """Reusable (per-run-rebuilt) description of a deployment."""

    pair_preset: str
    target_deployment: DeploymentSpec
    draft_deployment: DeploymentSpec
    seed: int = 0
    #: Share prefix KV blocks across requests (see ``repro.prefixcache``).
    prefix_cache: bool = False

    def build_engine(self) -> SimulatedEngine:
        """Fresh engine: model pair, rooflines, KV manager."""
        pair = ModelPair.from_preset(self.pair_preset, seed=self.seed)
        target_rl = RooflineModel(self.target_deployment)
        draft_rl = RooflineModel(self.draft_deployment)
        capacity = self.target_deployment.kv_capacity_tokens
        if self.prefix_cache:
            kv: KVCacheManager = PrefixCacheManager(capacity)
        else:
            kv = KVCacheManager(capacity)
        return SimulatedEngine(pair, target_rl, draft_rl, kv, seed=self.seed)

    @property
    def target_roofline(self) -> RooflineModel:
        """Cost model of the target deployment (for workload SLOs)."""
        return RooflineModel(self.target_deployment)


def _register_model_setups() -> None:
    """Announce the Table 1 model setups to the MODELS registry."""
    for name, (pair_preset, target_name, draft_name) in MODEL_SETUPS.items():
        target = DEPLOYMENT_PRESETS[target_name]
        draft = DEPLOYMENT_PRESETS[draft_name]

        def factory(
            seed: int = 0,
            prefix_cache: bool = False,
            _pair=pair_preset,
            _target=target,
            _draft=draft,
        ) -> Setup:
            return Setup(
                pair_preset=_pair,
                target_deployment=_target,
                draft_deployment=_draft,
                seed=seed,
                prefix_cache=prefix_cache,
            )

        MODELS.register(
            name, summary=f"{pair_preset} on {target_name} (draft: {draft_name})"
        )(factory)


_register_model_setups()


def build_setup(model: str, seed: int = 0, prefix_cache: bool = False) -> Setup:
    """Setup for a registered model configuration ('llama70b' or 'qwen32b')."""
    return MODELS.create(model, seed=seed, prefix_cache=prefix_cache)


def make_scheduler(system: str, engine: SimulatedEngine, **overrides) -> Scheduler:
    """Instantiate a registered system from a spec string.

    Accepts canonical names, parameterized specs (``vllm-spec:k=8``,
    ``adaserve:n_max=32``), and legacy aliases (``vllm-spec-6``).
    Keyword ``overrides`` are passed to the scheduler constructor and win
    over spec-string parameters.
    """
    return SYSTEMS.create(system, engine, **overrides)


def _clone_requests(requests: list[Request]) -> list[Request]:
    """Requests are mutated during a run; give each run a private copy."""
    return [r.fresh_copy() for r in requests]


def run_once(
    setup: Setup,
    system: str,
    requests: list[Request],
    max_sim_time_s: float = 7200.0,
    observer=None,
    invariants=None,
    metrics_mode: str = "exact",
    **scheduler_overrides,
) -> SimulationReport:
    """Run one system over one workload on a fresh engine.

    ``observer`` (a :class:`~repro.obs.observer.RunObserver`) attaches
    lifecycle tracing + gauge sampling; ``invariants`` (a
    :class:`~repro.check.invariants.InvariantChecker`) attaches the
    runtime sanitizer.  Both are passive, so the report is byte-identical
    with or without them.  ``metrics_mode`` selects the aggregation path
    (``exact`` or ``streaming``; see :mod:`repro.serving.streaming`).
    """
    engine = setup.build_engine()
    if observer is not None:
        observer.attach_engine(engine, replica=0)
    scheduler = make_scheduler(system, engine, **scheduler_overrides)
    if invariants is not None:
        invariants.attach(engine, scheduler, replica=0)
    sim = ServingSimulator(
        engine,
        scheduler,
        _clone_requests(requests),
        max_sim_time_s=max_sim_time_s,
        observer=observer,
        invariants=invariants,
        metrics_mode=metrics_mode,
    )
    return sim.run()


def run_cluster(
    setup: Setup,
    system: str,
    requests: list[Request],
    replicas: int = 2,
    router: str = "round-robin",
    autoscale: dict | None = None,
    faults: Sequence[str] | None = None,
    max_sim_time_s: float = 7200.0,
    observer=None,
    invariants=None,
    metrics_mode: str = "exact",
    **scheduler_overrides,
) -> FleetReport:
    """Run one system as a router-fronted fleet over one workload.

    Each replica gets a fresh engine + scheduler built from ``setup``
    with a per-replica derived seed (so replica engines are independent
    but the whole fleet is a pure function of ``setup.seed``).  Passing
    ``autoscale`` (a mapping of :class:`AutoscalerConfig` overrides)
    enables autoscaling; its ``max_replicas`` defaults to twice the
    initial fleet when unset.  ``faults`` is a sequence of fault spec
    strings (``crash:at=120,replica=1``, ``straggler:slow=2.0``, ...)
    materialized into a deterministic :class:`FaultSchedule` seeded from
    ``setup.seed`` — fixed-seed chaos runs are byte-identical across
    repeats.  ``observer`` (a :class:`~repro.obs.observer.RunObserver`)
    attaches tracing to every engine the factory ever builds — initial
    fleet, autoscaled additions, and crash replacements alike; the same
    holds for ``invariants`` (an
    :class:`~repro.check.invariants.InvariantChecker`).
    """

    def replica_factory(index: int):
        replica_setup = replace(setup, seed=derive_seed(setup.seed, "fleet", index))
        engine = replica_setup.build_engine()
        if observer is not None:
            observer.attach_engine(engine, replica=index)
        scheduler = make_scheduler(system, engine, **scheduler_overrides)
        if invariants is not None:
            invariants.attach(engine, scheduler, replica=index)
        return engine, scheduler

    autoscaler_config = None
    if autoscale is not None:
        autoscaler_config = AutoscalerConfig.resolve(autoscale, initial_replicas=replicas)

    fault_schedule = None
    if faults:
        # Auto-placed fault times scale with the workload span, and the
        # schedule seed derives from the run seed: the whole chaos
        # timeline is a pure function of (spec, seed).
        window_s = max((r.arrival_time for r in requests), default=0.0)
        fault_schedule = FaultSchedule.from_specs(
            faults,
            seed=derive_seed(setup.seed, "chaos"),
            window_s=window_s,
            num_replicas=replicas,
        )

    fleet = FleetSimulator(
        replica_factory,
        _clone_requests(requests),
        make_router(router, seed=derive_seed(setup.seed, "router")),
        num_replicas=replicas,
        autoscaler_config=autoscaler_config,
        fault_schedule=fault_schedule,
        max_sim_time_s=max_sim_time_s,
        observer=observer,
        invariants=invariants,
        metrics_mode=metrics_mode,
    )
    return fleet.run()
