"""Experiment harness: assemble engine + scheduler + workload and run.

Every benchmark and example builds its runs through this module so that
system construction is identical everywhere:

- :func:`build_setup` wires a model-pair preset to its Table 1 deployment
  (target + draft rooflines, KV manager);
- :func:`make_scheduler` instantiates any of the seven evaluated systems
  by name;
- :func:`run_once` executes one (system, workload) simulation and returns
  the report;
- :func:`run_cluster` executes the same workload against a router-fronted
  fleet of replicas (see :mod:`repro.cluster`).

Engines and schedulers are stateful, so a fresh pair is built per run
(per replica, for fleets).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._rng import derive_seed
from repro.baselines import (
    FastServeScheduler,
    PriorityScheduler,
    SarathiScheduler,
    SmartSpecScheduler,
    VLLMScheduler,
    VLLMSpecScheduler,
    VTCScheduler,
)
from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.fleet import FleetReport, FleetSimulator
from repro.cluster.router import make_router
from repro.core.scheduler import AdaServeScheduler
from repro.hardware.roofline import RooflineModel
from repro.hardware.spec import DEPLOYMENT_PRESETS, DeploymentSpec
from repro.model.pair import ModelPair
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import KVCacheManager
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler
from repro.serving.server import ServingSimulator, SimulationReport

#: The two Table 1 setups: (pair preset, target deployment, draft deployment).
MODEL_SETUPS: dict[str, tuple[str, str, str]] = {
    "llama70b": ("llama70b-1b", "llama70b-4xa100", "llama1b-1xa100"),
    "qwen32b": ("qwen32b-05b", "qwen32b-2xa100", "qwen05b-1xa100"),
}

#: Systems evaluated in the end-to-end figures.
SYSTEM_NAMES = (
    "adaserve",
    "vllm",
    "sarathi",
    "vllm-spec-4",
    "vllm-spec-6",
    "vllm-spec-8",
    "priority",
    "fastserve",
    "vtc",
    "smartspec",
)


@dataclass(frozen=True)
class Setup:
    """Reusable (per-run-rebuilt) description of a deployment."""

    pair_preset: str
    target_deployment: DeploymentSpec
    draft_deployment: DeploymentSpec
    seed: int = 0

    def build_engine(self) -> SimulatedEngine:
        """Fresh engine: model pair, rooflines, KV manager."""
        pair = ModelPair.from_preset(self.pair_preset, seed=self.seed)
        target_rl = RooflineModel(self.target_deployment)
        draft_rl = RooflineModel(self.draft_deployment)
        kv = KVCacheManager(self.target_deployment.kv_capacity_tokens)
        return SimulatedEngine(pair, target_rl, draft_rl, kv, seed=self.seed)

    @property
    def target_roofline(self) -> RooflineModel:
        """Cost model of the target deployment (for workload SLOs)."""
        return RooflineModel(self.target_deployment)


def build_setup(model: str, seed: int = 0) -> Setup:
    """Setup for a named model configuration ('llama70b' or 'qwen32b')."""
    try:
        pair_preset, target_name, draft_name = MODEL_SETUPS[model]
    except KeyError:
        raise KeyError(f"unknown model setup {model!r}; available: {sorted(MODEL_SETUPS)}") from None
    return Setup(
        pair_preset=pair_preset,
        target_deployment=DEPLOYMENT_PRESETS[target_name],
        draft_deployment=DEPLOYMENT_PRESETS[draft_name],
        seed=seed,
    )


def make_scheduler(system: str, engine: SimulatedEngine, **overrides) -> Scheduler:
    """Instantiate an evaluated system by name."""
    key = system.lower()
    if key == "adaserve":
        return AdaServeScheduler(engine, **overrides)
    if key == "vllm":
        return VLLMScheduler(engine, **overrides)
    if key == "sarathi":
        return SarathiScheduler(engine, **overrides)
    if key.startswith("vllm-spec-"):
        return VLLMSpecScheduler(engine, spec_len=int(key.rsplit("-", 1)[1]), **overrides)
    if key == "priority":
        return PriorityScheduler(engine, **overrides)
    if key == "fastserve":
        return FastServeScheduler(engine, **overrides)
    if key == "vtc":
        return VTCScheduler(engine, **overrides)
    if key == "smartspec":
        return SmartSpecScheduler(engine, **overrides)
    raise KeyError(f"unknown system {system!r}; available: {SYSTEM_NAMES}")


def _clone_requests(requests: list[Request]) -> list[Request]:
    """Requests are mutated during a run; give each run a private copy."""
    return [
        Request(
            rid=r.rid,
            category=r.category,
            arrival_time=r.arrival_time,
            prompt_len=r.prompt_len,
            max_new_tokens=r.max_new_tokens,
            tpot_slo=r.tpot_slo,
            predictability=r.predictability,
            priority=r.priority,
        )
        for r in requests
    ]


def run_once(
    setup: Setup,
    system: str,
    requests: list[Request],
    max_sim_time_s: float = 7200.0,
    **scheduler_overrides,
) -> SimulationReport:
    """Run one system over one workload on a fresh engine."""
    engine = setup.build_engine()
    scheduler = make_scheduler(system, engine, **scheduler_overrides)
    sim = ServingSimulator(
        engine, scheduler, _clone_requests(requests), max_sim_time_s=max_sim_time_s
    )
    return sim.run()


def run_cluster(
    setup: Setup,
    system: str,
    requests: list[Request],
    replicas: int = 2,
    router: str = "round-robin",
    autoscale: dict | None = None,
    max_sim_time_s: float = 7200.0,
    **scheduler_overrides,
) -> FleetReport:
    """Run one system as a router-fronted fleet over one workload.

    Each replica gets a fresh engine + scheduler built from ``setup``
    with a per-replica derived seed (so replica engines are independent
    but the whole fleet is a pure function of ``setup.seed``).  Passing
    ``autoscale`` (a mapping of :class:`AutoscalerConfig` overrides)
    enables autoscaling; its ``max_replicas`` defaults to twice the
    initial fleet when unset.
    """

    def replica_factory(index: int):
        replica_setup = replace(setup, seed=derive_seed(setup.seed, "fleet", index))
        engine = replica_setup.build_engine()
        return engine, make_scheduler(system, engine, **scheduler_overrides)

    autoscaler_config = None
    if autoscale is not None:
        autoscaler_config = AutoscalerConfig.resolve(autoscale, initial_replicas=replicas)

    fleet = FleetSimulator(
        replica_factory,
        _clone_requests(requests),
        make_router(router, seed=derive_seed(setup.seed, "router")),
        num_replicas=replicas,
        autoscaler_config=autoscaler_config,
        max_sim_time_s=max_sim_time_s,
    )
    return fleet.run()
