"""Result formatting: the rows/series the paper's tables and figures report.

Benchmarks print their reproduced data through these helpers so output is
uniform and EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.metrics import RunMetrics


@dataclass(frozen=True)
class SeriesPoint:
    """One (x, system) cell of a figure."""

    x: float
    system: str
    attainment: float
    goodput: float
    violation_rate: float
    mean_accepted: float


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text aligned table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def point_from_metrics(x: float, system: str, metrics: RunMetrics) -> SeriesPoint:
    """Build a figure cell from run metrics."""
    return SeriesPoint(
        x=x,
        system=system,
        attainment=metrics.attainment,
        goodput=metrics.goodput,
        violation_rate=metrics.violation_rate,
        mean_accepted=metrics.mean_accepted_per_verify,
    )


def series_table(
    points: list[SeriesPoint],
    value: str = "attainment",
    x_label: str = "RPS",
) -> str:
    """Pivot points into an x-by-system table of one metric.

    ``value`` is any :class:`SeriesPoint` field name.
    """
    systems = sorted({p.system for p in points})
    xs = sorted({p.x for p in points})
    lookup = {(p.x, p.system): getattr(p, value) for p in points}
    headers = [x_label, *systems]
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for s in systems:
            v = lookup.get((x, s))
            row.append("-" if v is None else f"{v:.3f}")
        rows.append(row)
    return format_table(headers, rows)


def best_baseline(
    points: list[SeriesPoint], x: float, value: str, exclude: str = "AdaServe"
) -> SeriesPoint | None:
    """The strongest non-AdaServe system at a given x (by ``value``)."""
    candidates = [p for p in points if p.x == x and p.system != exclude]
    if not candidates:
        return None
    return max(candidates, key=lambda p: getattr(p, value))


def improvement_summary(points: list[SeriesPoint]) -> dict[str, float]:
    """Headline ratios the paper quotes (best over the sweep).

    - ``max_violation_reduction``: max over x of
      best-baseline violation rate / AdaServe violation rate;
    - ``max_goodput_ratio``: max over x of
      AdaServe goodput / best-baseline goodput.
    """
    xs = sorted({p.x for p in points})
    max_vr = 0.0
    max_gp = 0.0
    for x in xs:
        ada = next((p for p in points if p.x == x and p.system == "AdaServe"), None)
        if ada is None:
            continue
        bb_v = best_baseline(points, x, "attainment")
        if bb_v is not None and ada.violation_rate > 0:
            max_vr = max(max_vr, bb_v.violation_rate / ada.violation_rate)
        elif bb_v is not None and bb_v.violation_rate > 0:
            max_vr = float("inf")
        bb_g = best_baseline(points, x, "goodput")
        if bb_g is not None and bb_g.goodput > 0:
            max_gp = max(max_gp, ada.goodput / bb_g.goodput)
    return {"max_violation_reduction": max_vr, "max_goodput_ratio": max_gp}
