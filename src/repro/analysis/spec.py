"""Declarative experiment specification (the single source of truth).

An :class:`ExperimentSpec` fully describes one simulation point as three
nested sections:

- :class:`WorkloadSpec` — what arrives: trace spec, rate, duration,
  seed, SLO scale, category mix;
- :class:`SystemSpec` — what serves it: scheduler spec, model setup,
  simulation-time guard;
- :class:`ClusterSpec` — at what scale: replica count, router spec,
  autoscaler knobs;
- :class:`ChaosSpec` — under what faults: deterministic fault-injection
  specs (omitted from the canonical form when empty, so chaos-free cache
  keys are unchanged);
- :class:`~repro.obs.spec.ObsSpec` — how the run is *watched*: lifecycle
  tracing and gauge sampling (see :mod:`repro.obs`).  Observation is
  passive and can never change a result, so this section is **never**
  part of the canonical payload or cache key.

Construction **canonicalizes**: component references are spec strings
(see :mod:`repro.registry`) rewritten to their canonical form (aliases
resolved, parameters sorted, defaults dropped), inert choices collapse
(a solo point's router is never consulted), and autoscaler knobs resolve
against their defaults.  Two spellings of the same experiment are
therefore *equal dataclasses* with byte-identical canonical JSON
(:meth:`ExperimentSpec.to_dict`) — which is exactly what the result
cache hashes, so ``vllm-spec-8`` and ``vllm-spec:k=8`` share one cache
record.

The flat constructor :meth:`ExperimentSpec.create` and flat read-only
properties (``.rps``, ``.seed``, ``.replicas``, ...) keep the historical
``ExperimentConfig`` call sites working; ``ExperimentConfig`` is now an
alias of this class.

Grid sweeps over *any* registered parameter use dotted axes::

    expand_grid([base], [parse_grid_axis("system.k=2,4,6,8")])

which re-resolves the component spec per value — unknown parameters fail
fast, naming the declared alternatives.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import asdict, dataclass, field, replace

from repro._rng import derive_seed
from repro.analysis.cache import config_key
from repro.cluster.autoscaler import AutoscalerConfig
from repro.obs.spec import ObsSpec
from repro.registry import FAULTS, MODELS, ROUTERS, SYSTEMS, TRACES, SpecError


def _set(obj, **values) -> None:
    """Assign onto a frozen dataclass during ``__post_init__``."""
    for name, value in values.items():
        object.__setattr__(obj, name, value)


@dataclass(frozen=True)
class WorkloadSpec:
    """What arrives: the request trace and its SLO parameters."""

    trace: str = "bursty"
    rps: float = 4.0
    duration_s: float = 45.0
    seed: int = 0
    slo_scale: float = 1.0
    mix: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self) -> None:
        _set(
            self,
            trace=TRACES.canonical(self.trace),
            rps=float(self.rps),
            duration_s=float(self.duration_s),
            seed=int(self.seed),
            slo_scale=float(self.slo_scale),
            mix=_canonical_mix(self.mix),
        )
        for name in ("rps", "duration_s", "slo_scale"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise SpecError(
                    f"workload {name} must be a positive finite number, got {value:g}"
                )

    def to_dict(self) -> dict:
        return {
            "trace": self.trace,
            "rps": self.rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "slo_scale": self.slo_scale,
            "mix": [list(pair) for pair in self.mix] if self.mix else None,
        }


@dataclass(frozen=True)
class SystemSpec:
    """What serves it: scheduler spec, model setup, and the sim guard."""

    name: str = "adaserve"
    model: str = "llama70b"
    max_sim_time_s: float = 1800.0
    #: Share prefix KV blocks across requests (see :mod:`repro.prefixcache`).
    prefix_cache: bool = False
    #: Metrics aggregation: ``exact`` (reference, per-request sample
    #: lists) or ``streaming`` (O(1) online accumulator with reservoir
    #: percentiles; see :mod:`repro.serving.streaming`).
    metrics: str = "exact"

    def __post_init__(self) -> None:
        metrics = str(self.metrics)
        if metrics not in ("exact", "streaming"):
            raise SpecError(
                f"metrics must be 'exact' or 'streaming', got {self.metrics!r}"
            )
        _set(
            self,
            name=SYSTEMS.canonical(self.name),
            model=MODELS.canonical(self.model),
            max_sim_time_s=float(self.max_sim_time_s),
            prefix_cache=bool(self.prefix_cache),
            metrics=metrics,
        )
        if not math.isfinite(self.max_sim_time_s) or self.max_sim_time_s <= 0:
            raise SpecError(
                f"max_sim_time_s must be a positive finite number, got {self.max_sim_time_s:g}"
            )

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "model": self.model,
            "max_sim_time_s": self.max_sim_time_s,
            "prefix_cache": self.prefix_cache,
        }
        # Defaulted-knob canonicalization: ``exact`` (the reference) is
        # omitted so every pre-existing cache key and golden digest is
        # unchanged.  ``streaming`` IS serialized — reservoir percentiles
        # may legitimately differ from the exact reference above the
        # reservoir capacity, so the knob must fork the cache key.
        if self.metrics != "exact":
            d["metrics"] = self.metrics
        return d


@dataclass(frozen=True)
class ClusterSpec:
    """At what scale: fleet size, routing policy, autoscaling."""

    replicas: int = 1
    router: str = "round-robin"
    autoscale: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self) -> None:
        replicas = int(self.replicas)
        if replicas < 1:
            raise SpecError(f"replicas must be >= 1, got {replicas}")
        autoscale = self.autoscale
        if autoscale is not None:
            resolved = AutoscalerConfig.resolve(dict(autoscale), initial_replicas=replicas)
            autoscale = tuple(sorted(asdict(resolved).items()))
        # Always validate the router spec; then, on a solo non-autoscaled
        # point, collapse it to the default — the router is never
        # consulted there, so spelling one out cannot fork the cache.
        router = ROUTERS.canonical(self.router)
        if replicas == 1 and autoscale is None:
            router = "round-robin"
        _set(self, replicas=replicas, router=router, autoscale=autoscale)

    @property
    def is_cluster(self) -> bool:
        """Whether this section selects the fleet path over a solo engine."""
        return self.replicas > 1 or self.autoscale is not None

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "router": self.router,
            "autoscale": (
                [list(pair) for pair in self.autoscale]
                if self.autoscale is not None
                else None
            ),
        }


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic fault injections for this point (see :mod:`repro.chaos`).

    ``faults`` holds canonical fault spec strings in declaration order —
    order matters: each declaration's auto draws are seeded by its index.
    An empty tuple (the default) selects the exact chaos-free simulation
    paths, and :meth:`ExperimentSpec.to_dict` omits the whole section
    then, so pre-chaos cache keys and golden digests are untouched.
    """

    faults: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        raw = self.faults
        if raw is None:
            raw = ()
        elif isinstance(raw, str):
            raw = (raw,)
        _set(self, faults=tuple(FAULTS.canonical(spec) for spec in raw))

    @property
    def enabled(self) -> bool:
        """Whether any fault is declared."""
        return bool(self.faults)

    def to_dict(self) -> dict:
        return {"faults": list(self.faults)}


@dataclass(frozen=True)
class ExperimentSpec:
    """Complete, canonical description of one simulation point.

    Every field participates in the cache key, so anything that can
    change a result (notably the workload ``seed`` and ``trace`` kind)
    is explicit here rather than implied by call-site defaults.
    """

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    system: SystemSpec = field(default_factory=SystemSpec)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    #: Observability section (see :mod:`repro.obs`).  Excluded from
    #: :meth:`to_dict` — and therefore from the cache key — by design:
    #: observation is passive, so it cannot fork results.
    obs: ObsSpec = field(default_factory=ObsSpec)

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        model: str,
        system: str,
        rps: float,
        duration_s: float,
        seed: int,
        trace: str = "bursty",
        slo_scale: float = 1.0,
        mix: Mapping[str, float] | None = None,
        max_sim_time_s: float = 1800.0,
        prefix_cache: bool = False,
        metrics: str = "exact",
        replicas: int = 1,
        router: str = "round-robin",
        autoscale: Mapping[str, float] | None = None,
        faults: Sequence[str] | str | None = None,
        obs: ObsSpec | None = None,
    ) -> "ExperimentSpec":
        """Flat-keyword constructor (the historical ``ExperimentConfig.create``).

        ``system``, ``trace``, and ``router`` accept any registry spec
        string, including legacy aliases; everything is canonicalized by
        the section constructors.  The result-determining core (model,
        system, rps, duration, seed) is deliberately required — anything
        that changes a result must be explicit at the call site, never
        implied by a default (the nested section constructors, by
        contrast, default everything for interactive use).
        """
        return cls(
            workload=WorkloadSpec(
                trace=trace,
                rps=rps,
                duration_s=duration_s,
                seed=seed,
                slo_scale=slo_scale,
                mix=mix,
            ),
            system=SystemSpec(
                name=system,
                model=model,
                max_sim_time_s=max_sim_time_s,
                prefix_cache=prefix_cache,
                metrics=metrics,
            ),
            cluster=ClusterSpec(
                replicas=replicas,
                router=router,
                autoscale=tuple(autoscale.items()) if isinstance(autoscale, Mapping) else autoscale,
            ),
            chaos=ChaosSpec(faults=faults),
            obs=obs if obs is not None else ObsSpec(),
        )

    @classmethod
    def from_dict(cls, d: Mapping) -> "ExperimentSpec":
        """Rebuild a spec from its canonical JSON form."""
        unknown = set(d) - {"workload", "system", "cluster", "chaos"}
        if unknown:
            raise SpecError(
                f"not a nested ExperimentSpec dict (unexpected keys {sorted(unknown)}); "
                "flat schema-v2 configs are not readable — rebuild via "
                "ExperimentSpec.create(...) (sections: workload, system, cluster, chaos)"
            )
        w = dict(d.get("workload", {}))
        if w.get("mix") is not None:
            w["mix"] = tuple((name, share) for name, share in w["mix"])
        c = dict(d.get("cluster", {}))
        if c.get("autoscale") is not None:
            c["autoscale"] = tuple((k, v) for k, v in c["autoscale"])
        chaos = dict(d.get("chaos", {}))
        if chaos.get("faults") is not None:
            chaos["faults"] = tuple(chaos["faults"])
        return cls(
            workload=WorkloadSpec(**w),
            system=SystemSpec(**dict(d.get("system", {}))),
            cluster=ClusterSpec(**c),
            chaos=ChaosSpec(**chaos),
        )

    # -- canonical JSON / cache key -------------------------------------
    def to_dict(self) -> dict:
        """Canonical nested JSON form (the cache-key payload).

        Defaulted-knob canonicalization: the ``chaos`` section appears
        only when faults are declared, so every chaos-free spec keeps
        the exact payload (and cache key) it had before chaos existed.
        The ``obs`` section never appears at all — observation is
        passive, so an observability knob must never fork a cache key.
        """
        d = {
            "workload": self.workload.to_dict(),
            "system": self.system.to_dict(),
            "cluster": self.cluster.to_dict(),
        }
        if self.chaos.enabled:
            d["chaos"] = self.chaos.to_dict()
        return d

    def digest(self) -> str:
        """Content address of this spec (see :func:`~repro.analysis.cache.config_key`)."""
        return config_key(self)

    # -- flat compatibility accessors -----------------------------------
    @property
    def model(self) -> str:
        return self.system.model

    @property
    def system_name(self) -> str:
        """Canonical scheduler spec string (e.g. ``vllm-spec:k=8``)."""
        return self.system.name

    @property
    def rps(self) -> float:
        return self.workload.rps

    @property
    def duration_s(self) -> float:
        return self.workload.duration_s

    @property
    def seed(self) -> int:
        return self.workload.seed

    @property
    def trace(self) -> str:
        return self.workload.trace

    @property
    def slo_scale(self) -> float:
        return self.workload.slo_scale

    @property
    def mix(self) -> tuple[tuple[str, float], ...] | None:
        return self.workload.mix

    @property
    def max_sim_time_s(self) -> float:
        return self.system.max_sim_time_s

    @property
    def prefix_cache(self) -> bool:
        return self.system.prefix_cache

    @property
    def metrics(self) -> str:
        """Metrics aggregation mode (``exact`` or ``streaming``)."""
        return self.system.metrics

    @property
    def replicas(self) -> int:
        return self.cluster.replicas

    @property
    def router(self) -> str:
        return self.cluster.router

    @property
    def autoscale(self) -> tuple[tuple[str, float], ...] | None:
        return self.cluster.autoscale

    @property
    def faults(self) -> tuple[str, ...]:
        return self.chaos.faults

    @property
    def is_cluster(self) -> bool:
        """Whether this point runs the fleet path rather than one engine.

        Chaos points always take the fleet path — even with one replica —
        since fault events ride the fleet event heap.
        """
        return self.cluster.is_cluster or self.chaos.enabled

    # -- derivation -----------------------------------------------------
    def with_replica(self, index: int) -> "ExperimentSpec":
        """Copy with a replica seed derived deterministically via ``repro._rng``."""
        return replace(
            self,
            workload=replace(
                self.workload, seed=derive_seed(self.workload.seed, "replica", index)
            ),
        )


def _parse_bool(path: str, value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str) and value.lower() in ("true", "1"):
        return True
    if isinstance(value, str) and value.lower() in ("false", "0"):
        return False
    raise SpecError(f"{path} expects true/false, got {value!r}")


def _canonical_mix(mix) -> tuple[tuple[str, float], ...] | None:
    if not mix:
        return None
    items = mix.items() if isinstance(mix, Mapping) else mix
    return tuple(sorted((str(name), float(share)) for name, share in items))


# ----------------------------------------------------------------------
# Grid sweeps over registered parameters.

#: Flat workload fields sweepable via ``workload.<field>`` (aliases included).
_WORKLOAD_AXES = {
    "rps": ("rps", float),
    "duration": ("duration_s", float),
    "duration_s": ("duration_s", float),
    "slo_scale": ("slo_scale", float),
    "seed": ("seed", int),
}


#: ``system.<key>`` axes that set a :class:`SystemSpec` dataclass field
#: rather than a scheduler parameter (anything else under ``system.`` is
#: re-resolved through the SYSTEMS registry).  Shared with the CLI's
#: sweep-label logic, which must keep a label for exactly these keys
#: (they never show up in the scheduler's canonical spec string).
SYSTEM_FIELD_AXES = ("prefix_cache", "metrics")


@dataclass(frozen=True)
class GridAxis:
    """One sweep axis: a dotted parameter path and its values."""

    path: str
    values: tuple[str, ...]


def parse_grid_axis(text: str) -> GridAxis:
    """Parse ``section.key=v1,v2,...`` (e.g. ``system.k=4,6,8``)."""
    path, eq, values_text = text.partition("=")
    path = path.strip()
    values = tuple(v.strip() for v in values_text.split(",") if v.strip())
    if not eq or not path or not values:
        raise SpecError(
            f"malformed grid axis {text!r} (expected section.key=v1,v2,...)"
        )
    if "." not in path:
        raise SpecError(
            f"grid axis {path!r} needs a dotted path; sections: "
            "system, router, trace, workload, cluster"
        )
    return GridAxis(path=path, values=values)


def apply_axis(spec: ExperimentSpec, path: str, value: str) -> ExperimentSpec:
    """One grid cell: ``spec`` with the parameter at ``path`` set to ``value``.

    ``system.<param>`` / ``router.<param>`` / ``trace.<param>`` re-resolve
    the component spec string through its registry (unknown parameters
    raise, naming the declared alternatives); ``workload.<field>`` sets a
    flat workload field; ``cluster.replicas`` resizes the fleet.
    """
    section, _, key = path.partition(".")
    if section == "system":
        if key in SYSTEM_FIELD_AXES:
            # A run-construction knob on the section itself, not a
            # scheduler parameter (``prefix_cache``, ``metrics``).
            typed = value if key == "metrics" else _parse_bool(path, value)
            return replace(spec, system=replace(spec.system, **{key: typed}))
        return replace(
            spec,
            system=replace(spec.system, name=SYSTEMS.with_params(spec.system.name, **{key: value})),
        )
    if section == "trace":
        return replace(
            spec,
            workload=replace(
                spec.workload, trace=TRACES.with_params(spec.workload.trace, **{key: value})
            ),
        )
    if section == "router":
        if not spec.cluster.is_cluster:
            raise SpecError(
                "router grid axes require a cluster point (replicas > 1 or autoscale)"
            )
        return replace(
            spec,
            cluster=replace(
                spec.cluster, router=ROUTERS.with_params(spec.cluster.router, **{key: value})
            ),
        )
    if section == "workload":
        try:
            field_name, cast = _WORKLOAD_AXES[key]
        except KeyError:
            raise SpecError(
                f"unknown workload axis {key!r}; available: {sorted(_WORKLOAD_AXES)}"
            ) from None
        try:
            typed = cast(value)
        except ValueError:
            raise SpecError(f"workload.{key} expects a {cast.__name__}, got {value!r}") from None
        return replace(spec, workload=replace(spec.workload, **{field_name: typed}))
    if section == "cluster":
        if key != "replicas":
            raise SpecError(f"unknown cluster axis {key!r}; available: ['replicas']")
        try:
            replicas = int(value)
        except ValueError:
            raise SpecError(f"cluster.replicas expects an int, got {value!r}") from None
        # A canonicalized autoscale section has already baked its
        # max_replicas ceiling (defaulted to 2x the original fleet);
        # re-validation against the new fleet size may legitimately
        # reject the cell, and that error propagates as-is.
        return replace(spec, cluster=replace(spec.cluster, replicas=replicas))
    raise SpecError(
        f"unknown grid section {section!r}; sections: system, router, trace, workload, cluster"
    )


def expand_grid(
    specs: Sequence[ExperimentSpec], axes: Iterable[GridAxis]
) -> list[ExperimentSpec]:
    """Cartesian product of base specs with every grid axis."""
    expanded = list(specs)
    for axis in axes:
        expanded = [
            apply_axis(spec, axis.path, value)
            for spec in expanded
            for value in axis.values
        ]
    return expanded
