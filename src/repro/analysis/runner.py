"""Parallel experiment runner over declarative experiment specs.

The sweeps behind Figures 8-15 are embarrassingly parallel: every point
is an independent simulation, a pure function of its
:class:`~repro.analysis.spec.ExperimentSpec`.  :class:`SweepRunner` fans
points out across a ``ProcessPoolExecutor`` and commits each finished
point to a :class:`~repro.analysis.cache.ResultCache`, so

- ``jobs=N`` produces results identical to the serial path (points carry
  their full configuration, including the workload seed — nothing depends
  on execution order or worker identity);
- a warm cache answers a whole sweep with zero simulations;
- an interrupted sweep resumes from the points already committed.

Results are returned in input order regardless of completion order.  To
keep cached and freshly-executed results indistinguishable, every report
is round-tripped through its JSON record form (per-request detail is
dropped; all aggregates survive exactly).

``ExperimentConfig`` is a backwards-compatible alias of
:class:`ExperimentSpec`: the flat ``.create(...)`` constructor still
works, as do the flat read accessors ``.model``, ``.rps``,
``.duration_s``, ``.seed``, ``.trace``, ``.slo_scale``, ``.mix``,
``.max_sim_time_s``, ``.replicas``, ``.router``, and ``.autoscale``.
The one exception is ``.system``: it now returns the nested
:class:`~repro.analysis.spec.SystemSpec` section — read the scheduler
spec string via ``.system.name`` (or the ``.system_name`` alias).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro._rng import derive_seed
from repro.analysis.cache import ResultCache
from repro.analysis.export import report_from_dict, report_to_dict
from repro.analysis.harness import Setup, build_setup, run_cluster, run_once
from repro.analysis.spec import ClusterSpec, ExperimentSpec, SystemSpec, WorkloadSpec
from repro.registry import TRACES
from repro.serving.request import Request
from repro.serving.server import SimulationReport
from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "TRACE_KINDS",
    "ClusterSpec",
    "ExperimentConfig",
    "ExperimentSpec",
    "SweepResult",
    "SweepRunner",
    "SystemSpec",
    "WorkloadSpec",
    "build_workload",
    "derive_seed",
    "execute_point",
    "run_spec",
    "run_traced",
]

#: Legacy flat trace names (the authoritative enumeration, including
#: parameter schemas, is ``repro.registry.TRACES``).
TRACE_KINDS = ("bursty", "steady", "phased", "diurnal", "sessions", "agentic")

#: Backwards-compatible alias: the flat config class grew sections.
ExperimentConfig = ExperimentSpec


def build_workload(setup: Setup, config: ExperimentSpec) -> list[Request]:
    """The request trace for a spec (same recipe as the CLI/benchmarks).

    The workload section's ``trace`` is a registry spec string
    (``bursty``, ``diurnal:peak_to_trough=6``, ...); its parameters are
    forwarded to the registered trace factory.
    """
    w = config.workload
    gen = WorkloadGenerator(setup.target_roofline, seed=w.seed, slo_scale=w.slo_scale)
    mix = dict(w.mix) if w.mix else None
    return TRACES.create(w.trace, gen, w.duration_s, w.rps, mix=mix)


def run_spec(
    config: ExperimentSpec, observer=None, invariants=None
) -> SimulationReport:
    """Execute one spec fresh and return the live report (no cache).

    The single build-and-run recipe behind :func:`execute_point`, the
    perf suite (:mod:`repro.perfbench`), and the golden-equivalence
    tests — so every consumer simulates exactly the configuration real
    experiments would.  Cluster points (``replicas > 1`` or autoscaling)
    run through :func:`~repro.analysis.harness.run_cluster` and return
    the fleet-level summary.  ``observer`` (see :func:`run_traced`)
    attaches passive observability; ``invariants`` (an
    :class:`~repro.check.invariants.InvariantChecker`, see
    ``--check-invariants``) attaches the runtime sanitizer.  Neither
    ever changes the report.
    """
    setup = build_setup(
        config.system.model,
        seed=config.workload.seed,
        prefix_cache=config.system.prefix_cache,
    )
    requests = build_workload(setup, config)
    if config.is_cluster:
        return run_cluster(
            setup,
            config.system.name,
            requests,
            replicas=config.cluster.replicas,
            router=config.cluster.router,
            autoscale=(
                dict(config.cluster.autoscale)
                if config.cluster.autoscale is not None
                else None
            ),
            faults=config.chaos.faults if config.chaos.enabled else None,
            max_sim_time_s=config.system.max_sim_time_s,
            observer=observer,
            invariants=invariants,
            metrics_mode=config.system.metrics,
        ).summary
    return run_once(
        setup,
        config.system.name,
        requests,
        max_sim_time_s=config.system.max_sim_time_s,
        observer=observer,
        invariants=invariants,
        metrics_mode=config.system.metrics,
    )


def run_traced(config: ExperimentSpec, invariants=None):
    """Execute one spec fresh with its ``obs`` section attached.

    Returns ``(report, observer)`` where ``observer`` is the
    :class:`~repro.obs.observer.RunObserver` holding the trace
    collector, gauge sampler, and iteration logs the run produced.
    Always simulates fresh (never consults the result cache): traces are
    a by-product of execution, so a cache hit would have nothing to
    return — and because the ``obs`` section is excluded from the cache
    key, traced runs still *validate* against cached results via their
    byte-identical reports.  ``invariants`` attaches the runtime
    sanitizer exactly as in :func:`run_spec`.
    """
    from repro.obs import RunObserver

    observer = RunObserver.from_spec(config.obs)
    report = run_spec(config, observer=observer, invariants=invariants)
    return report, observer


def execute_point(config: ExperimentSpec) -> dict:
    """Run one simulation point and return its serialized report.

    Top-level (picklable) so it can serve as the process-pool worker;
    deterministic given ``config``.
    """
    return report_to_dict(run_spec(config))


@dataclass(frozen=True)
class SweepResult:
    """One completed point: its config, cache key, report, and provenance."""

    config: ExperimentConfig
    key: str
    report: SimulationReport
    from_cache: bool


class SweepRunner:
    """Executes config grids, in parallel, through the result cache.

    Parameters
    ----------
    cache:
        Result store consulted before and populated after each point;
        ``None`` disables caching entirely.
    jobs:
        Worker processes for cache-missing points.  ``1`` runs in-process
        (still through the same ``execute_point`` path, so parallel and
        serial sweeps are bit-identical).
    """

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.jobs = jobs
        self.executed = 0  # simulations actually run (cache misses)

    def run(
        self,
        configs: Iterable[ExperimentConfig],
        on_result: Callable[[SweepResult], None] | None = None,
    ) -> list[SweepResult]:
        """All points of a grid, in input order.

        ``on_result`` (if given) fires once per point as it completes —
        cache hits first, then simulations in completion order.
        """
        grid: Sequence[ExperimentConfig] = list(configs)
        results: list[SweepResult | None] = [None] * len(grid)

        # Resolve cache hits up front; group the misses by digest so a
        # grid with duplicate points simulates each point once.
        pending: dict[str, list[int]] = {}
        for i, config in enumerate(grid):
            key = config.digest()
            record = self.cache.get(config) if self.cache is not None else None
            if record is not None:
                results[i] = SweepResult(
                    config, key, report_from_dict(record["report"]), True
                )
                if on_result:
                    on_result(results[i])
            else:
                pending.setdefault(key, []).append(i)

        def finish(key: str, indices: list[int], report_dict: dict) -> None:
            self.executed += 1
            if self.cache is not None:
                self.cache.put(grid[indices[0]], report_dict)
            for i in indices:
                results[i] = SweepResult(
                    grid[i], key, report_from_dict(report_dict), False
                )
                if on_result:
                    on_result(results[i])

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for key, indices in pending.items():
                    finish(key, indices, execute_point(grid[indices[0]]))
            else:
                workers = min(self.jobs, len(pending), os.cpu_count() or 1)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(execute_point, grid[indices[0]]): (key, indices)
                        for key, indices in pending.items()
                    }
                    for future in as_completed(futures):
                        key, indices = futures[future]
                        finish(key, indices, future.result())

        return [r for r in results if r is not None]

    def stats_line(self) -> str:
        """One-line summary: cache traffic plus simulations executed."""
        prefix = (
            self.cache.stats.summary() if self.cache is not None else "cache: disabled"
        )
        return f"{prefix}; simulations executed: {self.executed}"
