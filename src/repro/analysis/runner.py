"""Parallel experiment runner over the (system, model, rps, seed, trace) grid.

The sweeps behind Figures 8-15 are embarrassingly parallel: every point
is an independent simulation, a pure function of its
:class:`ExperimentConfig`.  :class:`SweepRunner` fans points out across a
``ProcessPoolExecutor`` and commits each finished point to a
:class:`~repro.analysis.cache.ResultCache`, so

- ``jobs=N`` produces results identical to the serial path (points carry
  their full configuration, including the workload seed — nothing depends
  on execution order or worker identity);
- a warm cache answers a whole sweep with zero simulations;
- an interrupted sweep resumes from the points already committed.

Results are returned in input order regardless of completion order.  To
keep cached and freshly-executed results indistinguishable, every report
is round-tripped through its JSON record form (per-request detail is
dropped; all aggregates survive exactly).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import asdict, dataclass, replace

from repro._rng import derive_seed
from repro.analysis.cache import ResultCache, config_key
from repro.analysis.export import report_from_dict, report_to_dict
from repro.analysis.harness import Setup, build_setup, run_cluster, run_once
from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.router import ROUTER_NAMES
from repro.serving.request import Request
from repro.serving.server import SimulationReport
from repro.workloads.generator import WorkloadGenerator

#: Trace kinds :func:`build_workload` understands.
TRACE_KINDS = ("bursty", "steady", "phased", "diurnal")


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete description of one simulation point.

    Every field participates in the cache key, so anything that can
    change a result (notably the workload ``seed`` and ``trace`` kind)
    is explicit here rather than implied by call-site defaults.
    """

    model: str
    system: str
    rps: float
    duration_s: float
    seed: int
    trace: str = "bursty"
    slo_scale: float = 1.0
    mix: tuple[tuple[str, float], ...] | None = None
    max_sim_time_s: float = 1800.0
    # Cluster fields (replicas == 1 with no autoscale is the solo path).
    replicas: int = 1
    router: str = "round-robin"
    autoscale: tuple[tuple[str, float], ...] | None = None

    @classmethod
    def create(
        cls,
        model: str,
        system: str,
        rps: float,
        duration_s: float,
        seed: int,
        trace: str = "bursty",
        slo_scale: float = 1.0,
        mix: Mapping[str, float] | None = None,
        max_sim_time_s: float = 1800.0,
        replicas: int = 1,
        router: str = "round-robin",
        autoscale: Mapping[str, float] | None = None,
    ) -> "ExperimentConfig":
        """Build a config, normalizing ``mix``/``autoscale`` to tuples.

        Semantically identical points must hash identically, so inert or
        defaulted choices are canonicalized away: solo points (one
        replica, no autoscaling) never consult a router, so ``router``
        collapses to the default there, and ``autoscale`` knobs are
        resolved against :class:`AutoscalerConfig` defaults (with the
        2x-initial-fleet ceiling) before entering the key — spelling out
        a default explicitly cannot fork the cache.
        """
        if trace not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind {trace!r}; available: {TRACE_KINDS}")
        if router not in ROUTER_NAMES:
            raise ValueError(f"unknown router {router!r}; available: {ROUTER_NAMES}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if replicas == 1 and autoscale is None:
            router = "round-robin"
        canonical_autoscale = None
        if autoscale is not None:
            resolved = AutoscalerConfig.resolve(autoscale, initial_replicas=replicas)
            canonical_autoscale = tuple(sorted(asdict(resolved).items()))
        return cls(
            model=model,
            system=system,
            rps=float(rps),
            duration_s=float(duration_s),
            seed=int(seed),
            trace=trace,
            slo_scale=float(slo_scale),
            mix=tuple(sorted(mix.items())) if mix else None,
            max_sim_time_s=float(max_sim_time_s),
            replicas=int(replicas),
            router=router,
            autoscale=canonical_autoscale,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (the cache-key payload)."""
        return {
            "model": self.model,
            "system": self.system,
            "rps": self.rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "trace": self.trace,
            "slo_scale": self.slo_scale,
            "mix": [list(pair) for pair in self.mix] if self.mix else None,
            "max_sim_time_s": self.max_sim_time_s,
            "replicas": self.replicas,
            "router": self.router,
            "autoscale": (
                [list(pair) for pair in self.autoscale]
                if self.autoscale is not None
                else None
            ),
        }

    @property
    def is_cluster(self) -> bool:
        """Whether this point runs the fleet path rather than one engine."""
        return self.replicas > 1 or self.autoscale is not None

    def digest(self) -> str:
        """Content address of this config (see :func:`~repro.analysis.cache.config_key`)."""
        return config_key(self)

    def with_replica(self, index: int) -> "ExperimentConfig":
        """Copy with a replica seed derived deterministically via ``repro._rng``."""
        return replace(self, seed=derive_seed(self.seed, "replica", index))


def build_workload(setup: Setup, config: ExperimentConfig) -> list[Request]:
    """The request trace for a config (same recipe as the CLI/benchmarks)."""
    gen = WorkloadGenerator(
        setup.target_roofline, seed=config.seed, slo_scale=config.slo_scale
    )
    mix = dict(config.mix) if config.mix else None
    if config.trace == "bursty":
        return gen.bursty(config.duration_s, config.rps, mix=mix)
    if config.trace == "steady":
        return gen.steady(config.duration_s, config.rps, mix=mix)
    if config.trace == "diurnal":
        return gen.diurnal(config.duration_s, config.rps, mix=mix)
    if config.trace == "phased":
        return gen.phased(config.duration_s, peak_rps=config.rps)
    raise ValueError(f"unknown trace kind {config.trace!r}")


def execute_point(config: ExperimentConfig) -> dict:
    """Run one simulation point and return its serialized report.

    Top-level (picklable) so it can serve as the process-pool worker;
    deterministic given ``config``.  Cluster points (``replicas > 1`` or
    autoscaling) run through :func:`~repro.analysis.harness.run_cluster`;
    their record carries the fleet-level summary, so the cache and the
    sweep machinery handle them exactly like solo points.
    """
    setup = build_setup(config.model, seed=config.seed)
    requests = build_workload(setup, config)
    if config.is_cluster:
        fleet = run_cluster(
            setup,
            config.system,
            requests,
            replicas=config.replicas,
            router=config.router,
            autoscale=dict(config.autoscale) if config.autoscale is not None else None,
            max_sim_time_s=config.max_sim_time_s,
        )
        return report_to_dict(fleet.summary)
    report = run_once(
        setup, config.system, requests, max_sim_time_s=config.max_sim_time_s
    )
    return report_to_dict(report)


@dataclass(frozen=True)
class SweepResult:
    """One completed point: its config, cache key, report, and provenance."""

    config: ExperimentConfig
    key: str
    report: SimulationReport
    from_cache: bool


class SweepRunner:
    """Executes config grids, in parallel, through the result cache.

    Parameters
    ----------
    cache:
        Result store consulted before and populated after each point;
        ``None`` disables caching entirely.
    jobs:
        Worker processes for cache-missing points.  ``1`` runs in-process
        (still through the same ``execute_point`` path, so parallel and
        serial sweeps are bit-identical).
    """

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.jobs = jobs
        self.executed = 0  # simulations actually run (cache misses)

    def run(
        self,
        configs: Iterable[ExperimentConfig],
        on_result: Callable[[SweepResult], None] | None = None,
    ) -> list[SweepResult]:
        """All points of a grid, in input order.

        ``on_result`` (if given) fires once per point as it completes —
        cache hits first, then simulations in completion order.
        """
        grid: Sequence[ExperimentConfig] = list(configs)
        results: list[SweepResult | None] = [None] * len(grid)

        # Resolve cache hits up front; group the misses by digest so a
        # grid with duplicate points simulates each point once.
        pending: dict[str, list[int]] = {}
        for i, config in enumerate(grid):
            key = config.digest()
            record = self.cache.get(config) if self.cache is not None else None
            if record is not None:
                results[i] = SweepResult(
                    config, key, report_from_dict(record["report"]), True
                )
                if on_result:
                    on_result(results[i])
            else:
                pending.setdefault(key, []).append(i)

        def finish(key: str, indices: list[int], report_dict: dict) -> None:
            self.executed += 1
            if self.cache is not None:
                self.cache.put(grid[indices[0]], report_dict)
            for i in indices:
                results[i] = SweepResult(
                    grid[i], key, report_from_dict(report_dict), False
                )
                if on_result:
                    on_result(results[i])

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for key, indices in pending.items():
                    finish(key, indices, execute_point(grid[indices[0]]))
            else:
                workers = min(self.jobs, len(pending), os.cpu_count() or 1)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(execute_point, grid[indices[0]]): (key, indices)
                        for key, indices in pending.items()
                    }
                    for future in as_completed(futures):
                        key, indices = futures[future]
                        finish(key, indices, future.result())

        return [r for r in results if r is not None]

    def stats_line(self) -> str:
        """One-line summary: cache traffic plus simulations executed."""
        prefix = (
            self.cache.stats.summary() if self.cache is not None else "cache: disabled"
        )
        return f"{prefix}; simulations executed: {self.executed}"
