"""Result export: JSON/CSV serialization of runs and sweeps.

Benchmarks print tables for humans; this module serializes the same data
for plotting scripts and regression tracking.  Everything is plain-stdlib
(json/csv) so exports work in the offline environment.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Iterable

from repro import __version__
from repro.analysis.cache import ResultCache
from repro.analysis.report import SeriesPoint
from repro.serving.metrics import CategoryMetrics, RunMetrics
from repro.serving.server import SimulationReport

#: Version stamped into exported report/point files.  Pinned separately
#: from the result cache's ``SCHEMA_VERSION``: cache schema 5 only added
#: the optional config-side chaos section and feature-gated report keys,
#: leaving chaos-free exports byte-identical to v4 — and golden report
#: digests (tests/test_golden_equivalence.py) hash this payload.
REPORT_SCHEMA_VERSION = 4


def _nan_to_null(value: float | None) -> float | None:
    """Undefined statistics as JSON null, never a bare ``NaN`` token.

    Current metrics use ``None`` for undefined category stats; NaN is
    still mapped for externally supplied historical records.  Python's
    ``json`` would emit a bare ``NaN`` token — invalid strict JSON and
    unreadable by non-Python consumers.
    """
    return None if value is None or math.isnan(value) else value


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flatten run metrics (with per-category sub-dicts)."""
    return {
        "num_requests": metrics.num_requests,
        "num_finished": metrics.num_finished,
        "num_attained": metrics.num_attained,
        "attainment": metrics.attainment,
        "violation_rate": metrics.violation_rate,
        "goodput": metrics.goodput,
        "throughput": metrics.throughput,
        "total_tokens": metrics.total_tokens,
        "attained_tokens": metrics.attained_tokens,
        "span_s": metrics.span_s,
        "mean_accepted_per_verify": metrics.mean_accepted_per_verify,
        "mean_ttft_s": (
            None if metrics.mean_ttft_s is None else _nan_to_null(metrics.mean_ttft_s)
        ),
        "prefix_hit_requests": metrics.prefix_hit_requests,
        "prefix_hit_rate": metrics.prefix_hit_rate,
        "prefill_tokens_saved": metrics.prefill_tokens_saved,
        # Chaos disruption counters ride along only when a fault actually
        # disrupted something, keeping chaos-free payloads byte-identical
        # to their pre-chaos form (golden digests hash this dict).
        **(
            {
                "requests_disrupted": metrics.requests_disrupted,
                "requests_lost": metrics.requests_lost,
            }
            if metrics.requests_disrupted
            else {}
        ),
        "per_category": {
            name: {
                "num_requests": cm.num_requests,
                "num_attained": cm.num_attained,
                "attainment": cm.attainment,
                "mean_tpot_s": _nan_to_null(cm.mean_tpot_s),
                "p50_tpot_s": _nan_to_null(cm.p50_tpot_s),
                "p99_tpot_s": _nan_to_null(cm.p99_tpot_s),
                "mean_ttft_s": _nan_to_null(cm.mean_ttft_s),
                "p50_ttft_s": _nan_to_null(cm.p50_ttft_s),
                "p99_ttft_s": _nan_to_null(cm.p99_ttft_s),
            }
            for name, cm in metrics.per_category.items()
        },
    }


def metrics_from_dict(d: dict) -> RunMetrics:
    """Inverse of :func:`metrics_to_dict` (derived fields recomputed)."""
    per_category = {}
    for name, cd in d.get("per_category", {}).items():
        num_attained = cd.get("num_attained")
        if num_attained is None:  # pre-num_attained records
            num_attained = round(cd["attainment"] * cd["num_requests"])
        per_category[name] = CategoryMetrics(
            name=name,
            num_requests=cd["num_requests"],
            num_attained=num_attained,
            mean_tpot_s=cd["mean_tpot_s"],
            p99_tpot_s=cd["p99_tpot_s"],
            mean_ttft_s=cd.get("mean_ttft_s"),
            p99_ttft_s=cd.get("p99_ttft_s"),
            p50_tpot_s=cd.get("p50_tpot_s"),
            p50_ttft_s=cd.get("p50_ttft_s"),
        )
    return RunMetrics(
        num_requests=d["num_requests"],
        num_finished=d["num_finished"],
        num_attained=d["num_attained"],
        total_tokens=d["total_tokens"],
        attained_tokens=d["attained_tokens"],
        span_s=d["span_s"],
        mean_accepted_per_verify=d["mean_accepted_per_verify"],
        per_category=per_category,
        mean_ttft_s=d.get("mean_ttft_s"),
        prefix_hit_requests=d.get("prefix_hit_requests", 0),
        prefill_tokens_saved=d.get("prefill_tokens_saved", 0),
        requests_disrupted=d.get("requests_disrupted", 0),
        requests_lost=d.get("requests_lost", 0),
    )


def report_to_dict(report: SimulationReport) -> dict:
    """Serialize a simulation report (without per-request detail).

    The ``chaos`` incident report is emitted only when present, so
    chaos-free payloads (and their golden digests) are unchanged.
    """
    d = {
        "scheduler": report.scheduler_name,
        "sim_time_s": report.sim_time_s,
        "iterations": report.iterations,
        "phase_breakdown": dict(report.phase_breakdown),
        "metrics": metrics_to_dict(report.metrics),
    }
    if report.chaos is not None:
        d["chaos"] = report.chaos
    return d


def report_from_dict(d: dict) -> SimulationReport:
    """Inverse of :func:`report_to_dict`.

    Per-request detail is not serialized, so the reconstructed report has
    an empty ``requests`` list; every aggregate (metrics, phase breakdown,
    iteration counts) round-trips exactly.  Undefined category statistics
    (a category with no finished requests) round-trip as ``None`` via
    JSON null, so ``==`` holds between a report and its round-trip.
    """
    return SimulationReport(
        scheduler_name=d["scheduler"],
        metrics=metrics_from_dict(d["metrics"]),
        sim_time_s=d["sim_time_s"],
        iterations=d["iterations"],
        phase_breakdown=dict(d["phase_breakdown"]),
        requests=[],
        chaos=d.get("chaos"),
    )


def _provenance() -> dict:
    """Self-description embedded in every ``--out`` export.

    Stored results identify the record layout (``schema_version``) and
    the package that produced them (``repro_version``), so files on disk
    remain interpretable after the simulator moves on.
    """
    return {"schema_version": REPORT_SCHEMA_VERSION, "repro_version": __version__}


def report_to_json(report: SimulationReport, indent: int = 2) -> str:
    """Strict JSON text of a simulation report (no NaN/Infinity tokens).

    The payload is the :func:`report_to_dict` record plus the export
    provenance keys; :func:`report_from_dict` ignores the extras, so the
    text round-trips.
    """
    payload = {**_provenance(), **report_to_dict(report)}
    return json.dumps(payload, indent=indent, sort_keys=True, allow_nan=False)


def points_to_csv(points: Iterable[SeriesPoint]) -> str:
    """CSV text of sweep points (one row per (x, system))."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["x", "system", "attainment", "goodput", "violation_rate", "mean_accepted"]
    )
    for p in sorted(points, key=lambda p: (p.x, p.system)):
        writer.writerow(
            [p.x, p.system, p.attainment, p.goodput, p.violation_rate, p.mean_accepted]
        )
    return buf.getvalue()


def points_to_json(points: Iterable[SeriesPoint], indent: int = 2) -> str:
    """JSON text of sweep points (self-describing envelope)."""
    payload = {
        **_provenance(),
        "points": [
            {
                "x": p.x,
                "system": p.system,
                "attainment": p.attainment,
                "goodput": p.goodput,
                "violation_rate": p.violation_rate,
                "mean_accepted": p.mean_accepted,
            }
            for p in sorted(points, key=lambda p: (p.x, p.system))
        ],
    }
    return json.dumps(payload, indent=indent, allow_nan=False)


def point_from_record(record: dict) -> SeriesPoint:
    """One figure cell read straight from a cache record.

    ``record`` is the envelope stored by :class:`ResultCache` (``config``
    + ``report``); the x-coordinate is the configured RPS.  Nested
    (schema >= 3) configs carry the rate in their workload section; flat
    pre-v3 shapes are still read for externally supplied records.
    """
    config = record["config"]
    if "workload" in config:
        config = config["workload"]
    report = record["report"]
    m = report["metrics"]
    return SeriesPoint(
        x=config["rps"],
        system=report["scheduler"],
        attainment=m["attainment"],
        goodput=m["goodput"],
        violation_rate=m["violation_rate"],
        mean_accepted=m["mean_accepted_per_verify"],
    )


def points_from_cache(cache: ResultCache, configs: Iterable) -> list[SeriesPoint]:
    """Series for a config grid, read directly from cache records.

    Raises ``KeyError`` on the first config without a cached result (run
    the grid through ``repro.analysis.runner`` first).
    """
    points = []
    for config in configs:
        record = cache.get(config)
        if record is None:
            raise KeyError(f"no cached result for config {cache.key_for(config)}")
        points.append(point_from_record(record))
    return points


def points_from_json(text: str) -> list[SeriesPoint]:
    """Inverse of :func:`points_to_json`.

    Accepts both the current self-describing envelope and the historical
    bare-list layout.
    """
    payload = json.loads(text)
    rows = payload["points"] if isinstance(payload, dict) else payload
    return [
        SeriesPoint(
            x=row["x"],
            system=row["system"],
            attainment=row["attainment"],
            goodput=row["goodput"],
            violation_rate=row["violation_rate"],
            mean_accepted=row["mean_accepted"],
        )
        for row in rows
    ]
