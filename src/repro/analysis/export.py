"""Result export: JSON/CSV serialization of runs and sweeps.

Benchmarks print tables for humans; this module serializes the same data
for plotting scripts and regression tracking.  Everything is plain-stdlib
(json/csv) so exports work in the offline environment.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.analysis.report import SeriesPoint
from repro.serving.metrics import RunMetrics
from repro.serving.server import SimulationReport


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flatten run metrics (with per-category sub-dicts)."""
    return {
        "num_requests": metrics.num_requests,
        "num_finished": metrics.num_finished,
        "num_attained": metrics.num_attained,
        "attainment": metrics.attainment,
        "violation_rate": metrics.violation_rate,
        "goodput": metrics.goodput,
        "throughput": metrics.throughput,
        "total_tokens": metrics.total_tokens,
        "attained_tokens": metrics.attained_tokens,
        "span_s": metrics.span_s,
        "mean_accepted_per_verify": metrics.mean_accepted_per_verify,
        "per_category": {
            name: {
                "num_requests": cm.num_requests,
                "attainment": cm.attainment,
                "mean_tpot_s": cm.mean_tpot_s,
                "p99_tpot_s": cm.p99_tpot_s,
                "mean_ttft_s": cm.mean_ttft_s,
                "p99_ttft_s": cm.p99_ttft_s,
            }
            for name, cm in metrics.per_category.items()
        },
    }


def report_to_dict(report: SimulationReport) -> dict:
    """Serialize a simulation report (without per-request detail)."""
    return {
        "scheduler": report.scheduler_name,
        "sim_time_s": report.sim_time_s,
        "iterations": report.iterations,
        "phase_breakdown": dict(report.phase_breakdown),
        "metrics": metrics_to_dict(report.metrics),
    }


def report_to_json(report: SimulationReport, indent: int = 2) -> str:
    """JSON text of a simulation report."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def points_to_csv(points: Iterable[SeriesPoint]) -> str:
    """CSV text of sweep points (one row per (x, system))."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["x", "system", "attainment", "goodput", "violation_rate", "mean_accepted"]
    )
    for p in sorted(points, key=lambda p: (p.x, p.system)):
        writer.writerow(
            [p.x, p.system, p.attainment, p.goodput, p.violation_rate, p.mean_accepted]
        )
    return buf.getvalue()


def points_to_json(points: Iterable[SeriesPoint], indent: int = 2) -> str:
    """JSON text of sweep points."""
    payload = [
        {
            "x": p.x,
            "system": p.system,
            "attainment": p.attainment,
            "goodput": p.goodput,
            "violation_rate": p.violation_rate,
            "mean_accepted": p.mean_accepted,
        }
        for p in sorted(points, key=lambda p: (p.x, p.system))
    ]
    return json.dumps(payload, indent=indent)


def points_from_json(text: str) -> list[SeriesPoint]:
    """Inverse of :func:`points_to_json`."""
    return [
        SeriesPoint(
            x=row["x"],
            system=row["system"],
            attainment=row["attainment"],
            goodput=row["goodput"],
            violation_rate=row["violation_rate"],
            mean_accepted=row["mean_accepted"],
        )
        for row in json.loads(text)
    ]
