"""Paged KV-cache manager (vLLM-style block allocation).

KV memory is organized in fixed-size blocks; each request owns enough
blocks to cover its resident tokens (prompt + generated + transient
speculative tokens).  Schedulers grow a request's allocation before
running it and free everything when it finishes or is preempted with KV
dropped.

The manager enforces the capacity invariant (never over-allocates) and
exposes occupancy for admission-control decisions.  Capacity defaults come
from the deployment spec: device memory minus weights and reserve.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_BLOCK_SIZE = 16


class OutOfKVCache(Exception):
    """Raised when an allocation cannot be satisfied."""


@dataclass(frozen=True)
class KVStats:
    """Occupancy snapshot."""

    total_blocks: int
    used_blocks: int
    num_requests: int

    @property
    def utilization(self) -> float:
        """Fraction of blocks allocated."""
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0


class KVCacheManager:
    """Block-granular KV-cache accounting.

    Parameters
    ----------
    capacity_tokens:
        Total tokens the cache can hold (from
        ``DeploymentSpec.kv_capacity_tokens``).
    block_size:
        Tokens per block.
    """

    #: Whether this manager shares prefix blocks across requests; engine
    #: and scheduler prefix hooks are no-ops when False.  The sharing
    #: implementation lives in :class:`repro.prefixcache.PrefixCacheManager`.
    prefix_caching = False

    def __init__(self, capacity_tokens: int, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if capacity_tokens < block_size:
            raise ValueError("capacity smaller than one block")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size
        self.total_blocks = capacity_tokens // block_size
        self._allocated: dict[int, int] = {}  # rid -> blocks
        self._used = 0

    # ------------------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens``."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return -(-tokens // self.block_size)  # ceil division

    @property
    def used_blocks(self) -> int:
        """Blocks currently allocated."""
        return self._used

    @property
    def free_blocks(self) -> int:
        """Blocks available."""
        return self.total_blocks - self._used

    def holds(self, rid: int) -> bool:
        """Whether the request has any allocation."""
        return rid in self._allocated

    def allocation(self, rid: int) -> int:
        """Blocks currently held by ``rid`` (0 if none)."""
        return self._allocated.get(rid, 0)

    # ------------------------------------------------------------------
    def can_fit(self, rid: int, tokens: int) -> bool:
        """Whether ``ensure(rid, tokens)`` would succeed."""
        need = self.blocks_for(tokens) - self.allocation(rid)
        return need <= self.free_blocks

    def ensure(self, rid: int, tokens: int) -> None:
        """Grow ``rid``'s allocation to cover ``tokens`` resident tokens.

        Raises :class:`OutOfKVCache` when capacity is insufficient; the
        caller decides whether to queue or preempt.
        """
        target = self.blocks_for(tokens)
        have = self._allocated.get(rid, 0)
        if target <= have:
            return
        need = target - have
        if need > self.free_blocks:
            raise OutOfKVCache(
                f"request {rid} needs {need} blocks, only {self.free_blocks} free"
            )
        self._allocated[rid] = target
        self._used += need

    def free(self, rid: int) -> int:
        """Release all blocks held by ``rid``; returns the count freed."""
        blocks = self._allocated.pop(rid, 0)
        self._used -= blocks
        return blocks

    def invalidate_all(self) -> None:
        """Drop every allocation — the device's memory is gone.

        Models a replica crash (see :mod:`repro.chaos`): unlike
        :meth:`free`, which releases one request in an orderly fashion,
        this wipes the whole cache at once.  The manager stays usable
        (capacity unchanged) for defensive callers, though a crashed
        replica normally swaps in a fresh engine + manager afterwards.
        """
        self._allocated.clear()
        self._used = 0

    def stats(self) -> KVStats:
        """Occupancy snapshot."""
        return KVStats(
            total_blocks=self.total_blocks,
            used_blocks=self._used,
            num_requests=len(self._allocated),
        )
