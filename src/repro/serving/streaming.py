"""Streaming run metrics: O(1) memory in request count.

Exact :func:`~repro.serving.metrics.compute_metrics` keeps every latency
sample in per-category Python lists — at population scale (10^5..10^6
requests) the sample lists dominate the metrics footprint.  This module
provides the same aggregation as an *online accumulator*:

- every count/sum-derived field (request counts, token totals, span,
  means, speculation and prefix statistics) is accumulated exactly, in
  feed order — **bit-identical** to the exact path when requests are fed
  in the same order ``compute_metrics`` iterates them;
- percentiles come from a deterministic fixed-size reservoir (Algorithm
  R with splitmix64-derived replacement draws, keyed by category and
  metric name — no global RNG state, so results are independent of
  what else ran in the process).  While a category's sample count is
  within the reservoir capacity the reservoir *is* the full sample and
  percentiles are bit-exact too; beyond it they are estimates whose
  rank error has standard deviation ``sqrt(q * (1 - q) / capacity)``
  (< 0.16% of rank at the default capacity 4096), i.e. the p99 of a
  1M-request category is read from within ± a few hundredths of a
  percentile rank.

``StreamingRunMetrics`` produces a plain :class:`RunMetrics`, so every
consumer (export, gates, plots) is agnostic to which path built it.
:func:`aggregate_metrics` is the mode dispatcher used by the simulators;
``metrics: streaming`` in a spec selects it (see
:mod:`repro.analysis.spec` — the knob forks cache keys precisely because
over-capacity percentiles may differ from the exact reference).
"""

from __future__ import annotations

from typing import Iterable

from repro._rng import derive_seed, randint
from repro.serving.metrics import (
    CategoryMetrics,
    RunMetrics,
    _percentile_sorted,
    compute_metrics,
)
from repro.serving.request import Request

#: Default reservoir capacity per (category, metric) stream.  Percentiles
#: are exact up to this many samples per category; beyond it the rank
#: error stddev is sqrt(q(1-q)/4096) — ~0.11% of rank at the median,
#: ~0.016% at p99.
RESERVOIR_CAPACITY = 4096

#: Metric-mode spec values (the ``metrics:`` system knob).
METRICS_MODES = ("exact", "streaming")


class Reservoir:
    """Deterministic Algorithm-R uniform sample of a float stream.

    Replacement draws come from ``randint(key, count, 0, count)`` — a
    pure function of the stream key and the item's ordinal — so the
    retained sample depends only on (key, stream contents), never on
    process-global RNG state or interleaving with other streams.
    """

    __slots__ = ("_key", "capacity", "count", "_sample")

    def __init__(self, key: int, capacity: int = RESERVOIR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._key = key
        self.capacity = capacity
        self.count = 0
        self._sample: list[float] = []

    def add(self, value: float) -> None:
        """Offer one observation to the reservoir."""
        self.count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        # Classic Algorithm R: item i (1-based) replaces a random slot
        # with probability capacity / i.
        j = randint(self._key, self.count, 0, self.count)
        if j < self.capacity:
            self._sample[j] = value

    @property
    def is_exact(self) -> bool:
        """Whether the reservoir still holds the entire stream."""
        return self.count <= self.capacity

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained sample."""
        return _percentile_sorted(sorted(self._sample), q)


class _CategoryAccumulator:
    """Online per-category sums plus latency reservoirs."""

    __slots__ = (
        "name", "num_requests", "num_attained", "tpot_sum", "ttft_sum",
        "num_finished", "tpots", "ttfts",
    )

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.num_requests = 0
        self.num_attained = 0
        self.num_finished = 0
        self.tpot_sum = 0.0
        self.ttft_sum = 0.0
        self.tpots = Reservoir(derive_seed(0x52455356, "tpot", name), capacity)  # "RESV"
        self.ttfts = Reservoir(derive_seed(0x52455356, "ttft", name), capacity)

    def add(self, r: Request) -> None:
        self.num_requests += 1
        if not r.is_finished:
            return
        self.num_finished += 1
        tpot = r.avg_tpot
        ttft = r.ttft
        self.tpot_sum += tpot
        self.ttft_sum += ttft
        self.tpots.add(tpot)
        self.ttfts.add(ttft)
        if r.attained:
            self.num_attained += 1

    def finalize(self) -> CategoryMetrics:
        n = self.num_finished
        return CategoryMetrics(
            name=self.name,
            num_requests=self.num_requests,
            num_attained=self.num_attained,
            mean_tpot_s=self.tpot_sum / n if n else None,
            p99_tpot_s=self.tpots.percentile(99.0) if n else None,
            mean_ttft_s=self.ttft_sum / n if n else None,
            p99_ttft_s=self.ttfts.percentile(99.0) if n else None,
            p50_tpot_s=self.tpots.percentile(50.0) if n else None,
            p50_ttft_s=self.ttfts.percentile(50.0) if n else None,
        )


class StreamingRunMetrics:
    """Online :class:`RunMetrics` accumulator — O(1) memory per category.

    Feed requests with :meth:`add` (in the order ``compute_metrics``
    would iterate them, for bit-equal sums/means), then :meth:`finalize`.
    Count/sum fields are exact; percentiles are exact while a category
    has at most ``capacity`` finished requests and reservoir estimates
    beyond that (error bounds in the module docstring).
    """

    def __init__(self, capacity: int = RESERVOIR_CAPACITY) -> None:
        self._capacity = capacity
        self._by_category: dict[str, _CategoryAccumulator] = {}
        self.num_requests = 0
        self.num_finished = 0
        self.num_attained = 0
        self.total_tokens = 0
        self.attained_tokens = 0
        self.total_verify = 0
        self.total_accepted = 0
        self.prefix_hit_requests = 0
        self.prefill_tokens_saved = 0
        self.requests_disrupted = 0
        self.requests_lost = 0
        self.first_arrival = float("inf")
        self.last_event = float("-inf")
        self.ttft_sum = 0.0

    def add(self, r: Request) -> None:
        """Fold one request into the accumulator."""
        self.num_requests += 1
        cat = self._by_category.get(r.category)
        if cat is None:
            cat = self._by_category[r.category] = _CategoryAccumulator(
                r.category, self._capacity
            )
        cat.add(r)
        self.total_tokens += r.n_generated
        self.total_verify += r.verify_steps
        self.total_accepted += r.accepted_draft_tokens
        if r.cached_prompt_tokens > 0:
            self.prefix_hit_requests += 1
            self.prefill_tokens_saved += r.cached_prompt_tokens
        if r.failover_count > 0:
            self.requests_disrupted += 1
            if not r.is_finished:
                self.requests_lost += 1
        if r.arrival_time < self.first_arrival:
            self.first_arrival = r.arrival_time
        if r.is_finished:
            self.num_finished += 1
            self.ttft_sum += r.ttft
            if r.attained:
                self.num_attained += 1
                self.attained_tokens += r.n_generated
            if r.finish_time is not None and r.finish_time > self.last_event:
                self.last_event = r.finish_time

    def add_all(self, requests: Iterable[Request]) -> "StreamingRunMetrics":
        """Fold an iterable of requests; returns self for chaining."""
        for r in requests:
            self.add(r)
        return self

    def finalize(self) -> RunMetrics:
        """The accumulated :class:`RunMetrics`."""
        if self.num_requests == 0:
            return RunMetrics(0, 0, 0, 0, 0, 0.0, 0.0)
        last_event = self.last_event
        if last_event == float("-inf"):
            last_event = self.first_arrival
        span = max(1e-9, last_event - self.first_arrival)
        per_cat = {
            name: self._by_category[name].finalize()
            for name in sorted(self._by_category)
        }
        return RunMetrics(
            num_requests=self.num_requests,
            num_finished=self.num_finished,
            num_attained=self.num_attained,
            total_tokens=self.total_tokens,
            attained_tokens=self.attained_tokens,
            span_s=span,
            mean_accepted_per_verify=(
                self.total_accepted / self.total_verify if self.total_verify else 0.0
            ),
            per_category=per_cat,
            mean_ttft_s=(self.ttft_sum / self.num_finished) if self.num_finished else None,
            prefix_hit_requests=self.prefix_hit_requests,
            prefill_tokens_saved=self.prefill_tokens_saved,
            requests_disrupted=self.requests_disrupted,
            requests_lost=self.requests_lost,
        )


def aggregate_metrics(requests: Iterable[Request], mode: str = "exact") -> RunMetrics:
    """Compute :class:`RunMetrics` with the selected aggregation mode.

    ``exact`` is the reference :func:`compute_metrics`; ``streaming``
    folds the same iteration order through :class:`StreamingRunMetrics`.
    The two agree exactly on every count/sum/mean field, and on
    percentiles while each category holds at most
    ``RESERVOIR_CAPACITY`` finished requests.
    """
    if mode == "exact":
        return compute_metrics(requests)
    if mode == "streaming":
        return StreamingRunMetrics().add_all(requests).finalize()
    raise ValueError(f"unknown metrics mode {mode!r} (expected one of {METRICS_MODES})")
