"""Request lifecycle and per-request accounting.

A request arrives with a prompt, an output-length target and a TPOT SLO
(Table 2 category).  It moves through:

    QUEUED -> PREFILLING -> RUNNING -> FINISHED
                  ^             |
                  +- PREEMPTED <+      (preemptive baselines / KV pressure)

Timing follows the paper's accounting: ``decode_start`` is stamped when
the request's first decoding iteration begins (prefill complete); the SLO
is attained iff the *average* per-token latency
``(last_token_time - decode_start) / n_generated`` is within the TPOT
threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable


class RequestState(enum.Enum):
    """Lifecycle states."""

    QUEUED = "queued"
    PREFILLING = "prefilling"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"


@dataclass
class Request:
    """One inference request and its runtime accounting.

    Static fields describe the workload item; mutable fields are advanced
    by schedulers through the helper methods (not directly).
    """

    rid: int
    category: str
    arrival_time: float
    prompt_len: int
    max_new_tokens: int
    tpot_slo: float
    predictability: float | None = None
    priority: int = 0  # lower value = more urgent (used by priority baselines)
    # -- prefix identity (see repro.prefixcache) --
    #: Conversation this request belongs to (None for one-shot requests).
    session_id: int | None = None
    #: Zero-based turn number within the session.
    turn_index: int = 0
    #: Token-stream composition of the prompt as (namespace, length)
    #: segments; generated tokens extend the final segment.  ``None``
    #: means the whole prompt is one stream private to this request.
    prompt_segments: tuple[tuple[int, int], ...] | None = None

    # -- runtime state (managed via helpers) --
    state: RequestState = RequestState.QUEUED
    prefilled: int = 0
    ctx: int = 0  # model context hash, valid once prefill completes
    n_generated: int = 0
    decode_start: float | None = None
    first_token_time: float | None = None
    last_token_time: float | None = None
    finish_time: float | None = None
    preempt_count: int = 0
    #: Times this request was evacuated from a crashed replica and
    #: re-routed (chaos runs only; see repro.chaos).
    failover_count: int = 0
    #: Prompt tokens served from a shared prefix cache instead of being
    #: prefilled (cumulative over admissions; see repro.prefixcache).
    cached_prompt_tokens: int = 0
    # Speculation accounting (for Figure 12).
    verify_steps: int = 0
    accepted_draft_tokens: int = 0
    token_times: list[float] = field(default_factory=list)
    record_token_times: bool = False
    #: Called (with the request) the instant generation completes.  Set
    #: by the owning scheduler so finished-request bookkeeping stays
    #: incremental (no per-iteration pool rescans); excluded from
    #: equality so instrumented and plain requests compare identically.
    on_finish: "Callable[[Request], None] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ValueError(f"request {self.rid}: prompt_len must be >= 1")
        if self.max_new_tokens < 1:
            raise ValueError(f"request {self.rid}: max_new_tokens must be >= 1")
        if self.tpot_slo <= 0:
            raise ValueError(f"request {self.rid}: tpot_slo must be positive")

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    @property
    def remaining_prompt(self) -> int:
        """Prompt tokens not yet prefilled."""
        return self.prompt_len - self.prefilled

    def advance_prefill(self, tokens: int) -> None:
        """Account ``tokens`` of prompt processed (chunked prefill)."""
        if tokens < 1:
            raise ValueError("prefill chunk must be >= 1 token")
        if tokens > self.remaining_prompt:
            raise ValueError(
                f"request {self.rid}: chunk {tokens} exceeds remaining prompt {self.remaining_prompt}"
            )
        self.prefilled += tokens
        self.state = (
            RequestState.PREFILLING if self.prefilled < self.prompt_len else self.state
        )

    def note_prefix_hit(self, tokens: int) -> None:
        """Account ``tokens`` of prompt served from cached prefix KV.

        The cached region counts as already prefilled — the engine never
        recomputes it — so TTFT and prefill batch budgets shrink by
        exactly the hit length.  ``cached_prompt_tokens`` accumulates
        across prefill passes: a request preempted with its KV dropped
        re-matches on re-admission, and each pass's hit is prefill
        compute that genuinely never ran.
        """
        if self.prefilled != 0:
            raise ValueError(f"request {self.rid}: prefix hit after prefill started")
        if not 0 < tokens < self.prompt_len:
            raise ValueError(
                f"request {self.rid}: prefix hit {tokens} outside (0, {self.prompt_len})"
            )
        self.cached_prompt_tokens += tokens
        self.advance_prefill(tokens)

    def rollback_prefix_hit(self, tokens: int) -> None:
        """Undo :meth:`note_prefix_hit` for a hit that went unused.

        Only valid while the hit is the request's sole prefill progress
        (it was never scheduled onto the engine); the request returns to
        the plain queued state and may re-match later.
        """
        if self.prefilled != tokens or self.state not in (
            RequestState.QUEUED,
            RequestState.PREFILLING,
        ):
            raise ValueError(
                f"request {self.rid}: cannot roll back prefix hit of {tokens} "
                f"(prefilled={self.prefilled}, state={self.state.value})"
            )
        self.cached_prompt_tokens -= tokens
        self.prefilled = 0
        self.state = RequestState.QUEUED

    def begin_decode(self, ctx: int, now: float) -> None:
        """Mark prefill complete and start the decode phase."""
        if self.prefilled != self.prompt_len:
            raise ValueError(f"request {self.rid}: prefill incomplete")
        self.ctx = ctx
        self.state = RequestState.RUNNING
        if self.decode_start is None:
            self.decode_start = now

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    @property
    def remaining_tokens(self) -> int:
        """Output tokens still to generate."""
        return self.max_new_tokens - self.n_generated

    @property
    def is_finished(self) -> bool:
        """Whether generation completed."""
        return self.state == RequestState.FINISHED

    def commit_tokens(self, count: int, new_ctx: int, now: float) -> None:
        """Commit ``count`` generated tokens at time ``now``."""
        if self.state != RequestState.RUNNING:
            raise ValueError(f"request {self.rid}: commit while {self.state}")
        if count < 1:
            raise ValueError("must commit at least one token")
        if count > self.remaining_tokens:
            raise ValueError(
                f"request {self.rid}: commit {count} exceeds remaining {self.remaining_tokens}"
            )
        self.ctx = new_ctx
        self.n_generated += count
        if self.first_token_time is None:
            self.first_token_time = now
        self.last_token_time = now
        if self.record_token_times:
            self.token_times.extend([now] * count)
        if self.n_generated >= self.max_new_tokens:
            self.state = RequestState.FINISHED
            self.finish_time = now
            if self.on_finish is not None:
                self.on_finish(self)

    def preempt(self, drop_kv: bool) -> None:
        """Pause the request; optionally drop its KV (forces re-prefill)."""
        if self.state not in (RequestState.RUNNING, RequestState.PREFILLING):
            raise ValueError(f"request {self.rid}: preempt while {self.state}")
        self.state = RequestState.PREEMPTED
        self.preempt_count += 1
        if drop_kv:
            self.prefilled = 0

    def fail_over(self) -> None:
        """Reset runtime state after the owning replica crashed.

        The replica's KV — shared prefix blocks included — is gone, so
        the request re-enters the queue as if it had never been
        scheduled: prefill progress and context are dropped while
        generation counts persist (those tokens were already delivered),
        mirroring preempt-with-drop semantics.  Valid from any
        unfinished state, including mid-prefill.
        """
        if self.state == RequestState.FINISHED:
            raise ValueError(f"request {self.rid}: fail_over after finish")
        self.state = RequestState.QUEUED
        self.prefilled = 0
        self.ctx = 0
        self.failover_count += 1

    def resume(self) -> None:
        """Return a preempted request to the running state (KV retained)."""
        if self.state != RequestState.PREEMPTED:
            raise ValueError(f"request {self.rid}: resume while {self.state}")
        if self.prefilled < self.prompt_len:
            self.state = RequestState.QUEUED
        else:
            self.state = RequestState.RUNNING

    # ------------------------------------------------------------------
    # SLO accounting
    # ------------------------------------------------------------------
    @property
    def kv_tokens(self) -> int:
        """Tokens resident in the KV cache for this request."""
        return self.prefilled + self.n_generated

    @property
    def elapsed_decode(self) -> float | None:
        """Decode-phase duration so far (None before decode starts)."""
        if self.decode_start is None or self.last_token_time is None:
            return None
        return self.last_token_time - self.decode_start

    @property
    def ttft(self) -> float:
        """Time to first token (arrival to first committed token).

        Not part of the paper's SLOs (which are TPOT-only) but reported
        alongside them, as real deployments track both.
        """
        if self.first_token_time is None:
            return float("inf")
        return self.first_token_time - self.arrival_time

    @property
    def avg_tpot(self) -> float:
        """Average per-token latency over the decode phase."""
        if self.n_generated == 0 or self.decode_start is None or self.last_token_time is None:
            return float("inf")
        return (self.last_token_time - self.decode_start) / self.n_generated

    @property
    def attained(self) -> bool:
        """Whether the request met its TPOT SLO (finished requests only)."""
        return self.is_finished and self.avg_tpot <= self.tpot_slo

    def requirement(self, now: float, iteration_latency: float) -> float:
        """A(r): accepted tokens needed this iteration (Equation 2 rewrite)."""
        start = self.decode_start if self.decode_start is not None else now
        elapsed = max(0.0, now - start)
        return (elapsed + iteration_latency) / self.tpot_slo - self.n_generated

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def fresh_copy(self) -> "Request":
        """A pristine copy of this request for a new run.

        Copies the static workload fields and resets every runtime field
        to its construction default.  Bypasses ``__init__`` (the fields
        were validated when this request was built), so harness sweeps —
        which clone every request once per run — pay one attribute sweep
        instead of dataclass construction + re-validation.
        """
        clone = object.__new__(Request)
        clone.rid = self.rid
        clone.category = self.category
        clone.arrival_time = self.arrival_time
        clone.prompt_len = self.prompt_len
        clone.max_new_tokens = self.max_new_tokens
        clone.tpot_slo = self.tpot_slo
        clone.predictability = self.predictability
        clone.priority = self.priority
        clone.session_id = self.session_id
        clone.turn_index = self.turn_index
        clone.prompt_segments = self.prompt_segments
        clone.state = RequestState.QUEUED
        clone.prefilled = 0
        clone.ctx = 0
        clone.n_generated = 0
        clone.decode_start = None
        clone.first_token_time = None
        clone.last_token_time = None
        clone.finish_time = None
        clone.preempt_count = 0
        clone.failover_count = 0
        clone.cached_prompt_tokens = 0
        clone.verify_steps = 0
        clone.accepted_draft_tokens = 0
        clone.token_times = []
        clone.record_token_times = False
        clone.on_finish = None
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(rid={self.rid}, cat={self.category}, state={self.state.value}, "
            f"gen={self.n_generated}/{self.max_new_tokens})"
        )
