"""Serving-system simulator substrate: requests, engine, KV cache, metrics."""

from repro.serving.clock import ArrivalStream, ChunkedArrivalStream, SimClock
from repro.serving.engine import PhaseTimes, SimulatedEngine
from repro.serving.kv_cache import KVCacheManager, KVStats, OutOfKVCache
from repro.serving.metrics import (
    CategoryMetrics,
    RunMetrics,
    compute_metrics,
    violation_reduction,
)
from repro.serving.request import Request, RequestState
from repro.serving.scheduler_base import Scheduler
from repro.serving.server import ServingSimulator, SimulationReport

__all__ = [
    "ArrivalStream",
    "CategoryMetrics",
    "ChunkedArrivalStream",
    "KVCacheManager",
    "KVStats",
    "OutOfKVCache",
    "PhaseTimes",
    "Request",
    "RequestState",
    "RunMetrics",
    "Scheduler",
    "ServingSimulator",
    "SimClock",
    "SimulatedEngine",
    "SimulationReport",
    "compute_metrics",
    "violation_reduction",
]
