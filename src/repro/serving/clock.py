"""Simulation clock and arrival stream.

The serving simulator is iteration-driven: the clock advances by the
modeled latency of each executed engine step, and requests are admitted
when their arrival timestamps pass.  ``ArrivalStream`` wraps the sorted
arrival list with a cursor so the main loop stays O(n) overall.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.serving.request import Request


class SimClock:
    """Monotonically advancing simulated time (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (must be non-negative)."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by {delta}")
        self._now += delta
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump to absolute time ``t`` (must not be in the past)."""
        if t < self._now - 1e-12:
            raise ValueError(f"cannot move clock backward to {t} from {self._now}")
        self._now = max(self._now, t)
        return self._now


class ArrivalStream:
    """Cursor over requests ordered by arrival time."""

    def __init__(self, requests: Sequence[Request]) -> None:
        self._requests = sorted(requests, key=lambda r: (r.arrival_time, r.rid))
        self._idx = 0

    @property
    def exhausted(self) -> bool:
        """Whether every request has been released."""
        return self._idx >= len(self._requests)

    @property
    def next_arrival(self) -> float | None:
        """Arrival time of the next unreleased request."""
        if self.exhausted:
            return None
        return self._requests[self._idx].arrival_time

    def release_until(self, now: float) -> list[Request]:
        """Pop all requests with arrival_time <= now."""
        out: list[Request] = []
        while not self.exhausted and self._requests[self._idx].arrival_time <= now:
            out.append(self._requests[self._idx])
            self._idx += 1
        return out

    def __len__(self) -> int:
        return len(self._requests) - self._idx


class ChunkedArrivalStream:
    """Arrival cursor over a lazily materialized workload.

    Same interface as :class:`ArrivalStream` (minus ``__len__`` — the
    remaining count is unknowable without materializing the tail), fed by
    an iterator of request chunks already in global ``(arrival_time, rid)``
    order — the :meth:`ColumnarWorkload.iter_chunks
    <repro.workloads.batcharrivals.ColumnarWorkload.iter_chunks>`
    contract.  Each chunk is materialized only when the clock reaches it,
    so the admission side never holds more than one chunk of not-yet-
    admitted ``Request`` objects.  Ordering is verified at every chunk
    seam; out-of-order input raises instead of silently reordering.
    """

    def __init__(self, chunks: Iterable[list[Request]]) -> None:
        self._chunks: Iterator[list[Request]] = iter(chunks)
        self._buffer: list[Request] = []
        self._idx = 0
        self._last_arrival = float("-inf")

    def _ensure(self) -> bool:
        """Pull chunks until the buffer has an unreleased request."""
        while self._idx >= len(self._buffer):
            chunk = next(self._chunks, None)
            if chunk is None:
                return False
            if not chunk:
                continue
            if chunk[0].arrival_time < self._last_arrival:
                raise ValueError(
                    "chunked arrivals regressed across a chunk seam: "
                    f"{chunk[0].arrival_time} < {self._last_arrival}"
                )
            self._buffer = chunk
            self._idx = 0
        return True

    @property
    def exhausted(self) -> bool:
        """Whether every request has been released."""
        return not self._ensure()

    @property
    def next_arrival(self) -> float | None:
        """Arrival time of the next unreleased request."""
        if not self._ensure():
            return None
        return self._buffer[self._idx].arrival_time

    def release_until(self, now: float) -> list[Request]:
        """Pop all requests with arrival_time <= now."""
        out: list[Request] = []
        while self._ensure() and self._buffer[self._idx].arrival_time <= now:
            req = self._buffer[self._idx]
            self._last_arrival = req.arrival_time
            out.append(req)
            self._idx += 1
        return out
