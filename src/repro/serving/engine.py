"""Simulated execution engine.

Plays the role of the paper's execution engine (Figure 6): it owns the
model pair, the target/draft roofline models, the draft-side CUDA-graph
state and the KV-cache manager, and it prices + executes the primitive
GPU operations every scheduler is composed of:

- ``prefill(chunks, now)``: process prompt chunks (possibly batched with
  nothing else — co-batching is priced via ``verify_cost`` extras);
- ``decode(requests, now)``: one autoregressive token per request;
- ``draft_cost(step_tokens)``: price a batched draft beam (CUDA-graph
  replays for shape-stable steps 2..d);
- ``verify_cost(tokens, context)``: price target verification of a batch
  of speculated tokens;
- ``commit token`` side effects live on :class:`Request`.

The engine never decides *what* to run — that is scheduler policy.  It
accumulates per-phase busy time for the Figure 15 breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro._rng import hash_seed
from repro.hardware.cuda_graph import CudaGraphModel
from repro.prefixcache.tokens import request_block_keys
from repro.hardware.roofline import RooflineModel
from repro.model.pair import ModelPair
from repro.model.stochastic_lm import PREFETCH_MIN_BATCH
from repro.serving.kv_cache import KVCacheManager
from repro.serving.request import Request, RequestState

#: Fixed CPU-side overhead per engine step (batch formation, tensor
#: bookkeeping) added to every iteration, seconds.
DEFAULT_STEP_OVERHEAD_S = 100e-6


@dataclass
class PhaseTimes:
    """Cumulative busy time per phase (Figure 15)."""

    prefill_s: float = 0.0
    decode_s: float = 0.0
    speculation_s: float = 0.0
    verification_s: float = 0.0
    scheduling_s: float = 0.0

    @property
    def total(self) -> float:
        """Total accounted busy time."""
        return (
            self.prefill_s
            + self.decode_s
            + self.speculation_s
            + self.verification_s
            + self.scheduling_s
        )

    def add(self, other: "PhaseTimes") -> None:
        """Accumulate another instance's busy time (fleet aggregation).

        Iterates the dataclass fields so a future phase cannot be
        silently dropped from merged breakdowns.
        """
        for phase_field in fields(self):
            setattr(
                self,
                phase_field.name,
                getattr(self, phase_field.name) + getattr(other, phase_field.name),
            )

    def breakdown(self) -> dict[str, float]:
        """Fractions per phase (empty if nothing ran)."""
        total = self.total
        if total == 0:
            return {}
        return {
            "prefill": self.prefill_s / total,
            "decode": self.decode_s / total,
            "speculation": self.speculation_s / total,
            "verification": self.verification_s / total,
            "scheduling": self.scheduling_s / total,
        }


class SimulatedEngine:
    """Executes engine primitives against the cost model and model pair.

    Parameters
    ----------
    pair:
        Draft/target model pair.
    target_roofline, draft_roofline:
        Cost models for the two networks.
    kv:
        KV-cache manager (target model's cache).
    step_overhead_s:
        Constant CPU overhead added to every iteration.
    seed:
        Seed for synthesizing request root contexts.
    """

    def __init__(
        self,
        pair: ModelPair,
        target_roofline: RooflineModel,
        draft_roofline: RooflineModel,
        kv: KVCacheManager,
        step_overhead_s: float = DEFAULT_STEP_OVERHEAD_S,
        seed: int = 0,
    ) -> None:
        self.pair = pair
        self.target_roofline = target_roofline
        self.draft_roofline = draft_roofline
        self.kv = kv
        self.step_overhead_s = step_overhead_s
        self.seed = seed
        self.draft_graphs = CudaGraphModel(
            eager_launch_s=draft_roofline.forward_cost(1).launch_time
        )
        self.phase_times = PhaseTimes()
        self.iterations = 0
        #: Optional per-iteration log (see repro.serving.telemetry).
        self.telemetry = None
        #: Optional lifecycle tracer (a repro.obs ReplicaTracer).  Every
        #: emission site is guarded by ``is not None``, so disabled runs
        #: pay one attribute check and tracing never mutates state.
        self.obs = None
        #: Latency multiplier for every executed step (> 1 models a
        #: degraded "straggler" replica; see repro.chaos).  Guarded at
        #: each use so the healthy value of 1.0 performs zero extra
        #: float operations and stays bit-identical to pre-chaos runs.
        self.slow_factor = 1.0
        #: Optional runtime invariant sanitizer (a repro.check bound
        #: checker; see ``--check-invariants``).  Same gating contract
        #: as ``obs``: None by default, every hook guarded, checks are
        #: read-only — a checked run is byte-identical to an unchecked
        #: one.
        self.inv = None

    # ------------------------------------------------------------------
    # Context synthesis
    # ------------------------------------------------------------------
    def root_ctx(self, req: Request) -> int:
        """Model context hash of a request's full prompt."""
        return hash_seed(self.seed, req.rid, req.prompt_len)

    def _commit_prefix(self, req: Request, tokens: int) -> None:
        """Publish the request's first ``tokens`` as shared prefix blocks.

        No-op unless the KV manager shares prefixes *and* the request
        rides shareable token streams (segmentless requests own a
        private stream nothing can ever match — caching their blocks
        would only grow the table and churn eviction).  Called when
        prefill completes (prompt blocks become reusable as soon as they
        are computed) and again at finish (the generated answer extends
        the cached conversation for a session's next turn).
        """
        if self.kv.prefix_caching and req.prompt_segments:
            self.kv.commit_keys(
                req.rid, request_block_keys(req, tokens, self.kv.block_size)
            )

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def prefill(self, chunks: list[tuple[Request, int]], now: float) -> float:
        """Process prompt chunks for one iteration; returns latency.

        Each ``(request, tokens)`` advances that request's prefill.  A
        request whose prompt completes transitions to RUNNING with its
        context installed (``begin_decode`` stamped at iteration end).
        """
        if not chunks:
            raise ValueError("empty prefill batch")
        total_tokens = 0
        total_context = 0
        for req, tokens in chunks:
            total_tokens += tokens
            total_context += req.prefilled + tokens // 2
        latency = self.target_roofline.forward_latency(total_tokens, total_context)
        latency += self.step_overhead_s
        if self.slow_factor != 1.0:
            latency *= self.slow_factor
        end = now + latency
        for req, tokens in chunks:
            req.advance_prefill(tokens)
            if req.remaining_prompt == 0:
                req.begin_decode(self.root_ctx(req), end)
                self._commit_prefix(req, req.prompt_len)
        obs = self.obs
        if obs is not None:
            for req, tokens in chunks:
                obs.prefill(now, latency, req, tokens)
        self.phase_times.prefill_s += latency
        self.iterations += 1
        return latency

    def prefill_chunk_cost(self, tokens: int, context_tokens: int = 0) -> float:
        """Marginal compute seconds of co-batching a prefill chunk."""
        return tokens * self.target_roofline.compute_seconds_per_token

    # ------------------------------------------------------------------
    # Plain autoregressive decode
    # ------------------------------------------------------------------
    def decode(
        self, requests: list[Request], now: float, context_tokens: int | None = None
    ) -> float:
        """One autoregressive decoding iteration; returns latency.

        ``context_tokens`` (the batch's summed KV residency) may be
        passed by schedulers that already walked the batch this
        iteration — e.g. during KV admission — so the engine does not
        re-sum it; ``None`` computes it here.
        """
        if not requests:
            raise ValueError("empty decode batch")
        context = (
            sum(r.kv_tokens for r in requests)
            if context_tokens is None
            else context_tokens
        )
        latency = self.target_roofline.forward_latency(len(requests), context)
        latency += self.step_overhead_s
        if self.slow_factor != 1.0:
            latency *= self.slow_factor
        end = now + latency
        if len(requests) >= PREFETCH_MIN_BATCH:
            # One vectorized pass generates the whole batch's next-token
            # distributions (bit-identical; see repro.model.batchgen).
            self.pair.target.prefetch(
                [(r.ctx, r.predictability) for r in requests]
            )
        target_sample = self.pair.target_sample
        extend = self.pair.extend
        for req in requests:
            ctx = req.ctx
            tok = target_sample(ctx, req.predictability)
            req.commit_tokens(1, extend(ctx, tok), end)
        self.phase_times.decode_s += latency
        self.iterations += 1
        return latency

    def mixed_step(
        self,
        decode_requests: list[Request],
        prefill_chunks: list[tuple[Request, int]],
        now: float,
        decode_context_tokens: int | None = None,
    ) -> float:
        """One co-batched iteration: decode tokens + prefill chunks.

        This is Sarathi-Serve's chunked-prefill step: decodes piggyback on
        prompt-chunk compute.  Latency is a single forward pass over all
        batched tokens; busy time is split between the prefill and decode
        phases in proportion to their token counts.
        ``decode_context_tokens`` works as in :meth:`decode`.
        """
        if not decode_requests and not prefill_chunks:
            raise ValueError("empty mixed step")
        decode_tokens = len(decode_requests)
        chunk_tokens = sum(t for _, t in prefill_chunks)
        context = (
            sum(r.kv_tokens for r in decode_requests)
            if decode_context_tokens is None
            else decode_context_tokens
        )
        context += sum(req.prefilled + t // 2 for req, t in prefill_chunks)
        latency = self.target_roofline.forward_latency(
            decode_tokens + chunk_tokens, context
        )
        latency += self.step_overhead_s
        if self.slow_factor != 1.0:
            latency *= self.slow_factor
        end = now + latency
        if decode_tokens >= PREFETCH_MIN_BATCH:
            self.pair.target.prefetch(
                [(r.ctx, r.predictability) for r in decode_requests]
            )
        target_sample = self.pair.target_sample
        extend = self.pair.extend
        for req in decode_requests:
            ctx = req.ctx
            tok = target_sample(ctx, req.predictability)
            req.commit_tokens(1, extend(ctx, tok), end)
        for req, tokens in prefill_chunks:
            req.advance_prefill(tokens)
            if req.remaining_prompt == 0:
                req.begin_decode(self.root_ctx(req), end)
                self._commit_prefix(req, req.prompt_len)
        obs = self.obs
        if obs is not None:
            for req, tokens in prefill_chunks:
                obs.prefill(now, latency, req, tokens)
        total = decode_tokens + chunk_tokens
        self.phase_times.decode_s += latency * (decode_tokens / total)
        self.phase_times.prefill_s += latency * (chunk_tokens / total)
        self.iterations += 1
        return latency

    # ------------------------------------------------------------------
    # Speculative decoding cost primitives
    # ------------------------------------------------------------------
    def draft_cost(self, step_tokens: tuple[int, ...], context_tokens: int = 0) -> float:
        """Latency of a batched draft beam (speculation phase).

        Step 1 launches eagerly (its shape includes fresh contexts); steps
        2..d replay CUDA graphs when their shapes are warm (§5.2).
        """
        total = 0.0
        for i, tokens in enumerate(step_tokens):
            if tokens <= 0:
                continue
            if i == 0:
                overhead = None  # eager launch
            else:
                overhead = self.draft_graphs.launch_overhead(tokens)
            total += self.draft_roofline.forward_latency(
                tokens, context_tokens, launch_overhead=overhead
            )
        if self.slow_factor != 1.0:
            total *= self.slow_factor
        self.phase_times.speculation_s += total
        return total

    def sequence_draft_cost(self, steps: int, batch: int, context_tokens: int = 0) -> float:
        """Latency of ``steps`` sequential draft decodes over ``batch`` requests.

        Used by vLLM-Spec-style baselines (chain speculation).
        """
        return self.draft_cost((batch,) * steps, context_tokens)

    def verify_cost(
        self,
        speculated_tokens: int,
        context_tokens: int = 0,
        extra_prefill_tokens: int = 0,
    ) -> float:
        """Latency of target verification over a batch of token trees.

        ``extra_prefill_tokens`` prices co-batched prompt chunks (AdaServe
        folds prefill work into verification iterations).
        """
        total = speculated_tokens + extra_prefill_tokens
        latency = self.target_roofline.forward_latency(total, context_tokens)
        if self.slow_factor != 1.0:
            latency *= self.slow_factor
        if total > 0:
            self.phase_times.verification_s += latency * (speculated_tokens / total)
            self.phase_times.prefill_s += latency * (extra_prefill_tokens / total)
        else:
            self.phase_times.verification_s += latency
        return latency

    def account_scheduling(self, seconds: float) -> None:
        """Accumulate CPU-side scheduling time (Figure 15)."""
        self.phase_times.scheduling_s += seconds

    # ------------------------------------------------------------------
    # Lifecycle helpers
    # ------------------------------------------------------------------
    def finish(self, req: Request) -> None:
        """Release a finished request's KV.

        Under prefix caching, the full context (prompt + generated
        answer) is committed to the shared table first, so a session's
        next turn can match everything this turn computed.
        """
        if req.state != RequestState.FINISHED:
            raise ValueError(f"request {req.rid} not finished")
        if self.obs is not None:
            self.obs.finish(req)
        self._commit_prefix(req, req.prompt_len + req.n_generated)
        self.kv.free(req.rid)
        inv = self.inv
        if inv is not None:
            inv.kv(self.kv, "finish", req.rid)

    def preempt(self, req: Request, drop_kv: bool) -> None:
        """Preempt a request, optionally evicting its KV."""
        if self.obs is not None:
            self.obs.preempt(req, drop_kv)
        req.preempt(drop_kv)
        if drop_kv:
            self.kv.free(req.rid)
        inv = self.inv
        if inv is not None:
            inv.kv(self.kv, "preempt", req.rid)
