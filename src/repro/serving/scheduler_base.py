"""Scheduler interface and shared policy machinery.

A scheduler owns the request pool and decides, iteration by iteration,
what the engine executes.  The simulator drives it through two calls:
``admit`` (a request arrived) and ``step`` (run one iteration, return its
latency).  Everything else — batching, prefill policy, preemption,
speculation — is the policy under evaluation.

The base class provides the machinery every policy shares:

- pool bookkeeping (waiting / running / finished);
- FCFS prefill iterations under a token budget, with KV admission
  control;
- retirement of finished requests (KV release);
- KV-pressure preemption (evict the newest-arrival victim, drop its KV,
  re-queue for recomputation — vLLM's recompute-on-preempt strategy).
"""

from __future__ import annotations

import abc
from collections import deque

from repro.prefixcache.tokens import request_block_keys
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import OutOfKVCache
from repro.serving.request import Request, RequestState

#: Max sequences decoded per iteration (vLLM's ``max_num_seqs`` analog).
DEFAULT_MAX_BATCH = 64

#: Max prompt tokens processed per prefill iteration
#: (vLLM's ``max_num_batched_tokens`` analog).
DEFAULT_PREFILL_BUDGET = 2048


class Scheduler(abc.ABC):
    """Base class for serving policies."""

    #: Display name used in result tables.
    name: str = "base"

    def __init__(
        self,
        engine: SimulatedEngine,
        max_batch_size: int = DEFAULT_MAX_BATCH,
        prefill_token_budget: int = DEFAULT_PREFILL_BUDGET,
    ) -> None:
        if max_batch_size < 1 or prefill_token_budget < 1:
            raise ValueError("batch size and prefill budget must be >= 1")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.prefill_token_budget = prefill_token_budget
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.finished: list[Request] = []

    # ------------------------------------------------------------------
    # Simulator-facing interface
    # ------------------------------------------------------------------
    def admit(self, req: Request) -> None:
        """A request arrived; queue it."""
        self.waiting.append(req)

    def _lock_prefix(self, req: Request) -> int:
        """Match the request's prompt against cached prefix blocks.

        With a prefix-sharing KV manager, the hit region is referenced
        (pinned against eviction) and counts as already prefilled, so
        only the uncached suffix is ever charged to prefill iterations.
        At least one prompt token always remains to prefill — the
        iteration that installs the request's context.

        Called at prefill-batch entry, never at admission: references
        pin blocks against eviction, and pinning chains for a whole
        waiting queue could make allocations fail that would succeed
        without the cache.  A request that then fails to enter the batch
        is rolled back via :meth:`_unlock_prefix`; one preempted with
        its KV dropped (references released, ``prefilled`` reset)
        re-matches here before recomputing — possibly against the very
        blocks it committed earlier.  Requests without prompt segments
        own a private token stream nothing can match; they skip the
        cache entirely.

        Returns the freshly hit token count (0 when nothing matched or
        the request was not eligible).
        """
        kv = self.engine.kv
        if not kv.prefix_caching or not req.prompt_segments or req.prefilled != 0:
            return 0
        keys = request_block_keys(req, req.prompt_len, kv.block_size)
        cached = min(kv.lock_keys(req.rid, keys), req.prompt_len - 1)
        if cached > 0:
            req.note_prefix_hit(cached)
        return cached

    def _unlock_prefix(self, req: Request, tokens: int) -> None:
        """Roll back a fresh :meth:`_lock_prefix` hit that went unused.

        Releases the request's shared references and reverts its
        prefilled/saved accounting, so a request left waiting (batch
        full, KV exhausted) pins nothing while it queues.  It simply
        re-matches on its next batch-entry attempt.
        """
        if tokens <= 0:
            return
        self.engine.kv.release_prefix(req.rid)
        req.rollback_prefix_hit(tokens)

    def has_work(self) -> bool:
        """Whether an iteration can make progress.

        Finished requests may linger in ``running`` until the next step's
        retirement pass; they do not constitute work.
        """
        return bool(self.waiting) or any(not r.is_finished for r in self.running)

    @abc.abstractmethod
    def step(self, now: float) -> float:
        """Run one iteration starting at ``now``; return its latency."""

    def finalize(self) -> None:
        """Retire any requests that finished in the last iteration.

        Called by the simulator after the pool drains; without it, KV
        blocks of requests completing in the final step would linger.
        """
        self._retire_finished()

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def all_requests(self) -> list[Request]:
        """Every request the scheduler has seen (for metrics)."""
        return list(self.finished) + list(self.running) + list(self.waiting)

    def _retire_finished(self) -> None:
        """Move finished requests out of the running set, freeing KV."""
        still_running: list[Request] = []
        for req in self.running:
            if req.is_finished:
                self.engine.finish(req)
                self.finished.append(req)
            else:
                still_running.append(req)
        self.running = still_running

    def _admit_capacity(self) -> int:
        """Decode slots available for newly prefilled requests."""
        return self.max_batch_size - len(self.running)

    def _take_prefill_batch(self) -> list[tuple[Request, int]]:
        """FCFS full-prompt prefill batch under the token budget.

        Takes whole prompts only (chunking policies override).  Always
        takes at least one request if any fits KV, so long prompts are not
        starved by the token budget.
        """
        batch: list[tuple[Request, int]] = []
        budget = self.prefill_token_budget
        slots = self._admit_capacity()
        while self.waiting and slots > 0:
            req = self.waiting[0]
            fresh_hit = self._lock_prefix(req)
            if batch and req.remaining_prompt > budget:
                self._unlock_prefix(req, fresh_hit)
                break
            if not self._allocate_or_requeue(req):
                self._unlock_prefix(req, fresh_hit)
                break
            self.waiting.popleft()
            batch.append((req, req.remaining_prompt))
            budget -= req.remaining_prompt
            slots -= 1
            if budget <= 0:
                break
        return batch

    def _allocate_or_requeue(self, req: Request) -> bool:
        """Reserve KV for a request's prompt + one block of generation."""
        try:
            self.engine.kv.ensure(req.rid, req.prompt_len + self.engine.kv.block_size)
        except OutOfKVCache:
            return False
        return True

    def _prefill_iteration(self, now: float) -> float | None:
        """Run one dedicated prefill iteration if any prompt is admissible.

        Returns the iteration latency, or ``None`` when nothing could be
        prefetched (empty queue or KV exhausted).
        """
        batch = self._take_prefill_batch()
        if not batch:
            return None
        latency = self.engine.prefill(batch, now)
        for req, _ in batch:
            if req.state == RequestState.RUNNING:
                self.running.append(req)
            else:
                # Partially prefilled (chunked policies) — stays queued.
                self.waiting.appendleft(req)
        return latency

    def _ensure_kv_for_decode(self, batch: list[Request], extra_tokens: int = 1) -> list[Request]:
        """Grow KV for a decode batch, preempting on pressure.

        Victims (newest arrivals first) are evicted with KV dropped and
        re-queued for recomputation.  Returns the surviving batch.
        """
        survivors = list(batch)
        for req in list(survivors):
            if req not in survivors:
                continue  # already evicted as somebody's victim
            while True:
                try:
                    self.engine.kv.ensure(req.rid, req.kv_tokens + extra_tokens)
                    break
                except OutOfKVCache:
                    victim = self._pick_preemption_victim(survivors, req)
                    if victim is None:
                        survivors.remove(req)
                        break
                    self.engine.preempt(victim, drop_kv=True)
                    survivors.remove(victim)
                    if victim in self.running:
                        self.running.remove(victim)
                    self.waiting.appendleft(victim)
                    if victim is req:
                        break
        return survivors

    def _pick_preemption_victim(
        self, batch: list[Request], needy: Request
    ) -> Request | None:
        """Choose a request to evict under KV pressure (newest arrival)."""
        candidates = [r for r in batch if r is not needy]
        if not candidates:
            return needy if needy in batch else None
        return max(candidates, key=lambda r: r.arrival_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(waiting={len(self.waiting)}, "
            f"running={len(self.running)}, finished={len(self.finished)})"
        )
