"""Scheduler interface and shared policy machinery.

A scheduler owns the request pool and decides, iteration by iteration,
what the engine executes.  The simulator drives it through two calls:
``admit`` (a request arrived) and ``step`` (run one iteration, return its
latency).  Everything else — batching, prefill policy, preemption,
speculation — is the policy under evaluation.

The base class provides the machinery every policy shares:

- pool bookkeeping (waiting / running / finished);
- FCFS prefill iterations under a token budget, with KV admission
  control;
- retirement of finished requests (KV release);
- KV-pressure preemption (evict the newest-arrival victim, drop its KV,
  re-queue for recomputation — vLLM's recompute-on-preempt strategy).
"""

from __future__ import annotations

import abc
from collections import deque

from repro.prefixcache.tokens import request_block_keys
from repro.serving.engine import SimulatedEngine
from repro.serving.kv_cache import OutOfKVCache
from repro.serving.request import Request, RequestState

#: Max sequences decoded per iteration (vLLM's ``max_num_seqs`` analog).
DEFAULT_MAX_BATCH = 64

#: Max prompt tokens processed per prefill iteration
#: (vLLM's ``max_num_batched_tokens`` analog).
DEFAULT_PREFILL_BUDGET = 2048


class Scheduler(abc.ABC):
    """Base class for serving policies."""

    #: Display name used in result tables.
    name: str = "base"

    def __init__(
        self,
        engine: SimulatedEngine,
        max_batch_size: int = DEFAULT_MAX_BATCH,
        prefill_token_budget: int = DEFAULT_PREFILL_BUDGET,
    ) -> None:
        if max_batch_size < 1 or prefill_token_budget < 1:
            raise ValueError("batch size and prefill budget must be >= 1")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.prefill_token_budget = prefill_token_budget
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.finished: list[Request] = []
        #: Requests in ``running`` that completed generation but have not
        #: been retired yet (maintained via ``Request.on_finish``, so
        #: ``has_work`` never rescans the pool).
        self._finished_in_running = 0
        #: Summed KV residency of the batch returned by the last
        #: :meth:`_ensure_kv_for_decode` call — the decode context the
        #: engine would otherwise re-sum.
        self._last_decode_context = 0
        #: Optional runtime invariant sanitizer (see repro.check and
        #: ``--check-invariants``); same None-by-default guarded-hook
        #: contract as ``engine.obs``.
        self.inv = None

    # ------------------------------------------------------------------
    # Simulator-facing interface
    # ------------------------------------------------------------------
    def admit(self, req: Request) -> None:
        """A request arrived; queue it."""
        req.on_finish = self._note_finished
        self.waiting.append(req)
        inv = self.inv
        if inv is not None:
            inv.kv(self.engine.kv, "admit", req.rid)

    def _note_finished(self, req: Request) -> None:
        """Finish hook: every commit site runs while the request is in
        ``running``, so counting here keeps ``has_work`` O(1)."""
        self._finished_in_running += 1

    def _lock_prefix(self, req: Request) -> int:
        """Match the request's prompt against cached prefix blocks.

        With a prefix-sharing KV manager, the hit region is referenced
        (pinned against eviction) and counts as already prefilled, so
        only the uncached suffix is ever charged to prefill iterations.
        At least one prompt token always remains to prefill — the
        iteration that installs the request's context.

        Called at prefill-batch entry, never at admission: references
        pin blocks against eviction, and pinning chains for a whole
        waiting queue could make allocations fail that would succeed
        without the cache.  A request that then fails to enter the batch
        is rolled back via :meth:`_unlock_prefix`; one preempted with
        its KV dropped (references released, ``prefilled`` reset)
        re-matches here before recomputing — possibly against the very
        blocks it committed earlier.  Requests without prompt segments
        own a private token stream nothing can match; they skip the
        cache entirely.

        Returns the freshly hit token count (0 when nothing matched or
        the request was not eligible).
        """
        kv = self.engine.kv
        if not kv.prefix_caching or not req.prompt_segments or req.prefilled != 0:
            return 0
        keys = request_block_keys(req, req.prompt_len, kv.block_size)
        cached = min(kv.lock_keys(req.rid, keys), req.prompt_len - 1)
        if cached > 0:
            req.note_prefix_hit(cached)
        obs = self.engine.obs
        if obs is not None:
            obs.prefix_lookup(req, cached)
        return cached

    def _unlock_prefix(self, req: Request, tokens: int) -> None:
        """Roll back a fresh :meth:`_lock_prefix` hit that went unused.

        Releases the request's shared references and reverts its
        prefilled/saved accounting, so a request left waiting (batch
        full, KV exhausted) pins nothing while it queues.  It simply
        re-matches on its next batch-entry attempt.
        """
        if tokens <= 0:
            return
        self.engine.kv.release_prefix(req.rid)
        req.rollback_prefix_hit(tokens)
        obs = self.engine.obs
        if obs is not None:
            obs.prefix_rollback(req, tokens)

    def has_work(self) -> bool:
        """Whether an iteration can make progress.

        Finished requests may linger in ``running`` until the next step's
        retirement pass; they do not constitute work.  O(1): the lingering
        count is maintained by the finish hook instead of rescanned.
        """
        return bool(self.waiting) or len(self.running) > self._finished_in_running

    @abc.abstractmethod
    def step(self, now: float) -> float:
        """Run one iteration starting at ``now``; return its latency."""

    def finalize(self) -> None:
        """Retire any requests that finished in the last iteration.

        Called by the simulator after the pool drains; without it, KV
        blocks of requests completing in the final step would linger.
        """
        self._retire_finished()

    def evacuate(self) -> list[Request]:
        """Surrender every unfinished request (replica-crash support).

        Retires finished requests first (their prefix commits and KV
        frees run normally), then removes and returns the rest — waiting
        queue in FCFS order, then the running batch in batch order —
        releasing each one's KV and shared prefix references on the way
        out.  Request-side hit accounting is untouched: as with
        preempt-with-drop, cached tokens a past pass genuinely served
        stay counted, and any *unconsumed* hit was already rolled back
        at batch entry (see :meth:`_unlock_prefix`), so there is nothing
        left to revert.  The caller owns resetting request state
        (:meth:`Request.fail_over`) and re-routing.
        """
        self._retire_finished()
        victims = list(self.waiting) + list(self.running)
        for req in victims:
            self.engine.kv.free(req.rid)
        self.waiting.clear()
        self.running = []
        self._finished_in_running = 0
        self._last_decode_context = 0
        inv = self.inv
        if inv is not None:
            inv.kv(self.engine.kv, "evacuate")
        return victims

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def all_requests(self) -> list[Request]:
        """Every request the scheduler has seen (for metrics)."""
        return list(self.finished) + list(self.running) + list(self.waiting)

    def _retire_finished(self) -> None:
        """Move finished requests out of the running set, freeing KV."""
        if self._finished_in_running == 0:
            return
        still_running: list[Request] = []
        for req in self.running:
            if req.is_finished:
                self.engine.finish(req)
                self.finished.append(req)
            else:
                still_running.append(req)
        self.running = still_running
        self._finished_in_running = 0
        inv = self.inv
        if inv is not None:
            inv.kv(self.engine.kv, "retire")

    def _admit_capacity(self) -> int:
        """Decode slots available for newly prefilled requests."""
        return self.max_batch_size - len(self.running)

    def _take_prefill_batch(self) -> list[tuple[Request, int]]:
        """FCFS full-prompt prefill batch under the token budget.

        Takes whole prompts only (chunking policies override).  Always
        takes at least one request if any fits KV, so long prompts are not
        starved by the token budget.
        """
        batch: list[tuple[Request, int]] = []
        budget = self.prefill_token_budget
        slots = self._admit_capacity()
        while self.waiting and slots > 0:
            req = self.waiting[0]
            fresh_hit = self._lock_prefix(req)
            if batch and req.remaining_prompt > budget:
                self._unlock_prefix(req, fresh_hit)
                break
            if not self._allocate_or_requeue(req):
                self._unlock_prefix(req, fresh_hit)
                break
            self.waiting.popleft()
            batch.append((req, req.remaining_prompt))
            budget -= req.remaining_prompt
            slots -= 1
            if budget <= 0:
                break
        return batch

    def _allocate_or_requeue(self, req: Request) -> bool:
        """Reserve KV for a request's prompt + one block of generation."""
        try:
            self.engine.kv.ensure(req.rid, req.prompt_len + self.engine.kv.block_size)
        except OutOfKVCache:
            return False
        return True

    def _prefill_iteration(self, now: float) -> float | None:
        """Run one dedicated prefill iteration if any prompt is admissible.

        Returns the iteration latency, or ``None`` when nothing could be
        prefetched (empty queue or KV exhausted).
        """
        batch = self._take_prefill_batch()
        if not batch:
            return None
        latency = self.engine.prefill(batch, now)
        for req, _ in batch:
            if req.state == RequestState.RUNNING:
                self.running.append(req)
            else:
                # Partially prefilled (chunked policies) — stays queued.
                self.waiting.appendleft(req)
        return latency

    def _ensure_kv_for_decode(self, batch: list[Request], extra_tokens: int = 1) -> list[Request]:
        """Grow KV for a decode batch, preempting on pressure.

        Victims (newest arrivals first) are evicted with KV dropped and
        re-queued for recomputation.  Returns the surviving batch.

        Bookkeeping is identity-based (rids are unique within a run) so
        the common no-pressure case is one ``kv.ensure`` per request with
        no quadratic membership scans; the batch's summed KV residency is
        accumulated along the way into ``_last_decode_context`` so
        callers can hand it to the engine instead of re-summing.
        """
        kv = self.engine.kv
        survivors = list(batch)
        evicted: set[int] = set()
        context_tokens = 0
        contributions: dict[int, int] = {}
        # Victims are the newest arrivals among current survivors; the
        # descending-arrival index is built lazily on first KV pressure
        # (stable sort ⇒ ties resolve to batch order, exactly as the old
        # linear max() scan did) and consumed front to back.
        victim_order: list[Request] | None = None
        for req in batch:
            if req.rid in evicted:
                continue  # already evicted as somebody's victim
            while True:
                try:
                    kv.ensure(req.rid, req.kv_tokens + extra_tokens)
                    tokens = req.kv_tokens
                    contributions[req.rid] = tokens
                    context_tokens += tokens
                    break
                except OutOfKVCache:
                    if victim_order is None:
                        victim_order = sorted(
                            survivors, key=lambda r: r.arrival_time, reverse=True
                        )
                    while victim_order and victim_order[0].rid in evicted:
                        victim_order.pop(0)
                    victim = victim_order[0] if victim_order else None
                    if victim is req:
                        # ``req`` is only its own victim of last resort:
                        # prefer the newest *other* survivor, as the old
                        # max() over candidates-excluding-needy did.
                        victim = next(
                            (r for r in victim_order[1:] if r.rid not in evicted),
                            req,
                        )
                    if victim is None:  # pragma: no cover - defensive
                        evicted.add(req.rid)
                        self._remove_by_identity(survivors, req)
                        break
                    self.engine.preempt(victim, drop_kv=True)
                    evicted.add(victim.rid)
                    self._remove_by_identity(survivors, victim)
                    self._remove_by_identity(self.running, victim)
                    self.waiting.appendleft(victim)
                    context_tokens -= contributions.pop(victim.rid, 0)
                    if victim is req:
                        break
        self._last_decode_context = context_tokens
        inv = self.inv
        if inv is not None:
            inv.kv(kv, "decode-admission")
        return survivors

    @staticmethod
    def _remove_by_identity(pool: list[Request], req: Request) -> bool:
        """Drop ``req`` (the exact object) from ``pool`` if present.

        ``list.remove`` would compare every dataclass field per element;
        identity is what membership means here and is ~free.
        """
        for i, candidate in enumerate(pool):
            if candidate is req:
                del pool[i]
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(waiting={len(self.waiting)}, "
            f"running={len(self.running)}, finished={len(self.finished)})"
        )
