"""Top-level serving simulator.

Drives a scheduler over an arrival trace: admit requests whose timestamps
have passed, run scheduler iterations, advance the simulated clock by each
iteration's modeled latency, and collect metrics when the pool drains.

The loop is iteration-driven rather than event-driven: GPU serving systems
execute one batch step at a time, and every interesting event (token
commit, prefill completion) happens at an iteration boundary.  Arrivals
between boundaries are admitted at the next boundary, exactly as a real
engine's waiting queue behaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.clock import ArrivalStream, ChunkedArrivalStream, SimClock
from repro.serving.engine import SimulatedEngine
from repro.serving.metrics import RunMetrics
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler
from repro.serving.streaming import aggregate_metrics


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one simulated run."""

    scheduler_name: str
    metrics: RunMetrics
    sim_time_s: float
    iterations: int
    phase_breakdown: dict[str, float]
    requests: list[Request]
    #: Incident report (fault timeline + recovery milestones) for runs
    #: with an active fault schedule; None otherwise.  See repro.chaos.
    chaos: dict | None = None

    @property
    def attainment(self) -> float:
        """SLO attainment (convenience passthrough)."""
        return self.metrics.attainment

    @property
    def goodput(self) -> float:
        """Goodput in tokens/s (convenience passthrough)."""
        return self.metrics.goodput


class ServingSimulator:
    """Simulate one scheduler over one workload trace.

    Parameters
    ----------
    engine:
        The simulated execution engine (fresh per run).
    scheduler:
        The policy under test (fresh per run, wrapping ``engine``).
    requests:
        The workload; arrival times are absolute seconds.
    max_sim_time_s:
        Safety horizon; the run aborts (with unfinished requests counted
        as violations) if simulated time exceeds it.
    max_iterations:
        Safety cap on scheduler iterations.
    observer:
        Optional :class:`~repro.obs.observer.RunObserver`; enables
        lifecycle tracing + periodic gauge sampling.  Observation is
        passive — an observed run's report is byte-identical to an
        unobserved one's.
    invariants:
        Optional :class:`~repro.check.invariants.InvariantChecker`
        (``--check-invariants``); validates event-time monotonicity,
        sampler bounds, and request conservation during the run.  Checks
        are read-only: a checked run's report is byte-identical too.
    """

    def __init__(
        self,
        engine: SimulatedEngine,
        scheduler: Scheduler,
        requests: list[Request],
        max_sim_time_s: float = 7200.0,
        max_iterations: int = 2_000_000,
        observer=None,
        invariants=None,
        metrics_mode: str = "exact",
    ) -> None:
        if scheduler.engine is not engine:
            raise ValueError("scheduler must wrap the provided engine")
        self.engine = engine
        self.scheduler = scheduler
        # A columnar workload (anything exposing iter_chunks in arrival
        # order) is consumed lazily — requests materialize as the clock
        # reaches them instead of all up front.
        self.requests = requests if hasattr(requests, "iter_chunks") else list(requests)
        self.max_sim_time_s = max_sim_time_s
        self.max_iterations = max_iterations
        self.observer = observer
        self.invariants = invariants
        self.metrics_mode = metrics_mode

    def run(self) -> SimulationReport:
        """Execute the simulation to completion (or safety cutoff)."""
        clock = SimClock()
        if hasattr(self.requests, "iter_chunks"):
            arrivals = ChunkedArrivalStream(self.requests.iter_chunks())
        else:
            arrivals = ArrivalStream(self.requests)
        iterations = 0
        sampler = None
        if self.observer is not None:
            self.observer.bind_solo(self.scheduler, self.engine)
            sampler = self.observer.sampler
        # The tracer (if any) was installed as ``engine.obs`` by the
        # harness; a solo run never swaps engines, so bind it once.
        tracer = self.engine.obs
        inv = self.invariants
        # Conservation is checked against what was actually admitted: a
        # horizon abort legitimately leaves unreleased arrivals behind.
        admitted = [] if inv is not None else None

        while True:
            # Gauge ticks <= now fire before this boundary's admissions,
            # capturing the state held since the previous event.
            if sampler is not None:
                sampler.catch_up(clock.now)
            if inv is not None:
                inv.check_event_time(clock.now)
                if sampler is not None:
                    inv.check_sampler(sampler, clock.now)

            for req in arrivals.release_until(clock.now):
                self.scheduler.admit(req)
                if tracer is not None:
                    tracer.enqueue(clock.now, req)
                if admitted is not None:
                    admitted.append(req)

            if not self.scheduler.has_work():
                nxt = arrivals.next_arrival
                if nxt is None:
                    break  # drained
                clock.advance_to(nxt)
                continue

            if tracer is not None:
                tracer.now = clock.now
            latency = self.scheduler.step(clock.now)
            if latency <= 0:
                raise RuntimeError(
                    f"{self.scheduler.name}: non-positive iteration latency {latency}"
                )
            clock.advance(latency)
            iterations += 1

            if clock.now > self.max_sim_time_s:
                break
            if iterations > self.max_iterations:
                raise RuntimeError(
                    f"{self.scheduler.name}: exceeded {self.max_iterations} iterations"
                )

        if sampler is not None:
            sampler.catch_up(clock.now)
        self.scheduler.finalize()
        all_requests = self.scheduler.all_requests()
        if inv is not None:
            if sampler is not None:
                inv.check_sampler(sampler, clock.now)
            inv.check_conservation(admitted, all_requests, "solo drain")
        return SimulationReport(
            scheduler_name=self.scheduler.name,
            metrics=aggregate_metrics(all_requests, self.metrics_mode),
            sim_time_s=clock.now,
            iterations=iterations,
            phase_breakdown=self.engine.phase_times.breakdown(),
            requests=all_requests,
        )
