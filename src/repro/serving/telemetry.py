"""Per-iteration telemetry.

Production serving systems expose per-iteration counters (batch size,
speculation shape, tokens proposed/accepted, latency) for dashboards and
autoscaling.  ``IterationLog`` is the simulator's equivalent: schedulers
append one record per iteration, and analysis code (the
``adaptive_speculation`` example, ablations) reads time series from it
without monkey-patching scheduler internals.

Recording is opt-in (``engine.telemetry = IterationLog()``): the hot loop
pays nothing when disabled.  The observability layer wires this up for
you: a :class:`~repro.obs.observer.RunObserver` with ``iteration_log``
set attaches one log per replica (crash-replacement engines append to
their predecessor's log), and ``repro trace --iteration-log`` exports
the records under ``--series-out``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IterationRecord:
    """One scheduler iteration's observables."""

    time_s: float
    kind: str  # "prefill" | "decode" | "speculative" | "mixed"
    batch_size: int
    latency_s: float
    tokens_committed: int = 0
    depth: int = 0
    width: int = 0
    budget_used: int = 0
    tokens_accepted: int = 0

    @property
    def tokens_per_second(self) -> float:
        """Commit rate of this iteration."""
        return self.tokens_committed / self.latency_s if self.latency_s > 0 else 0.0


@dataclass
class IterationLog:
    """Append-only log of iteration records with simple query helpers."""

    records: list[IterationRecord] = field(default_factory=list)

    def record(self, rec: IterationRecord) -> None:
        """Append one iteration."""
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> list[IterationRecord]:
        """All records of one iteration kind."""
        return [r for r in self.records if r.kind == kind]

    def series(self, attr: str) -> list[tuple[float, float]]:
        """(time, value) pairs for any record attribute."""
        return [(r.time_s, float(getattr(r, attr))) for r in self.records]

    def bucketed_mean(self, attr: str, bucket_s: float) -> list[tuple[float, float]]:
        """Mean of an attribute per time bucket (for load/shape plots)."""
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if not self.records:
            return []
        out: list[tuple[float, float]] = []
        horizon = max(r.time_s for r in self.records)
        t = 0.0
        while t <= horizon:
            window = [r for r in self.records if t <= r.time_s < t + bucket_s]
            if window:
                vals = [float(getattr(r, attr)) for r in window]
                out.append((t, sum(vals) / len(vals)))
            t += bucket_s
        return out

    def mean_accepted_when(self, min_batch: int) -> float:
        """Mean accepted tokens per request for iterations at >= min_batch."""
        rows = [
            r for r in self.records
            if r.kind == "speculative" and r.batch_size >= min_batch
        ]
        if not rows:
            return 0.0
        return sum(r.tokens_accepted / r.batch_size for r in rows) / len(rows)
