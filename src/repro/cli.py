"""Command-line interface.

The subcommands mirror how the repository is used:

- ``run``: serve one workload with one system and print the metrics;
- ``sweep``: the Figure 8/9 RPS sweep for a set of systems (optionally
  at cluster scale via ``--replicas``/``--router``, and over arbitrary
  registered parameters via ``--grid``);
- ``cluster``: serve one workload with a router-fronted replica fleet,
  optionally autoscaled;
- ``list``: introspect the component registries (systems, routers,
  traces, models) with their parameter schemas;
- ``bench``: measure the *simulator's* own throughput (iterations per
  wall-second) over the standard perf suite and write ``BENCH_PR9.json``
  (see :mod:`repro.perfbench`); ``--baseline`` (defaulting to the newest
  committed ``BENCH_PR*.json``) warns on perf regressions and **fails**
  on fixed-seed digest divergence;
- ``chaos-report``: run one fault-injection experiment and export its
  incident timeline (strict JSON via ``--out``, GitHub-markdown table
  via ``--markdown`` — CI appends it to the job summary);
- ``trace``: run one experiment with observability on (see
  :mod:`repro.obs`) and export a Perfetto/Chrome ``trace_event`` JSON
  (``--out``), an optional gauge time-series (``--series-out``), and a
  top-N slowest-requests table with a dominant-latency-component
  attribution column;
- ``explain``: run one experiment with tracing on and decompose every
  request's latency into named components (queue wait, prefill/decode
  compute, preemption stalls, straggler inflation, failover redo,
  prefix-miss penalty — they sum exactly to end-to-end latency), print
  per-category attribution and SLO root-cause tables, and — with
  ``--baseline OTHER.json`` — diff against a previous attribution
  export component by component, exiting nonzero on regression;
- ``profile``: hardware profiling (Table 1 derived quantities).

Components are referenced by registry spec strings — ``adaserve``,
``vllm-spec:k=8``, ``affinity:reserve=0.4``, ``diurnal:peak_to_trough=6``
— with legacy names (``vllm-spec-8``) accepted as aliases; ``repro list``
shows everything that is registered.

``run``, ``sweep``, and ``cluster`` execute through the content-addressed
result cache (:mod:`repro.analysis.cache`), so repeating an
already-computed point or grid performs zero simulations; ``sweep
--jobs N`` fans cache-missing points out over worker processes with
results identical to ``--jobs 1``.  ``--out FILE`` writes the results as
strict JSON (a report for ``run``/``cluster``, sweep points for
``sweep``).

Examples
--------
::

    python -m repro run --system adaserve --model llama70b --rps 4.0
    python -m repro sweep --model qwen32b --systems adaserve vllm --rps 2.4 3.2 4.0 --jobs 4
    python -m repro sweep --systems vllm-spec --rps 4.2 --grid system.k=2,4,6,8
    python -m repro cluster --replicas 4 --router affinity:reserve=0.5 --rps 12 --trace diurnal
    python -m repro cluster --replicas 3 --faults crash:at=20,replica=1 --faults straggler:slow=2
    python -m repro chaos-report --replicas 3 --router affinity --faults crash --markdown
    python -m repro trace --replicas 2 --faults crash --duration 20 --out trace.json
    python -m repro explain --replicas 2 --faults crash --out attrib.json
    python -m repro explain --baseline attrib.json --replicas 2 --faults crash
    python -m repro list systems
    python -m repro profile --model llama70b
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.analysis.cache import ResultCache
from repro.analysis.export import points_to_json, report_to_json
from repro.analysis.harness import build_setup
from repro.analysis.report import format_table, point_from_metrics, series_table
from repro.analysis.runner import ExperimentConfig, SweepRunner
from repro.analysis.spec import SYSTEM_FIELD_AXES, apply_axis, parse_grid_axis
from repro.check.rules import CHECKS
from repro.obs import DEFAULT_ABS_THRESHOLD_S, DEFAULT_REL_THRESHOLD, ObsSpec
from repro.hardware.profiler import HardwareProfiler
from repro.perfbench.suite import DEFAULT_OUT as _DEFAULT_BENCH_OUT
from repro.registry import FAULTS, MODELS, ROUTERS, SYSTEMS, TRACES, SpecError
from repro.workloads.categories import urgent_mix

#: Introspectable registries, by the plural the ``list`` subcommand uses.
_REGISTRIES = {
    "systems": SYSTEMS,
    "routers": ROUTERS,
    "traces": TRACES,
    "models": MODELS,
    "faults": FAULTS,
    "checks": CHECKS,
}


def _spec_type(registry):
    """Argparse type validating (and canonicalizing) a component spec."""

    def parse(text: str) -> str:
        try:
            return registry.canonical(text)
        except SpecError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None

    parse.__name__ = registry.kind  # shown in argparse error messages
    return parse


_system_spec = _spec_type(SYSTEMS)
_router_spec = _spec_type(ROUTERS)
_trace_spec = _spec_type(TRACES)
_model_spec = _spec_type(MODELS)
_fault_spec = _spec_type(FAULTS)


def _fraction(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:  # NaN fails both comparisons
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value:g}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive finite number, got {value:g}")
    return value


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", type=_model_spec, default="llama70b")
    p.add_argument("--duration", type=_positive_float, default=45.0, help="trace length (s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace",
        type=_trace_spec,
        default="bursty",
        help="trace spec (see `repro list traces`), e.g. diurnal:peak_to_trough=6",
    )
    p.add_argument(
        "--urgent-fraction",
        type=_fraction,
        default=None,
        help="category-1 share in [0, 1] (default: the paper's 60/20/20 mix)",
    )
    p.add_argument("--slo-scale", type=_positive_float, default=1.0)
    p.add_argument(
        "--prefix-cache",
        action="store_true",
        help="share prefix KV blocks across requests (pairs with the "
        "sessions/agentic traces; see `repro list traces`)",
    )
    p.add_argument(
        "--faults",
        action="append",
        type=_fault_spec,
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault (repeatable), e.g. "
        "crash:at=120,replica=1 or straggler:slow=2.0 "
        "(see `repro list faults`; forces the fleet execution path)",
    )
    p.add_argument(
        "--metrics",
        choices=("exact", "streaming"),
        default="exact",
        help="metrics aggregation: exact (reference) or streaming "
        "(O(1) memory, reservoir percentiles; population-scale runs)",
    )


def _nonneg_float(text: str) -> float:
    value = float(text)
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 and finite, got {value:g}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Perfetto/Chrome trace of this run (always simulates "
        "fresh, bypassing the result cache; see also `repro trace`)",
    )
    p.add_argument(
        "--sample-every",
        type=_positive_float,
        default=0.5,
        metavar="SECONDS",
        help="gauge sampling period in simulated seconds when tracing "
        "(default: 0.5)",
    )


def _add_check_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--check-invariants",
        action="store_true",
        help="validate runtime invariants (KV/prefix refcount conservation, "
        "event-time monotonicity, request conservation) during the run; "
        "always simulates fresh, bypassing the result cache — the report "
        "stays byte-identical (see `repro list checks`)",
    )


def _maybe_invariants(args):
    """An :class:`InvariantChecker` when ``--check-invariants`` was given."""
    if not getattr(args, "check_invariants", False):
        return None
    from repro.check import InvariantChecker

    return InvariantChecker()


def _note_invariants(inv) -> None:
    if inv is not None:
        print(f"invariants: ok ({inv.checks} check(s) passed)", file=sys.stderr)


def _resolve_cache(cache_dir: str | None) -> ResultCache:
    return ResultCache(cache_dir) if cache_dir else ResultCache()


def _make_cache(args) -> ResultCache | None:
    if args.no_cache:
        return None
    return _resolve_cache(args.cache_dir)


def _config_for(
    args,
    system: str,
    rps: float,
    replicas: int = 1,
    router: str = "round-robin",
    autoscale: dict | None = None,
    obs: ObsSpec | None = None,
) -> ExperimentConfig:
    mix = urgent_mix(args.urgent_fraction) if args.urgent_fraction is not None else None
    return ExperimentConfig.create(
        model=args.model,
        system=system,
        rps=rps,
        duration_s=args.duration,
        seed=args.seed,
        trace=args.trace,
        slo_scale=args.slo_scale,
        mix=mix,
        max_sim_time_s=args.max_sim_time,
        prefix_cache=args.prefix_cache,
        metrics=getattr(args, "metrics", "exact"),
        replicas=replicas,
        router=router,
        autoscale=autoscale,
        faults=tuple(args.faults) if args.faults else None,
        obs=obs,
    )


def _obs_spec(args) -> ObsSpec:
    """The ``ObsSpec`` section implied by the ``--trace-out`` flags."""
    return ObsSpec(
        trace=getattr(args, "trace_out", None) is not None,
        sample_every_s=getattr(args, "sample_every", 0.5),
    )


def _run_point(args, config: ExperimentConfig):
    """One point through the result cache — or fresh when tracing or
    invariant checking is on.

    Returns ``(report, stats_line)``.  Traced runs always simulate (a
    cache hit would have no trace to return) and write the Perfetto
    export as a side effect; ``--check-invariants`` runs always simulate
    (cached records were never checked).  The report itself is
    byte-identical either way because observation and invariant checks
    are strictly passive.
    """
    invariants = _maybe_invariants(args)
    if config.obs.enabled:
        from repro.analysis.runner import run_traced
        from repro.obs import perfetto_json

        report, observer = run_traced(config, invariants=invariants)
        _note_invariants(invariants)
        _write_out(
            args.trace_out,
            perfetto_json(observer.collector, observer.sampler, chaos=report.chaos),
        )
        print(
            "open the trace in https://ui.perfetto.dev (or chrome://tracing)",
            file=sys.stderr,
        )
        return report, "cache: bypassed (--trace-out always simulates); simulations executed: 1"
    if invariants is not None:
        from repro.analysis.runner import run_spec

        report = run_spec(config, invariants=invariants)
        _note_invariants(invariants)
        return report, (
            "cache: bypassed (--check-invariants always simulates); "
            "simulations executed: 1"
        )
    runner = SweepRunner(cache=_make_cache(args), jobs=1)
    return runner.run([config])[0].report, runner.stats_line()


def _write_out(path: str | None, text: str) -> None:
    """Persist strict-JSON results when ``--out`` was given."""
    if path is None:
        return
    Path(path).write_text(text + "\n", encoding="utf-8")
    print(f"wrote {path}", file=sys.stderr)


def _print_report(report, model: str) -> None:
    m = report.metrics
    print(f"system: {report.scheduler_name}   model: {model}   requests: {m.num_requests}")
    print(
        f"attainment {m.attainment * 100:.1f}%   goodput {m.goodput:.0f} tok/s   "
        f"throughput {m.throughput:.0f} tok/s   mean accepted/verify {m.mean_accepted_per_verify:.2f}"
    )
    if m.prefix_hit_requests:
        print(
            f"prefix cache: hit rate {m.prefix_hit_rate * 100:.1f}%   "
            f"prefill tokens saved {m.prefill_tokens_saved}"
        )
    def _ms(value: float | None) -> str:
        # None = no finished requests in the category (no samples).
        return "-" if value is None else f"{value * 1e3:.1f}"

    rows = [
        [
            cat,
            f"{cm.attainment * 100:.1f}%",
            _ms(cm.mean_tpot_s),
            _ms(cm.p50_tpot_s),
            _ms(cm.p99_tpot_s),
            str(cm.num_requests),
        ]
        for cat, cm in m.per_category.items()
    ]
    print(
        format_table(
            ["category", "attainment", "mean TPOT ms", "p50 TPOT ms", "p99 TPOT ms", "n"],
            rows,
        )
    )


def _cmd_run(args) -> int:
    config = _config_for(args, args.system, args.rps, obs=_obs_spec(args))
    report, stats = _run_point(args, config)
    _print_report(report, args.model)
    print(stats)
    _write_out(args.out, report_to_json(report))
    return 0


def _cmd_cluster(args) -> int:
    if not args.autoscale and (args.max_replicas is not None or args.warmup is not None):
        print(
            "error: --max-replicas/--warmup only apply with --autoscale",
            file=sys.stderr,
        )
        return 2
    if args.autoscale and args.max_replicas is not None and args.max_replicas < args.replicas:
        print(
            f"error: --max-replicas ({args.max_replicas}) must be >= --replicas ({args.replicas})",
            file=sys.stderr,
        )
        return 2
    if args.replicas == 1 and not args.autoscale and args.router != "round-robin":
        print(
            "error: --router has no effect with --replicas 1 unless --autoscale is set",
            file=sys.stderr,
        )
        return 2
    if args.warmup is not None and args.warmup < 0:
        print(f"error: --warmup must be >= 0, got {args.warmup:g}", file=sys.stderr)
        return 2
    # Pass only user-provided knobs; AutoscalerConfig and run_cluster own
    # the defaults (warm-up length, 2x-initial-fleet ceiling).
    autoscale = None
    if args.autoscale:
        autoscale = {}
        if args.max_replicas is not None:
            autoscale["max_replicas"] = args.max_replicas
        if args.warmup is not None:
            autoscale["warmup_s"] = args.warmup
    config = _config_for(
        args, args.system, args.rps,
        replicas=args.replicas, router=args.router, autoscale=autoscale,
        obs=_obs_spec(args),
    )
    report, stats = _run_point(args, config)
    _print_report(report, args.model)
    print(
        f"replicas: {args.replicas}   router: {args.router}   "
        f"autoscale: {'on' if autoscale is not None else 'off'}"
    )
    chaos = report.chaos
    if chaos is not None:
        line = (
            f"chaos: {chaos['num_crashes']} crash(es), "
            f"{chaos['num_stragglers']} straggler(s); "
            f"disrupted {chaos['requests_disrupted']}, lost {chaos['requests_lost']}"
        )
        if chaos["mean_recovery_time_s"] is not None:
            line += f", mean recovery {chaos['mean_recovery_time_s']:.3f}s"
        print(line + "  (full timeline: repro chaos-report)")
    print(stats)
    _write_out(args.out, report_to_json(report))
    return 0


def _dedupe(configs: list[ExperimentConfig]) -> list[ExperimentConfig]:
    """Drop repeated points (e.g. duplicate ``--rps`` values), keeping order."""
    return list(dict.fromkeys(configs))


def _cmd_sweep(args) -> int:
    if args.router is not None and args.replicas == 1:
        print("error: --router requires --replicas > 1", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    runner = SweepRunner(cache=cache, jobs=args.jobs)
    base = [
        _config_for(
            args, system, rps,
            replicas=args.replicas,
            router=args.router or "round-robin",
        )
        for rps in args.rps
        for system in args.systems
    ]
    # Expand grid axes cell by cell, keeping a per-cell label: sweep
    # output is keyed by (rps, series label), and parameters that do not
    # show up in the scheduler's display name (seed, n_max, ...) would
    # otherwise silently collapse distinct cells into one table column.
    # System parameters are labeled from the canonical spec (so
    # `--systems adaserve adaserve:n_max=2` also stays distinguishable);
    # non-system axes are labeled with their grid cell.
    try:
        axes = [parse_grid_axis(axis) for axis in args.grid or []]
        cells = [(config, "") for config in base]
        for axis in axes:
            section, key = axis.path.split(".", 1)
            # Scheduler parameters show up in the canonical system spec
            # and are labeled from it below; anything that does not
            # (trace/workload axes, SystemSpec field knobs) must keep its
            # grid cell in the label or distinct cells would collapse.
            in_system_spec = section == "system" and key not in SYSTEM_FIELD_AXES
            cells = [
                (
                    apply_axis(config, axis.path, value),
                    label
                    if in_system_spec
                    else (f"{label},{key}={value}" if label else f"{key}={value}"),
                )
                for config, label in cells
                for value in axis.values
            ]
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # A system component that appears with several distinct canonical
    # specs contributes its non-default parameters to the label.
    variants: dict[str, set[str]] = {}
    for config, _ in cells:
        component = config.system.name.partition(":")[0]
        variants.setdefault(component, set()).add(config.system.name)
    labels: dict[str, str] = {}
    for config, label in cells:
        component, _, params = config.system.name.partition(":")
        if params and len(variants[component]) > 1:
            label = f"{params},{label}" if label else params
        labels.setdefault(config.digest(), label)
    configs = _dedupe([config for config, _ in cells])

    def series_label(result) -> str:
        suffix = labels.get(result.key, "")
        name = result.report.scheduler_name
        return f"{name} [{suffix}]" if suffix else name

    def progress(result) -> None:
        source = "cached" if result.from_cache else "simulated"
        print(
            f"  done: rps={result.config.rps:g} {series_label(result)} ({source})",
            file=sys.stderr,
        )

    results = runner.run(configs, on_result=progress)
    stats_line = runner.stats_line()
    # Reports are already round-tripped through their cache-record form,
    # so cached and fresh points are identical here.
    points = [
        point_from_metrics(r.config.rps, series_label(r), r.report.metrics)
        for r in results
    ]
    print("\nSLO attainment:")
    print(series_table(points, value="attainment", x_label="RPS"))
    print("\nGoodput (tokens/s):")
    print(series_table(points, value="goodput", x_label="RPS"))
    print()
    print(stats_line)
    _write_out(args.out, points_to_json(points))
    return 0


def _cmd_list(args) -> int:
    """Introspect a component registry: names, aliases, parameter schemas."""
    registry = _REGISTRIES[args.kind]
    for row in registry.describe():
        line = row["name"]
        if row["summary"]:
            line += f" — {row['summary']}"
        print(line)
        for alias in row["aliases"]:
            print(f"    alias: {alias}")
        for param in row["params"]:
            print(f"    param: {param}")
    return 0


def _cmd_cache_prune(args) -> int:
    cache = _resolve_cache(args.cache_dir)
    removed = cache.prune(dry_run=args.dry_run)
    if args.dry_run:
        print(f"would remove {removed} stale record(s) from {cache.root}")
    else:
        print(f"removed {removed} stale record(s) from {cache.root}")
    return 0


def _cmd_bench(args) -> int:
    """Run the simulator perf suite (see :mod:`repro.perfbench`)."""
    import cProfile

    from repro.perfbench import (
        compare_to_baseline,
        format_bench_table,
        gate_failures,
        latest_baseline,
        run_suite,
    )
    from repro.perfbench.suite import load_result

    baseline_path = args.baseline
    if baseline_path == "auto":
        found = latest_baseline()
        if found is None:
            print(
                "error: --baseline given without FILE but no committed "
                "BENCH_PR*.json found in the working directory",
                file=sys.stderr,
            )
            return 2
        baseline_path = str(found)
        print(f"baseline: {baseline_path}", file=sys.stderr)

    def progress(row) -> None:
        print(
            f"  done: {row['name']} ({row['wall_s']:.2f}s wall, "
            f"{row['iters_per_s']:.0f} iters/s)",
            file=sys.stderr,
        )

    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        result = run_suite(quick=args.quick, progress=progress)
        profiler.disable()
        pstats_path = str(Path(args.out).with_suffix(".pstats"))
        profiler.dump_stats(pstats_path)
        print(f"wrote {pstats_path}", file=sys.stderr)
        print(
            f"inspect it with `python -m pstats {pstats_path}` "
            "(then e.g. `sort cumtime` + `stats 20`), or `snakeviz "
            f"{pstats_path}` for a flame graph if installed",
            file=sys.stderr,
        )
    else:
        result = run_suite(quick=args.quick, progress=progress)

    warnings: list[str] = []
    # Population gates (concurrency floor, memory ceiling, speedup,
    # byte identity) are hard failures even without a baseline.
    errors: list[str] = gate_failures(result.get("population"))
    if baseline_path is not None:
        try:
            baseline = load_result(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        summary, warnings, base_errors = compare_to_baseline(result, baseline)
        errors.extend(base_errors)
        result["baseline"] = summary

    print(format_bench_table(result))
    for line in warnings:
        print(line, file=sys.stderr)
    for line in errors:
        print(line, file=sys.stderr)
    _write_out(args.out, json.dumps(result, indent=2, sort_keys=True, allow_nan=False))
    # Perf regressions only warn (wall clocks are noisy); a diverged
    # fixed-seed report digest means determinism broke and must fail.
    return 1 if errors else 0


def _cmd_chaos_report(args) -> int:
    """Run one chaos experiment and export its incident timeline.

    Stdout carries only the incident table (plain text, or a GitHub
    markdown table with ``--markdown`` — appendable straight to
    ``$GITHUB_STEP_SUMMARY``); run status goes to stderr.  ``--out``
    additionally writes the full timeline as strict JSON.
    """
    from repro import __version__
    from repro.analysis.export import REPORT_SCHEMA_VERSION
    from repro.chaos import format_incident_table

    if not args.faults:
        print("error: chaos-report requires at least one --faults SPEC", file=sys.stderr)
        return 2
    config = _config_for(
        args, args.system, args.rps,
        replicas=args.replicas, router=args.router,
        obs=_obs_spec(args),
    )
    report, stats = _run_point(args, config)
    chaos = report.chaos
    if chaos is None:
        print("error: run produced no chaos report", file=sys.stderr)
        return 2
    print(stats, file=sys.stderr)
    if args.out:
        payload = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "repro_version": __version__,
            "chaos": chaos,
        }
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        _write_out(args.out, text)
    print(format_incident_table(chaos, markdown=args.markdown))
    return 0


def _cmd_trace(args) -> int:
    """Run one experiment with tracing on and export its artifacts.

    Always simulates fresh (traced runs never consult the result cache;
    the ``obs`` section is excluded from cache keys, so the run's report
    still matches the cached, untraced point byte for byte).  Stdout
    carries only the top-N slowest-requests table (plain text, or a
    GitHub markdown table with ``--markdown``); run status goes to
    stderr.
    """
    from repro.analysis.runner import run_traced
    from repro.obs import decompose, format_slowest_table, perfetto_json, series_to_json

    obs = ObsSpec(
        trace=True,
        sample_every_s=args.sample_every,
        iteration_log=args.iteration_log,
    )
    config = _config_for(
        args, args.system, args.rps,
        replicas=args.replicas, router=args.router, obs=obs,
    )
    invariants = _maybe_invariants(args)
    report, observer = run_traced(config, invariants=invariants)
    _note_invariants(invariants)
    _write_out(
        args.out,
        perfetto_json(observer.collector, observer.sampler, chaos=report.chaos),
    )
    m = report.metrics
    print(
        f"traced {m.num_requests} request(s): {len(observer.collector)} trace "
        f"event(s), {len(observer.sampler)} gauge sample(s) over "
        f"{report.sim_time_s:.1f}s simulated",
        file=sys.stderr,
    )
    print(
        "open the trace in https://ui.perfetto.dev (or chrome://tracing)",
        file=sys.stderr,
    )
    if args.series_out:
        _write_out(args.series_out, series_to_json(observer))
    attribs = decompose(observer.collector, report.requests, report.sim_time_s)
    dominant = {a.rid: a.dominant for a in attribs}
    print(
        format_slowest_table(
            report.requests, n=args.top, markdown=args.markdown, attributions=dominant
        )
    )
    return 0


def _cmd_explain(args) -> int:
    """Attribute latency and diagnose SLO violations for one experiment.

    Runs the spec with tracing on (always fresh; see ``repro trace``),
    decomposes every request's end-to-end latency into the named
    components of :mod:`repro.obs.attrib`, and prints the per-category
    attribution table, the violation root-cause table, and fleet
    diagnostics.  ``--out`` writes the full attribution export as strict
    JSON (byte-deterministic for a fixed seed).  ``--baseline FILE``
    additionally diffs this run against a previous export component by
    component: exit 1 on regression past the thresholds, 2 on an
    unreadable baseline.  Stdout carries only the tables (markdown with
    ``--markdown``); run status goes to stderr.
    """
    from repro.analysis.runner import run_traced
    from repro.obs import (
        attribution_to_dict,
        attribution_to_json,
        decompose,
        diff_attributions,
        format_attribution,
        format_diff_table,
    )

    obs = ObsSpec(trace=True, sample_every_s=args.sample_every)
    config = _config_for(
        args, args.system, args.rps,
        replicas=args.replicas, router=args.router, obs=obs,
    )
    invariants = _maybe_invariants(args)
    report, observer = run_traced(config, invariants=invariants)
    _note_invariants(invariants)
    attribs = decompose(observer.collector, report.requests, report.sim_time_s)
    payload = attribution_to_dict(
        attribs, report.sim_time_s, sampler=observer.sampler, chaos=report.chaos
    )
    print(
        f"explained {payload['num_requests']} request(s), "
        f"{payload['num_violated']} SLO violation(s), over "
        f"{report.sim_time_s:.1f}s simulated",
        file=sys.stderr,
    )
    _write_out(args.out, attribution_to_json(payload))
    print(format_attribution(payload, markdown=args.markdown))
    if args.baseline is None:
        return 0
    try:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    diff = diff_attributions(
        baseline,
        payload,
        rel_threshold=args.rel_threshold,
        abs_threshold_s=args.abs_threshold,
    )
    print()
    print(format_diff_table(diff, markdown=args.markdown))
    return 1 if diff["regressions"] else 0


def _cmd_check(args) -> int:
    """Run the determinism linter (see :mod:`repro.check`).

    ``repro check lint`` is the CI gate form of ``python -m repro.check``:
    exit 0 when the tree is clean (suppressions inventoried), 1 when
    findings survive.  ``--json`` emits the strict-JSON report.
    """
    from repro.check.cli import run_lint

    return run_lint(args.paths, json_out=args.json)


def _cmd_profile(args) -> int:
    setup = build_setup(args.model, seed=args.seed)
    rl = setup.target_roofline
    prof = HardwareProfiler(rl, slack=args.slack).profile()
    dep = setup.target_deployment
    print(f"deployment: {dep.model.name} on {dep.tensor_parallel} x {dep.gpu.name}")
    print(f"baseline decode latency: {rl.baseline_decode_latency * 1e3:.2f} ms")
    print(f"memory-bound floor:      {rl.memory_bound_floor * 1e3:.2f} ms")
    print(f"saturation tokens:       {rl.saturation_tokens()}")
    print(f"token budget B (slack {args.slack}): {prof.token_budget} "
          f"(latency {prof.budget_latency_s * 1e3:.2f} ms, {prof.latency_ratio:.2f}x floor)")
    print(f"KV capacity: {dep.kv_capacity_tokens} tokens")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AdaServe reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="serve one workload with one system")
    _add_workload_args(p_run)
    _add_cache_args(p_run)
    p_run.add_argument(
        "--system",
        type=_system_spec,
        default="adaserve",
        help="system spec (see `repro list systems`), e.g. vllm-spec:k=8",
    )
    p_run.add_argument("--rps", type=_positive_float, default=4.0)
    p_run.add_argument("--max-sim-time", type=_positive_float, default=1800.0)
    p_run.add_argument("--out", default=None, help="write the report as strict JSON")
    _add_obs_args(p_run)
    _add_check_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="RPS sweep over systems")
    _add_workload_args(p_sweep)
    _add_cache_args(p_sweep)
    p_sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for cache-missing points (default: 1, serial)",
    )
    p_sweep.add_argument(
        "--systems",
        nargs="+",
        type=_system_spec,
        default=["adaserve", "vllm"],
        help="system specs (see `repro list systems`)",
    )
    p_sweep.add_argument("--rps", nargs="+", type=_positive_float, default=[2.6, 3.4, 4.2])
    p_sweep.add_argument("--max-sim-time", type=_positive_float, default=1800.0)
    p_sweep.add_argument(
        "--replicas",
        type=_positive_int,
        default=1,
        help="replicas per point (> 1 sweeps at cluster scale)",
    )
    p_sweep.add_argument(
        "--router",
        type=_router_spec,
        default=None,
        help="routing policy spec (requires --replicas > 1; default: round-robin)",
    )
    p_sweep.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="SECTION.KEY=V1,V2,...",
        help="extra sweep axis over a registered parameter, e.g. system.k=4,6,8 "
        "or trace.peak_to_trough=2,8 (repeatable; axes combine as a cartesian product)",
    )
    p_sweep.add_argument("--out", default=None, help="write sweep points as strict JSON")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_cluster = sub.add_parser(
        "cluster", help="serve one workload with a router-fronted replica fleet"
    )
    _add_workload_args(p_cluster)
    _add_cache_args(p_cluster)
    p_cluster.add_argument("--system", type=_system_spec, default="adaserve")
    p_cluster.add_argument("--rps", type=_positive_float, default=12.0)
    p_cluster.add_argument("--replicas", type=_positive_int, default=4)
    p_cluster.add_argument(
        "--router",
        type=_router_spec,
        default="round-robin",
        help="routing policy spec (see `repro list routers`), e.g. affinity:reserve=0.4",
    )
    p_cluster.add_argument(
        "--autoscale",
        action="store_true",
        help="grow/shrink the fleet on queue depth (warm-up delayed)",
    )
    p_cluster.add_argument(
        "--max-replicas",
        type=_positive_int,
        default=None,
        help="autoscaler ceiling (default: 2x --replicas)",
    )
    p_cluster.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="seconds before an autoscaled replica becomes routable",
    )
    p_cluster.add_argument("--max-sim-time", type=_positive_float, default=1800.0)
    p_cluster.add_argument("--out", default=None, help="write the report as strict JSON")
    _add_obs_args(p_cluster)
    _add_check_args(p_cluster)
    p_cluster.set_defaults(func=_cmd_cluster)

    p_list = sub.add_parser(
        "list", help="introspect a component registry and its parameter schemas"
    )
    p_list.add_argument("kind", choices=sorted(_REGISTRIES))
    p_list.set_defaults(func=_cmd_list)

    p_prune = sub.add_parser(
        "cache-prune",
        help="delete cache records stranded by simulator or schema changes",
    )
    p_prune.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be deleted without removing anything",
    )
    p_prune.set_defaults(func=_cmd_cache_prune)

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator throughput over the standard perf suite",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="shortened traces (same scenarios) for CI smoke runs",
    )
    p_bench.add_argument(
        "--out",
        default=_DEFAULT_BENCH_OUT,
        help=f"write the bench result JSON here (default: {_DEFAULT_BENCH_OUT})",
    )
    p_bench.add_argument(
        "--baseline",
        nargs="?",
        const="auto",
        default=None,
        metavar="FILE",
        help="compare against a previous bench result (default FILE: the "
        "newest committed BENCH_PR*.json); a >30%% iterations/s drop prints "
        "a warning, a diverged fixed-seed report digest fails the run",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="also dump a cProfile pstats file next to --out",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_chaos = sub.add_parser(
        "chaos-report",
        help="run one chaos experiment and export its incident timeline",
    )
    _add_workload_args(p_chaos)
    _add_cache_args(p_chaos)
    p_chaos.add_argument("--system", type=_system_spec, default="adaserve")
    p_chaos.add_argument("--rps", type=_positive_float, default=12.0)
    p_chaos.add_argument("--replicas", type=_positive_int, default=4)
    p_chaos.add_argument(
        "--router",
        type=_router_spec,
        default="round-robin",
        help="routing policy spec (see `repro list routers`), e.g. affinity:reserve=0.4",
    )
    p_chaos.add_argument("--max-sim-time", type=_positive_float, default=1800.0)
    p_chaos.add_argument(
        "--out", default=None, help="also write the incident timeline as strict JSON"
    )
    p_chaos.add_argument(
        "--markdown",
        action="store_true",
        help="print the incident table as GitHub markdown "
        "(stdout carries only the table, e.g. for $GITHUB_STEP_SUMMARY)",
    )
    _add_obs_args(p_chaos)
    _add_check_args(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos_report)

    p_trace = sub.add_parser(
        "trace",
        help="run one experiment with tracing on and export a Perfetto trace",
    )
    _add_workload_args(p_trace)
    p_trace.add_argument("--system", type=_system_spec, default="adaserve")
    p_trace.add_argument("--rps", type=_positive_float, default=8.0)
    p_trace.add_argument(
        "--replicas",
        type=_positive_int,
        default=1,
        help="replica fleet size (> 1 or --faults forces the fleet path)",
    )
    p_trace.add_argument(
        "--router",
        type=_router_spec,
        default="round-robin",
        help="routing policy spec (see `repro list routers`), e.g. affinity:reserve=0.4",
    )
    p_trace.add_argument("--max-sim-time", type=_positive_float, default=1800.0)
    p_trace.add_argument(
        "--sample-every",
        type=_positive_float,
        default=0.5,
        metavar="SECONDS",
        help="gauge sampling period in simulated seconds (default: 0.5)",
    )
    p_trace.add_argument(
        "--iteration-log",
        action="store_true",
        help="also record per-iteration engine telemetry "
        "(exported under --series-out)",
    )
    p_trace.add_argument(
        "--out",
        default="trace.json",
        help="Perfetto/Chrome trace_event JSON path (default: trace.json)",
    )
    p_trace.add_argument(
        "--series-out",
        default=None,
        metavar="FILE",
        help="also write the sampled gauge time-series (strict JSON)",
    )
    p_trace.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="slowest-requests table size (default: 10)",
    )
    p_trace.add_argument(
        "--markdown",
        action="store_true",
        help="print the slowest-requests table as GitHub markdown "
        "(stdout carries only the table, e.g. for $GITHUB_STEP_SUMMARY)",
    )
    _add_check_args(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="attribute per-request latency to components and "
        "diagnose SLO violations",
    )
    _add_workload_args(p_explain)
    p_explain.add_argument("--system", type=_system_spec, default="adaserve")
    p_explain.add_argument("--rps", type=_positive_float, default=8.0)
    p_explain.add_argument(
        "--replicas",
        type=_positive_int,
        default=1,
        help="replica fleet size (> 1 or --faults forces the fleet path)",
    )
    p_explain.add_argument(
        "--router",
        type=_router_spec,
        default="round-robin",
        help="routing policy spec (see `repro list routers`), e.g. affinity:reserve=0.4",
    )
    p_explain.add_argument("--max-sim-time", type=_positive_float, default=1800.0)
    p_explain.add_argument(
        "--sample-every",
        type=_positive_float,
        default=0.5,
        metavar="SECONDS",
        help="gauge sampling period in simulated seconds for the fleet "
        "diagnostics (default: 0.5)",
    )
    p_explain.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the attribution export as strict JSON "
        "(byte-deterministic; diffable via --baseline)",
    )
    p_explain.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="diff against a previous attribution export component by "
        "component; exit 1 when any component regresses past the thresholds",
    )
    p_explain.add_argument(
        "--rel-threshold",
        type=_nonneg_float,
        default=DEFAULT_REL_THRESHOLD,
        metavar="FRACTION",
        help="relative growth a component must exceed to regress "
        f"(default: {DEFAULT_REL_THRESHOLD}; both thresholds must trip)",
    )
    p_explain.add_argument(
        "--abs-threshold",
        type=_nonneg_float,
        default=DEFAULT_ABS_THRESHOLD_S,
        metavar="SECONDS",
        help="absolute growth a component must exceed to regress "
        f"(default: {DEFAULT_ABS_THRESHOLD_S}; both thresholds must trip)",
    )
    p_explain.add_argument(
        "--markdown",
        action="store_true",
        help="print the tables as GitHub markdown "
        "(stdout carries only the tables, e.g. for $GITHUB_STEP_SUMMARY)",
    )
    _add_check_args(p_explain)
    p_explain.set_defaults(func=_cmd_explain)

    p_check = sub.add_parser(
        "check",
        help="static determinism lint over the source tree (CI gate)",
    )
    p_check.add_argument(
        "action",
        choices=["lint"],
        help="what to check (lint: run the RPD determinism rules; "
        "see `repro list checks`)",
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    p_check.add_argument(
        "--json",
        action="store_true",
        help="emit the strict-JSON findings report instead of text",
    )
    p_check.set_defaults(func=_cmd_check)

    p_prof = sub.add_parser("profile", help="hardware profiling for a deployment")
    p_prof.add_argument("--model", type=_model_spec, default="llama70b")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--slack", type=float, default=1.5)
    p_prof.set_defaults(func=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.check import InvariantViolation

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except InvariantViolation as exc:
        # Structured violation report: one line per context field, so CI
        # logs name the invariant, replica, request, and block directly.
        print(f"error: {exc.format()}", file=sys.stderr)
        for key, value in exc.to_dict().items():
            if value is not None:
                print(f"  {key}: {value}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
