"""Command-line interface.

The subcommands mirror how the repository is used:

- ``run``: serve one workload with one system and print the metrics;
- ``sweep``: the Figure 8/9 RPS sweep for a set of systems (optionally
  at cluster scale via ``--replicas``/``--router``);
- ``cluster``: serve one workload with a router-fronted replica fleet,
  optionally autoscaled;
- ``profile``: hardware profiling (Table 1 derived quantities).

``run``, ``sweep``, and ``cluster`` execute through the content-addressed
result cache (:mod:`repro.analysis.cache`), so repeating an
already-computed point or grid performs zero simulations; ``sweep
--jobs N`` fans cache-missing points out over worker processes with
results identical to ``--jobs 1``.  ``--out FILE`` writes the results as
strict JSON (a report for ``run``/``cluster``, sweep points for
``sweep``).

Examples
--------
::

    python -m repro run --system adaserve --model llama70b --rps 4.0
    python -m repro sweep --model qwen32b --systems adaserve vllm --rps 2.4 3.2 4.0 --jobs 4
    python -m repro cluster --replicas 4 --router p2c --rps 12 --trace diurnal
    python -m repro profile --model llama70b
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.cache import ResultCache
from repro.analysis.export import points_to_json, report_to_json
from repro.analysis.harness import MODEL_SETUPS, SYSTEM_NAMES, build_setup
from repro.analysis.report import format_table, point_from_metrics, series_table
from repro.analysis.runner import TRACE_KINDS, ExperimentConfig, SweepRunner
from repro.cluster.router import ROUTER_NAMES
from repro.hardware.profiler import HardwareProfiler
from repro.workloads.categories import urgent_mix


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", choices=sorted(MODEL_SETUPS), default="llama70b")
    p.add_argument("--duration", type=float, default=45.0, help="trace length (s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", choices=TRACE_KINDS, default="bursty")
    p.add_argument(
        "--urgent-fraction",
        type=float,
        default=None,
        help="category-1 share (default: the paper's 60/20/20 mix)",
    )
    p.add_argument("--slo-scale", type=float, default=1.0)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )


def _resolve_cache(cache_dir: str | None) -> ResultCache:
    return ResultCache(cache_dir) if cache_dir else ResultCache()


def _make_cache(args) -> ResultCache | None:
    if args.no_cache:
        return None
    return _resolve_cache(args.cache_dir)


def _config_for(
    args,
    system: str,
    rps: float,
    replicas: int = 1,
    router: str = "round-robin",
    autoscale: dict | None = None,
) -> ExperimentConfig:
    mix = urgent_mix(args.urgent_fraction) if args.urgent_fraction is not None else None
    return ExperimentConfig.create(
        model=args.model,
        system=system,
        rps=rps,
        duration_s=args.duration,
        seed=args.seed,
        trace=args.trace,
        slo_scale=args.slo_scale,
        mix=mix,
        max_sim_time_s=args.max_sim_time,
        replicas=replicas,
        router=router,
        autoscale=autoscale,
    )


def _write_out(path: str | None, text: str) -> None:
    """Persist strict-JSON results when ``--out`` was given."""
    if path is None:
        return
    Path(path).write_text(text + "\n", encoding="utf-8")
    print(f"wrote {path}", file=sys.stderr)


def _print_report(report, model: str) -> None:
    m = report.metrics
    print(f"system: {report.scheduler_name}   model: {model}   requests: {m.num_requests}")
    print(
        f"attainment {m.attainment * 100:.1f}%   goodput {m.goodput:.0f} tok/s   "
        f"throughput {m.throughput:.0f} tok/s   mean accepted/verify {m.mean_accepted_per_verify:.2f}"
    )
    rows = [
        [
            cat,
            f"{cm.attainment * 100:.1f}%",
            f"{cm.mean_tpot_s * 1e3:.1f}",
            f"{cm.p50_tpot_s * 1e3:.1f}",
            f"{cm.p99_tpot_s * 1e3:.1f}",
            str(cm.num_requests),
        ]
        for cat, cm in m.per_category.items()
    ]
    print(
        format_table(
            ["category", "attainment", "mean TPOT ms", "p50 TPOT ms", "p99 TPOT ms", "n"],
            rows,
        )
    )


def _cmd_run(args) -> int:
    runner = SweepRunner(cache=_make_cache(args), jobs=1)
    result = runner.run([_config_for(args, args.system, args.rps)])[0]
    _print_report(result.report, args.model)
    print(runner.stats_line())
    _write_out(args.out, report_to_json(result.report))
    return 0


def _cmd_cluster(args) -> int:
    if not args.autoscale and (args.max_replicas is not None or args.warmup is not None):
        print(
            "error: --max-replicas/--warmup only apply with --autoscale",
            file=sys.stderr,
        )
        return 2
    if args.autoscale and args.max_replicas is not None and args.max_replicas < args.replicas:
        print(
            f"error: --max-replicas ({args.max_replicas}) must be >= --replicas ({args.replicas})",
            file=sys.stderr,
        )
        return 2
    if args.replicas == 1 and not args.autoscale and args.router != "round-robin":
        print(
            "error: --router has no effect with --replicas 1 unless --autoscale is set",
            file=sys.stderr,
        )
        return 2
    if args.warmup is not None and args.warmup < 0:
        print(f"error: --warmup must be >= 0, got {args.warmup:g}", file=sys.stderr)
        return 2
    # Pass only user-provided knobs; AutoscalerConfig and run_cluster own
    # the defaults (warm-up length, 2x-initial-fleet ceiling).
    autoscale = None
    if args.autoscale:
        autoscale = {}
        if args.max_replicas is not None:
            autoscale["max_replicas"] = args.max_replicas
        if args.warmup is not None:
            autoscale["warmup_s"] = args.warmup
    config = _config_for(
        args, args.system, args.rps,
        replicas=args.replicas, router=args.router, autoscale=autoscale,
    )
    runner = SweepRunner(cache=_make_cache(args), jobs=1)
    result = runner.run([config])[0]
    _print_report(result.report, args.model)
    print(
        f"replicas: {args.replicas}   router: {args.router}   "
        f"autoscale: {'on' if autoscale is not None else 'off'}"
    )
    print(runner.stats_line())
    _write_out(args.out, report_to_json(result.report))
    return 0


def _dedupe(configs: list[ExperimentConfig]) -> list[ExperimentConfig]:
    """Drop repeated points (e.g. duplicate ``--rps`` values), keeping order."""
    return list(dict.fromkeys(configs))


def _cmd_sweep(args) -> int:
    if args.router is not None and args.replicas == 1:
        print("error: --router requires --replicas > 1", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    runner = SweepRunner(cache=cache, jobs=args.jobs)
    configs = _dedupe(
        [
            _config_for(
                args, system, rps,
                replicas=args.replicas,
                router=args.router or "round-robin",
            )
            for rps in args.rps
            for system in args.systems
        ]
    )

    def progress(result) -> None:
        source = "cached" if result.from_cache else "simulated"
        print(
            f"  done: rps={result.config.rps:g} {result.report.scheduler_name} ({source})",
            file=sys.stderr,
        )

    results = runner.run(configs, on_result=progress)
    stats_line = runner.stats_line()
    # Reports are already round-tripped through their cache-record form,
    # so cached and fresh points are identical here.
    points = [
        point_from_metrics(r.config.rps, r.report.scheduler_name, r.report.metrics)
        for r in results
    ]
    print("\nSLO attainment:")
    print(series_table(points, value="attainment", x_label="RPS"))
    print("\nGoodput (tokens/s):")
    print(series_table(points, value="goodput", x_label="RPS"))
    print()
    print(stats_line)
    _write_out(args.out, points_to_json(points))
    return 0


def _cmd_cache_prune(args) -> int:
    cache = _resolve_cache(args.cache_dir)
    removed = cache.prune()
    print(f"removed {removed} stale record(s) from {cache.root}")
    return 0


def _cmd_profile(args) -> int:
    setup = build_setup(args.model, seed=args.seed)
    rl = setup.target_roofline
    prof = HardwareProfiler(rl, slack=args.slack).profile()
    dep = setup.target_deployment
    print(f"deployment: {dep.model.name} on {dep.tensor_parallel} x {dep.gpu.name}")
    print(f"baseline decode latency: {rl.baseline_decode_latency * 1e3:.2f} ms")
    print(f"memory-bound floor:      {rl.memory_bound_floor * 1e3:.2f} ms")
    print(f"saturation tokens:       {rl.saturation_tokens()}")
    print(f"token budget B (slack {args.slack}): {prof.token_budget} "
          f"(latency {prof.budget_latency_s * 1e3:.2f} ms, {prof.latency_ratio:.2f}x floor)")
    print(f"KV capacity: {dep.kv_capacity_tokens} tokens")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AdaServe reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="serve one workload with one system")
    _add_workload_args(p_run)
    _add_cache_args(p_run)
    p_run.add_argument("--system", choices=SYSTEM_NAMES, default="adaserve")
    p_run.add_argument("--rps", type=float, default=4.0)
    p_run.add_argument("--max-sim-time", type=float, default=1800.0)
    p_run.add_argument("--out", default=None, help="write the report as strict JSON")
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="RPS sweep over systems")
    _add_workload_args(p_sweep)
    _add_cache_args(p_sweep)
    p_sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for cache-missing points (default: 1, serial)",
    )
    p_sweep.add_argument("--systems", nargs="+", choices=SYSTEM_NAMES, default=["adaserve", "vllm"])
    p_sweep.add_argument("--rps", nargs="+", type=float, default=[2.6, 3.4, 4.2])
    p_sweep.add_argument("--max-sim-time", type=float, default=1800.0)
    p_sweep.add_argument(
        "--replicas",
        type=_positive_int,
        default=1,
        help="replicas per point (> 1 sweeps at cluster scale)",
    )
    p_sweep.add_argument(
        "--router",
        choices=ROUTER_NAMES,
        default=None,
        help="routing policy (requires --replicas > 1; default: round-robin)",
    )
    p_sweep.add_argument("--out", default=None, help="write sweep points as strict JSON")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_cluster = sub.add_parser(
        "cluster", help="serve one workload with a router-fronted replica fleet"
    )
    _add_workload_args(p_cluster)
    _add_cache_args(p_cluster)
    p_cluster.add_argument("--system", choices=SYSTEM_NAMES, default="adaserve")
    p_cluster.add_argument("--rps", type=float, default=12.0)
    p_cluster.add_argument("--replicas", type=_positive_int, default=4)
    p_cluster.add_argument("--router", choices=ROUTER_NAMES, default="round-robin")
    p_cluster.add_argument(
        "--autoscale",
        action="store_true",
        help="grow/shrink the fleet on queue depth (warm-up delayed)",
    )
    p_cluster.add_argument(
        "--max-replicas",
        type=_positive_int,
        default=None,
        help="autoscaler ceiling (default: 2x --replicas)",
    )
    p_cluster.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="seconds before an autoscaled replica becomes routable",
    )
    p_cluster.add_argument("--max-sim-time", type=float, default=1800.0)
    p_cluster.add_argument("--out", default=None, help="write the report as strict JSON")
    p_cluster.set_defaults(func=_cmd_cluster)

    p_prune = sub.add_parser(
        "cache-prune",
        help="delete cache records stranded by simulator or schema changes",
    )
    p_prune.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p_prune.set_defaults(func=_cmd_cache_prune)

    p_prof = sub.add_parser("profile", help="hardware profiling for a deployment")
    p_prof.add_argument("--model", choices=sorted(MODEL_SETUPS), default="llama70b")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--slack", type=float, default=1.5)
    p_prof.set_defaults(func=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
