"""Command-line interface.

Three subcommands mirror how the repository is used:

- ``run``: serve one workload with one system and print the metrics;
- ``sweep``: the Figure 8/9 RPS sweep for a set of systems;
- ``profile``: hardware profiling (Table 1 derived quantities).

Examples
--------
::

    python -m repro run --system adaserve --model llama70b --rps 4.0
    python -m repro sweep --model qwen32b --systems adaserve vllm --rps 2.4 3.2 4.0
    python -m repro profile --model llama70b
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.harness import MODEL_SETUPS, SYSTEM_NAMES, build_setup, run_once
from repro.analysis.report import format_table, point_from_metrics, series_table
from repro.hardware.profiler import HardwareProfiler
from repro.workloads.categories import urgent_mix
from repro.workloads.generator import WorkloadGenerator


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", choices=sorted(MODEL_SETUPS), default="llama70b")
    p.add_argument("--duration", type=float, default=45.0, help="trace length (s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace", choices=("bursty", "steady", "phased"), default="bursty"
    )
    p.add_argument(
        "--urgent-fraction",
        type=float,
        default=None,
        help="category-1 share (default: the paper's 60/20/20 mix)",
    )
    p.add_argument("--slo-scale", type=float, default=1.0)


def _build_workload(setup, args, rps: float):
    gen = WorkloadGenerator(setup.target_roofline, seed=args.seed, slo_scale=args.slo_scale)
    mix = urgent_mix(args.urgent_fraction) if args.urgent_fraction is not None else None
    if args.trace == "bursty":
        return gen.bursty(args.duration, rps, mix=mix)
    if args.trace == "steady":
        return gen.steady(args.duration, rps, mix=mix)
    return gen.phased(args.duration, peak_rps=rps)


def _cmd_run(args) -> int:
    setup = build_setup(args.model, seed=args.seed)
    requests = _build_workload(setup, args, args.rps)
    report = run_once(setup, args.system, requests, max_sim_time_s=args.max_sim_time)
    m = report.metrics
    print(f"system: {report.scheduler_name}   model: {args.model}   requests: {m.num_requests}")
    print(
        f"attainment {m.attainment * 100:.1f}%   goodput {m.goodput:.0f} tok/s   "
        f"throughput {m.throughput:.0f} tok/s   mean accepted/verify {m.mean_accepted_per_verify:.2f}"
    )
    rows = [
        [cat, f"{cm.attainment * 100:.1f}%", f"{cm.mean_tpot_s * 1e3:.1f}", f"{cm.p99_tpot_s * 1e3:.1f}", str(cm.num_requests)]
        for cat, cm in m.per_category.items()
    ]
    print(format_table(["category", "attainment", "mean TPOT ms", "p99 TPOT ms", "n"], rows))
    return 0


def _cmd_sweep(args) -> int:
    setup = build_setup(args.model, seed=args.seed)
    points = []
    for rps in args.rps:
        requests = _build_workload(setup, args, rps)
        for system in args.systems:
            report = run_once(setup, system, requests, max_sim_time_s=args.max_sim_time)
            points.append(point_from_metrics(rps, report.scheduler_name, report.metrics))
            print(f"  done: rps={rps} {report.scheduler_name}", file=sys.stderr)
    print("\nSLO attainment:")
    print(series_table(points, value="attainment", x_label="RPS"))
    print("\nGoodput (tokens/s):")
    print(series_table(points, value="goodput", x_label="RPS"))
    return 0


def _cmd_profile(args) -> int:
    setup = build_setup(args.model, seed=args.seed)
    rl = setup.target_roofline
    prof = HardwareProfiler(rl, slack=args.slack).profile()
    dep = setup.target_deployment
    print(f"deployment: {dep.model.name} on {dep.tensor_parallel} x {dep.gpu.name}")
    print(f"baseline decode latency: {rl.baseline_decode_latency * 1e3:.2f} ms")
    print(f"memory-bound floor:      {rl.memory_bound_floor * 1e3:.2f} ms")
    print(f"saturation tokens:       {rl.saturation_tokens()}")
    print(f"token budget B (slack {args.slack}): {prof.token_budget} "
          f"(latency {prof.budget_latency_s * 1e3:.2f} ms, {prof.latency_ratio:.2f}x floor)")
    print(f"KV capacity: {dep.kv_capacity_tokens} tokens")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AdaServe reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="serve one workload with one system")
    _add_workload_args(p_run)
    p_run.add_argument("--system", choices=SYSTEM_NAMES, default="adaserve")
    p_run.add_argument("--rps", type=float, default=4.0)
    p_run.add_argument("--max-sim-time", type=float, default=1800.0)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="RPS sweep over systems")
    _add_workload_args(p_sweep)
    p_sweep.add_argument("--systems", nargs="+", choices=SYSTEM_NAMES, default=["adaserve", "vllm"])
    p_sweep.add_argument("--rps", nargs="+", type=float, default=[2.6, 3.4, 4.2])
    p_sweep.add_argument("--max-sim-time", type=float, default=1800.0)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_prof = sub.add_parser("profile", help="hardware profiling for a deployment")
    p_prof.add_argument("--model", choices=sorted(MODEL_SETUPS), default="llama70b")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--slack", type=float, default=1.5)
    p_prof.set_defaults(func=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
