"""Synthetic stand-ins for the paper's evaluation datasets.

The paper samples prompts from HumanEval (code completion), Alpaca
(instruction-following chat) and CNN/DailyMail (news summarization).  The
serving system only observes two things per request: prompt length and
output length (plus how guessable the text is, which lives on the
category).  Each synthetic dataset therefore models prompt/output lengths
with clipped lognormal distributions whose parameters approximate the
real corpora's token statistics:

- HumanEval: moderate prompts (problem + context), medium completions;
- Alpaca: short instructions, medium-length answers;
- CNN/DailyMail: long article prompts, short summaries — the long-prefill
  class whose interference the paper discusses in §6.2.

Sampling is deterministic per (dataset, seed, index).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._rng import hash_seed, uniforms


@dataclass(frozen=True)
class LengthDistribution:
    """Clipped lognormal over integer token counts."""

    mean: float  # desired mean of the clipped distribution (approx.)
    sigma: float  # lognormal shape parameter (in log space)
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < self.lo:
            raise ValueError(f"invalid clip range: {self}")
        if self.mean <= 0 or self.sigma <= 0:
            raise ValueError(f"invalid lognormal params: {self}")

    def sample(self, h: int, salt: int) -> int:
        """Draw one length from hash-derived randomness (Box-Muller)."""
        u1, u2 = uniforms(h, salt, 2)
        u1 = max(u1, 1e-12)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        # ln X ~ N(mu, sigma); choose mu so that E[X] ~= mean.
        mu = math.log(self.mean) - 0.5 * self.sigma**2
        value = int(round(math.exp(mu + self.sigma * z)))
        return max(self.lo, min(self.hi, value))


@dataclass(frozen=True)
class SyntheticDataset:
    """Prompt/output length model for one corpus."""

    name: str
    prompt: LengthDistribution
    output: LengthDistribution

    def sample(self, seed: int, index: int) -> tuple[int, int]:
        """(prompt_len, output_len) for the ``index``-th draw."""
        # Stable name hash (Python's str hash is randomized per process).
        name_tag = 0
        for ch in self.name:
            name_tag = (name_tag * 131 + ord(ch)) & ((1 << 32) - 1)
        h = hash_seed(seed, name_tag, index)
        return self.prompt.sample(h, 1), self.output.sample(h, 2)


DATASETS: dict[str, SyntheticDataset] = {
    "humaneval": SyntheticDataset(
        name="humaneval",
        prompt=LengthDistribution(mean=300.0, sigma=0.45, lo=100, hi=800),
        output=LengthDistribution(mean=130.0, sigma=0.50, lo=30, hi=300),
    ),
    "alpaca": SyntheticDataset(
        name="alpaca",
        prompt=LengthDistribution(mean=100.0, sigma=0.70, lo=20, hi=400),
        output=LengthDistribution(mean=220.0, sigma=0.55, lo=30, hi=500),
    ),
    "cnn_dailymail": SyntheticDataset(
        name="cnn_dailymail",
        prompt=LengthDistribution(mean=900.0, sigma=0.40, lo=300, hi=2500),
        output=LengthDistribution(mean=100.0, sigma=0.45, lo=30, hi=250),
    ),
    # A tiny dataset for fast tests and examples.
    "tiny": SyntheticDataset(
        name="tiny",
        prompt=LengthDistribution(mean=60.0, sigma=0.30, lo=10, hi=150),
        output=LengthDistribution(mean=24.0, sigma=0.30, lo=4, hi=60),
    ),
}
