"""Arrival-trace generation.

Two trace shapes from the paper:

- :func:`bursty_trace` — the Figure 7 real-world trace (originally from
  the Splitwise production traces): request frequency oscillates with
  bursts over a ~20-minute window.  We synthesize the same shape with a
  low-frequency modulation plus burst spikes, then draw arrivals from the
  resulting time-varying rate via Poisson thinning.  Like the paper, the
  trace is rescaled to a target average RPS.
- :func:`phased_trace` — the Figure 13 synthetic trace where each request
  category peaks at a different time (staggered Gaussian bumps), used for
  the workload-fluctuation sensitivity study (Figure 14).

Plus one cluster-scenario extension beyond the paper:

- :func:`diurnal_trace` — a day/night sinusoidal cycle (the scenario
  where fleet autoscaling matters; see :mod:`repro.cluster`).

Both return arrival timestamps (and per-arrival categories for the phased
trace); :mod:`repro.workloads.generator` turns them into requests.
"""

from __future__ import annotations

import math

from repro._rng import hash_seed, uniform, uniforms
from repro.workloads import batcharrivals


def _thin(rate_fn, rate_vec, duration_s: float, rate_max: float, seed: int) -> list[float]:
    """Poisson thinning, vectorized when the batch substrate is enabled.

    ``rate_fn`` is the scalar rate; ``rate_vec`` evaluates the same
    expression sequence over a float64 array (or ``None`` when no vector
    form exists).  Both paths emit bit-identical arrivals — the gate is
    purely a throughput decision, sized by the expected candidate count.
    """
    if rate_vec is not None and batcharrivals.enabled(int(rate_max * duration_s)):
        return batcharrivals.thin_poisson(rate_vec, duration_s, rate_max, seed)
    return _thin_poisson(rate_fn, duration_s, rate_max, seed)


def _thin_poisson(
    rate_fn,
    duration_s: float,
    rate_max: float,
    seed: int,
) -> list[float]:
    """Non-homogeneous Poisson arrivals on [0, duration) via thinning."""
    h = hash_seed(seed, 0x5452_4143)  # "TRAC"
    arrivals: list[float] = []
    t = 0.0
    i = 0
    while True:
        u1, u2 = uniforms(h, i, 2)
        i += 1
        u1 = max(u1, 1e-12)
        t += -math.log(u1) / rate_max
        if t >= duration_s:
            break
        if u2 * rate_max <= rate_fn(t):
            arrivals.append(t)
    return arrivals


def bursty_trace(
    duration_s: float,
    target_rps: float,
    seed: int = 0,
    burstiness: float = 0.5,
    num_bursts: int = 4,
) -> list[float]:
    """Figure 7-shaped arrivals rescaled to ``target_rps``.

    The rate is a base level modulated by two sinusoids plus ``num_bursts``
    short Gaussian spikes at seeded positions; ``burstiness`` in [0, 1)
    controls modulation depth.
    """
    if duration_s <= 0 or target_rps <= 0:
        raise ValueError("duration and target_rps must be positive")
    if not 0.0 <= burstiness < 1.0:
        raise ValueError("burstiness must be in [0, 1)")

    h = hash_seed(seed, 0x4255_5253)  # "BURS"
    burst_pos = [uniform(h, 10 + k) * duration_s for k in range(num_bursts)]
    burst_width = duration_s * 0.02

    def shape(t: float) -> float:
        base = 1.0
        base += burstiness * 0.6 * math.sin(2 * math.pi * t / (duration_s / 2.3))
        base += burstiness * 0.3 * math.sin(2 * math.pi * t / (duration_s / 7.1) + 1.0)
        for p in burst_pos:
            base += burstiness * 1.5 * math.exp(-0.5 * ((t - p) / burst_width) ** 2)
        return max(0.05, base)

    # Normalize the shape to the target average rate.
    samples = 512
    mean_shape = sum(shape(duration_s * (k + 0.5) / samples) for k in range(samples)) / samples
    scale = target_rps / mean_shape
    rate_max = scale * max(shape(duration_s * (k + 0.5) / samples) for k in range(samples)) * 1.05

    def shape_vec(t):
        # Same float sequence as shape(), elementwise over a time column;
        # sin/exp/**2 go through the exact kernels (numpy's SIMD
        # transcendentals are a few ULP off libm, which would fork digests).
        ba = batcharrivals
        c = 2 * math.pi
        base = 1.0 + burstiness * 0.6 * ba.vsin(c * t / (duration_s / 2.3))
        base = base + burstiness * 0.3 * ba.vsin(c * t / (duration_s / 7.1) + 1.0)
        for p in burst_pos:
            base = base + burstiness * 1.5 * ba.vexp(-0.5 * ba.vpow2((t - p) / burst_width))
        return ba.vmaximum(0.05, base)

    return _thin(lambda t: scale * shape(t), lambda t: scale * shape_vec(t),
                 duration_s, rate_max, seed)


def uniform_trace(duration_s: float, rps: float, seed: int = 0) -> list[float]:
    """Homogeneous Poisson arrivals (steady load)."""
    if duration_s <= 0 or rps <= 0:
        raise ValueError("duration and rps must be positive")
    return _thin(lambda t: rps, lambda t: batcharrivals.vfull(t, rps), duration_s, rps, seed)


def diurnal_trace(
    duration_s: float,
    target_rps: float,
    seed: int = 0,
    peak_to_trough: float = 4.0,
    cycles: float = 1.0,
) -> list[float]:
    """Day/night arrival cycle rescaled to ``target_rps`` on average.

    The rate follows ``cycles`` full sinusoidal periods over the window,
    starting at the trough (night) and peaking mid-cycle, with
    ``peak_to_trough`` setting the peak:trough rate ratio.  This is the
    scenario where autoscaling matters: a fleet sized for the peak idles
    at night, one sized for the mean queues at noon.
    """
    if duration_s <= 0 or target_rps <= 0:
        raise ValueError("duration and target_rps must be positive")
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1")
    if cycles <= 0:
        raise ValueError("cycles must be positive")

    # Amplitude that yields the requested peak:trough ratio around a
    # unit mean: (1 + a) / (1 - a) = ratio.
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)

    def rate(t: float) -> float:
        phase = 2 * math.pi * cycles * t / duration_s
        return target_rps * (1.0 + amplitude * math.sin(phase - math.pi / 2))

    def rate_vec(t):
        phase = 2 * math.pi * cycles * t / duration_s
        return target_rps * (1.0 + amplitude * batcharrivals.vsin(phase - math.pi / 2))

    rate_max = target_rps * (1.0 + amplitude)
    return _thin(rate, rate_vec, duration_s, rate_max, seed)


def phased_trace(
    duration_s: float,
    categories: list[str],
    peak_rps: float,
    base_rps: float = 0.3,
    seed: int = 0,
) -> list[tuple[float, str]]:
    """Figure 13 trace: categories peak at staggered times.

    Each category's arrival rate is ``base_rps`` plus a Gaussian bump of
    height ``peak_rps`` centred at an evenly staggered position in the
    window.  Returns (arrival_time, category) sorted by time.
    """
    if not categories:
        raise ValueError("need at least one category")
    if peak_rps <= 0 or base_rps < 0:
        raise ValueError("invalid rates")
    width = duration_s / (len(categories) * 2.5)
    out: list[tuple[float, str]] = []
    for k, cat in enumerate(categories):
        centre = duration_s * (k + 0.5) / len(categories)

        def rate(t: float, c: float = centre) -> float:
            return base_rps + peak_rps * math.exp(-0.5 * ((t - c) / width) ** 2)

        def rate_vec(t, c: float = centre):
            ba = batcharrivals
            return base_rps + peak_rps * ba.vexp(-0.5 * ba.vpow2((t - c) / width))

        rate_max = base_rps + peak_rps
        arrivals = _thin(rate, rate_vec, duration_s, rate_max, hash_seed(seed, k))
        out.extend((t, cat) for t in arrivals)
    out.sort(key=lambda tc: tc[0])
    return out


def trace_frequency(arrivals: list[float], bin_s: float, duration_s: float) -> list[int]:
    """Histogram arrivals into bins (for reproducing Figures 7/13)."""
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    n_bins = max(1, int(math.ceil(duration_s / bin_s)))
    counts = [0] * n_bins
    for t in arrivals:
        idx = min(n_bins - 1, int(t / bin_s))
        counts[idx] += 1
    return counts
