"""Request categories and their SLOs (Table 2).

Three application classes drive the multi-SLO workload:

- **Category 1, coding copilot** — TPOT SLO of 1.2x the *baseline
  latency* (the model's decode latency at near-zero load), a stringent
  target aligned with MLPerf's interactive serving SLOs.  Since the
  baseline depends on the deployed model, the SLO is resolved against a
  roofline at workload-build time.
- **Category 2, chatbot** — 50 ms/token (slightly faster than fast human
  reading).
- **Category 3, summarization** — 150 ms/token (relaxed).

Each category also carries the synthetic-dataset name that supplies its
prompt/output length distributions and a *predictability* level standing
in for how guessable its text is (code >> news summaries), which drives
speculative acceptance rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.roofline import RooflineModel


@dataclass(frozen=True)
class Category:
    """One Table 2 row, with workload-relevant extras."""

    name: str
    app: str
    dataset: str
    predictability: float
    #: Absolute TPOT SLO in seconds, or None if baseline-relative.
    tpot_slo_s: float | None = None
    #: Multiplier over baseline decode latency (used when tpot_slo_s is None).
    baseline_multiplier: float | None = None

    def __post_init__(self) -> None:
        if (self.tpot_slo_s is None) == (self.baseline_multiplier is None):
            raise ValueError(
                f"category {self.name}: exactly one of tpot_slo_s / baseline_multiplier"
            )

    def resolve_slo(self, baseline_latency_s: float, scale: float = 1.0) -> float:
        """Concrete TPOT SLO in seconds for a given deployment.

        ``scale`` implements the Figure 11 sweep: it multiplies the SLO of
        baseline-relative (urgent) categories; absolute categories are
        left untouched.
        """
        if self.baseline_multiplier is not None:
            return self.baseline_multiplier * baseline_latency_s * scale
        assert self.tpot_slo_s is not None
        return self.tpot_slo_s

    @property
    def is_urgent(self) -> bool:
        """Whether this is the latency-stringent (baseline-relative) class."""
        return self.baseline_multiplier is not None


#: The paper's three categories (Table 2).
CODING = Category(
    name="coding",
    app="Coding copilot",
    dataset="humaneval",
    predictability=0.80,
    baseline_multiplier=1.2,
)
CHATBOT = Category(
    name="chatbot",
    app="Chatbot",
    dataset="alpaca",
    predictability=0.70,
    tpot_slo_s=0.050,
)
SUMMARIZATION = Category(
    name="summarization",
    app="Summarization",
    dataset="cnn_dailymail",
    predictability=0.62,
    tpot_slo_s=0.150,
)

CATEGORIES: dict[str, Category] = {
    c.name: c for c in (CODING, CHATBOT, SUMMARIZATION)
}

#: The paper's default application mix (60% cat-1 peak-load scenario, §6.2).
DEFAULT_MIX: dict[str, float] = {"coding": 0.6, "chatbot": 0.2, "summarization": 0.2}


def urgent_mix(urgent_fraction: float) -> dict[str, float]:
    """Figure 10 mix: ``urgent_fraction`` coding, remainder split evenly."""
    if not 0.0 <= urgent_fraction <= 1.0:
        raise ValueError("urgent_fraction must be in [0, 1]")
    rest = (1.0 - urgent_fraction) / 2.0
    return {"coding": urgent_fraction, "chatbot": rest, "summarization": rest}


def resolve_slos(
    roofline: RooflineModel,
    scale: float = 1.0,
    categories: dict[str, Category] | None = None,
) -> dict[str, float]:
    """Concrete TPOT SLOs (seconds) per category for a deployment."""
    cats = categories or CATEGORIES
    baseline = roofline.baseline_decode_latency
    return {name: cat.resolve_slo(baseline, scale) for name, cat in cats.items()}
