"""Workload generation: traces x categories x datasets -> requests.

``WorkloadGenerator`` reproduces the paper's workload recipe (§6.1): for
each arrival timestamp (from a trace), sample a category according to the
mix, then sample a request (prompt/output lengths) from that category's
dataset, and attach the category's TPOT SLO resolved against the deployed
model's baseline latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._rng import hash_seed, uniform
from repro.hardware.roofline import RooflineModel
from repro.registry import TRACES, Param
from repro.serving.request import Request
from repro.workloads import batcharrivals
from repro.workloads.categories import CATEGORIES, DEFAULT_MIX, Category
from repro.workloads.datasets import DATASETS, SyntheticDataset
from repro.workloads.trace import (
    bursty_trace,
    diurnal_trace,
    phased_trace,
    uniform_trace,
)


def _is_ascending(arrivals: list[float]) -> bool:
    """Single monotonicity scan (non-decreasing)."""
    return all(arrivals[i - 1] <= arrivals[i] for i in range(1, len(arrivals)))


@dataclass
class WorkloadGenerator:
    """Builds request lists for the evaluation scenarios.

    Parameters
    ----------
    roofline:
        Target-model cost model; supplies the baseline latency that
        anchors category-1 SLOs.
    seed:
        Workload seed (category draws, length draws, trace randomness).
    slo_scale:
        Figure 11 knob — multiplies urgent (baseline-relative) SLOs.
    categories, datasets:
        Overridable registries (tests swap in tiny datasets).
    """

    roofline: RooflineModel
    seed: int = 0
    slo_scale: float = 1.0
    categories: dict[str, Category] = field(default_factory=lambda: dict(CATEGORIES))
    datasets: dict[str, SyntheticDataset] = field(default_factory=lambda: dict(DATASETS))

    def __post_init__(self) -> None:
        self._baseline = self.roofline.baseline_decode_latency

    # ------------------------------------------------------------------
    def _make_request(self, rid: int, arrival: float, category: Category) -> Request:
        dataset = self.datasets[category.dataset]
        prompt_len, output_len = dataset.sample(self.seed, rid)
        return Request(
            rid=rid,
            category=category.name,
            arrival_time=arrival,
            prompt_len=prompt_len,
            max_new_tokens=output_len,
            tpot_slo=category.resolve_slo(self._baseline, self.slo_scale),
            predictability=category.predictability,
            priority=0 if category.is_urgent else 1,
        )

    def _category_cdf(self, mix: dict[str, float]) -> tuple[list[str], list[float]]:
        """Normalized category CDF for ``mix``, computed once per workload.

        The CDF entries are accumulated with exactly the scalar draw
        loop's float sequence (``acc += mix[name] / total`` over sorted
        names), so sampling against the precomputed list is bit-identical
        to the historical per-rid recomputation.
        """
        total = sum(mix.values())
        names = sorted(mix)
        cdf: list[float] = []
        acc = 0.0
        for name in names:
            acc += mix[name] / total
            cdf.append(acc)
        return names, cdf

    def _sample_category_cdf(
        self, names: list[str], cdf: list[float], rid: int
    ) -> Category:
        """One category draw against a precomputed normalized CDF."""
        h = hash_seed(self.seed, 0x434154, rid)  # "CAT"
        u = uniform(h, 0)
        for name, acc in zip(names, cdf):
            if u < acc:
                return self.categories[name]
        return self.categories[names[-1]]

    def _sample_category(self, mix: dict[str, float], rid: int) -> Category:
        names, cdf = self._category_cdf(mix)
        return self._sample_category_cdf(names, cdf, rid)

    # ------------------------------------------------------------------
    def from_arrivals(
        self, arrivals: list[float], mix: dict[str, float] | None = None
    ) -> list[Request]:
        """Requests for explicit arrival timestamps, categories by mix."""
        mix = mix or DEFAULT_MIX
        unknown = set(mix) - set(self.categories)
        if unknown:
            raise KeyError(f"unknown categories in mix: {sorted(unknown)}")
        # Every registered trace already emits ascending arrivals; one
        # monotonicity scan skips the redundant re-sort then (explicit
        # out-of-order input still sorts, preserving the contract).
        if not _is_ascending(arrivals):
            arrivals = sorted(arrivals)
        if batcharrivals.enabled(len(arrivals)):
            return batcharrivals.build_requests(self, arrivals, mix)
        names, cdf = self._category_cdf(mix)
        return [
            self._make_request(rid, t, self._sample_category_cdf(names, cdf, rid))
            for rid, t in enumerate(arrivals)
        ]

    def columnar_from_arrivals(
        self, arrivals: list[float], mix: dict[str, float] | None = None
    ) -> "batcharrivals.ColumnarWorkload":
        """The same workload as :meth:`from_arrivals`, as numpy columns.

        ``columnar_from_arrivals(...).materialize()`` is bit-identical to
        ``from_arrivals(...)`` but the column store holds 32 bytes per
        request (64 with session columns) and materializes lazily
        (``iter_chunks``/``iter_requests``).
        Requires the batch substrate; raises when numpy is unavailable.
        """
        if not batcharrivals.AVAILABLE:
            raise RuntimeError("columnar workloads require numpy (unavailable)")
        mix = mix or DEFAULT_MIX
        unknown = set(mix) - set(self.categories)
        if unknown:
            raise KeyError(f"unknown categories in mix: {sorted(unknown)}")
        if not _is_ascending(arrivals):
            arrivals = sorted(arrivals)
        return batcharrivals.columnar_from_arrivals(self, arrivals, mix)

    def bursty(
        self,
        duration_s: float,
        rps: float,
        mix: dict[str, float] | None = None,
        burstiness: float = 0.5,
    ) -> list[Request]:
        """Figure 7-style workload at a target average RPS."""
        return self.from_arrivals(
            bursty_trace(duration_s, rps, seed=self.seed, burstiness=burstiness), mix
        )

    def steady(
        self,
        duration_s: float,
        rps: float,
        mix: dict[str, float] | None = None,
    ) -> list[Request]:
        """Homogeneous-Poisson workload."""
        return self.from_arrivals(uniform_trace(duration_s, rps, seed=self.seed), mix)

    def diurnal(
        self,
        duration_s: float,
        rps: float,
        mix: dict[str, float] | None = None,
        peak_to_trough: float = 4.0,
    ) -> list[Request]:
        """Day/night-cycle workload at a target average RPS."""
        return self.from_arrivals(
            diurnal_trace(
                duration_s, rps, seed=self.seed, peak_to_trough=peak_to_trough
            ),
            mix,
        )

    def phased(
        self,
        duration_s: float,
        peak_rps: float,
        base_rps: float = 0.3,
        category_order: tuple[str, ...] = ("chatbot", "coding", "summarization"),
    ) -> list[Request]:
        """Figure 13 workload: categories peak at staggered times."""
        unknown = set(category_order) - set(self.categories)
        if unknown:
            raise KeyError(f"unknown categories: {sorted(unknown)}")
        pairs = phased_trace(
            duration_s, list(category_order), peak_rps, base_rps, seed=self.seed
        )
        if batcharrivals.enabled(len(pairs)):
            return batcharrivals.columnar_phased(
                self, pairs, tuple(category_order)
            ).materialize()
        return [
            self._make_request(rid, t, self.categories[cat])
            for rid, (t, cat) in enumerate(pairs)
        ]


# ----------------------------------------------------------------------
# Trace registry: each kind maps an experiment workload section to a
# request list through one WorkloadGenerator method.  The factory
# signature is uniform — (generator, duration_s, rps, mix=None, **params)
# — so registered trace parameters are sweepable like any other axis.


@TRACES.register(
    "bursty",
    params=[
        Param(
            "burstiness", "float", default=0.5,
            minimum=0.0, maximum=1.0, exclusive_max=True,
            help="modulation depth of the sinusoid+spike rate shape",
        ),
    ],
    summary="Figure 7-shaped arrivals: sinusoids plus seeded bursts",
)
def _bursty(gen: WorkloadGenerator, duration_s, rps, mix=None, burstiness=0.5):
    return gen.bursty(duration_s, rps, mix=mix, burstiness=burstiness)


@TRACES.register("steady", summary="homogeneous-Poisson arrivals")
def _steady(gen: WorkloadGenerator, duration_s, rps, mix=None):
    return gen.steady(duration_s, rps, mix=mix)


@TRACES.register(
    "diurnal",
    params=[
        Param(
            "peak_to_trough", "float", default=4.0, minimum=1.0,
            help="peak:trough rate ratio of the day/night cycle",
        ),
    ],
    summary="day/night sinusoidal cycle (the autoscaling scenario)",
)
def _diurnal(gen: WorkloadGenerator, duration_s, rps, mix=None, peak_to_trough=4.0):
    return gen.diurnal(duration_s, rps, mix=mix, peak_to_trough=peak_to_trough)


@TRACES.register(
    "phased",
    params=[
        Param(
            "base_rps", "float", default=0.3, minimum=0.0, exclusive_min=True,
            help="off-peak arrival rate of each category",
        ),
    ],
    summary="Figure 13 trace: categories peak at staggered times (fixed mix)",
)
def _phased(gen: WorkloadGenerator, duration_s, rps, mix=None, base_rps=0.3):
    # The phased trace defines its own category schedule; mix is ignored.
    return gen.phased(duration_s, peak_rps=rps, base_rps=base_rps)
