"""Multi-turn session workloads (chat, agents, RAG over a shared prompt).

Production LLM traffic is dominated by *conversations*, not independent
cold prompts: each turn's prompt is the shared system prompt plus the
full history so far plus a fresh user message, so successive turns repeat
an ever-growing prefix that a prefix-sharing KV cache can serve without
recomputation (see :mod:`repro.prefixcache`).

:class:`SessionGenerator` synthesizes that structure deterministically:

- **sessions start** as a Poisson process at ``rps / turns`` so the
  request-level arrival rate averages ``rps``, comparable with the other
  trace kinds;
- each session draws a **category** from the mix once (a conversation
  stays in one application class) and its per-turn user-message/answer
  lengths from the category's dataset;
- turn ``k+1`` **arrives** after turn ``k``'s estimated service time
  (output length x the deployment's baseline decode latency) plus an
  exponential think-time gap — an open-loop approximation of a user
  reading the answer before replying;
- prompts are composed of token-stream **segments**
  (:mod:`repro.prefixcache.tokens`): one global system-prompt stream
  shared by *every* session, plus a per-session conversation stream
  covering user turns and model answers, so turn ``k+1``'s prompt is a
  strict prefix extension of turn ``k``'s prompt + output.

Two trace kinds are registered: ``sessions`` (chat-shaped: a few turns,
human think time) and ``agentic`` (agent-loop-shaped: many short turns
over a large system prompt with near-zero gaps).  Both are sweepable via
``--grid trace.<param>=...`` like any registered component.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._rng import derive_seed, hash_seed, uniform
from repro.registry import TRACES, Param
from repro.serving.request import Request
from repro.workloads import batcharrivals
from repro.workloads.categories import DEFAULT_MIX
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import uniform_trace

#: Follow-up user messages are much shorter than the opening prompt.
_FOLLOWUP_DIVISOR = 4
_MIN_USER_TOKENS = 4


@dataclass
class SessionGenerator:
    """Emit multi-turn conversations as a flat, arrival-sorted request list.

    Parameters
    ----------
    base:
        The single-shot :class:`WorkloadGenerator` supplying categories,
        datasets, SLO resolution, and the workload seed.
    turns:
        Turns per session (requests per conversation).
    system_prompt:
        Tokens of system prompt shared by every session (0 disables the
        cross-session shared stream).
    think_time_s:
        Mean of the exponential think-time gap between a turn's estimated
        completion and the next turn's arrival.
    """

    base: WorkloadGenerator
    turns: int = 6
    system_prompt: int = 256
    think_time_s: float = 4.0

    def __post_init__(self) -> None:
        if self.turns < 1:
            raise ValueError("turns must be >= 1")
        if self.system_prompt < 0:
            raise ValueError("system_prompt must be >= 0")
        if self.think_time_s < 0:
            raise ValueError("think_time_s must be >= 0")

    # ------------------------------------------------------------------
    def generate(
        self, duration_s: float, rps: float, mix: dict[str, float] | None = None
    ) -> list[Request]:
        """Session requests over ``[0, duration_s)`` averaging ``rps``.

        Turns whose arrival falls beyond the window are dropped (the
        trace is a fixed observation window; late sessions are cut
        short), so the realized rate is slightly below ``rps``.
        """
        if duration_s <= 0 or rps <= 0:
            raise ValueError("duration and rps must be positive")
        mix = mix or DEFAULT_MIX
        unknown = set(mix) - set(self.base.categories)
        if unknown:
            raise KeyError(f"unknown categories in mix: {sorted(unknown)}")
        seed = self.base.seed
        baseline = self.base.roofline.baseline_decode_latency
        sys_namespace = hash_seed(seed, 0x535953)  # "SYS": one stream for all
        starts = uniform_trace(
            duration_s, rps / self.turns, seed=derive_seed(seed, "session-starts")
        )
        if batcharrivals.enabled(len(starts) * self.turns):
            return self.columnar(duration_s, rps, mix, _starts=starts).materialize()

        names, cdf = self.base._category_cdf(mix)
        protos: list[tuple[float, int, int, Request]] = []
        for s, start in enumerate(starts):
            category = self.base._sample_category_cdf(
                names, cdf, derive_seed(seed, "session-category", s)
            )
            dataset = self.base.datasets[category.dataset]
            sess_namespace = hash_seed(seed, 0x53455353, s)  # "SESS"
            arrival = start
            history = 0  # session-stream tokens accumulated before this turn
            for k in range(self.turns):
                if arrival >= duration_s:
                    break
                sampled_prompt, output_len = dataset.sample(
                    seed, derive_seed(seed, "turn", s, k)
                )
                user_tokens = (
                    sampled_prompt
                    if k == 0
                    else max(_MIN_USER_TOKENS, sampled_prompt // _FOLLOWUP_DIVISOR)
                )
                segments = ((sess_namespace, history + user_tokens),)
                if self.system_prompt > 0:
                    segments = ((sys_namespace, self.system_prompt), *segments)
                req = Request(
                    rid=0,  # assigned after the global arrival sort
                    category=category.name,
                    arrival_time=arrival,
                    prompt_len=self.system_prompt + history + user_tokens,
                    max_new_tokens=output_len,
                    tpot_slo=category.resolve_slo(baseline, self.base.slo_scale),
                    predictability=category.predictability,
                    priority=0 if category.is_urgent else 1,
                    session_id=s,
                    turn_index=k,
                    prompt_segments=segments,
                )
                protos.append((arrival, s, k, req))
                # The answer joins the conversation stream; the next turn
                # arrives once it has (approximately) been generated and
                # the user has thought about it.
                history += user_tokens + output_len
                gap = uniform(hash_seed(seed, 0x47415021, s), k)  # "GAP!"
                arrival += output_len * baseline - math.log(
                    max(gap, 1e-12)
                ) * self.think_time_s

        protos.sort(key=lambda item: (item[0], item[1], item[2]))
        requests = []
        for rid, (_, _, _, req) in enumerate(protos):
            req.rid = rid
            requests.append(req)
        return requests

    def columnar(
        self,
        duration_s: float,
        rps: float,
        mix: dict[str, float] | None = None,
        _starts: list[float] | None = None,
    ) -> "batcharrivals.ColumnarWorkload":
        """The session workload as numpy columns (population scale).

        Same requests as :meth:`generate` — ``columnar(...).materialize()``
        is bit-identical — but holds ~60 bytes per request instead of a
        ``Request`` object, and supports chunked/lazy materialization via
        ``iter_chunks`` / ``iter_requests``.  Requires the batch substrate
        (:mod:`repro.workloads.batcharrivals`); raises otherwise.
        """
        if not batcharrivals.AVAILABLE:
            raise RuntimeError("columnar workloads require numpy (unavailable)")
        if duration_s <= 0 or rps <= 0:
            raise ValueError("duration and rps must be positive")
        mix = mix or DEFAULT_MIX
        unknown = set(mix) - set(self.base.categories)
        if unknown:
            raise KeyError(f"unknown categories in mix: {sorted(unknown)}")
        starts = _starts if _starts is not None else uniform_trace(
            duration_s, rps / self.turns,
            seed=derive_seed(self.base.seed, "session-starts"),
        )
        return batcharrivals.columnar_sessions(self, duration_s, starts, mix)


# ----------------------------------------------------------------------
# Trace registration (the spec grammar makes every knob sweepable).

_SESSION_PARAMS = dict(
    turns=lambda default: Param(
        "turns", "int", default=default, minimum=1,
        help="turns (requests) per session",
    ),
    system_prompt=lambda default: Param(
        "system_prompt", "int", default=default, minimum=0,
        help="system-prompt tokens shared by every session (0 disables)",
    ),
    think_time=lambda default: Param(
        "think_time", "float", default=default, minimum=0.0,
        help="mean think-time gap between turns, seconds",
    ),
)


def _session_trace(gen, duration_s, rps, mix, turns, system_prompt, think_time):
    return SessionGenerator(
        gen, turns=turns, system_prompt=system_prompt, think_time_s=think_time
    ).generate(duration_s, rps, mix)


@TRACES.register(
    "sessions",
    params=[
        _SESSION_PARAMS["turns"](6),
        _SESSION_PARAMS["system_prompt"](256),
        _SESSION_PARAMS["think_time"](4.0),
    ],
    summary="multi-turn chat sessions with a growing shared prefix",
)
def _sessions(gen, duration_s, rps, mix=None, turns=6, system_prompt=256, think_time=4.0):
    return _session_trace(gen, duration_s, rps, mix, turns, system_prompt, think_time)


@TRACES.register(
    "agentic",
    params=[
        _SESSION_PARAMS["turns"](10),
        _SESSION_PARAMS["system_prompt"](512),
        _SESSION_PARAMS["think_time"](0.5),
    ],
    summary="agent loops: many short turns over a large shared system prompt",
)
def _agentic(gen, duration_s, rps, mix=None, turns=10, system_prompt=512, think_time=0.5):
    return _session_trace(gen, duration_s, rps, mix, turns, system_prompt, think_time)
