"""Columnar (vectorized) workload generation — the population-scale substrate.

The scalar generators in :mod:`repro.workloads.generator` /
:mod:`repro.workloads.sessions` materialize one :class:`Request` at a
time from a handful of splitmix64 chains plus lognormal length draws.
At population scale (hundreds of thousands of sessions) the interpreter
loop dominates: this module evaluates the same chains for *every*
request at once with ``numpy`` uint64/float64 columns, following the
``model/batchgen.py`` gated-vectorization-with-scalar-fallback pattern.

**Bit-identity is the contract.**  Every vector statement maps 1:1 onto
a scalar statement of the reference implementation:

- uint64 adds/multiplies wrap modulo 2**64 exactly like the masked
  Python-int arithmetic of :mod:`repro._rng`;
- float64 arithmetic (``+ - * /``, ``sqrt``) is IEEE-754
  correctly-rounded elementwise, so array expressions written in the
  scalar evaluation order produce the same doubles;
- running sums use ``cumsum`` (sequential, left-associated by
  definition), never ``np.sum`` (whose pairwise summation would differ);
- **transcendentals are NOT trusted to numpy**: ``np.log`` / ``np.exp``
  (and, on some builds, ``np.sin`` / ``np.cos`` and ``x ** 2``) use
  SIMD kernels with a few-ULP error bound, which is *not* bit-identical
  to libm's ``math.log`` / ``math.exp``.  Every transcendental (and
  ``** 2``) therefore routes through an exact elementwise kernel that
  calls the same ``math.*`` / ``float.__pow__`` the scalar path calls —
  ~130 ns/element, still far below the interpreter loop it replaces;
- stable ``lexsort`` matches ``list.sort`` with the same key tuple.

``tests/test_batcharrivals.py`` pins vector == scalar byte-identity
across every trace kind and many seeds.  ``numpy`` is optional: when it
is unavailable (or ``REPRO_SCALAR_WORKLOADS=1``) callers fall back to
the scalar loops and results are unchanged — by construction, not by
luck.

The columnar form is also the *memory* story: :class:`ColumnarWorkload`
holds one float64/int64 column per field (~60 B/request instead of a
~700 B ``Request`` object) and materializes requests lazily in chunks,
so the fleet loop can consume a million-session trace incrementally.
"""

from __future__ import annotations

import math
import os
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

try:  # gated dependency: the scalar path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via AVAILABLE flag
    _np = None

from repro._rng import MASK64, _COMBINE, _GOLDEN, _INV_2_53, _MIX1, _MIX2, hash_seed, mix, salted
from repro.serving.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.sessions import SessionGenerator

#: Whether the vectorized path can run at all.
AVAILABLE = _np is not None

#: Escape hatch: force the scalar reference path everywhere (CI uses it
#: to prove byte-identity; tests toggle the module flag directly).
DISABLED = bool(os.environ.get("REPRO_SCALAR_WORKLOADS"))

#: Below this many requests the numpy dispatch overhead loses to the
#: scalar loop (measured on small arrays).
MIN_BATCH = 64


def enabled(n: int) -> bool:
    """Whether the vector path should serve a batch of ``n`` draws."""
    return AVAILABLE and not DISABLED and n >= MIN_BATCH


if AVAILABLE:
    _U64 = _np.uint64
    _G = _U64(_GOLDEN)
    _G2 = _U64((2 * _GOLDEN) & MASK64)
    _M1 = _U64(_MIX1)
    _M2 = _U64(_MIX2)
    _CMB = _U64(_COMBINE)
    _S30 = _U64(30)
    _S27 = _U64(27)
    _S31 = _U64(31)
    _S11 = _U64(11)
    _S1 = _U64(1)


# ----------------------------------------------------------------------
# Vector RNG primitives (bit-identical to repro._rng)
# ----------------------------------------------------------------------
def _splitmix(x):
    """Vector splitmix64 finalizer (matches ``repro._rng.splitmix64``)."""
    x = x + _G
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


def _fin3(x):
    """The finalizer minus the golden-ratio add (``uniforms()`` inner loop)."""
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


def _vmix(h, v):
    """Vector ``repro._rng.mix`` over broadcastable uint64 operands."""
    return _splitmix(h ^ (v * _CMB))


def _uniform_cols(h, salt_mask):
    """Vector ``uniform(h, salt)`` where ``salt_mask = salted(salt)``."""
    return (_splitmix(h ^ salt_mask) >> _S11) * _INV_2_53


def _uniform2_cols(h, salt_mask):
    """Vector ``uniforms(h, salt, 2)``: the two chained finalizations."""
    base = _splitmix(h ^ salt_mask)
    u1 = (_fin3(base + _G) >> _S11) * _INV_2_53
    u2 = (_fin3(base + _G2) >> _S11) * _INV_2_53
    return u1, u2


def _derive_prefix(base_seed: int, *parts) -> int:
    """The internal fold of ``derive_seed`` *before* the final ``>> 1``.

    Lets per-entity derivations (``derive_seed(seed, label, s)``) hoist
    the label fold out of the loop: the remaining per-entity step is one
    ``mix`` plus a shift, which vectorizes.
    """
    h = hash_seed(int(base_seed) & MASK64)
    for part in parts:
        if isinstance(part, int):
            h = mix(h, part & MASK64)
        else:
            for byte in str(part).encode("utf-8"):
                h = mix(h, byte)
    return h


# ----------------------------------------------------------------------
# Exact elementwise kernels (scalar libm through an array interface)
# ----------------------------------------------------------------------
def _exact_unary(fn, a):
    flat = a.ravel()
    out = _np.fromiter(map(fn, flat.tolist()), dtype=_np.float64, count=flat.size)
    return out.reshape(a.shape)


def vlog(a):
    """Elementwise ``math.log`` — bit-identical to the scalar path."""
    return _exact_unary(math.log, a)


def vexp(a):
    """Elementwise ``math.exp`` — bit-identical to the scalar path."""
    return _exact_unary(math.exp, a)


def vsin(a):
    """Elementwise ``math.sin`` — bit-identical to the scalar path."""
    return _exact_unary(math.sin, a)


def vcos(a):
    """Elementwise ``math.cos`` — bit-identical to the scalar path."""
    return _exact_unary(math.cos, a)


def vpow2(a):
    """Elementwise ``x ** 2`` via ``float.__pow__``.

    Python's ``x ** 2`` routes through libm ``pow``, which is not
    guaranteed to equal ``x * x`` (and measurably differs from numpy's
    ``**`` on some builds), so squaring in rate shapes must call the
    exact same operation the scalar code ran.
    """
    return _exact_unary(lambda x: x**2, a)


def vmaximum(a, b):
    """Elementwise ``max`` (IEEE-exact; exposed for rate-shape closures)."""
    return _np.maximum(a, b)


def vfull(like, value: float):
    """A constant rate column shaped like ``like`` (constant-rate traces)."""
    return _np.full(like.shape, value)


# ----------------------------------------------------------------------
# Non-homogeneous Poisson thinning (vector form of trace._thin_poisson)
# ----------------------------------------------------------------------
def thin_poisson(rate_vec, duration_s: float, rate_max: float, seed: int) -> list[float]:
    """Vectorized Poisson thinning; bit-identical to ``_thin_poisson``.

    ``rate_vec`` maps a float64 array of candidate times to the arrival
    rate at each, evaluated with the exact scalar operation sequence.
    Candidate inter-arrival gaps come from the same ``uniforms(h, i, 2)``
    chain, accumulated with ``cumsum`` (sequential, so the running time
    matches the scalar ``t += gap`` left-associated float chain).  If the
    candidate block doesn't reach ``duration_s`` it is **regenerated from
    index 0** at double size — continuing an old block would re-associate
    the partial sums.
    """
    h = hash_seed(seed, 0x5452_4143)  # "TRAC"
    est = rate_max * duration_s
    n = int(est + 10.0 * math.sqrt(est + 1.0)) + 64
    with _np.errstate(over="ignore"):
        while True:
            idx = _np.arange(n, dtype=_np.uint64)
            base = _splitmix(_U64(h) ^ (idx * _CMB))
            u1 = (_fin3(base + _G) >> _S11) * _INV_2_53
            u2 = (_fin3(base + _G2) >> _S11) * _INV_2_53
            u1 = _np.maximum(u1, 1e-12)
            t = _np.cumsum(-vlog(u1) / rate_max)
            if t[-1] >= duration_s:
                break
            n *= 2
    stop = int(_np.argmax(t >= duration_s))  # scalar loop breaks here
    t = t[:stop]
    u2 = u2[:stop]
    accept = (u2 * rate_max) <= rate_vec(t)
    return t[accept].tolist()


# ----------------------------------------------------------------------
# Columnar workload container + lazy materialization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CategoryMeta:
    """Per-category constants resolved once (identical to scalar fields)."""

    name: str
    tpot_slo: float
    predictability: float
    priority: int
    dataset: str


@dataclass
class ColumnarWorkload:
    """A workload as per-request numpy columns, materialized on demand.

    Row ``i`` is request ``rid == i`` (rows are already in the scalar
    path's final emission order).  ``materialize()`` produces the exact
    ``Request`` objects the scalar generator would have built;
    ``iter_requests`` / ``iter_chunks`` do so lazily so a consumer never
    holds more than one chunk of live objects unless it retains them.
    """

    arrival: object  # float64[n]
    category_idx: object  # int64[n] into ``categories``
    prompt_len: object  # int64[n]
    output_len: object  # int64[n]
    categories: tuple[CategoryMeta, ...]
    # Session structure (None for one-shot workloads):
    session_id: object | None = None  # int64[n]
    turn_index: object | None = None  # int64[n]
    seg_namespace: object | None = None  # uint64[n] per-session stream
    seg_tokens: object | None = None  # int64[n] session-stream tokens
    sys_namespace: int | None = None  # shared system-prompt stream
    system_prompt: int = 0

    def __len__(self) -> int:
        return int(self.arrival.shape[0])

    @property
    def nbytes(self) -> int:
        """Resident bytes of the column store (the O(n) footprint)."""
        total = 0
        for col in (
            self.arrival,
            self.category_idx,
            self.prompt_len,
            self.output_len,
            self.session_id,
            self.turn_index,
            self.seg_namespace,
            self.seg_tokens,
        ):
            if col is not None:
                total += int(col.nbytes)
        return total

    def materialize(self, lo: int = 0, hi: int | None = None) -> list[Request]:
        """Construct the ``Request`` objects for rows ``[lo, hi)``.

        Bypasses dataclass ``__init__`` exactly like
        :meth:`Request.fresh_copy` — the columns were produced by the
        validated construction recipe, so per-object re-validation would
        only burn the batch win.
        """
        hi = len(self) if hi is None else min(hi, len(self))
        if lo >= hi:
            return []
        arrival = self.arrival[lo:hi].tolist()
        cat_idx = self.category_idx[lo:hi].tolist()
        prompt = self.prompt_len[lo:hi].tolist()
        output = self.output_len[lo:hi].tolist()
        cats = self.categories
        sessions = self.session_id[lo:hi].tolist() if self.session_id is not None else None
        turns = self.turn_index[lo:hi].tolist() if self.turn_index is not None else None
        seg_ns = self.seg_namespace[lo:hi].tolist() if self.seg_namespace is not None else None
        seg_tok = self.seg_tokens[lo:hi].tolist() if self.seg_tokens is not None else None
        sys_ns = self.sys_namespace
        sys_tokens = self.system_prompt
        queued = RequestState.QUEUED
        new = Request.__new__
        out: list[Request] = []
        for i in range(hi - lo):
            cat = cats[cat_idx[i]]
            req = new(Request)
            req.rid = lo + i
            req.category = cat.name
            req.arrival_time = arrival[i]
            req.prompt_len = prompt[i]
            req.max_new_tokens = output[i]
            req.tpot_slo = cat.tpot_slo
            req.predictability = cat.predictability
            req.priority = cat.priority
            if sessions is None:
                req.session_id = None
                req.turn_index = 0
                req.prompt_segments = None
            else:
                req.session_id = sessions[i]
                req.turn_index = turns[i]
                session_seg = (seg_ns[i], seg_tok[i])
                if sys_ns is not None and sys_tokens > 0:
                    req.prompt_segments = ((sys_ns, sys_tokens), session_seg)
                else:
                    req.prompt_segments = (session_seg,)
            req.state = queued
            req.prefilled = 0
            req.ctx = 0
            req.n_generated = 0
            req.decode_start = None
            req.first_token_time = None
            req.last_token_time = None
            req.finish_time = None
            req.preempt_count = 0
            req.failover_count = 0
            req.cached_prompt_tokens = 0
            req.verify_steps = 0
            req.accepted_draft_tokens = 0
            req.token_times = []
            req.record_token_times = False
            req.on_finish = None
            out.append(req)
        return out

    def iter_chunks(self, chunk_size: int = 8192) -> Iterator[list[Request]]:
        """Materialize the workload one chunk at a time (arrival order)."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for lo in range(0, len(self), chunk_size):
            yield self.materialize(lo, lo + chunk_size)

    def iter_requests(self, chunk_size: int = 8192) -> Iterator[Request]:
        """Lazily yield every request in arrival order."""
        for chunk in self.iter_chunks(chunk_size):
            yield from chunk


# ----------------------------------------------------------------------
# Category / length columns (vector form of WorkloadGenerator internals)
# ----------------------------------------------------------------------
def _category_meta(gen: "WorkloadGenerator", names: list[str]) -> tuple[CategoryMeta, ...]:
    out = []
    for name in names:
        cat = gen.categories[name]
        out.append(
            CategoryMeta(
                name=cat.name,
                tpot_slo=cat.resolve_slo(gen._baseline, gen.slo_scale),
                predictability=cat.predictability,
                priority=0 if cat.is_urgent else 1,
                dataset=cat.dataset,
            )
        )
    return tuple(out)


def _dataset_name_tag(name: str) -> int:
    """The stable 32-bit name hash of ``SyntheticDataset.sample``."""
    name_tag = 0
    for ch in name:
        name_tag = (name_tag * 131 + ord(ch)) & ((1 << 32) - 1)
    return name_tag


def _sample_lengths(H, salt: int, dist) -> object:
    """Vector ``LengthDistribution.sample`` (clipped lognormal, Box-Muller)."""
    u1, u2 = _uniform2_cols(H, _U64(salted(salt)))
    u1 = _np.maximum(u1, 1e-12)
    z = _np.sqrt(-2.0 * vlog(u1)) * vcos((2.0 * math.pi) * u2)
    mu = math.log(dist.mean) - 0.5 * dist.sigma**2
    value = _np.rint(vexp(mu + dist.sigma * z)).astype(_np.int64)
    return _np.clip(value, dist.lo, dist.hi)


def _length_columns(gen: "WorkloadGenerator", cats: tuple[CategoryMeta, ...], cat_idx, indices):
    """(prompt_len, output_len) columns for dataset draws at ``indices``.

    ``indices`` is the per-row dataset sample index (the scalar ``rid``
    for one-shot traces, ``derive_seed(seed, "turn", s, k)`` for
    sessions), grouped by dataset so each group shares one hash prefix.
    """
    n = indices.shape[0]
    prompt = _np.empty(n, dtype=_np.int64)
    output = _np.empty(n, dtype=_np.int64)
    # Dataset index per row, via the category -> dataset mapping.
    ds_names = sorted({c.dataset for c in cats})
    ds_of_cat = _np.array([ds_names.index(c.dataset) for c in cats], dtype=_np.int64)
    row_ds = ds_of_cat[cat_idx]
    for di, ds_name in enumerate(ds_names):
        rows = _np.nonzero(row_ds == di)[0]
        if rows.size == 0:
            continue
        dataset = gen.datasets[ds_name]
        # The scalar path hashes the *distribution's own* name (tests remap
        # every registry key to one tiny dataset), not the registry key.
        prefix = _U64(hash_seed(gen.seed, _dataset_name_tag(dataset.name)))
        H = _vmix(prefix, indices[rows])
        prompt[rows] = _sample_lengths(H, 1, dataset.prompt)
        output[rows] = _sample_lengths(H, 2, dataset.output)
    return prompt, output


def _category_column(gen: "WorkloadGenerator", mix: dict[str, float], draws):
    """Vector ``_sample_category`` for per-row draw hashes ``draws``.

    ``draws`` is the second ``hash_seed`` argument of the scalar call —
    the rid for one-shot traces, the derived per-session seed for
    sessions.  Returns ``(names, cat_idx)``.
    """
    names, cdf = gen._category_cdf(mix)
    prefix = _U64(hash_seed(gen.seed, 0x434154))  # "CAT"
    u = (_splitmix(_vmix(prefix, draws)) >> _S11) * _INV_2_53
    cdf_arr = _np.array(cdf, dtype=_np.float64)
    idx = _np.searchsorted(cdf_arr, u, side="right")
    return names, _np.minimum(idx, len(names) - 1).astype(_np.int64)


def columnar_from_arrivals(
    gen: "WorkloadGenerator", arrivals, mix: dict[str, float]
) -> ColumnarWorkload:
    """Columnar equivalent of ``WorkloadGenerator.from_arrivals``.

    ``arrivals`` must already be ascending (the caller's contract after
    its monotonicity scan).
    """
    arrival = _np.asarray(arrivals, dtype=_np.float64)
    n = arrival.shape[0]
    rids = _np.arange(n, dtype=_np.uint64)
    with _np.errstate(over="ignore"):
        names, cat_idx = _category_column(gen, mix, rids)
        cats = _category_meta(gen, names)
        prompt, output = _length_columns(gen, cats, cat_idx, rids)
    return ColumnarWorkload(
        arrival=arrival,
        category_idx=cat_idx,
        prompt_len=prompt,
        output_len=output,
        categories=cats,
    )


def build_requests(gen: "WorkloadGenerator", arrivals, mix: dict[str, float]) -> list[Request]:
    """Vectorized ``from_arrivals`` (materialized form)."""
    return columnar_from_arrivals(gen, arrivals, mix).materialize()


def columnar_phased(
    gen: "WorkloadGenerator", pairs: list[tuple[float, str]], order: tuple[str, ...]
) -> ColumnarWorkload:
    """Columnar equivalent of ``WorkloadGenerator.phased``.

    ``pairs`` is the trace's (arrival, category) list; categories are
    given by the trace rather than drawn from a mix.
    """
    names = list(order)
    cats = _category_meta(gen, names)
    pos = {name: i for i, name in enumerate(names)}
    arrival = _np.fromiter(
        (t for t, _ in pairs), dtype=_np.float64, count=len(pairs)
    )
    cat_idx = _np.fromiter(
        (pos[cat] for _, cat in pairs), dtype=_np.int64, count=len(pairs)
    )
    rids = _np.arange(len(pairs), dtype=_np.uint64)
    with _np.errstate(over="ignore"):
        prompt, output = _length_columns(gen, cats, cat_idx, rids)
    return ColumnarWorkload(
        arrival=arrival,
        category_idx=cat_idx,
        prompt_len=prompt,
        output_len=output,
        categories=cats,
    )


# ----------------------------------------------------------------------
# Session grids (vector form of SessionGenerator.generate)
# ----------------------------------------------------------------------
def columnar_sessions(
    sgen: "SessionGenerator",
    duration_s: float,
    starts: list[float],
    mix: dict[str, float],
) -> ColumnarWorkload:
    """Columnar equivalent of ``SessionGenerator.generate``.

    ``starts`` is the session-start Poisson trace (already generated —
    vector or scalar, the floats are identical).  Every per-session and
    per-turn draw is evaluated on an S x K grid with the exact scalar
    derivations; turns beyond the window are masked with the same
    break-at-first-violation semantics, and the final
    (arrival, session, turn) sort is a stable ``lexsort``.
    """
    from repro.workloads.sessions import _FOLLOWUP_DIVISOR, _MIN_USER_TOKENS

    gen = sgen.base
    seed = gen.seed
    turns = sgen.turns
    baseline = gen.roofline.baseline_decode_latency
    S = len(starts)
    start_col = _np.asarray(starts, dtype=_np.float64)
    s_arr = _np.arange(S, dtype=_np.uint64)
    k_arr = _np.arange(turns, dtype=_np.uint64)

    with _np.errstate(over="ignore"):
        # Per-session category: _sample_category(mix, derive_seed(seed,
        # "session-category", s)).
        cat_prefix = _U64(_derive_prefix(seed, "session-category"))
        d_cat = _vmix(cat_prefix, s_arr) >> _S1
        names, cat_idx = _category_column(gen, mix, d_cat)
        cats = _category_meta(gen, names)

        # Per-session conversation stream: hash_seed(seed, 0x53455353, s).
        sess_ns = _vmix(_U64(hash_seed(seed, 0x53455353)), s_arr)  # "SESS"

        # Per-turn dataset sample index: derive_seed(seed, "turn", s, k).
        turn_prefix = _U64(_derive_prefix(seed, "turn"))
        d_turn = _vmix(_vmix(turn_prefix, s_arr)[:, None], k_arr[None, :]) >> _S1

        # Length draws on the S x K grid, grouped by dataset.
        prompt_grid, output_grid = _length_columns(
            gen,
            cats,
            _np.repeat(cat_idx, turns),
            d_turn.ravel(),
        )
        prompt_grid = prompt_grid.reshape(S, turns)
        output_grid = output_grid.reshape(S, turns)

        # Follow-up user turns are shorter than the opening prompt.
        user_grid = _np.where(
            k_arr[None, :] == _U64(0),
            prompt_grid,
            _np.maximum(_MIN_USER_TOKENS, prompt_grid // _FOLLOWUP_DIVISOR),
        )

        # Session-stream history before each turn (ints, exact).
        contrib = user_grid + output_grid
        history = _np.zeros((S, turns), dtype=_np.int64)
        if turns > 1:
            history[:, 1:] = _np.cumsum(contrib[:, :-1], axis=1)

        # Think-time gaps: uniform(hash_seed(seed, 0x47415021, s), k).
        gap_h = _vmix(_U64(hash_seed(seed, 0x47415021)), s_arr)  # "GAP!"
        gap = (_splitmix(gap_h[:, None] ^ (k_arr * _CMB)[None, :]) >> _S11) * _INV_2_53

        # Arrival chain per session: arrival_{k+1} = arrival_k +
        # output_k * baseline - log(max(gap_k, 1e-12)) * think_time.
        inc = output_grid * baseline - vlog(_np.maximum(gap, 1e-12)) * sgen.think_time_s
        chain = _np.empty((S, turns), dtype=_np.float64)
        chain[:, 0] = start_col
        if turns > 1:
            chain[:, 1:] = inc[:, :-1]
        arrival_grid = _np.cumsum(chain, axis=1)

        # The scalar loop breaks at the first arrival >= duration.
        keep = _np.logical_and.accumulate(arrival_grid < duration_s, axis=1)

    row_s, row_k = _np.nonzero(keep)
    arrival = arrival_grid[keep]
    order = _np.lexsort((row_k, row_s, arrival))
    seg_tokens = (history + user_grid)[keep][order]
    return ColumnarWorkload(
        arrival=arrival[order],
        category_idx=cat_idx[row_s][order],
        prompt_len=sgen.system_prompt + seg_tokens,
        output_len=output_grid[keep][order],
        categories=cats,
        session_id=row_s[order].astype(_np.int64),
        turn_index=row_k[order].astype(_np.int64),
        seg_namespace=sess_ns[row_s][order],
        seg_tokens=seg_tokens,
        sys_namespace=(
            hash_seed(seed, 0x535953) if sgen.system_prompt > 0 else None  # "SYS"
        ),
        system_prompt=sgen.system_prompt,
    )
