"""Workload substrate: categories (Table 2), datasets, traces, generator."""

from repro.workloads.categories import (
    CATEGORIES,
    CHATBOT,
    CODING,
    DEFAULT_MIX,
    SUMMARIZATION,
    Category,
    resolve_slos,
    urgent_mix,
)
from repro.workloads.datasets import DATASETS, LengthDistribution, SyntheticDataset
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.sessions import SessionGenerator
from repro.workloads.trace import (
    bursty_trace,
    diurnal_trace,
    phased_trace,
    trace_frequency,
    uniform_trace,
)

__all__ = [
    "CATEGORIES",
    "CHATBOT",
    "CODING",
    "DATASETS",
    "DEFAULT_MIX",
    "SUMMARIZATION",
    "Category",
    "LengthDistribution",
    "SessionGenerator",
    "SyntheticDataset",
    "WorkloadGenerator",
    "bursty_trace",
    "diurnal_trace",
    "phased_trace",
    "resolve_slos",
    "trace_frequency",
    "uniform_trace",
    "urgent_mix",
]
