"""FastServe baseline: preemptive MLFQ (skip-join multi-level feedback queue).

FastServe attacks head-of-line blocking from long generations with
token-granular preemption: requests start in a high-priority queue and
are demoted as they consume their per-level quantum of output tokens, so
short outputs finish fast while long ones yield.  Our reproduction keeps
the queue structure and demotion rule; KV is retained across (logical)
preemptions, as FastServe keeps state in its proactive memory manager.
"""

from __future__ import annotations

from repro.registry import SYSTEMS
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler

#: Output-token quanta per MLFQ level; the last level is unbounded.
DEFAULT_QUANTA = (16, 32, 64, 128)


@SYSTEMS.register(
    "fastserve",
    summary="preemptive skip-join MLFQ over output tokens (FastServe)",
)
class FastServeScheduler(Scheduler):
    """Skip-join MLFQ over output tokens with preemptive decode batches."""

    name = "FastServe"

    def __init__(self, *args, quanta: tuple[int, ...] = DEFAULT_QUANTA, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not quanta or any(q < 1 for q in quanta):
            raise ValueError("quanta must be positive")
        self.quanta = quanta
        #: Cumulative demotion thresholds: a request with n generated
        #: tokens sits at the first level whose threshold exceeds n.
        self._thresholds: list[int] = []
        acc = 0
        for q in quanta:
            acc += q
            self._thresholds.append(acc)

    def _level(self, req: Request) -> int:
        """MLFQ level of a request (0 = highest priority)."""
        for lvl, threshold in enumerate(self._thresholds):
            if req.n_generated < threshold:
                return lvl
        return len(self._thresholds)

    def step(self, now: float) -> float:
        self._retire_finished()

        # Prefill priority (new arrivals enter the top queue quickly).
        if self.waiting:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency

        if not self.running:
            raise RuntimeError("FastServe scheduler stuck: no progress possible")

        # Decode only the highest non-empty level: lower levels are
        # (logically) preempted this iteration.
        top = min(self._level(r) for r in self.running)
        batch = [r for r in self.running if self._level(r) == top]
        batch.sort(key=lambda r: r.arrival_time)
        batch = self._ensure_kv_for_decode(batch[: self.max_batch_size])
        if not batch:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            raise RuntimeError("FastServe scheduler stuck: KV exhausted")
        return self.engine.decode(batch, now, context_tokens=self._last_decode_context)
