"""vLLM-Spec baseline: continuous batching + static sequence speculation.

The strongest baseline in the paper's evaluation: vLLM with speculative
decoding at a *fixed* speculation length n (vLLM-Spec(4/6/8)).  Every
decode iteration drafts an n-token chain per running request (greedy draft
decoding, n sequential draft steps over the batch) and verifies all chains
in one target pass.

The static strategy is exactly what the paper critiques (§6.2): at low
load it under-speculates and leaves the hardware idle; at high load it
floods verification with n tokens per request regardless of the budget,
inflating iteration latency for everyone.
"""

from __future__ import annotations

from repro.core.speculation import draft_chains
from repro.model.acceptance import verify_sequence
from repro.registry import SYSTEMS, Param
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler


@SYSTEMS.register(
    "vllm-spec",
    params=[
        Param(
            "k", "int", default=4, dest="spec_len", minimum=1,
            help="static speculation length (tokens drafted per request per iteration)",
        ),
    ],
    aliases={
        "vllm-spec-4": {"k": 4},
        "vllm-spec-6": {"k": 6},
        "vllm-spec-8": {"k": 8},
    },
    summary="vLLM + fixed-length sequence speculative decoding",
)
class VLLMSpecScheduler(Scheduler):
    """Static-length sequence speculative decoding on continuous batching.

    Parameters
    ----------
    spec_len:
        Number of tokens drafted per request per iteration (the paper's
        vLLM-Spec(n)).
    """

    def __init__(self, *args, spec_len: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if spec_len < 1:
            raise ValueError("spec_len must be >= 1")
        self.spec_len = spec_len
        self.name = f"vLLM-Spec({spec_len})"

    def _draft_chains(self, batch: list[Request]) -> list[list[int]]:
        """Greedy ``spec_len``-token chains for the whole batch (lockstep)."""
        return draft_chains(
            self.engine.pair,
            [(r.ctx, r.predictability) for r in batch],
            self.spec_len,
        )

    def step(self, now: float) -> float:
        self._retire_finished()

        if self.waiting:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency

        batch = self.running[: self.max_batch_size]
        # Reserve room for accepted tokens + correction.
        batch = self._ensure_kv_for_decode(batch, extra_tokens=self.spec_len + 1)
        if not batch:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            raise RuntimeError("vLLM-Spec scheduler stuck: no progress possible")

        # Draft phase: spec_len sequential steps over the whole batch.
        context = self._last_decode_context
        chains = self._draft_chains(batch)
        draft_latency = self.engine.sequence_draft_cost(self.spec_len, len(batch), context)

        # Verify phase: all chains in one target pass.
        verify_tokens = self.spec_len * len(batch)
        verify_latency = self.engine.verify_cost(verify_tokens, context)

        latency = draft_latency + verify_latency + self.engine.step_overhead_s
        end = now + latency
        for req, chain in zip(batch, chains):
            accepted, _correction, new_ctx = verify_sequence(
                self.engine.pair, req.ctx, chain, req.predictability
            )
            commit = min(accepted + 1, req.remaining_tokens)
            if commit < accepted + 1:
                # Generation cap: recompute the context for the truncated
                # prefix (the correction token may be dropped).
                ctx = req.ctx
                for tok in chain[: commit - 1]:
                    ctx = self.engine.pair.extend(ctx, tok)
                emitted = self.engine.pair.target_sample(ctx, req.predictability)
                new_ctx = self.engine.pair.extend(ctx, emitted)
            req.verify_steps += 1
            req.accepted_draft_tokens += min(accepted, commit - 1) if commit > 0 else 0
            req.commit_tokens(commit, new_ctx, end)
        self.engine.iterations += 1
        return latency
