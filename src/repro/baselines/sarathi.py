"""Sarathi-Serve baseline: chunked prefill co-batched with decode.

Sarathi-Serve observes that prefill is compute-bound while decode
under-utilizes compute, and builds every iteration as a fixed token budget
filled first with decode tokens (one per running request) and topped up
with a *chunk* of the head-of-queue prompt.  Long prompts therefore never
monopolize an iteration — the stalls that continuous batching imposes on
decoding requests shrink to one chunk's worth — at the cost of slightly
slower prefill completion.
"""

from __future__ import annotations

from repro.registry import SYSTEMS, Param
from repro.serving.kv_cache import OutOfKVCache
from repro.serving.request import RequestState
from repro.serving.scheduler_base import Scheduler

#: Sarathi's per-iteration token budget (decode tokens + prefill chunk).
DEFAULT_CHUNK_BUDGET = 256


@SYSTEMS.register(
    "sarathi",
    params=[
        Param(
            "chunk", "int", default=DEFAULT_CHUNK_BUDGET, dest="chunk_budget", minimum=1,
            help="per-iteration token budget (decode tokens + prefill chunk)",
        ),
    ],
    summary="chunked prefill co-batched with decode (Sarathi-Serve)",
)
class SarathiScheduler(Scheduler):
    """Chunked-prefill co-batching (vLLM + chunked prefill in Figure 1)."""

    name = "Sarathi-Serve"

    def __init__(self, *args, chunk_budget: int = DEFAULT_CHUNK_BUDGET, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if chunk_budget < 1:
            raise ValueError("chunk_budget must be >= 1")
        self.chunk_budget = chunk_budget

    def step(self, now: float) -> float:
        self._retire_finished()

        decode_batch = self.running[: self.max_batch_size]
        decode_batch = self._ensure_kv_for_decode(decode_batch)

        # Top up the remaining token budget with a prompt chunk.
        budget_left = max(0, self.chunk_budget - len(decode_batch))
        prefill_chunks: list[tuple] = []
        if self.waiting and budget_left > 0:
            head = self.waiting[0]
            if self._allocate_head_prefix(head, budget_left):
                chunk = min(budget_left, head.remaining_prompt)
                prefill_chunks.append((head, chunk))

        if not decode_batch and not prefill_chunks:
            # KV exhausted with nothing running: recover via base prefill
            # (which preempts/queues as needed).
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            raise RuntimeError("Sarathi scheduler stuck: no progress possible")

        latency = self.engine.mixed_step(
            decode_batch,
            prefill_chunks,
            now,
            decode_context_tokens=self._last_decode_context,
        )
        for req, _ in prefill_chunks:
            # Always the head of the queue; popleft avoids deque.remove's
            # full-field dataclass comparisons.
            if self.waiting and self.waiting[0] is req:
                self.waiting.popleft()
            else:  # pragma: no cover - defensive
                self.waiting.remove(req)
            if req.state == RequestState.RUNNING:
                self.running.append(req)
            else:
                self.waiting.appendleft(req)  # more chunks to go
        return latency

    def _allocate_head_prefix(self, req, chunk: int) -> bool:
        """Reserve KV for the next chunk of the head-of-queue prompt."""
        fresh_hit = self._lock_prefix(req)
        try:
            self.engine.kv.ensure(
                req.rid, req.prefilled + min(chunk, req.remaining_prompt) + self.engine.kv.block_size
            )
        except OutOfKVCache:
            self._unlock_prefix(req, fresh_hit)
            return False
        return True
