"""Baseline serving policies the paper compares against."""

from repro.baselines.fastserve import FastServeScheduler
from repro.baselines.priority import PriorityScheduler
from repro.baselines.sarathi import SarathiScheduler
from repro.baselines.smartspec import SmartSpecScheduler
from repro.baselines.vllm import VLLMScheduler
from repro.baselines.vllm_spec import VLLMSpecScheduler
from repro.baselines.vtc import VTCScheduler

__all__ = [
    "FastServeScheduler",
    "PriorityScheduler",
    "SarathiScheduler",
    "SmartSpecScheduler",
    "VLLMScheduler",
    "VLLMSpecScheduler",
    "VTCScheduler",
]
