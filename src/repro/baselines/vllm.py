"""vLLM-style continuous batching baseline.

The reference uniform-serving policy (§2): iteration-granularity
continuous batching where every running request decodes one token per
iteration, so all batched requests experience the same per-token latency.
Prefill takes priority — newly arrived prompts are processed in dedicated
FCFS prefill iterations before decoding resumes (vLLM's default
scheduling), which is precisely the behaviour whose SLO-blindness the
paper's Figure 1 demonstrates.
"""

from __future__ import annotations

from repro.registry import SYSTEMS
from repro.serving.scheduler_base import Scheduler


@SYSTEMS.register(
    "vllm",
    summary="continuous batching with prefill priority, uniform decode",
)
class VLLMScheduler(Scheduler):
    """Continuous batching with prefill priority and uniform decode."""

    name = "vLLM"

    def step(self, now: float) -> float:
        self._retire_finished()

        # Prefill-priority: drain the waiting queue first.
        if self.waiting:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            # KV exhausted: fall through to decode, which frees blocks as
            # requests finish.

        batch = self.running[: self.max_batch_size]
        batch = self._ensure_kv_for_decode(batch)
        if not batch:
            # Nothing decodable; force forward progress by preempting the
            # newest running request to make room (degenerate KV pressure).
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            raise RuntimeError("vLLM scheduler stuck: no prefill and no decode possible")
        return self.engine.decode(batch, now, context_tokens=self._last_decode_context)
