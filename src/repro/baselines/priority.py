"""vLLM + Priority baseline: urgent requests preempt during decode.

The Figure 1 "vLLM + Priority" configuration: requests carry a priority
(category-1/urgent = 0, others = 1) and urgent requests preempt
non-urgent ones at decode time.  To actually meet tight SLOs the system
must keep urgent decode batches *small* (batch latency grows with size),
which is the behaviour the paper critiques: urgent categories do well,
but constrained batches collapse overall throughput and congest the
relaxed categories.
"""

from __future__ import annotations

from repro.registry import SYSTEMS, Param
from repro.serving.scheduler_base import Scheduler

#: Cap on the urgent-only decode batch (small to keep latency low).
DEFAULT_URGENT_BATCH_CAP = 8


@SYSTEMS.register(
    "priority",
    params=[
        Param(
            "cap", "int", default=DEFAULT_URGENT_BATCH_CAP, dest="urgent_batch_cap", minimum=1,
            help="cap on the urgent-only decode batch",
        ),
    ],
    summary="strict-priority decode with constrained urgent batches",
)
class PriorityScheduler(Scheduler):
    """Strict-priority decode with constrained urgent batches."""

    name = "vLLM+Priority"

    def __init__(self, *args, urgent_batch_cap: int = DEFAULT_URGENT_BATCH_CAP, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if urgent_batch_cap < 1:
            raise ValueError("urgent_batch_cap must be >= 1")
        self.urgent_batch_cap = urgent_batch_cap

    def step(self, now: float) -> float:
        self._retire_finished()

        urgent = [r for r in self.running if r.priority == 0]

        # Urgent decodes preempt everything, including prefill, and run in
        # small batches ordered by SLO debt.
        if urgent:
            urgent.sort(key=lambda r: r.requirement(now, 0.0), reverse=True)
            batch = self._ensure_kv_for_decode(urgent[: self.urgent_batch_cap])
            if batch:
                return self.engine.decode(
                    batch, now, context_tokens=self._last_decode_context
                )

        # No urgent work: behave like vLLM (prefill priority, then decode).
        if self.waiting:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency

        batch = self._ensure_kv_for_decode(self.running[: self.max_batch_size])
        if batch:
            return self.engine.decode(
                batch, now, context_tokens=self._last_decode_context
            )

        latency = self._prefill_iteration(now)
        if latency is not None:
            return latency
        raise RuntimeError("Priority scheduler stuck: no progress possible")
