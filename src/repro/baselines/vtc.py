"""VTC baseline: fair serving via virtual token counters.

VTC (Virtual Token Counter) provides service-level fairness: each service
(here, each request category) accrues a counter of weighted tokens served,
and the scheduler always dispatches work for the service with the lowest
counter.  This equalizes service *across categories* — which, as Figure 1
shows, is orthogonal to meeting heterogeneous SLOs: the fair share it
hands a summarization service is indistinguishable from what it hands a
latency-critical copilot.
"""

from __future__ import annotations

from collections import defaultdict

from repro.registry import SYSTEMS
from repro.serving.scheduler_base import Scheduler

#: Weight of a prompt token relative to an output token in the counter
#: (VTC counts input tokens at a reduced weight).
INPUT_TOKEN_WEIGHT = 0.5


@SYSTEMS.register(
    "vtc",
    summary="fair-share decode via per-category virtual token counters",
)
class VTCScheduler(Scheduler):
    """Fair-share decode ordered by per-category virtual token counters."""

    name = "VTC"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.counters: dict[str, float] = defaultdict(float)

    def step(self, now: float) -> float:
        self._retire_finished()

        if self.waiting:
            latency = self._prefill_with_accounting(now)
            if latency is not None:
                return latency

        if not self.running:
            raise RuntimeError("VTC scheduler stuck: no progress possible")

        # Fill the decode batch in ascending counter order; requests from
        # the least-served category go first.
        order = sorted(
            self.running, key=lambda r: (self.counters[r.category], r.arrival_time)
        )
        batch = self._ensure_kv_for_decode(order[: self.max_batch_size])
        if not batch:
            latency = self._prefill_with_accounting(now)
            if latency is not None:
                return latency
            raise RuntimeError("VTC scheduler stuck: KV exhausted")
        latency = self.engine.decode(batch, now, context_tokens=self._last_decode_context)
        for req in batch:
            self.counters[req.category] += 1.0
        return latency

    def _prefill_with_accounting(self, now: float) -> float | None:
        """Prefill FCFS, charging prompt tokens to category counters."""
        batch = self._take_prefill_batch()
        if not batch:
            return None
        latency = self.engine.prefill(batch, now)
        for req, tokens in batch:
            self.counters[req.category] += INPUT_TOKEN_WEIGHT * tokens
            if req.state.value == "running":
                self.running.append(req)
            else:
                self.waiting.appendleft(req)
        return latency
