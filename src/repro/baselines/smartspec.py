"""SmartSpec-style baseline: adaptive *chain* speculation (related work).

SmartSpec (Liu et al., referenced in §7) tunes the draft chain length per
iteration from the observed acceptance rate and system load, optimizing
goodput — but it is SLO-blind and chain-based (no trees, no per-request
customization).  It sits between vLLM-Spec(n) and AdaServe in the design
space, which makes it the right instrument for attributing AdaServe's
gains: adaptivity alone (this scheduler) vs. adaptivity + SLO-customized
tree allocation (AdaServe).

Policy reproduced here:

- Track an exponential moving average of the per-token acceptance rate.
- Each iteration, pick the chain length k in [1, k_max] maximizing the
  predicted *goodput rate*: expected tokens generated per second,

      rate(k) = n * (E[accepted | k, p] + 1) / iteration_latency(k)

  where E[accepted | k, p] = p(1-p^k)/(1-p) is the geometric acceptance
  sum and iteration_latency(k) prices k draft steps plus verification of
  n*k tokens with the roofline.
"""

from __future__ import annotations

from repro.core.speculation import draft_chains
from repro.model.acceptance import verify_sequence
from repro.registry import SYSTEMS, Param
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler

#: Bounds on the adaptive chain length.
DEFAULT_K_MAX = 8

#: EMA smoothing for the observed acceptance rate.
_EMA_ALPHA = 0.15


@SYSTEMS.register(
    "smartspec",
    params=[
        Param(
            "k_max", "int", default=DEFAULT_K_MAX, minimum=1,
            help="upper bound on the adaptive draft chain length",
        ),
    ],
    summary="goodput-adaptive chain speculation (SmartSpec-style)",
)
class SmartSpecScheduler(Scheduler):
    """Goodput-adaptive chain speculation on continuous batching."""

    name = "SmartSpec"

    def __init__(self, *args, k_max: int = DEFAULT_K_MAX, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if k_max < 1:
            raise ValueError("k_max must be >= 1")
        self.k_max = k_max
        #: EMA of the per-position acceptance probability.
        self.acceptance_ema = 0.7
        self.last_k = 1

    # ------------------------------------------------------------------
    def _expected_accepted(self, k: int, p: float) -> float:
        """Geometric acceptance sum for a depth-k chain."""
        if p >= 1.0:
            return float(k)
        return p * (1.0 - p**k) / (1.0 - p)

    def _iteration_latency(self, k: int, n: int, context: int) -> float:
        """Predicted latency of a k-chain iteration over n requests."""
        draft = self.engine.draft_roofline.forward_latency(n, context) * k
        verify = self.engine.target_roofline.forward_latency(n * k, context)
        return draft + verify + self.engine.step_overhead_s

    def choose_k(self, n: int, context: int) -> int:
        """Chain length maximizing predicted tokens/second."""
        p = self.acceptance_ema
        best_k, best_rate = 1, 0.0
        for k in range(1, self.k_max + 1):
            rate = n * (self._expected_accepted(k, p) + 1.0) / self._iteration_latency(
                k, n, context
            )
            if rate > best_rate:
                best_k, best_rate = k, rate
        return best_k

    def _observe(self, accepted: int, proposed: int) -> None:
        """Fold an iteration's acceptance into the EMA."""
        if proposed <= 0:
            return
        rate = accepted / proposed
        self.acceptance_ema = (
            (1 - _EMA_ALPHA) * self.acceptance_ema + _EMA_ALPHA * rate
        )
        # Keep the estimate in a sane band (rate can hit 0/1 on tiny batches).
        self.acceptance_ema = min(0.95, max(0.05, self.acceptance_ema))

    def _draft_chains(self, batch: list[Request], k: int) -> list[list[int]]:
        """Greedy ``k``-token chains for the whole batch (lockstep)."""
        return draft_chains(
            self.engine.pair,
            [(r.ctx, r.predictability) for r in batch],
            k,
        )

    # ------------------------------------------------------------------
    def step(self, now: float) -> float:
        self._retire_finished()

        if self.waiting:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency

        batch = self.running[: self.max_batch_size]
        batch = self._ensure_kv_for_decode(batch, extra_tokens=self.k_max + 1)
        if not batch:
            latency = self._prefill_iteration(now)
            if latency is not None:
                return latency
            raise RuntimeError("SmartSpec scheduler stuck: no progress possible")

        context = self._last_decode_context
        k = self.choose_k(len(batch), context)
        self.last_k = k

        chains = self._draft_chains(batch, k)
        draft_latency = self.engine.sequence_draft_cost(k, len(batch), context)
        verify_latency = self.engine.verify_cost(k * len(batch), context)
        latency = draft_latency + verify_latency + self.engine.step_overhead_s

        end = now + latency
        total_accepted = 0
        for req, chain in zip(batch, chains):
            accepted, _corr, new_ctx = verify_sequence(
                self.engine.pair, req.ctx, chain, req.predictability
            )
            commit = min(accepted + 1, req.remaining_tokens)
            if commit < accepted + 1:
                ctx = req.ctx
                for tok in chain[: commit - 1]:
                    ctx = self.engine.pair.extend(ctx, tok)
                emitted = self.engine.pair.target_sample(ctx, req.predictability)
                new_ctx = self.engine.pair.extend(ctx, emitted)
            req.verify_steps += 1
            req.accepted_draft_tokens += min(accepted, commit - 1) if commit > 0 else 0
            req.commit_tokens(commit, new_ctx, end)
            total_accepted += accepted
        self._observe(total_accepted, k * len(batch))
        self.engine.iterations += 1
        return latency
