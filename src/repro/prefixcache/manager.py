"""Prefix-sharing KV-cache manager (vLLM automatic-prefix-caching style).

Extends the block-granular :class:`~repro.serving.kv_cache.KVCacheManager`
with a content-addressed table of **shared blocks**.  Physical capacity is
one pool: every resident block is either *private* to a request (partial
tail block, in-flight generation) or *shared* (a full block whose key
hash-chains its entire token prefix).  Shared blocks are refcounted by
the live requests matching them and stay resident after their last
reference drops, forming a reuse cache evicted LRU, leaf-first, only
under allocation pressure — so enabling prefix caching never makes an
allocation fail that would have succeeded without it.

Lifecycle (driven by the engine/scheduler hooks):

- :meth:`lock_prefix` at admission — match the prompt against the shared
  table and take references; the hit length counts as already prefilled.
- :meth:`commit_prefix` when prefill completes (prompt blocks) and again
  when the request finishes (prompt + generated tokens) — full private
  blocks are reclassified as shared, deduplicating against any identical
  chain already resident.
- :meth:`free` — private blocks return to the pool; shared references
  drop, leaving reusable blocks behind.

:meth:`match_prefix` is the read-only query (``tokens -> cached_len``);
:meth:`prefix_stats` reports hit/evict counters.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

from repro.prefixcache.tokens import block_keys
from repro.serving.kv_cache import (
    DEFAULT_BLOCK_SIZE,
    KVCacheManager,
    KVStats,
    OutOfKVCache,
)


@dataclass
class _Block:
    """One shared (content-addressed) KV block."""

    parent: int | None  # key of the previous block in the chain
    refcount: int = 0  # live requests referencing this block
    children: int = 0  # resident blocks chained after this one
    touch: int = 0  # LRU stamp (monotonic tick at last use)


@dataclass(frozen=True)
class PrefixStats:
    """Hit/evict counters for one manager instance."""

    lookups: int = 0
    hits: int = 0  # lookups that matched at least one block
    hit_tokens: int = 0  # prefill tokens served from cache
    committed_blocks: int = 0  # private blocks reclassified as shared
    evicted_blocks: int = 0  # shared blocks dropped under pressure
    cached_blocks: int = 0  # shared blocks currently resident
    unreferenced_blocks: int = 0  # resident shared blocks with refcount 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched a cached prefix."""
        return self.hits / self.lookups if self.lookups else 0.0


class PrefixCacheManager(KVCacheManager):
    """Block-level prefix sharing over the base capacity accounting.

    The base-class interface (``ensure``/``can_fit``/``free``) keeps its
    meaning — ``ensure(rid, tokens)`` guarantees ``tokens`` resident for
    the request — but a request's shared references satisfy part of the
    need, and unreferenced shared blocks are evicted on demand before an
    allocation is refused.
    """

    prefix_caching = True

    def __init__(self, capacity_tokens: int, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(capacity_tokens, block_size)
        self._shared: dict[int, _Block] = {}
        self._refs: dict[int, list[int]] = {}  # rid -> chain of shared keys
        self._unreferenced = 0
        self._tick = 0
        self._evictable: list[tuple[int, int]] = []  # (touch, key) lazy heap
        #: Requests whose miss has been counted this prefill pass, so the
        #: per-iteration lock retries of a queued request do not inflate
        #: the lookup counter (cleared by :meth:`free`).
        self._miss_counted: set[int] = set()
        self._lookups = 0
        self._hits = 0
        self._hit_tokens = 0
        self._committed = 0
        self._evicted = 0

    # ------------------------------------------------------------------
    # Occupancy (shared blocks occupy the same physical pool)
    # ------------------------------------------------------------------
    @property
    def used_blocks(self) -> int:
        """Physical blocks in use: private allocations + shared blocks."""
        return self._used + len(self._shared)

    @property
    def free_blocks(self) -> int:
        """Blocks immediately available (excludes evictable shared blocks)."""
        return self.total_blocks - self._used - len(self._shared)

    def holds(self, rid: int) -> bool:
        """Whether the request has any allocation or shared reference."""
        return rid in self._allocated or rid in self._refs

    def stats(self) -> KVStats:
        """Occupancy snapshot (shared blocks count as used)."""
        return KVStats(
            total_blocks=self.total_blocks,
            used_blocks=self.used_blocks,
            num_requests=len(self._allocated.keys() | self._refs.keys()),
        )

    def prefix_stats(self) -> PrefixStats:
        """Hit/evict counter snapshot."""
        return PrefixStats(
            lookups=self._lookups,
            hits=self._hits,
            hit_tokens=self._hit_tokens,
            committed_blocks=self._committed,
            evicted_blocks=self._evicted,
            cached_blocks=len(self._shared),
            unreferenced_blocks=self._unreferenced,
        )

    # ------------------------------------------------------------------
    # Matching and reference lifecycle
    # ------------------------------------------------------------------
    def match_prefix(self, tokens: Sequence[int]) -> int:
        """Longest cached prefix of ``tokens``, in tokens (block-rounded).

        Read-only: takes no references and updates no stamps.
        """
        matched = 0
        for key in block_keys(tokens, self.block_size):
            if key not in self._shared:
                break
            matched += 1
        return matched * self.block_size

    def lock_prefix(self, rid: int, tokens: Sequence[int]) -> int:
        """Match ``tokens`` and reference the hit chain for ``rid``.

        Returns the cached length in tokens.  References pin blocks
        against eviction until :meth:`free`.  A request that already
        holds references keeps them (a retry returns the locked length);
        a request whose earlier attempts matched nothing retries the
        match, so a prefix committed after its arrival is still found.
        """
        return self.lock_keys(rid, block_keys(tokens, self.block_size))

    def lock_keys(self, rid: int, keys: Sequence[int]) -> int:
        """:meth:`lock_prefix` over precomputed block keys.

        Stats are per (request, prefill pass): a queued request retrying
        its match every iteration counts one lookup, not one per retry;
        a hit is counted on the attempt that matches.
        """
        held = self._refs.get(rid)
        if held:
            return len(held) * self.block_size
        chain: list[int] = []
        for key in keys:
            block = self._shared.get(key)
            if block is None:
                break
            self._ref(key, block)
            chain.append(key)
        if chain:
            self._refs[rid] = chain
            if rid not in self._miss_counted:
                self._lookups += 1
            self._miss_counted.discard(rid)
            self._hits += 1
            self._hit_tokens += len(chain) * self.block_size
        elif rid not in self._miss_counted:
            self._miss_counted.add(rid)
            self._lookups += 1
        return len(chain) * self.block_size

    def release_prefix(self, rid: int) -> int:
        """Drop ``rid``'s shared references (private blocks untouched).

        The rollback half of :meth:`lock_keys`, used when a freshly
        locked request fails to enter its prefill batch: the hit's stats
        are reverted and the blocks become evictable again (unless other
        requests still reference them).  Returns the references dropped.
        """
        chain = self._refs.pop(rid, [])
        for key in reversed(chain):
            self._unref(key)
        if chain:
            self._hits -= 1
            self._hit_tokens -= len(chain) * self.block_size
            self._lookups -= 1
        return len(chain)

    def commit_prefix(self, rid: int, tokens: Sequence[int]) -> int:
        """Publish the full blocks of ``tokens`` as shared, owned by ``rid``.

        Blocks the request already references are skipped; the rest are
        reclassified from its private allocation (or deduplicated against
        an identical resident chain).  Returns the number of blocks newly
        attributed to the shared table for this request.
        """
        return self.commit_keys(rid, block_keys(tokens, self.block_size))

    def commit_keys(self, rid: int, keys: Sequence[int]) -> int:
        """:meth:`commit_prefix` over precomputed block keys."""
        keys = list(keys)
        chain = self._refs.setdefault(rid, [])
        if keys[: len(chain)] != chain:
            raise ValueError(f"request {rid}: commit diverges from its locked prefix")
        added = 0
        for key in keys[len(chain) :]:
            block = self._shared.get(key)
            if block is None:
                parent = chain[-1] if chain else None
                block = _Block(parent=parent, refcount=0, children=0, touch=self._tick)
                if parent is not None:
                    self._shared[parent].children += 1
                self._shared[key] = block
                self._unreferenced += 1  # transient; _ref below claims it
            self._ref(key, block)
            chain.append(key)
            # The physical block was covered by the request's private
            # allocation; hand it to the shared table (net occupancy 0
            # for a new block, -1 for a deduplicated one).
            if self._allocated.get(rid, 0) > 0:
                self._allocated[rid] -= 1
                self._used -= 1
            self._committed += 1
            added += 1
        return added

    def _ref(self, key: int, block: _Block) -> None:
        if block.refcount == 0:
            self._unreferenced -= 1
        block.refcount += 1
        self._tick += 1
        block.touch = self._tick

    def _unref(self, key: int) -> None:
        block = self._shared[key]
        block.refcount -= 1
        if block.refcount == 0:
            self._unreferenced += 1
            self._tick += 1
            block.touch = self._tick
            heapq.heappush(self._evictable, (block.touch, key))

    # ------------------------------------------------------------------
    # Allocation (base interface, prefix-aware)
    # ------------------------------------------------------------------
    def _private_need(self, rid: int, tokens: int) -> int:
        """Private blocks required beyond the request's shared references."""
        return max(0, self.blocks_for(tokens) - len(self._refs.get(rid, ())))

    def can_fit(self, rid: int, tokens: int) -> bool:
        """Whether ``ensure(rid, tokens)`` would succeed (eviction included)."""
        need = self._private_need(rid, tokens) - self.allocation(rid)
        return need <= self.free_blocks + self._unreferenced

    def ensure(self, rid: int, tokens: int) -> None:
        """Grow ``rid``'s allocation to cover ``tokens`` resident tokens.

        Shared references satisfy their part of the need; unreferenced
        shared blocks are evicted (LRU, leaf-first) to make room before
        :class:`OutOfKVCache` is raised.
        """
        target = self._private_need(rid, tokens)
        have = self._allocated.get(rid, 0)
        if target <= have:
            return
        need = target - have
        self._reclaim(need)
        if need > self.free_blocks:
            raise OutOfKVCache(
                f"request {rid} needs {need} blocks, only {self.free_blocks} free"
            )
        self._allocated[rid] = target
        self._used += need

    def free(self, rid: int) -> int:
        """Release the request's blocks; returns how many it gave up.

        Private blocks return to the free pool immediately; shared
        references drop, leaving the blocks cached (evictable once no
        other request references them).  Idempotent.
        """
        released = super().free(rid)
        chain = self._refs.pop(rid, [])
        for key in reversed(chain):
            self._unref(key)
        self._miss_counted.discard(rid)  # a re-admission is a fresh pass
        return released + len(chain)

    def invalidate_all(self) -> None:
        """Drop every allocation, reference, and shared block at once.

        Models a replica crash (see :mod:`repro.chaos`): the device
        memory backing both private allocations *and* the shared prefix
        table is gone, so sessions homed here re-prefill from scratch.
        Cumulative hit/evict counters are deliberately kept — they count
        work that genuinely happened before the crash.
        """
        super().invalidate_all()
        self._shared.clear()
        self._refs.clear()
        self._unreferenced = 0
        self._evictable = []
        self._miss_counted.clear()

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _reclaim(self, need: int) -> None:
        """Evict unreferenced leaf blocks (LRU) until ``need`` fit or none left."""
        while self.free_blocks < need and self._evictable:
            touch, key = heapq.heappop(self._evictable)
            block = self._shared.get(key)
            if (
                block is None
                or block.touch != touch
                or block.refcount != 0
                or block.children != 0
            ):
                continue  # stale heap entry
            del self._shared[key]
            self._unreferenced -= 1
            self._evicted += 1
            if block.parent is not None:
                parent = self._shared[block.parent]
                parent.children -= 1
                if parent.refcount == 0 and parent.children == 0:
                    heapq.heappush(self._evictable, (parent.touch, block.parent))
