"""Deterministic token identity for prefix matching.

The simulator never materializes text, but prefix caching needs *content
identity*: two prompts share cached KV exactly when they share leading
tokens.  Every request therefore describes its prompt as a sequence of
``(namespace, length)`` **segments** over deterministic token streams
(:attr:`~repro.serving.request.Request.prompt_segments`):

- a shared system prompt is one namespace common to every session of a
  workload, so even unrelated sessions reuse its KV;
- a session's conversation history is one namespace per session whose
  stream covers user turns *and* model answers — turn ``k+1``'s history
  is a strict prefix extension of turn ``k``'s prompt + output, which is
  what makes multi-turn reuse work;
- a request without segments owns a private per-rid stream (no sharing).

Token ``j`` of a segment is ``mix(namespace, j)``; generated tokens
extend the final segment (the model's answer continues the conversation
stream).  Block keys chain block content hashes, so a block's key
commits to its entire prefix — matching is a flat dict walk, exactly the
hash-chained block table of vLLM's automatic prefix caching.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._rng import hash_seed, mix

#: Namespace tag for requests without explicit segments (one-shot prompts).
_COLD_TAG = 0x434F4C44  # "COLD"

#: Root of every block-key hash chain.
_CHAIN_ROOT = 0x50464358  # "PFCX"

#: Memoized token streams, one list per namespace: token ``j`` of a
#: namespace is the pure function ``mix(namespace, j)``, and session
#: workloads re-walk the same shared streams (system prompt, per-session
#: history) once per turn — the memo turns those re-walks into list
#: reads.  Bounded: cleared wholesale if an extreme workload accumulates
#: too many namespaces.
_STREAM_CACHE: dict[int, list[int]] = {}
_STREAM_CACHE_CAP = 65_536


def _stream(namespace: int) -> list[int]:
    """The (growable) memoized token stream for a namespace."""
    stream = _STREAM_CACHE.get(namespace)
    if stream is None:
        if len(_STREAM_CACHE) >= _STREAM_CACHE_CAP:
            _STREAM_CACHE.clear()
        stream = _STREAM_CACHE[namespace] = []
    return stream


def request_segments(req) -> tuple[tuple[int, int], ...]:
    """The request's prompt segments (private per-rid stream if unset)."""
    if req.prompt_segments:
        return req.prompt_segments
    return ((hash_seed(_COLD_TAG, req.rid), req.prompt_len),)


def token_ids(req, n_tokens: int) -> list[int]:
    """The first ``n_tokens`` token ids of the request's prompt + output.

    Positions beyond the prompt (generated tokens) continue the final
    segment's stream, so a finished turn's full context is itself a
    well-defined stream prefix for the next turn to match.
    """
    if n_tokens < 0:
        raise ValueError("n_tokens must be non-negative")
    segments = request_segments(req)
    out: list[int] = []
    for i, (namespace, length) in enumerate(segments):
        last = i == len(segments) - 1
        span = n_tokens - len(out) if last else min(length, n_tokens - len(out))
        for j in range(span):
            out.append(mix(namespace, j))
        if len(out) >= n_tokens:
            break
    return out


def block_keys(ids: Sequence[int], block_size: int) -> list[int]:
    """Hash-chained keys of the *full* blocks covering ``ids``.

    Key ``b`` digests tokens ``[0, (b+1) * block_size)``, so equal keys
    imply equal full prefixes; the trailing partial block has no key
    (only whole blocks are shareable).
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    keys: list[int] = []
    h = _CHAIN_ROOT
    for i, token in enumerate(ids):
        h = mix(h, token)
        if (i + 1) % block_size == 0:
            keys.append(h)
    return keys


#: Memoized block-key chains, keyed by the stream identity they digest:
#: the fixed (namespace, length) segments plus the extending final
#: namespace and the block size.  Two requests with the same key walk the
#: *same* infinite token stream (streams are pure functions of their
#: namespaces), so a session's turn k+1 — whose prompt strictly extends
#: turn k's prompt + answer — resumes the chain where the previous turn
#: left off instead of re-hashing the whole shared prefix every turn.
_CHAIN_CACHE: dict[tuple, list] = {}
_CHAIN_CACHE_CAP = 65_536


def request_block_keys(req, n_tokens: int, block_size: int) -> list[int]:
    """Block keys for the request's first ``n_tokens``, chained incrementally.

    Keys are queried repeatedly over a request's lifetime (admission
    match, prefill-complete commit, finish commit) at monotonically
    growing lengths, and re-queried by every later turn of the same
    session over the shared stream; the hash chain is resumed from the
    memoized state (see :data:`_CHAIN_CACHE`) instead of re-mixed from
    position 0 each time.
    """
    segments = request_segments(req)
    chain_key = (block_size, segments[:-1], segments[-1][0])
    state = _CHAIN_CACHE.get(chain_key)
    if state is None:
        if len(_CHAIN_CACHE) >= _CHAIN_CACHE_CAP:
            _CHAIN_CACHE.clear()
        state = _CHAIN_CACHE[chain_key] = [0, _CHAIN_ROOT, []]
    consumed, h, keys = state
    if n_tokens > consumed:
        # Walk segment by segment (instead of a per-position segment
        # scan), reading token ids from the per-namespace stream memo.
        n_seg = len(segments)
        pos = consumed
        offset = 0
        append_key = keys.append
        for i, (namespace, length) in enumerate(segments):
            end = n_tokens if i == n_seg - 1 else min(offset + length, n_tokens)
            if pos < end:
                stream = _stream(namespace)
                upto = end - offset
                while len(stream) < upto:
                    stream.append(mix(namespace, len(stream)))
                for j in range(pos - offset, upto):
                    h = mix(h, stream[j])
                    pos += 1
                    if pos % block_size == 0:
                        append_key(h)
            offset += length
            if pos >= n_tokens:
                break
        state[0] = n_tokens
        state[1] = h
    return keys[: n_tokens // block_size]


def _token_at(segments: Sequence[tuple[int, int]], pos: int) -> int:
    """Token id at global stream position ``pos`` (final segment extends)."""
    offset = 0
    for i, (namespace, length) in enumerate(segments):
        if pos < offset + length or i == len(segments) - 1:
            return mix(namespace, pos - offset)
        offset += length
    raise IndexError(pos)  # unreachable: the final segment is unbounded
