"""Prefix-cache subsystem: shared-prefix KV reuse across requests.

Multi-turn sessions, agent loops, and RAG-over-a-shared-system-prompt
traffic repeat long prompt prefixes; serving them from cached KV instead
of recomputing prefill is the mechanism behind vLLM's automatic prefix
caching and SGLang-style radix reuse.  This package provides

- :mod:`repro.prefixcache.tokens` — deterministic token identity: prompt
  streams, segment composition, hash-chained block keys;
- :mod:`repro.prefixcache.manager` — :class:`PrefixCacheManager`, the
  refcounted, LRU-evicted shared-block extension of the KV manager.

Enable it per experiment with ``ExperimentSpec.create(...,
prefix_cache=True)`` or ``repro run/sweep/cluster --prefix-cache``; pair
it with the ``sessions``/``agentic`` traces
(:mod:`repro.workloads.sessions`) and the ``prefix-affinity`` router
(:mod:`repro.cluster.router`) for the full reuse scenario.
"""

from repro.prefixcache.manager import PrefixCacheManager, PrefixStats
from repro.prefixcache.tokens import block_keys, request_segments, token_ids

__all__ = [
    "PrefixCacheManager",
    "PrefixStats",
    "block_keys",
    "request_segments",
    "token_ids",
]
