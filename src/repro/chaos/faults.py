"""Fault components and the deterministic :class:`FaultSchedule`.

Faults are registry components (``repro list faults``) resolved from the
same ``name:key=value`` spec grammar as systems, traces, and routers:

- ``crash:at=120,replica=1,restart=20`` — kill a replica at t=120s; all
  of its KV blocks and shared prefix blocks are lost, in-flight requests
  are re-queued and re-routed, and the replica restarts 20s later with a
  cold cache.
- ``straggler:slow=2.0,at=30,duration=40`` — degrade one replica's
  hardware by a latency multiplier for a window (``duration=auto`` means
  the rest of the run).
- ``scale-delay:extra=10`` — autoscaler scale-ups take 10 extra seconds
  of warmup (slow control plane / cold node pool).

``at`` and ``replica`` default to ``auto``: drawn from a seed derived
from the *run* seed (``derive_seed(seed, "chaos", declaration_index)``)
so a fixed-seed run — including its faults — is byte-identical across
repeats, yet independent fault declarations get independent draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._rng import derive_seed, hash_seed, randint, uniform
from repro.registry import FAULTS, Param


@dataclass(frozen=True)
class FaultEvent:
    """One concrete scheduled fault, ready to ride the fleet event heap.

    ``kind`` is one of ``crash``, ``restart``, ``straggler``,
    ``straggler-end``, or ``scale-delay``.  ``restart`` and
    ``straggler-end`` are never declared by users — the fleet appends
    them while processing a ``crash`` / bounded ``straggler``.
    """

    at_s: float
    kind: str
    replica: int | None = None
    #: crash only: seconds until the replica rejoins with a cold cache.
    restart_s: float = 0.0
    #: straggler only: latency multiplier (> 1 is slower).
    slow: float = 1.0
    #: straggler only: degradation window; None = rest of the run.
    duration_s: float | None = None
    #: scale-delay only: extra warmup seconds for future scale-ups.
    extra_s: float = 0.0


def _auto_time(h: int, window_s: float) -> float:
    """Draw an injection time inside the workload's busy middle.

    Uniform over [15%, 75%] of the arrival window, so an auto fault
    neither fires before any work exists nor after the fleet drained.
    """
    return (0.15 + 0.6 * uniform(h, 1)) * window_s


def _auto_replica(h: int, num_replicas: int) -> int:
    return randint(h, 2, 0, max(1, num_replicas))


@FAULTS.register(
    "crash",
    params=[
        Param("at", "float", default=None, allow_auto=True, minimum=0.0,
              help="injection time in seconds (auto = seeded draw)"),
        Param("replica", "int", default=None, allow_auto=True, minimum=0,
              help="victim replica index (auto = seeded draw)"),
        Param("restart", "float", default=20.0, dest="restart_s", minimum=0.0,
              help="seconds until the replica rejoins, cache cold"),
    ],
    summary="kill a replica (KV + prefix cache lost), restart it later",
)
@dataclass(frozen=True)
class CrashFault:
    at: float | None = None
    replica: int | None = None
    restart_s: float = 20.0

    def materialize(self, h: int, window_s: float, num_replicas: int) -> tuple[FaultEvent, ...]:
        at = self.at if self.at is not None else _auto_time(h, window_s)
        replica = self.replica if self.replica is not None else _auto_replica(h, num_replicas)
        return (FaultEvent(at_s=at, kind="crash", replica=replica, restart_s=self.restart_s),)


@FAULTS.register(
    "straggler",
    params=[
        Param("slow", "float", default=2.0, minimum=1.0,
              help="latency multiplier applied to every engine step"),
        Param("at", "float", default=None, allow_auto=True, minimum=0.0,
              help="injection time in seconds (auto = seeded draw)"),
        Param("replica", "int", default=None, allow_auto=True, minimum=0,
              help="victim replica index (auto = seeded draw)"),
        Param("duration", "float", default=None, dest="duration_s",
              allow_auto=True, minimum=0.0,
              help="degradation window in seconds (auto = rest of run)"),
    ],
    summary="degrade one replica's step latency by a slow-factor",
)
@dataclass(frozen=True)
class StragglerFault:
    slow: float = 2.0
    at: float | None = None
    replica: int | None = None
    duration_s: float | None = None

    def materialize(self, h: int, window_s: float, num_replicas: int) -> tuple[FaultEvent, ...]:
        at = self.at if self.at is not None else _auto_time(h, window_s)
        replica = self.replica if self.replica is not None else _auto_replica(h, num_replicas)
        return (
            FaultEvent(
                at_s=at,
                kind="straggler",
                replica=replica,
                slow=self.slow,
                duration_s=self.duration_s,
            ),
        )


@FAULTS.register(
    "scale-delay",
    params=[
        Param("extra", "float", default=10.0, dest="extra_s", minimum=0.0,
              help="extra warmup seconds for every later scale-up"),
        Param("at", "float", default=0.0, minimum=0.0,
              help="time the control plane starts lagging"),
    ],
    summary="slow control plane: autoscaler scale-ups warm up late",
)
@dataclass(frozen=True)
class ScaleDelayFault:
    extra_s: float = 10.0
    at: float = 0.0

    def materialize(self, h: int, window_s: float, num_replicas: int) -> tuple[FaultEvent, ...]:
        return (FaultEvent(at_s=self.at, kind="scale-delay", extra_s=self.extra_s),)


@dataclass(frozen=True)
class FaultSchedule:
    """Materialized fault events for one run, in declaration order.

    Events are *not* pre-sorted: the fleet pushes them onto its event
    heap, which orders them by time with declaration index as the tie
    break — exactly the order a repeated run reproduces.
    """

    events: tuple[FaultEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[str],
        *,
        seed: int,
        window_s: float,
        num_replicas: int,
    ) -> "FaultSchedule":
        """Resolve fault spec strings into concrete events.

        ``seed`` should already be derived from the run seed (the
        harness uses ``derive_seed(run_seed, "chaos")``); each
        declaration then gets its own sub-seed by index so adding a
        fault never perturbs the draws of the ones before it.
        """
        events: list[FaultEvent] = []
        for i, spec in enumerate(specs):
            fault = FAULTS.create(spec)
            h = hash_seed(derive_seed(seed, i))
            events.extend(fault.materialize(h, window_s=window_s, num_replicas=num_replicas))
        return cls(events=tuple(events))
