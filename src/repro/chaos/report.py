"""Incident accounting: fault timeline, recovery milestones, SLO impact.

The fleet keeps a :class:`ChaosLog` while a fault schedule is active and
:func:`build_chaos_report` condenses it — together with the run's final
request states — into a plain-dict incident report that is strict-JSON
safe (no NaN, ``None`` for "not applicable") and rides the normal report
export/cache round-trip.  :func:`format_incident_table` renders the same
dict for humans (CLI) and for ``$GITHUB_STEP_SUMMARY`` (markdown).

Glossary (also in the README):

- **recovery time**: per crash, from the crash instant until the last
  request evacuated from the dead replica finishes; ``None`` while any
  evacuated request is still unfinished at end of run.
- **requests disrupted**: requests evacuated from a crashed replica at
  least once (``failover_count > 0``).
- **requests lost**: disrupted requests still unfinished at end of run.
- **incident-window attainment**: SLO attainment restricted to requests
  that *arrived* inside a [crash, recovered] window (merged when crashes
  overlap), i.e. service quality while the fleet was degraded.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.serving.request import Request


class ChaosLog:
    """Append-only timeline of fault events as the fleet applies them."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def note(self, time_s: float, kind: str, **detail: object) -> None:
        record: dict = {"time_s": time_s, "kind": kind}
        record.update(detail)
        self.records.append(record)


def _merge_windows(windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [start, end] intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def build_chaos_report(
    log: ChaosLog,
    requests: Iterable[Request],
    sim_time_s: float,
) -> dict:
    """Condense the fault log plus final request states into one dict."""
    reqs = list(requests)
    by_rid = {r.rid: r for r in reqs}

    events: list[dict] = []
    crashes: list[dict] = []
    num_stragglers = 0
    for rec in log.records:
        event = {k: v for k, v in rec.items() if k != "requeued"}
        if rec["kind"] == "crash":
            rids = list(rec.get("requeued", ()))
            event["requeued"] = len(rids)
            finishes: list[float] = []
            lost = 0
            for rid in rids:
                req = by_rid.get(rid)
                if req is not None and req.is_finished and req.finish_time is not None:
                    finishes.append(req.finish_time)
                else:
                    lost += 1
            if lost == 0:
                recovered_at = max(finishes) if finishes else rec["time_s"]
                recovery = recovered_at - rec["time_s"]
            else:
                recovered_at = None
                recovery = None
            crashes.append(
                {
                    "time_s": rec["time_s"],
                    "replica": rec.get("replica"),
                    "restart_at_s": rec.get("restart_at_s"),
                    "requeued": len(rids),
                    "requests_lost": lost,
                    "recovered_at_s": recovered_at,
                    "recovery_time_s": recovery,
                }
            )
        elif rec["kind"] == "straggler":
            num_stragglers += 1
        events.append(event)

    requests_disrupted = sum(1 for r in reqs if r.failover_count > 0)
    requests_lost = sum(1 for r in reqs if r.failover_count > 0 and not r.is_finished)

    windows = _merge_windows(
        [
            (c["time_s"], c["recovered_at_s"] if c["recovered_at_s"] is not None else sim_time_s)
            for c in crashes
        ]
    )
    incident = None
    if windows:
        in_window = [
            r
            for r in reqs
            if any(start <= r.arrival_time <= end for start, end in windows)
        ]
        attained = sum(1 for r in in_window if r.is_finished and r.attained)
        incident = {
            "num_requests": len(in_window),
            "num_attained": attained,
            "attainment": attained / len(in_window) if in_window else None,
        }

    recoveries = [c["recovery_time_s"] for c in crashes if c["recovery_time_s"] is not None]
    return {
        "events": events,
        "crashes": crashes,
        "num_crashes": len(crashes),
        "num_stragglers": num_stragglers,
        "requests_disrupted": requests_disrupted,
        "requests_lost": requests_lost,
        "incident_windows": [[start, end] for start, end in windows],
        "incident": incident,
        "mean_recovery_time_s": (sum(recoveries) / len(recoveries)) if recoveries else None,
    }


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_incident_table(chaos: dict, markdown: bool = False) -> str:
    """Render an incident report for the CLI or a CI step summary."""
    rows: list[Sequence[str]] = [("t (s)", "event", "replica", "detail")]
    for event in chaos["events"]:
        detail_keys = [
            k for k in sorted(event) if k not in ("time_s", "kind", "replica")
        ]
        detail = ", ".join(f"{k}={_fmt(event[k])}" for k in detail_keys)
        rows.append(
            (_fmt(event["time_s"]), str(event["kind"]), _fmt(event.get("replica")), detail)
        )

    incident = chaos.get("incident")
    summary = [
        f"crashes: {chaos['num_crashes']}  stragglers: {chaos['num_stragglers']}",
        f"requests disrupted: {chaos['requests_disrupted']}"
        f"  lost: {chaos['requests_lost']}",
        f"mean recovery time: {_fmt(chaos['mean_recovery_time_s'])} s",
    ]
    if incident is not None:
        summary.append(
            f"incident-window attainment: {_fmt(incident['attainment'])}"
            f" ({incident['num_attained']}/{incident['num_requests']} requests)"
        )

    if markdown:
        lines = ["| " + " | ".join(rows[0]) + " |"]
        lines.append("|" + "|".join(" --- " for _ in rows[0]) + "|")
        lines.extend("| " + " | ".join(row) + " |" for row in rows[1:])
        lines.append("")
        lines.extend(f"- {line}" for line in summary)
        return "\n".join(lines)

    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip() for row in rows]
    lines.append("")
    lines.extend(summary)
    return "\n".join(lines)
