"""Deterministic chaos engineering for the fleet simulator.

Faults are first-class, seeded experiment inputs rather than ad-hoc test
hooks: a :class:`FaultSchedule` is materialized from ``--faults`` spec
strings (see the FAULTS registry in :mod:`repro.chaos.faults`) plus a
seed derived from the run seed, and its events ride the fleet event heap
in :mod:`repro.cluster.fleet` exactly like iteration boundaries and
arrivals.  A fixed-seed chaos run is therefore byte-identical across
repeats, and an *empty* schedule leaves every existing run untouched to
the bit.

The incident side lives in :mod:`repro.chaos.report`: each run with an
active schedule attaches a strict-JSON-safe incident report (fault
timeline, per-crash recovery milestones, requests disrupted/lost, SLO
attainment inside incident windows) to its
:class:`~repro.serving.server.SimulationReport`.
"""

from repro.chaos.faults import FaultEvent, FaultSchedule
from repro.chaos.report import ChaosLog, build_chaos_report, format_incident_table

__all__ = [
    "ChaosLog",
    "FaultEvent",
    "FaultSchedule",
    "build_chaos_report",
    "format_incident_table",
]
