"""AdaServe reproduction: SLO-customized LLM serving with fine-grained
speculative decoding, as a faithful discrete-event simulation.

Subpackages
-----------
- ``repro.core`` — the paper's contribution: token trees, Algorithm 1,
  the speculate-select-verify pipeline (Algorithm 2), adaptive beam
  control, and the AdaServe scheduler.
- ``repro.model`` — synthetic draft/target model pair (seeded stochastic
  process standing in for real LLM weights).
- ``repro.hardware`` — roofline GPU cost model, budget profiling, CUDA
  graph launch model.
- ``repro.serving`` — serving simulator: requests, engine, KV cache,
  metrics.
- ``repro.baselines`` — vLLM, Sarathi-Serve, vLLM-Spec(n), vLLM+Priority,
  FastServe, VTC.
- ``repro.workloads`` — Table 2 categories, synthetic datasets, traces.
- ``repro.analysis`` — experiment harness + result tables.

Quickstart
----------
>>> from repro.analysis import build_setup, run_once
>>> from repro.workloads import WorkloadGenerator
>>> setup = build_setup("llama70b")
>>> gen = WorkloadGenerator(setup.target_roofline, seed=0)
>>> requests = gen.steady(duration_s=20.0, rps=3.0)
>>> report = run_once(setup, "adaserve", requests)
>>> 0.0 <= report.attainment <= 1.0
True
"""

__version__ = "0.1.0"

from repro.core.scheduler import AdaServeScheduler

__all__ = ["AdaServeScheduler", "__version__"]
