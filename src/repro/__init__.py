"""AdaServe reproduction: SLO-customized LLM serving with fine-grained
speculative decoding, as a faithful discrete-event simulation.

Subpackages
-----------
- ``repro.core`` — the paper's contribution: token trees, Algorithm 1,
  the speculate-select-verify pipeline (Algorithm 2), adaptive beam
  control, and the AdaServe scheduler.
- ``repro.model`` — synthetic draft/target model pair (seeded stochastic
  process standing in for real LLM weights).
- ``repro.hardware`` — roofline GPU cost model, budget profiling, CUDA
  graph launch model.
- ``repro.serving`` — serving simulator: requests, engine, KV cache,
  metrics.
- ``repro.baselines`` — vLLM, Sarathi-Serve, vLLM-Spec(n), vLLM+Priority,
  FastServe, VTC.
- ``repro.workloads`` — Table 2 categories, synthetic datasets, traces,
  multi-turn session workloads.
- ``repro.prefixcache`` — shared-prefix KV reuse: deterministic token
  streams, refcounted block sharing with LRU eviction.
- ``repro.cluster`` — multi-replica fleets: routers (including
  prefix-affinity session stickiness), autoscaler.
- ``repro.registry`` — typed component registries (systems, routers,
  traces, model setups) and the ``name:key=val`` spec-string grammar.
- ``repro.analysis`` — declarative experiment specs, harness, parallel
  runner, result cache, tables.

Quickstart
----------
>>> from repro.analysis import ExperimentSpec, SweepRunner
>>> spec = ExperimentSpec.create(
...     model="llama70b", system="adaserve", rps=3.0,
...     duration_s=20.0, seed=0, trace="steady",
... )
>>> result = SweepRunner(cache=None).run([spec])[0]
>>> 0.0 <= result.report.metrics.attainment <= 1.0
True

Systems, routers, and traces are referenced by registry spec strings
(``vllm-spec:k=8``, ``affinity:reserve=0.4``, ``diurnal:peak_to_trough=6``);
``python -m repro list systems`` enumerates them with their schemas.
"""

__version__ = "0.1.0"

from repro.core.scheduler import AdaServeScheduler

__all__ = ["AdaServeScheduler", "__version__"]
