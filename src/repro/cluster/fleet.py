"""Fleet-level event loop: many replicas, one clock, one router.

:class:`FleetSimulator` is the multi-replica generalization of
:class:`~repro.serving.server.ServingSimulator.run`.  Each replica keeps
its own iteration timeline (``local_now``); the fleet processes events in
global time order over a shared :class:`~repro.serving.clock.SimClock`:

- the next event is either the earliest arrival or the earliest iteration
  boundary among replicas that have work;
- arrivals are admitted through the router at their arrival instant —
  a busy target queues them for its next boundary (exactly the
  single-engine between-iteration admission semantics), an idle target's
  timeline is pulled forward and it steps immediately;
- at each event the autoscaler (if configured) may add a warming replica
  or start draining one.

Because ties are broken by replica index and every random draw is seeded,
a fleet run is a pure function of (replica factory, workload, router,
autoscaler config) — two runs with the same inputs are byte-identical.

Fleet-level metrics are the existing single-engine aggregation applied to
the union of all per-replica requests, so cluster numbers and solo
numbers are directly comparable.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.cluster.replica import Replica
from repro.cluster.router import Router
from repro.serving.clock import ArrivalStream, SimClock
from repro.serving.engine import PhaseTimes, SimulatedEngine
from repro.serving.metrics import compute_metrics
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler
from repro.serving.server import SimulationReport

#: Builds a fresh engine + scheduler pair for replica ``index``.
ReplicaFactory = Callable[[int], tuple[SimulatedEngine, Scheduler]]


@dataclass(frozen=True)
class FleetReport:
    """Outcome of one fleet run."""

    #: Fleet-level report: merged metrics over every replica's requests.
    summary: SimulationReport
    #: Per-replica reports, in replica-index order (includes retired).
    replica_reports: list[SimulationReport]
    router_name: str
    #: Peak concurrently live (non-retired) replicas; never exceeds the
    #: autoscaler's ``max_replicas``.
    num_replicas_peak: int
    scale_events: list[ScaleEvent]

    @property
    def attainment(self) -> float:
        """Fleet SLO attainment (convenience passthrough)."""
        return self.summary.metrics.attainment

    @property
    def goodput(self) -> float:
        """Fleet goodput in tokens/s (convenience passthrough)."""
        return self.summary.metrics.goodput


class FleetSimulator:
    """Simulate a router-fronted fleet of replicas over one trace.

    Parameters
    ----------
    replica_factory:
        Called with a replica index to build a fresh engine + scheduler
        pair (initial fleet and autoscaled additions alike).
    requests:
        The cluster-level workload; arrival times are absolute seconds.
    router:
        Routing policy consulted once per arrival.
    num_replicas:
        Initial fleet size.
    autoscaler_config:
        Enables autoscaling when given (see :mod:`repro.cluster.autoscaler`).
    max_sim_time_s / max_iterations:
        Safety cutoffs, as in the single-engine simulator; iterations are
        counted fleet-wide.
    """

    def __init__(
        self,
        replica_factory: ReplicaFactory,
        requests: list[Request],
        router: Router,
        num_replicas: int,
        autoscaler_config: AutoscalerConfig | None = None,
        max_sim_time_s: float = 7200.0,
        max_iterations: int = 2_000_000,
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        self.replica_factory = replica_factory
        self.requests = list(requests)
        self.router = router
        self.autoscaler = (
            Autoscaler(autoscaler_config) if autoscaler_config is not None else None
        )
        self.max_sim_time_s = max_sim_time_s
        self.max_iterations = max_iterations
        self.replicas: list[Replica] = [
            self._spawn(i, available_at=0.0) for i in range(num_replicas)
        ]
        self.scale_events: list[ScaleEvent] = []
        self._peak_live = num_replicas
        # Incremental fleet state (replaces per-event full rescans):
        # - the event heap holds (local_now, index) for replicas believed
        #   busy; entries go stale when a replica steps or drains and are
        #   dropped lazily at the top;
        # - the routable pool is maintained in index order (warm-ups are
        #   promoted lazily, drains removed eagerly), so routing an
        #   arrival no longer rebuilds the pool from scratch;
        # - live/draining counters keep autoscale/retire checks O(1).
        self._event_heap: list[tuple[float, int]] = []
        self._pool: list[Replica] = list(self.replicas)
        self._warming: deque[Replica] = deque()
        self._live = num_replicas
        self._num_draining = 0

    # ------------------------------------------------------------------
    def _spawn(self, index: int, available_at: float) -> Replica:
        engine, scheduler = self.replica_factory(index)
        return Replica(index, engine, scheduler, available_at=available_at)

    def _routable(self, now: float) -> list[Replica]:
        # Promote finished warm-ups (spawn order, so nondecreasing
        # available_at keeps the pool in index order; draining/retired
        # replicas are filtered at promotion time).
        warming = self._warming
        pool = self._pool
        while warming and warming[0].available_at <= now:
            replica = warming.popleft()
            if not replica.draining and not replica.retired:
                pool.append(replica)
        if pool:
            return pool
        # Degenerate fallbacks (no warm, non-draining replica): prefer
        # replicas still warming up — they will serve the queue once
        # available — so a drain decision is not fed new work; only a
        # fleet of nothing but drainers routes to them (never drop a
        # request).
        still_warming = [r for r in self.replicas if not r.retired and not r.draining]
        if still_warming:
            return still_warming
        return [r for r in self.replicas if not r.retired]

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        decision = self.autoscaler.decide(now, self.replicas)
        if decision > 0:
            index = len(self.replicas)
            warmup = self.autoscaler.config.warmup_s
            replica = self._spawn(index, available_at=now + warmup)
            self.replicas.append(replica)
            self._warming.append(replica)
            self.scale_events.append(ScaleEvent(now, "up", index))
            self._live += 1
            self._peak_live = max(self._peak_live, self._live)
        elif decision < 0:
            victim = self.autoscaler.pick_drain_victim(self.replicas)
            if victim is not None:
                self._drain(victim)
                self.scale_events.append(ScaleEvent(now, "down", victim.index))

    def _drain(self, victim: Replica) -> None:
        """Flag a replica as draining and pull it from the routable pool."""
        victim.draining = True
        self._num_draining += 1
        for i, replica in enumerate(self._pool):
            if replica is victim:
                del self._pool[i]
                break

    def _retire_drained(self) -> None:
        if self._num_draining == 0:
            return
        for replica in self.replicas:
            if replica.draining and not replica.retired and not replica.has_work():
                replica.finalize()
                replica.retired = True
                self._live -= 1
                self._num_draining -= 1

    # ------------------------------------------------------------------
    def run(self) -> FleetReport:
        """Execute the fleet simulation to completion (or safety cutoff).

        The loop is event-driven over an explicit heap: replicas with
        work sit in ``_event_heap`` keyed on ``(local_now, index)`` —
        identical selection (and tie-breaking) to the former
        ``min(...)``-over-rebuilt-lists scan, without rebuilding the
        ``busy``/``runnable`` lists at every event.  Entries are pushed
        on the idle→busy transition (an arrival routed to an idle
        replica) and after each step that leaves work behind; entries
        invalidated by draining are dropped lazily at the heap top.
        """
        clock = SimClock()
        arrivals = ArrivalStream(self.requests)
        iterations = 0
        horizon = self.max_sim_time_s
        heap = self._event_heap
        replicas = self.replicas

        while True:
            # Drop stale heap entries (replica stepped, drained, or
            # retired since its entry was pushed).
            while heap:
                t, i = heap[0]
                replica = replicas[i]
                if replica.local_now == t and not replica.retired and replica.has_work():
                    break
                heapq.heappop(heap)
            next_arrival = arrivals.next_arrival
            if not heap and next_arrival is None:
                break  # drained

            # Safety horizon, per replica as in the single-engine loop: a
            # replica stops stepping once an iteration finishes beyond
            # the horizon (its leftover requests count as violations).
            # The run continues while any working replica is below the
            # horizon, or an idle sub-horizon replica could still serve a
            # pending sub-horizon arrival — only then is nothing left.
            step_candidate = None
            if heap:
                t, i = heap[0]
                if t <= horizon:
                    step_candidate = replicas[i]
                else:
                    idle_capacity = any(
                        not r.retired
                        and not r.has_work()
                        and r.local_now <= horizon
                        for r in replicas
                    )
                    if (
                        next_arrival is None
                        or next_arrival > horizon
                        or not idle_capacity
                    ):
                        break

            if step_candidate is not None and (
                next_arrival is None or step_candidate.local_now < next_arrival
            ):
                heapq.heappop(heap)
                clock.advance_to(step_candidate.local_now)
                step_candidate.step()
                iterations += 1
                if iterations > self.max_iterations:
                    raise RuntimeError(
                        f"fleet exceeded {self.max_iterations} iterations"
                    )
                if step_candidate.has_work():
                    heapq.heappush(
                        heap, (step_candidate.local_now, step_candidate.index)
                    )
            else:
                clock.advance_to(next_arrival)
                for req in arrivals.release_until(clock.now):
                    target = self.router.route(req, self._routable(clock.now))
                    was_busy = target.has_work()
                    target.admit(req, clock.now)
                    if not was_busy:
                        heapq.heappush(heap, (target.local_now, target.index))

            self._autoscale(clock.now)
            self._retire_drained()

        for replica in self.replicas:
            replica.finalize()

        # The loop advances the shared clock to each iteration's *start*
        # boundary; the run actually ends when the last-stepped replica's
        # final iteration completes.
        end_time = max(
            (r.local_now for r in self.replicas if r.iterations > 0),
            default=clock.now,
        )
        sim_time_s = max(clock.now, end_time)

        replica_reports = [r.report() for r in self.replicas]
        all_requests = sorted(
            (req for rep in replica_reports for req in rep.requests),
            key=lambda r: r.rid,
        )
        base_name = self.replicas[0].scheduler.name
        summary = SimulationReport(
            scheduler_name=f"{base_name} x{self._peak_live} [{self.router.name}]",
            metrics=compute_metrics(all_requests),
            sim_time_s=sim_time_s,
            iterations=iterations,
            phase_breakdown=self._merged_phase_breakdown(),
            requests=all_requests,
        )
        return FleetReport(
            summary=summary,
            replica_reports=replica_reports,
            router_name=self.router.name,
            num_replicas_peak=self._peak_live,
            scale_events=list(self.scale_events),
        )

    # ------------------------------------------------------------------
    def _merged_phase_breakdown(self) -> dict[str, float]:
        """Fleet-wide phase fractions: per-phase busy time summed first."""
        merged = PhaseTimes()
        for replica in self.replicas:
            merged.add(replica.engine.phase_times)
        return merged.breakdown()
