"""Fleet-level event loop: many replicas, one clock, one router.

:class:`FleetSimulator` is the multi-replica generalization of
:class:`~repro.serving.server.ServingSimulator.run`.  Each replica keeps
its own iteration timeline (``local_now``); the fleet processes events in
global time order over a shared :class:`~repro.serving.clock.SimClock`:

- the next event is either the earliest arrival or the earliest iteration
  boundary among replicas that have work;
- arrivals are admitted through the router at their arrival instant —
  a busy target queues them for its next boundary (exactly the
  single-engine between-iteration admission semantics), an idle target's
  timeline is pulled forward and it steps immediately;
- at each event the autoscaler (if configured) may add a warming replica
  or start draining one.

Because ties are broken by replica index and every random draw is seeded,
a fleet run is a pure function of (replica factory, workload, router,
autoscaler config) — two runs with the same inputs are byte-identical.

Fleet-level metrics are the existing single-engine aggregation applied to
the union of all per-replica requests, so cluster numbers and solo
numbers are directly comparable.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.chaos import ChaosLog, FaultEvent, FaultSchedule, build_chaos_report
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.cluster.replica import Replica
from repro.cluster.router import Router
from repro.serving.clock import ArrivalStream, ChunkedArrivalStream, SimClock
from repro.serving.engine import PhaseTimes, SimulatedEngine
from repro.serving.streaming import aggregate_metrics
from repro.serving.request import Request
from repro.serving.scheduler_base import Scheduler
from repro.serving.server import SimulationReport

#: Builds a fresh engine + scheduler pair for replica ``index``.
ReplicaFactory = Callable[[int], tuple[SimulatedEngine, Scheduler]]


@dataclass(frozen=True)
class FleetReport:
    """Outcome of one fleet run."""

    #: Fleet-level report: merged metrics over every replica's requests.
    summary: SimulationReport
    #: Per-replica reports, in replica-index order (includes retired).
    replica_reports: list[SimulationReport]
    router_name: str
    #: Peak concurrently live (non-retired) replicas; never exceeds the
    #: autoscaler's ``max_replicas``.
    num_replicas_peak: int
    scale_events: list[ScaleEvent]

    @property
    def chaos(self) -> dict | None:
        """Incident report of a chaos run (None without a fault schedule)."""
        return self.summary.chaos

    @property
    def attainment(self) -> float:
        """Fleet SLO attainment (convenience passthrough)."""
        return self.summary.metrics.attainment

    @property
    def goodput(self) -> float:
        """Fleet goodput in tokens/s (convenience passthrough)."""
        return self.summary.metrics.goodput


class FleetSimulator:
    """Simulate a router-fronted fleet of replicas over one trace.

    Parameters
    ----------
    replica_factory:
        Called with a replica index to build a fresh engine + scheduler
        pair (initial fleet and autoscaled additions alike).
    requests:
        The cluster-level workload; arrival times are absolute seconds.
    router:
        Routing policy consulted once per arrival.
    num_replicas:
        Initial fleet size.
    autoscaler_config:
        Enables autoscaling when given (see :mod:`repro.cluster.autoscaler`).
    fault_schedule:
        Deterministic fault injections (see :mod:`repro.chaos`); events
        ride the fleet event heap as first-class entries.  ``None`` or an
        empty schedule leaves the run bit-identical to a chaos-free one.
    max_sim_time_s / max_iterations:
        Safety cutoffs, as in the single-engine simulator; iterations are
        counted fleet-wide.
    observer:
        Optional :class:`~repro.obs.observer.RunObserver`; enables
        lifecycle tracing, fleet-event markers, and periodic gauge
        sampling.  Observation is passive — an observed run's report is
        byte-identical to an unobserved one's.
    invariants:
        Optional :class:`~repro.check.invariants.InvariantChecker`
        (``--check-invariants``); validates heap-event monotonicity,
        per-replica iteration-boundary monotonicity, sampler bounds,
        and request conservation at the fleet merge.  Checks are
        read-only, so a checked run's report is byte-identical too.
    """

    def __init__(
        self,
        replica_factory: ReplicaFactory,
        requests: list[Request],
        router: Router,
        num_replicas: int,
        autoscaler_config: AutoscalerConfig | None = None,
        fault_schedule: FaultSchedule | None = None,
        max_sim_time_s: float = 7200.0,
        max_iterations: int = 2_000_000,
        observer=None,
        invariants=None,
        metrics_mode: str = "exact",
    ) -> None:
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        self.replica_factory = replica_factory
        # A columnar workload (anything exposing iter_chunks in arrival
        # order) is consumed lazily, like the solo simulator does.
        self.requests = requests if hasattr(requests, "iter_chunks") else list(requests)
        self.metrics_mode = metrics_mode
        self.router = router
        # Observability (repro.obs): fleet-level markers go straight to
        # the collector; gauge ticks fire lazily from the event loop.
        self._obs = observer.collector if observer is not None else None
        self._sampler = observer.sampler if observer is not None else None
        self._inv = invariants
        self.autoscaler = (
            Autoscaler(autoscaler_config) if autoscaler_config is not None else None
        )
        self.max_sim_time_s = max_sim_time_s
        self.max_iterations = max_iterations
        self.replicas: list[Replica] = [
            self._spawn(i, available_at=0.0) for i in range(num_replicas)
        ]
        self.scale_events: list[ScaleEvent] = []
        self._peak_live = num_replicas
        # Incremental fleet state (replaces per-event full rescans):
        # - the event heap holds (time, kind, index) entries: kind 0 is
        #   a fault event (index into _chaos_events — never stale), kind
        #   1 a replica believed busy keyed on its local_now; replica
        #   entries go stale when it steps or drains and are dropped
        #   lazily at the top.  Faults sort before replica steps at
        #   equal times; replica-replica ordering is unchanged;
        # - the routable pool is maintained in index order (warm-ups are
        #   promoted lazily, drains removed eagerly), so routing an
        #   arrival no longer rebuilds the pool from scratch;
        # - live/draining counters keep autoscale/retire checks O(1).
        self._event_heap: list[tuple[float, int, int]] = []
        self._pool: list[Replica] = list(self.replicas)
        self._warming: deque[Replica] = deque()
        self._live = num_replicas
        self._num_draining = 0
        # Chaos state: declared fault events (appended to at runtime by
        # crash→restart and bounded-straggler→end follow-ups, in
        # processing order — deterministic), the incident log, and the
        # scale-delay penalty currently in force.
        self.fault_schedule = fault_schedule
        self._chaos_events: list[FaultEvent] = (
            list(fault_schedule.events) if fault_schedule is not None else []
        )
        self._chaos_log: ChaosLog | None = ChaosLog() if self._chaos_events else None
        self._scaleup_extra = 0.0
        for i, event in enumerate(self._chaos_events):
            heapq.heappush(self._event_heap, (event.at_s, 0, i))
        if observer is not None:
            observer.bind_fleet(self)

    # ------------------------------------------------------------------
    def _spawn(self, index: int, available_at: float) -> Replica:
        engine, scheduler = self.replica_factory(index)
        return Replica(index, engine, scheduler, available_at=available_at)

    def _routable(self, now: float) -> list[Replica]:
        # Promote finished warm-ups (spawn order, so nondecreasing
        # available_at keeps the pool in index order; draining/retired
        # replicas are filtered at promotion time).
        warming = self._warming
        pool = self._pool
        while warming and warming[0].available_at <= now:
            replica = warming.popleft()
            if not replica.draining and not replica.retired:
                pool.append(replica)
        if pool:
            return pool
        # Degenerate fallbacks (no warm, non-draining replica): prefer
        # replicas still warming up — they will serve the queue once
        # available — so a drain decision is not fed new work; only a
        # fleet of nothing but drainers (or crashed replicas) routes to
        # them (never drop a request — a failed target queues the work
        # until its restart).
        still_warming = [
            r for r in self.replicas if not r.retired and not r.draining and not r.failed
        ]
        if still_warming:
            return still_warming
        return [r for r in self.replicas if not r.retired]

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        decision = self.autoscaler.decide(now, self.replicas)
        if decision > 0:
            index = len(self.replicas)
            # A scale-delay fault (repro.chaos) slows the control plane:
            # every later scale-up pays extra warmup.
            warmup = self.autoscaler.config.warmup_s + self._scaleup_extra
            replica = self._spawn(index, available_at=now + warmup)
            self.replicas.append(replica)
            self._warming.append(replica)
            self.scale_events.append(ScaleEvent(now, "up", index))
            if self._obs is not None:
                self._obs.event(
                    now, "scale-up", replica=index, data={"warmup_s": warmup}
                )
            self._live += 1
            self._peak_live = max(self._peak_live, self._live)
        elif decision < 0:
            victim = self.autoscaler.pick_drain_victim(self.replicas)
            if victim is not None:
                self._drain(victim)
                self.scale_events.append(ScaleEvent(now, "down", victim.index))
                if self._obs is not None:
                    self._obs.event(now, "scale-down", replica=victim.index)

    def _drain(self, victim: Replica) -> None:
        """Flag a replica as draining and pull it from the routable pool."""
        victim.draining = True
        self._num_draining += 1
        for i, replica in enumerate(self._pool):
            if replica is victim:
                del self._pool[i]
                break

    def _retire_drained(self) -> None:
        if self._num_draining == 0:
            return
        for replica in self.replicas:
            if replica.draining and not replica.retired and not replica.has_work():
                replica.finalize()
                replica.retired = True
                self._live -= 1
                self._num_draining -= 1

    # ------------------------------------------------------------------
    # Fault injection (see repro.chaos)
    # ------------------------------------------------------------------
    def _push_fault(self, event: FaultEvent) -> None:
        """Append a runtime follow-up fault and schedule it on the heap."""
        self._chaos_events.append(event)
        heapq.heappush(self._event_heap, (event.at_s, 0, len(self._chaos_events) - 1))

    def _remove_from_pool(self, replica: Replica) -> None:
        for i, candidate in enumerate(self._pool):
            if candidate is replica:
                del self._pool[i]
                return

    def _fault_target(self, event: FaultEvent, now: float, kind: str) -> Replica | None:
        """Resolve a fault's victim, skipping (and logging) invalid targets."""
        log = self._chaos_log
        assert log is not None
        if event.replica is None or not 0 <= event.replica < len(self.replicas):
            log.note(now, f"{kind}-skipped", replica=event.replica, reason="no such replica")
            return None
        replica = self.replicas[event.replica]
        if replica.retired or replica.failed:
            log.note(
                now,
                f"{kind}-skipped",
                replica=replica.index,
                reason="retired" if replica.retired else "already down",
            )
            return None
        return replica

    def _apply_fault(self, event: FaultEvent, now: float) -> None:
        log = self._chaos_log
        assert log is not None
        kind = event.kind
        if kind == "crash":
            self._apply_crash(event, now)
        elif kind == "restart":
            self._apply_restart(event, now)
        elif kind == "straggler":
            replica = self._fault_target(event, now, kind)
            if replica is None:
                return
            replica.engine.slow_factor = event.slow
            log.note(now, "straggler", replica=replica.index, slow=event.slow,
                     duration_s=event.duration_s)
            if self._obs is not None:
                self._obs.event(
                    now,
                    "straggler",
                    replica=replica.index,
                    data={"slow": event.slow, "duration_s": event.duration_s},
                )
            if event.duration_s is not None:
                self._push_fault(
                    FaultEvent(
                        at_s=now + event.duration_s,
                        kind="straggler-end",
                        replica=replica.index,
                        slow=event.slow,
                    )
                )
        elif kind == "straggler-end":
            replica = self.replicas[event.replica]
            # A crash mid-straggler swapped in a fresh (healthy) engine;
            # only clear an engine still degraded by *this* fault.
            if not replica.retired and replica.engine.slow_factor == event.slow:
                replica.engine.slow_factor = 1.0
                log.note(now, "straggler-end", replica=replica.index)
                if self._obs is not None:
                    self._obs.event(now, "straggler-end", replica=replica.index)
        elif kind == "scale-delay":
            self._scaleup_extra = event.extra_s
            log.note(now, "scale-delay", extra_s=event.extra_s)
            if self._obs is not None:
                self._obs.event(now, "scale-delay", data={"extra_s": event.extra_s})
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown fault kind {kind!r}")

    def _apply_crash(self, event: FaultEvent, now: float) -> None:
        """Kill a replica: evacuate, invalidate, re-route, schedule restart."""
        log = self._chaos_log
        assert log is not None
        replica = self._fault_target(event, now, "crash")
        if replica is None:
            return
        was_draining = replica.draining
        self._remove_from_pool(replica)
        if replica in self._warming:
            self._warming.remove(replica)
        engine, scheduler = self.replica_factory(replica.index)
        victims = replica.crash(engine, scheduler)
        # Sessions homed here lost their prefix KV; sticky routers must
        # re-home them (the PR 4 affinity state is rolled back).
        self.router.forget_replica(replica.index)
        if was_draining:
            # The autoscaler already wanted this replica gone; the crash
            # finishes the job immediately (no restart — its work simply
            # re-routes below).
            replica.draining = False
            replica.retired = True
            self._live -= 1
            self._num_draining -= 1
            restart_at = None
        else:
            replica.failed = True
            restart_at = now + event.restart_s
            replica.available_at = restart_at
            replica.local_now = restart_at
            self._push_fault(
                FaultEvent(at_s=restart_at, kind="restart", replica=replica.index)
            )
        obs = self._obs
        if obs is not None:
            obs.event(
                now,
                "crash",
                replica=replica.index,
                data={"restart_at_s": restart_at, "evacuated": len(victims)},
            )
        requeued = []
        for req in victims:
            req.fail_over()
            target = self.router.route(req, self._routable(now))
            was_busy = target.has_work()
            target.admit(req, now)
            if not was_busy and not target.failed:
                heapq.heappush(self._event_heap, (target.local_now, 1, target.index))
            requeued.append(req.rid)
            if obs is not None:
                obs.event(now, "failover", replica=replica.index, rid=req.rid)
        log.note(
            now,
            "crash",
            replica=replica.index,
            restart_at_s=restart_at,
            was_draining=was_draining,
            requeued=requeued,
        )

    def _apply_restart(self, event: FaultEvent, now: float) -> None:
        """Bring a crashed replica back, cold, at its restart instant."""
        replica = self.replicas[event.replica]
        if replica.retired or not replica.failed:
            return
        replica.failed = False
        # Re-enter the routable pool at its index-sorted position.
        pool = self._pool
        pos = len(pool)
        for i, candidate in enumerate(pool):
            if candidate.index > replica.index:
                pos = i
                break
        pool.insert(pos, replica)
        # Requests degenerately routed here while it was down (no other
        # live replica) have been queuing; start serving them now.
        if replica.has_work():
            heapq.heappush(self._event_heap, (replica.local_now, 1, replica.index))
        log = self._chaos_log
        assert log is not None
        log.note(now, "restart", replica=replica.index)
        if self._obs is not None:
            self._obs.event(now, "restart", replica=replica.index)

    # ------------------------------------------------------------------
    def run(self) -> FleetReport:
        """Execute the fleet simulation to completion (or safety cutoff).

        The loop is event-driven over an explicit heap: replicas with
        work sit in ``_event_heap`` keyed on ``(local_now, 1, index)`` —
        identical selection (and tie-breaking) to the former
        ``min(...)``-over-rebuilt-lists scan, without rebuilding the
        ``busy``/``runnable`` lists at every event.  Entries are pushed
        on the idle→busy transition (an arrival routed to an idle
        replica) and after each step that leaves work behind; entries
        invalidated by draining are dropped lazily at the heap top.
        Fault events (``(at_s, 0, event_index)``; see :mod:`repro.chaos`)
        share the heap and fire in the same global time order, sorting
        ahead of replica steps at equal times; pending arrivals still win
        ties exactly as they do against steps.
        """
        clock = SimClock()
        if hasattr(self.requests, "iter_chunks"):
            arrivals = ChunkedArrivalStream(self.requests.iter_chunks())
        else:
            arrivals = ArrivalStream(self.requests)
        iterations = 0
        horizon = self.max_sim_time_s
        heap = self._event_heap
        replicas = self.replicas
        # Gauge sampling is lazy catch-up (repro.obs.sampler): pending
        # ticks <= the chosen event time fire just before the event is
        # processed, observing the state held since the previous one —
        # no heap entries of its own, so the loop's event order, drain
        # condition, and autoscale cadence are untouched.
        sampler = self._sampler
        inv = self._inv
        # Conservation is checked against what was actually routed: a
        # horizon abort legitimately leaves unreleased arrivals behind.
        admitted = [] if inv is not None else None

        while True:
            # Drop stale replica entries (replica stepped, drained, or
            # retired since its entry was pushed).  Fault entries (kind
            # 0) are never stale — they are processed exactly once.
            while heap:
                t, kind, i = heap[0]
                if kind == 0:
                    break
                replica = replicas[i]
                if replica.local_now == t and not replica.retired and replica.has_work():
                    break
                heapq.heappop(heap)
            next_arrival = arrivals.next_arrival
            if not heap and next_arrival is None:
                break  # drained

            # Safety horizon, per replica as in the single-engine loop: a
            # replica stops stepping once an iteration finishes beyond
            # the horizon (its leftover requests count as violations).
            # The run continues while any working replica is below the
            # horizon, or an idle sub-horizon replica could still serve a
            # pending sub-horizon arrival — only then is nothing left.
            step_candidate = None
            fault_index = None
            event_time = 0.0
            if heap:
                t, kind, i = heap[0]
                event_time = t
                if t <= horizon:
                    if kind == 0:
                        fault_index = i
                    else:
                        step_candidate = replicas[i]
                elif kind == 0:
                    # A fault beyond the horizon can never fire; discard
                    # it so the drain check above can terminate the loop.
                    heapq.heappop(heap)
                    continue
                else:
                    idle_capacity = any(
                        not r.retired
                        and not r.has_work()
                        and r.local_now <= horizon
                        for r in replicas
                    )
                    if (
                        next_arrival is None
                        or next_arrival > horizon
                        or not idle_capacity
                    ):
                        break

            if fault_index is not None and (
                next_arrival is None or event_time < next_arrival
            ):
                heapq.heappop(heap)
                clock.advance_to(event_time)
                if sampler is not None:
                    sampler.catch_up(event_time)
                if inv is not None:
                    inv.check_event_time(event_time)
                    if sampler is not None:
                        inv.check_sampler(sampler, event_time)
                self._apply_fault(self._chaos_events[fault_index], clock.now)
            elif step_candidate is not None and (
                next_arrival is None or step_candidate.local_now < next_arrival
            ):
                heapq.heappop(heap)
                clock.advance_to(step_candidate.local_now)
                if sampler is not None:
                    sampler.catch_up(step_candidate.local_now)
                if inv is not None:
                    inv.check_event_time(step_candidate.local_now)
                    if sampler is not None:
                        inv.check_sampler(sampler, step_candidate.local_now)
                step_candidate.step()
                if inv is not None:
                    inv.check_replica_step(
                        step_candidate.index, step_candidate.local_now
                    )
                iterations += 1
                if iterations > self.max_iterations:
                    raise RuntimeError(
                        f"fleet exceeded {self.max_iterations} iterations"
                    )
                if step_candidate.has_work():
                    heapq.heappush(
                        heap, (step_candidate.local_now, 1, step_candidate.index)
                    )
            else:
                clock.advance_to(next_arrival)
                if sampler is not None:
                    sampler.catch_up(clock.now)
                if inv is not None:
                    inv.check_event_time(clock.now)
                    if sampler is not None:
                        inv.check_sampler(sampler, clock.now)
                for req in arrivals.release_until(clock.now):
                    target = self.router.route(req, self._routable(clock.now))
                    was_busy = target.has_work()
                    target.admit(req, clock.now)
                    if not was_busy and not target.failed:
                        heapq.heappush(heap, (target.local_now, 1, target.index))
                    if admitted is not None:
                        admitted.append(req)

            self._autoscale(clock.now)
            self._retire_drained()

        for replica in self.replicas:
            replica.finalize()

        # The loop advances the shared clock to each iteration's *start*
        # boundary; the run actually ends when the last-stepped replica's
        # final iteration completes.
        end_time = max(
            (r.local_now for r in self.replicas if r.iterations > 0),
            default=clock.now,
        )
        sim_time_s = max(clock.now, end_time)
        if sampler is not None:
            # Cover the drain tail up to the run's true end time.
            sampler.catch_up(sim_time_s)

        replica_reports = [r.report(self.metrics_mode) for r in self.replicas]
        all_requests = sorted(
            (req for rep in replica_reports for req in rep.requests),
            key=lambda r: r.rid,
        )
        if inv is not None:
            if sampler is not None:
                inv.check_sampler(sampler, sim_time_s)
            inv.check_conservation(admitted, all_requests, "fleet merge")
        chaos = (
            build_chaos_report(self._chaos_log, all_requests, sim_time_s)
            if self._chaos_log is not None
            else None
        )
        base_name = self.replicas[0].scheduler.name
        summary = SimulationReport(
            scheduler_name=f"{base_name} x{self._peak_live} [{self.router.name}]",
            metrics=aggregate_metrics(all_requests, self.metrics_mode),
            sim_time_s=sim_time_s,
            iterations=iterations,
            phase_breakdown=self._merged_phase_breakdown(),
            requests=all_requests,
            chaos=chaos,
        )
        return FleetReport(
            summary=summary,
            replica_reports=replica_reports,
            router_name=self.router.name,
            num_replicas_peak=self._peak_live,
            scale_events=list(self.scale_events),
        )

    # ------------------------------------------------------------------
    def _merged_phase_breakdown(self) -> dict[str, float]:
        """Fleet-wide phase fractions: per-phase busy time summed first."""
        merged = PhaseTimes()
        for replica in self.replicas:
            merged.add(replica.accumulated_phase_times())
        return merged.breakdown()
