"""One fleet replica: an engine + scheduler pair on its own timeline.

A replica is exactly the unit :class:`~repro.serving.server.ServingSimulator`
drives — a fresh :class:`~repro.serving.engine.SimulatedEngine` wrapped by a
scheduler — plus the bookkeeping the fleet loop needs to interleave many of
them over one shared clock:

- ``local_now`` is the time up to which this replica has been simulated
  (its next iteration boundary when it has work);
- ``available_at`` models autoscaler warm-up: a freshly added replica is
  not routable until its warm-up completes;
- ``draining`` marks a replica being scaled down: it finishes the work it
  already owns but receives no new requests.

Load introspection (``queued_requests``/``queued_tokens``) is what the
routing policies in :mod:`repro.cluster.router` compare.
"""

from __future__ import annotations

from repro.serving.engine import PhaseTimes, SimulatedEngine
from repro.serving.request import Request
from repro.serving.streaming import aggregate_metrics
from repro.serving.scheduler_base import Scheduler
from repro.serving.server import SimulationReport


class Replica:
    """A single engine + scheduler pair inside a fleet."""

    def __init__(
        self,
        index: int,
        engine: SimulatedEngine,
        scheduler: Scheduler,
        available_at: float = 0.0,
    ) -> None:
        if scheduler.engine is not engine:
            raise ValueError("scheduler must wrap the provided engine")
        self.index = index
        self.engine = engine
        self.scheduler = scheduler
        self.available_at = available_at
        #: Time up to which this replica has been simulated.  While the
        #: replica has work this is its next iteration boundary; idle
        #: replicas are pulled forward when a request is routed to them.
        self.local_now = available_at
        self.draining = False
        self.retired = False
        #: Crashed and waiting for its restart (chaos runs): not
        #: routable, not stepped, still occupying its hardware slot.
        self.failed = False
        self.crash_count = 0
        self.iterations = 0
        # Crash stash: requests that finished on pre-crash engines and
        # their accumulated phase times.  Lazy (None until the first
        # crash) so no-crash replicas report through the exact same code
        # path — and the same floats — as before chaos existed.
        self._crash_finished: list[Request] = []
        self._crash_phase: PhaseTimes | None = None
        # Load changes only at admissions and iteration boundaries, but
        # routers probe it once per routable replica per arrival — cache
        # the queue scan and invalidate on those two events.
        self._load_version = 0
        self._load_at_version = -1
        self._load = (0, 0)

    # ------------------------------------------------------------------
    # Fleet-facing interface
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        """Whether the replica can run an iteration."""
        return self.scheduler.has_work()

    def routable(self, now: float) -> bool:
        """Whether the router may send new requests here at ``now``."""
        return (
            not self.draining
            and not self.retired
            and not self.failed
            and self.available_at <= now
        )

    def admit(self, req: Request, now: float) -> None:
        """Accept a routed request at fleet time ``now``.

        An idle replica's timeline is pulled forward to the admission
        instant (there is nothing to simulate in the gap); a busy replica
        queues the request for its next boundary, exactly as the
        single-engine loop admits between-iteration arrivals.
        """
        if not self.has_work():
            self.local_now = max(self.local_now, now)
        self.scheduler.admit(req)
        tracer = self.engine.obs
        if tracer is not None:
            tracer.enqueue(now, req)
        self._load_version += 1

    def step(self) -> float:
        """Run one iteration at ``local_now``; advance to its boundary."""
        tracer = self.engine.obs
        if tracer is not None:
            # Emission sites without a time parameter of their own
            # (preemption, prefix lookups) stamp the iteration start.
            tracer.now = self.local_now
        latency = self.scheduler.step(self.local_now)
        if latency <= 0:
            raise RuntimeError(
                f"replica {self.index} ({self.scheduler.name}): "
                f"non-positive iteration latency {latency}"
            )
        self.local_now += latency
        self.iterations += 1
        self._load_version += 1
        return latency

    def finalize(self) -> None:
        """Retire requests that finished in the last iteration."""
        self.scheduler.finalize()

    def crash(self, engine: SimulatedEngine, scheduler: Scheduler) -> list[Request]:
        """Lose all engine state at a fault instant; swap in a fresh pair.

        Models the replica process dying: every private KV block *and*
        shared prefix block is wiped (:meth:`KVCacheManager.invalidate_all`),
        unfinished requests are surrendered to the caller for re-routing,
        and the replacement engine + scheduler start cold.  Requests that
        finished before the crash — and the dead engine's accumulated
        phase times — are stashed so :meth:`report` stays complete.
        """
        if scheduler.engine is not engine:
            raise ValueError("scheduler must wrap the provided engine")
        victims = self.scheduler.evacuate()
        self._crash_finished.extend(self.scheduler.finished)
        if self._crash_phase is None:
            self._crash_phase = PhaseTimes()
        self._crash_phase.add(self.engine.phase_times)
        self.engine.kv.invalidate_all()
        self.engine = engine
        self.scheduler = scheduler
        self.crash_count += 1
        self._load_version += 1
        return victims

    def accumulated_phase_times(self) -> PhaseTimes:
        """Busy time across every engine this replica has run.

        Returns the live engine's tally directly when the replica never
        crashed, so no-crash runs see the identical object (and floats)
        they always did.
        """
        if self._crash_phase is None:
            return self.engine.phase_times
        merged = PhaseTimes()
        merged.add(self._crash_phase)
        merged.add(self.engine.phase_times)
        return merged

    # ------------------------------------------------------------------
    # Load introspection (router inputs)
    # ------------------------------------------------------------------
    def _current_load(self) -> tuple[int, int]:
        """(unfinished requests, outstanding tokens), scan memoized."""
        if self._load_at_version != self._load_version:
            count = len(self.scheduler.waiting)
            tokens = 0
            for req in self.scheduler.waiting:
                tokens += req.remaining_prompt + req.remaining_tokens
            for req in self.scheduler.running:
                if not req.is_finished:
                    count += 1
                    tokens += req.remaining_prompt + req.remaining_tokens
            self._load = (count, tokens)
            self._load_at_version = self._load_version
        return self._load

    @property
    def waiting_requests(self) -> int:
        """Backlog: admitted requests not yet scheduled onto the engine."""
        return len(self.scheduler.waiting)

    @property
    def queued_requests(self) -> int:
        """Requests owned and not yet finished (waiting + running)."""
        return self._current_load()[0]

    @property
    def queued_tokens(self) -> int:
        """Outstanding work in tokens (prompt left + output left)."""
        return self._current_load()[1]

    # ------------------------------------------------------------------
    def report(self, metrics_mode: str = "exact") -> SimulationReport:
        """Per-replica simulation report (same shape as a solo run)."""
        requests = self._crash_finished + self.scheduler.all_requests()
        return SimulationReport(
            scheduler_name=self.scheduler.name,
            metrics=aggregate_metrics(requests, metrics_mode),
            sim_time_s=self.local_now,
            iterations=self.iterations,
            phase_breakdown=self.accumulated_phase_times().breakdown(),
            requests=requests,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, on in (("D", self.draining), ("R", self.retired), ("F", self.failed))
            if on
        )
        return (
            f"Replica(#{self.index}{flags}, t={self.local_now:.3f}, "
            f"queued={self.queued_requests})"
        )
