"""Queue-depth-driven fleet autoscaling with warm-up delay.

The autoscaler watches queue depth per replica at fleet event boundaries
(throttled to a check interval) and issues one scaling decision at a
time:

- **up** when the fleet-wide mean *backlog* (waiting requests, i.e. work
  the engines have not started — running batch occupancy is healthy
  utilization, not a scaling signal) per replica exceeds
  ``scale_up_queue`` — the new replica only becomes routable after
  ``warmup_s`` of simulated time, modeling instance boot + weight load,
  so scale-up never instantly absorbs a burst;
- **down** when the mean *outstanding* work (waiting + running) drops
  below ``scale_down_queue`` — i.e. the fleet is nearly idle, not merely
  backlog-free — and the fleet is above ``min_replicas``; the victim
  drains (keeps its owned work, receives nothing new) and is retired
  once empty.

Replicas still warming up count toward capacity when deciding to scale
up, so one sustained burst adds replicas at the check cadence rather
than all at once.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cluster.replica import Replica


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling thresholds and timing knobs."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: Seconds between scaling evaluations.
    check_interval_s: float = 2.0
    #: Mean waiting (backlogged) requests per replica that triggers scale-up.
    scale_up_queue: float = 8.0
    #: Mean outstanding requests (waiting + running) per replica below
    #: which the fleet scales down.
    scale_down_queue: float = 1.0
    #: Delay before a new replica becomes routable.
    warmup_s: float = 5.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.check_interval_s <= 0 or self.warmup_s < 0:
            raise ValueError("check_interval_s must be > 0 and warmup_s >= 0")
        if self.scale_down_queue >= self.scale_up_queue:
            raise ValueError("scale_down_queue must be < scale_up_queue")

    @classmethod
    def from_mapping(cls, knobs) -> "AutoscalerConfig":
        """Build from a (possibly partial) mapping of field overrides."""
        fields = set(cls.__dataclass_fields__)
        unknown = set(knobs) - fields
        if unknown:
            raise KeyError(
                f"unknown autoscaler knobs {sorted(unknown)}; available: {sorted(fields)}"
            )
        values = dict(knobs)
        # Replica counts may arrive as floats (e.g. from JSON round-trips).
        for count_field in ("min_replicas", "max_replicas"):
            if count_field in values:
                values[count_field] = int(values[count_field])
        return cls(**values)

    @classmethod
    def resolve(cls, knobs, initial_replicas: int) -> "AutoscalerConfig":
        """Knobs plus fleet-aware defaults, validated against the fleet.

        The single place where ``max_replicas`` defaults (to twice the
        initial fleet) and where a ceiling below the initial fleet is
        rejected — both the experiment-config cache key and the harness
        resolve through here, so they can never disagree.
        """
        values = dict(knobs)
        values.setdefault(
            "max_replicas",
            max(2 * initial_replicas, int(values.get("min_replicas", 1))),
        )
        config = cls.from_mapping(values)
        if config.max_replicas < initial_replicas:
            raise ValueError(
                f"autoscale max_replicas ({config.max_replicas}) is below "
                f"the initial fleet size ({initial_replicas})"
            )
        return config


@dataclass(frozen=True)
class ScaleEvent:
    """One scaling action, recorded for fleet reports."""

    time_s: float
    action: str  # "up" | "down"
    replica_index: int


class Autoscaler:
    """Stateful decision loop over an :class:`AutoscalerConfig`."""

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self._next_check = 0.0

    def decide(self, now: float, replicas: Sequence[Replica]) -> int:
        """Scaling decision at ``now``: +1 (up), -1 (down), or 0.

        ``replicas`` is the full fleet; warming and draining states are
        read off each replica.  At most one decision per check interval.
        """
        if now < self._next_check:
            return 0
        self._next_check = now + self.config.check_interval_s

        # Failed replicas (chaos crashes) are excluded from serving
        # capacity: their evacuated requests land as backlog on the
        # survivors, so a crash reads as scale-up pressure — but they
        # still occupy hardware, so the live ceiling below counts them.
        active = [r for r in replicas if not r.retired and not r.draining and not r.failed]
        if not active:
            return 0
        warm = [r for r in active if r.available_at <= now]
        if not warm:
            return 0
        # Scale-up keys on backlog (requests the engines have not even
        # started): a full running batch is healthy utilization, not a
        # reason to grow.  Warming replicas hold no load yet but count as
        # capacity already on the way (the denominator), damping repeated
        # scale-ups from one sustained burst.
        mean_backlog = sum(r.waiting_requests for r in warm) / len(active)

        # The ceiling bounds *live* replicas (draining ones still occupy
        # hardware until they retire), so concurrent fleet size can never
        # exceed max_replicas.
        live = sum(1 for r in replicas if not r.retired)
        if mean_backlog > self.config.scale_up_queue and live < self.config.max_replicas:
            return 1

        # Scale-down keys on total outstanding work: shrink only when the
        # fleet is nearly idle, not merely backlog-free.
        mean_outstanding = sum(r.queued_requests for r in warm) / len(warm)
        if (
            mean_outstanding < self.config.scale_down_queue
            and len(warm) > self.config.min_replicas
        ):
            return -1
        return 0

    # ------------------------------------------------------------------

    def pick_drain_victim(self, replicas: Sequence[Replica]) -> Replica | None:
        """Least-loaded warm replica, by (queued tokens, highest index).

        Highest index breaks ties so autoscaled additions retire before
        the original fleet.
        """
        candidates = [
            r for r in replicas if not r.retired and not r.draining and not r.failed
        ]
        if len(candidates) <= self.config.min_replicas:
            return None
        return min(candidates, key=lambda r: (r.queued_tokens, -r.index))
