"""Cluster serving layer: multi-replica fleets with routing + autoscaling.

Composes the single-engine machinery (engine, scheduler, metrics) into a
fleet simulation: N replicas behind a pluggable router, optionally grown
and shrunk by a queue-depth autoscaler.  See :mod:`repro.cluster.fleet`
for the event-loop semantics.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.cluster.fleet import FleetReport, FleetSimulator
from repro.cluster.replica import Replica
from repro.cluster.router import (
    ROUTER_NAMES,
    AffinityRouter,
    LeastLoadedRouter,
    PowerOfTwoRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    make_router,
)

__all__ = [
    "ROUTER_NAMES",
    "AffinityRouter",
    "Autoscaler",
    "AutoscalerConfig",
    "FleetReport",
    "FleetSimulator",
    "LeastLoadedRouter",
    "PowerOfTwoRouter",
    "PrefixAffinityRouter",
    "Replica",
    "RoundRobinRouter",
    "Router",
    "ScaleEvent",
    "make_router",
]
