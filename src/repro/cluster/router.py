"""Pluggable request routing across fleet replicas.

A router sees each arrival once, at its admission boundary, together with
the replicas that are currently routable (warm, not draining), and picks
the one that receives the request.  All policies are deterministic given
the fleet seed — the power-of-two-choices sampler draws its candidates
from :mod:`repro._rng` keyed on (seed, request id), never from global
randomness — so a fixed-seed cluster run is byte-reproducible.

Policies
--------
- ``round-robin``: cycle through routable replicas in index order.
- ``least-loaded``: send to the replica with the fewest queued tokens
  (outstanding prompt + output work), ties to the lowest index.
- ``p2c``: power-of-two-choices — sample two distinct replicas from the
  seeded hash stream, keep the less loaded.  The classic load-balancing
  result: almost all of least-loaded's benefit at O(1) inspection cost.
- ``affinity``: SLO/category affinity — reserve a slice of the fleet for
  urgent (baseline-relative SLO) categories so their stringent TPOT
  targets are not queued behind relaxed bulk traffic; both partitions
  route least-loaded internally.  The reservation is sized adaptively to
  the urgent share of routed token load (or pinned via
  ``reserved_fraction``), so isolation does not starve either class.
- ``prefix-affinity``: session stickiness — follow-up turns of a
  conversation go to the replica that already holds the session's prefix
  KV (falling back to least-loaded when it is not routable), making the
  fleet-wide prefix hit rate a routing objective.  Requests without a
  session route least-loaded.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Sequence

from repro._rng import hash_seed, randint
from repro.cluster.replica import Replica
from repro.registry import ROUTERS, Param
from repro.serving.request import Request

#: Router registry keys, in the order the CLI advertises them (kept as a
#: static tuple for backwards compatibility; :data:`repro.registry.ROUTERS`
#: is the authoritative enumeration).
ROUTER_NAMES = ("round-robin", "least-loaded", "p2c", "affinity", "prefix-affinity")



class Router(abc.ABC):
    """Routing policy: one replica choice per arriving request."""

    #: Registry key and display name.
    name: str = "base"

    @abc.abstractmethod
    def route(self, req: Request, replicas: Sequence[Replica]) -> Replica:
        """Pick the replica that receives ``req``.

        ``replicas`` is the non-empty, index-ordered routable subset of
        the fleet at the admission instant.
        """

    def forget_replica(self, index: int) -> None:
        """Drop any sticky state referring to replica ``index``.

        Called by the fleet when a replica crashes (see
        :mod:`repro.chaos`): its caches are gone, so affinity toward it
        is stale.  Stateless policies need no reaction.
        """


def _least_loaded(replicas: Sequence[Replica]) -> Replica:
    """Fewest queued tokens, ties broken by lowest index."""
    return min(replicas, key=lambda r: (r.queued_tokens, r.index))


@ROUTERS.register("round-robin", summary="cycle through routable replicas in index order")
class RoundRobinRouter(Router):
    """Cycle through routable replicas in index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._sent = 0

    def route(self, req: Request, replicas: Sequence[Replica]) -> Replica:
        choice = replicas[self._sent % len(replicas)]
        self._sent += 1
        return choice


@ROUTERS.register("least-loaded", summary="fewest queued tokens wins, ties to lowest index")
class LeastLoadedRouter(Router):
    """Send each request to the replica with the fewest queued tokens."""

    name = "least-loaded"

    def route(self, req: Request, replicas: Sequence[Replica]) -> Replica:
        return _least_loaded(replicas)


@ROUTERS.register("p2c", summary="power-of-two-choices: sample two replicas, keep the less loaded")
class PowerOfTwoRouter(Router):
    """Sample two distinct replicas (seeded); keep the less loaded."""

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def route(self, req: Request, replicas: Sequence[Replica]) -> Replica:
        n = len(replicas)
        if n == 1:
            return replicas[0]
        h = hash_seed(self.seed, 0x5032_4348, req.rid)  # "P2CH"
        first = randint(h, 0, 0, n)
        second = (first + 1 + randint(h, 1, 0, n - 1)) % n
        return _least_loaded([replicas[first], replicas[second]])


@ROUTERS.register(
    "affinity",
    params=[
        Param(
            "reserve", "float", default=None, dest="reserved_fraction", allow_auto=True,
            minimum=0.0, maximum=1.0, exclusive_min=True, exclusive_max=True,
            help="fraction of the fleet reserved for urgent categories "
            "(auto: sized adaptively from the urgent token share)",
        ),
    ],
    summary="reserve a headroom-sized slice of the fleet for urgent categories",
)
class AffinityRouter(Router):
    """Pin urgent categories to a reserved slice of the fleet.

    The first ``k`` routable replicas (by index) serve urgent requests
    (priority 0, mirroring ``Category.is_urgent`` through the workload
    generator) and the remaining ``n - k`` serve everything else, with
    least-loaded routing inside each partition.

    ``k`` is sized from the observed urgent share of routed token load
    (prompt + output tokens) times :data:`URGENT_HEADROOM`.  The headroom
    is the point of the policy: urgent SLOs are *latency* targets (1.2x
    the zero-load baseline), so urgent replicas must run at low batch
    occupancy, not merely at a fair share of the tokens — reserving only
    the proportional slice recreates the very contention the reservation
    is meant to remove.  A fixed ``reserved_fraction`` pins ``k``
    instead; a single-replica fleet serves everything.
    """

    name = "affinity"

    #: Over-provisioning factor for the urgent partition.
    URGENT_HEADROOM = 1.5

    def __init__(self, reserved_fraction: float | None = None) -> None:
        if reserved_fraction is not None and not 0.0 < reserved_fraction < 1.0:
            raise ValueError(
                f"reserved_fraction must be in (0, 1), got {reserved_fraction}"
            )
        self.reserved_fraction = reserved_fraction
        self._urgent_tokens = 0
        self._total_tokens = 0

    def _num_reserved(self, n: int) -> int:
        if self.reserved_fraction is not None:
            fraction = self.reserved_fraction
        else:
            share = (
                self._urgent_tokens / self._total_tokens
                if self._total_tokens > 0
                else 0.5
            )
            fraction = min(0.9, self.URGENT_HEADROOM * share)
        # Round up: headroom means erring toward a larger urgent slice.
        return min(n - 1, max(1, math.ceil(fraction * n)))

    def route(self, req: Request, replicas: Sequence[Replica]) -> Replica:
        urgent = req.priority == 0
        tokens = req.prompt_len + req.max_new_tokens
        self._total_tokens += tokens
        if urgent:
            self._urgent_tokens += tokens
        n = len(replicas)
        if n == 1:
            return replicas[0]
        k = self._num_reserved(n)
        pool = replicas[:k] if urgent else replicas[k:]
        return _least_loaded(pool)


@ROUTERS.register(
    "prefix-affinity",
    summary="pin a session's turns to the replica holding its prefix KV",
)
class PrefixAffinityRouter(Router):
    """Route follow-up turns to the replica that cached the session's prefix.

    The first turn of a session (and every sessionless request) routes
    least-loaded; the chosen replica becomes the session's *home*, and
    later turns return there so the conversation's KV is reused instead
    of re-prefilled.  A home that stops being routable (draining,
    retired, still warming) falls back to least-loaded and the session
    is re-homed — its prefix must be recomputed wherever it lands, which
    is exactly the migration cost real sticky routing pays.
    """

    name = "prefix-affinity"

    def __init__(self) -> None:
        self._home: dict[int, int] = {}  # session id -> replica index

    def route(self, req: Request, replicas: Sequence[Replica]) -> Replica:
        sid = req.session_id
        if sid is not None:
            home = self._home.get(sid)
            if home is not None:
                for replica in replicas:
                    if replica.index == home:
                        return replica
        choice = _least_loaded(replicas)
        if sid is not None:
            self._home[sid] = choice.index
        return choice

    def forget_replica(self, index: int) -> None:
        """Un-home every session pinned to a crashed replica.

        Their prefix KV died with it; the next turn routes least-loaded
        and re-homes wherever it lands (re-prefilling from scratch),
        rather than returning to a replica that restarts cold.
        """
        self._home = {sid: home for sid, home in self._home.items() if home != index}


def make_router(name: str, seed: int = 0, **kwargs) -> Router:
    """Instantiate a routing policy from a spec string.

    Accepts any :data:`~repro.registry.ROUTERS` spec (``p2c``,
    ``affinity:reserve=0.4``, ...); ``seed`` is passed to policies whose
    constructor takes one and silently dropped otherwise.
    """
    return ROUTERS.create(name, seed=seed, **kwargs)
