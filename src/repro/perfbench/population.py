"""Population-scale workload-generation benchmark (``repro bench``).

The simulation scenarios in :mod:`repro.perfbench.suite` measure the
*simulator*; this module measures the **workload substrate** at the
ROADMAP "million-user population scale" operating point: a session
trace sized so that >100k conversations are simultaneously open inside
the generation window.  At that scale the per-``Request``-object path
is memory-bound long before it is compute-bound, so the benchmark pins
the three properties the columnar substrate
(:mod:`repro.workloads.batcharrivals`) exists to provide:

- **throughput** — building the column store must beat the scalar
  object-materializing path by at least :data:`MIN_SPEEDUP`;
- **memory** — tracemalloc peak during the columnar build must stay
  under the committed :data:`PEAK_MEMORY_CEILING_MB` (the resident
  column store itself is 64 B/request);
- **identity** — chunk-materializing the column store must reproduce
  the scalar path's requests byte-for-byte (one SHA-256 over every
  schedulable field of every request, in trace order).

Each property is a hard **gate**: :func:`gate_failures` turns any
violation into an error line and ``repro bench`` exits non-zero, so CI
perf-smoke enforces all three on every run.  The row is embedded in the
bench result JSON under the ``"population"`` key and committed with the
``BENCH_PR*.json`` trajectory; :func:`~repro.perfbench.suite.compare_to_baseline`
treats a diverged population digest (same config) exactly like a
diverged scenario digest — determinism broke.

The speedup gate compares scalar end-to-end generation against the
*columnar build*, because the column store is what population-scale
consumers use: both simulators detect ``iter_chunks`` and stream
chunk-materialized requests instead of holding the full object list
(see :class:`repro.serving.clock.ChunkedArrivalStream`).  The chunked
materialization rate is reported alongside as context, not gated.

Environments without numpy (the substrate is gated, never required)
record a skipped row and enforce nothing.
"""

from __future__ import annotations

import hashlib
import time
import tracemalloc

from repro.workloads import batcharrivals

__all__ = [
    "MIN_CONCURRENT_SESSIONS",
    "MIN_SPEEDUP",
    "PEAK_MEMORY_CEILING_MB",
    "POPULATION_CONFIG",
    "gate_failures",
    "peak_concurrent_sessions",
    "request_digest",
    "run_population",
]

#: The committed operating point.  seed=3 at 1400 req/s over a 10-minute
#: window with 6-turn conversations and 3-minute think times yields
#: ~363k requests across ~140k sessions, ~132k of them simultaneously
#: open at the peak — comfortably past the 100k-session floor.
POPULATION_CONFIG: dict = {
    "model_deployment": "llama70b-4xa100",
    "seed": 3,
    "duration_s": 600.0,
    "rps": 1400.0,
    "turns": 6,
    "think_time_s": 180.0,
    "system_prompt": 256,
}

#: Gate: sessions simultaneously open at the busiest instant.
MIN_CONCURRENT_SESSIONS = 100_000

#: Gate: scalar-generation wall over columnar-build wall.
MIN_SPEEDUP = 5.0

#: Gate: tracemalloc peak (MB) while building the column store.  The
#: store itself is 64 B/request (~23 MB here); the ceiling covers the
#: transient session-grid intermediates (~117 MB measured) with margin
#: while still catching any O(n)-object regression, which would blow
#: past it immediately (~363k Request objects are several hundred MB).
PEAK_MEMORY_CEILING_MB = 192.0


def _session_generator():
    """A fresh generator pair for the committed operating point."""
    from repro.hardware.roofline import RooflineModel
    from repro.hardware.spec import DEPLOYMENT_PRESETS
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.sessions import SessionGenerator

    cfg = POPULATION_CONFIG
    roofline = RooflineModel(DEPLOYMENT_PRESETS[cfg["model_deployment"]])
    base = WorkloadGenerator(roofline, seed=cfg["seed"])
    return SessionGenerator(
        base,
        turns=cfg["turns"],
        think_time_s=cfg["think_time_s"],
        system_prompt=cfg["system_prompt"],
    )


def peak_concurrent_sessions(
    work: "batcharrivals.ColumnarWorkload", duration_s: float, turns: int
) -> int:
    """Most sessions simultaneously open anywhere in the window.

    A session opens at its first kept arrival.  It closes at its last
    kept arrival — unless the window cut it (fewer than ``turns`` turns
    kept), in which case the conversation is still open at window end
    and counts as occupying the population until ``duration_s``.
    """
    import numpy as np

    sid = np.asarray(work.session_id)
    arrival = np.asarray(work.arrival)
    turn_index = np.asarray(work.turn_index)
    _, inv = np.unique(sid, return_inverse=True)
    n_sessions = int(inv.max()) + 1 if inv.size else 0
    if n_sessions == 0:
        return 0
    first = np.full(n_sessions, np.inf)
    last = np.full(n_sessions, -np.inf)
    np.minimum.at(first, inv, arrival)
    np.maximum.at(last, inv, arrival)
    max_turn = np.full(n_sessions, -1, dtype=np.int64)
    np.maximum.at(max_turn, inv, turn_index)
    window_cut = max_turn < turns - 1
    end = np.where(window_cut, duration_s, last)
    events = np.concatenate([first, end])
    deltas = np.concatenate(
        [np.ones(n_sessions, np.int64), -np.ones(n_sessions, np.int64)]
    )
    # Opens before closes at equal timestamps: a session ending exactly
    # when another begins still overlaps it for an instant.
    order = np.lexsort((-deltas, events))
    return int(np.max(np.cumsum(deltas[order])))


def request_digest(requests) -> str:
    """SHA-256 over every schedulable field of every request, in order.

    Covers everything the simulator reads from a freshly generated
    request — identity, timing, lengths, SLO, session linkage, and
    prefix segments — with floats in hex so the digest is exact.
    Accepts any iterable, so the columnar side can stream chunks
    without ever holding the full object list.
    """
    digest = hashlib.sha256()
    for r in requests:
        digest.update(
            (
                f"{r.rid},{r.category},{r.arrival_time.hex()},"
                f"{r.prompt_len},{r.max_new_tokens},{r.tpot_slo.hex()},"
                f"{r.predictability.hex()},{r.priority},"
                f"{r.session_id},{r.turn_index},{r.prompt_segments}\n"
            ).encode("utf-8")
        )
    return f"sha256:{digest.hexdigest()}"


def run_population() -> dict:
    """Execute the population benchmark; returns its result row.

    Wall clocks and the tracemalloc peak come from separate builds so
    the instrumentation never pollutes the timing.  The scalar run
    toggles :data:`repro.workloads.batcharrivals.DISABLED` around a
    fresh generator, exactly like the byte-identity tests.
    """
    cfg = POPULATION_CONFIG
    row: dict = {"name": "population-100k", "config": dict(cfg)}
    if not batcharrivals.AVAILABLE:
        row["skipped"] = "numpy unavailable; columnar substrate disabled"
        return row

    duration_s, rps = cfg["duration_s"], cfg["rps"]

    # Timed columnar build (the substrate population-scale consumers use).
    start = time.perf_counter()
    work = _session_generator().columnar(duration_s, rps)
    columnar_wall = time.perf_counter() - start
    n = len(work)

    # Memory peak, untimed: a second build under tracemalloc.
    tracemalloc.start()
    probe = _session_generator().columnar(duration_s, rps)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del probe

    import numpy as np

    peak_sessions = peak_concurrent_sessions(work, duration_s, cfg["turns"])
    sessions = int(np.unique(np.asarray(work.session_id)).size)

    # Chunked materialization + digest (streaming; never the full list).
    start = time.perf_counter()
    digest = request_digest(
        r for chunk in work.iter_chunks() for r in chunk
    )
    materialize_wall = time.perf_counter() - start

    # Scalar reference: full object-materializing generation.
    saved = batcharrivals.DISABLED
    batcharrivals.DISABLED = True
    try:
        start = time.perf_counter()
        scalar_requests = _session_generator().generate(duration_s, rps)
        scalar_wall = time.perf_counter() - start
    finally:
        batcharrivals.DISABLED = saved
    scalar_digest = request_digest(scalar_requests)
    del scalar_requests

    speedup = scalar_wall / columnar_wall if columnar_wall > 0 else 0.0
    peak_mb = peak_bytes / 1e6
    row.update(
        {
            "requests": n,
            "sessions": sessions,
            "peak_concurrent_sessions": peak_sessions,
            "columnar_wall_s": columnar_wall,
            "columnar_req_per_s": n / columnar_wall if columnar_wall > 0 else 0.0,
            "materialize_wall_s": materialize_wall,
            "materialize_req_per_s": (
                n / materialize_wall if materialize_wall > 0 else 0.0
            ),
            "scalar_wall_s": scalar_wall,
            "scalar_req_per_s": n / scalar_wall if scalar_wall > 0 else 0.0,
            "speedup": speedup,
            "column_store_bytes": work.nbytes,
            "bytes_per_request": work.nbytes / n if n else 0.0,
            "tracemalloc_peak_mb": peak_mb,
            "digest": digest,
            "scalar_digest": scalar_digest,
            "gates": {
                "concurrent_sessions": {
                    "min": MIN_CONCURRENT_SESSIONS,
                    "value": peak_sessions,
                    "ok": peak_sessions >= MIN_CONCURRENT_SESSIONS,
                },
                "peak_memory_mb": {
                    "max": PEAK_MEMORY_CEILING_MB,
                    "value": peak_mb,
                    "ok": peak_mb <= PEAK_MEMORY_CEILING_MB,
                },
                "speedup": {
                    "min": MIN_SPEEDUP,
                    "value": speedup,
                    "ok": speedup >= MIN_SPEEDUP,
                },
                "byte_identity": {
                    "value": digest == scalar_digest,
                    "ok": digest == scalar_digest,
                },
            },
        }
    )
    return row


def gate_failures(row: dict | None) -> list[str]:
    """Error lines for every failed population gate (empty when clean).

    A skipped row (no numpy) enforces nothing; a present row with any
    ``ok: false`` gate is a hard failure — ``repro bench`` exits
    non-zero on these exactly like a diverged report digest.
    """
    if not row or "gates" not in row:
        return []
    failures = []
    for name, gate in row["gates"].items():
        if gate["ok"]:
            continue
        bound = (
            f">= {gate['min']}" if "min" in gate
            else f"<= {gate['max']}" if "max" in gate
            else "== scalar"
        )
        failures.append(
            f"error: population gate {name!r} failed: "
            f"value {gate['value']} not {bound}"
        )
    return failures
