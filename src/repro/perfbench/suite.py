"""The standard simulator-performance suite and its JSON schema.

Five scenarios cover the simulator's distinct hot paths:

- ``solo-adaserve``: the speculate-select-verify pipeline and the
  synthetic model substrate (tree construction, draft distributions);
- ``fleet-4r``: the fleet event loop, routing, and the vLLM decode path
  (KV admission, preemption machinery) at cluster scale;
- ``sessions-prefix``: prefix-cache matching, token-stream hashing, and
  session workloads;
- ``chaos-churn``: the fault-injection path — replica crash + straggler
  under prefix-affinity routing, exercising evacuation, re-routing, and
  the incident-report machinery;
- ``sweep-12pt``: a Figure 8/9-shaped grid across four systems, the
  dominant wall-clock cost of CI and large experiments.

Every scenario is a fixed-seed pure function of its specs, so the
per-scenario report digest (SHA-256 over the strict-JSON exports) must
be identical before and after any legitimate performance change; the
digests double as a coarse golden-equivalence check (the fine-grained
one lives in ``tests/test_golden_equivalence.py``).  Against a
like-for-like baseline, :func:`compare_to_baseline` treats a digest
mismatch as a hard **error** (determinism broke), while iterations/s
regressions stay warnings (wall clocks are noisy).

Results are written in a stable schema (see :data:`BENCH_SCHEMA_VERSION`)
so ``BENCH_PR*.json`` files remain comparable across PRs::

    {
      "bench_schema": 1,
      "suite": "full" | "quick",
      "repro_version": "...",
      "scenarios": [
        {"name": ..., "runs": ..., "wall_s": ..., "iterations": ...,
         "iters_per_s": ..., "sim_time_s": ..., "sim_s_per_wall_s": ...,
         "digest": "sha256:...", "attrib_digest": "sha256:..."},
        ...
      ],
      "aggregate": {"wall_s": ..., "iterations": ..., "iters_per_s": ...,
                    "sim_time_s": ..., "sim_s_per_wall_s": ...},
      "baseline": {...optional embedded comparison...}
    }

``attrib_digest`` hashes the scenario's latency-attribution export
(:mod:`repro.obs.attrib` over the first spec, traced **outside** the
timed loop): the report digest proves *what* the simulator produced is
unchanged, the attribution digest proves *where the time went* is
unchanged — a second, finer determinism surface covering the trace
grammar itself.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro import __version__
from repro.analysis.export import report_to_json
from repro.analysis.runner import run_spec
from repro.analysis.spec import ExperimentSpec

#: Bump when the result layout changes (comparison refuses mismatches).
BENCH_SCHEMA_VERSION = 1

#: Default output path for the committed perf trajectory.
DEFAULT_OUT = "BENCH_PR10.json"

#: Iterations/s regression (fractional drop vs baseline) that triggers a
#: warning in :func:`compare_to_baseline`.
REGRESSION_WARN_FRACTION = 0.30


@dataclass(frozen=True)
class Scenario:
    """One named bench scenario: a tuple of experiment specs."""

    name: str
    description: str
    specs: tuple[ExperimentSpec, ...]


def build_suite(quick: bool = False) -> list[Scenario]:
    """The standard suite (``--quick`` shortens traces, same scenarios)."""
    d_run = 8.0 if quick else 30.0
    d_sweep = 4.0 if quick else 10.0

    def spec(**kw) -> ExperimentSpec:
        kw.setdefault("model", "llama70b")
        kw.setdefault("seed", 0)
        return ExperimentSpec.create(**kw)

    sweep = tuple(
        spec(system=system, rps=rps, duration_s=d_sweep, trace="bursty")
        for system in ("vllm", "sarathi", "vllm-spec:k=4", "adaserve")
        for rps in (2.6, 3.4, 4.2)
    )
    return [
        Scenario(
            "solo-adaserve",
            "one AdaServe engine on the bursty trace (speculation pipeline)",
            (spec(system="adaserve", rps=4.0, duration_s=d_run, trace="bursty"),),
        ),
        Scenario(
            "fleet-4r",
            "4-replica vLLM fleet, least-loaded routing, diurnal trace",
            (
                spec(
                    system="vllm",
                    rps=12.0,
                    duration_s=d_run,
                    trace="diurnal",
                    replicas=4,
                    router="least-loaded",
                ),
            ),
        ),
        Scenario(
            "sessions-prefix",
            "session workload with the shared prefix cache enabled",
            (
                spec(
                    system="vllm",
                    rps=6.0,
                    duration_s=d_run,
                    trace="sessions",
                    prefix_cache=True,
                ),
            ),
        ),
        Scenario(
            "chaos-churn",
            "3-replica affinity fleet with a crash + straggler injected",
            (
                # Fault times sit inside the quick trace too (d_run >= 8),
                # so quick and full runs exercise the same chaos path.
                spec(
                    system="vllm",
                    rps=9.0,
                    duration_s=d_run,
                    trace="sessions",
                    prefix_cache=True,
                    replicas=3,
                    router="affinity",
                    faults=(
                        "crash:at=3,replica=1,restart=2",
                        "straggler:at=1,replica=0,slow=1.5,duration=4",
                    ),
                ),
            ),
        ),
        Scenario(
            "sweep-12pt",
            "12-point RPS grid over vllm/sarathi/vllm-spec/adaserve",
            sweep,
        ),
    ]


def _attrib_digest(spec: ExperimentSpec) -> str:
    """SHA-256 over the spec's latency-attribution export.

    Traced rerun of one spec (obs on; the spec's cache key and report
    are unchanged — observation is passive), digesting the strict-JSON
    attribution payload.  Pins the trace grammar and the decomposition:
    a prefill span that moves, a preemption that stops being emitted, or
    a component that drifts all change this digest while the report
    digest stays put.
    """
    from dataclasses import replace

    from repro.analysis.runner import run_traced
    from repro.obs import ObsSpec, attribution_to_dict, attribution_to_json, decompose

    traced = replace(spec, obs=ObsSpec(trace=True))
    report, observer = run_traced(traced)
    attribs = decompose(observer.collector, report.requests, report.sim_time_s)
    payload = attribution_to_dict(attribs, report.sim_time_s, chaos=report.chaos)
    digest = hashlib.sha256(attribution_to_json(payload).encode("utf-8"))
    return f"sha256:{digest.hexdigest()}"


def run_scenario(scenario: Scenario) -> dict:
    """Execute one scenario; returns its result row (stable schema)."""
    digest = hashlib.sha256()
    iterations = 0
    sim_time = 0.0
    start = time.perf_counter()
    for spec in scenario.specs:
        report = run_spec(spec)  # fresh simulation — never the result cache
        iterations += report.iterations
        sim_time += report.sim_time_s
        digest.update(report_to_json(report).encode("utf-8"))
        digest.update(b"\0")
    wall = time.perf_counter() - start
    # Attribution digest of the first spec, computed OUTSIDE the timed
    # window: it re-runs the simulation with tracing on, and that cost
    # must not pollute the iterations/s measurement.
    attrib_digest = _attrib_digest(scenario.specs[0])
    return {
        "name": scenario.name,
        "description": scenario.description,
        "runs": len(scenario.specs),
        "wall_s": wall,
        "iterations": iterations,
        "iters_per_s": iterations / wall if wall > 0 else 0.0,
        "sim_time_s": sim_time,
        "sim_s_per_wall_s": sim_time / wall if wall > 0 else 0.0,
        "digest": f"sha256:{digest.hexdigest()}",
        "attrib_digest": attrib_digest,
    }


def run_suite(quick: bool = False, progress=None) -> dict:
    """Run the whole suite; returns the stable-schema result dict.

    The population workload-generation benchmark (see
    :mod:`repro.perfbench.population`) runs in both modes at its one
    committed operating point — its digest and gates are therefore
    directly comparable between quick and full results — and lands
    under the ``"population"`` key, outside the simulation aggregate.
    """
    from repro.perfbench.population import run_population

    rows = []
    for scenario in build_suite(quick):
        row = run_scenario(scenario)
        rows.append(row)
        if progress is not None:
            progress(row)
    wall = sum(r["wall_s"] for r in rows)
    iterations = sum(r["iterations"] for r in rows)
    sim_time = sum(r["sim_time_s"] for r in rows)
    return {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "suite": "quick" if quick else "full",
        "repro_version": __version__,
        "scenarios": rows,
        "population": run_population(),
        "aggregate": {
            "wall_s": wall,
            "iterations": iterations,
            "iters_per_s": iterations / wall if wall > 0 else 0.0,
            "sim_time_s": sim_time,
            "sim_s_per_wall_s": sim_time / wall if wall > 0 else 0.0,
        },
    }


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
def compare_to_baseline(
    current: dict, baseline: dict
) -> tuple[dict, list[str], list[str]]:
    """Compare two bench results; returns (summary, warnings, errors).

    The summary is embedded under the result's ``baseline`` key.  A
    scenario (or the aggregate) whose iterations/s dropped by more than
    :data:`REGRESSION_WARN_FRACTION` produces a warning — never an error:
    wall-clock noise across machines and Python versions makes a hard
    gate counterproductive, but a 30% drop is worth a human look.

    Report *digests* are different: when the comparison is like-for-like
    (same suite, or the baseline embeds this suite's sibling result), a
    scenario whose digest diverged is a hard **error** — same specs, same
    seeds, different simulation output means determinism broke, and no
    amount of machine noise explains that.  Scenarios absent from the
    baseline (newly added) are skipped.
    """
    warnings: list[str] = []
    errors: list[str] = []
    if baseline.get("bench_schema") != current.get("bench_schema"):
        warnings.append(
            "baseline uses bench_schema "
            f"{baseline.get('bench_schema')!r} (current: "
            f"{current.get('bench_schema')!r}); comparison skipped"
        )
        return {"comparable": False}, warnings, errors
    like_for_like = True
    if baseline.get("suite") != current.get("suite"):
        # A committed result may carry its sibling suite's numbers under
        # a key named after that suite (the repo's committed BENCH file
        # embeds the quick run this way so CI's --quick smoke compares
        # like with like); fall through to an indicative comparison
        # otherwise.
        nested = baseline.get(current.get("suite"))
        if isinstance(nested, dict) and nested.get("suite") == current.get("suite"):
            baseline = nested
        else:
            like_for_like = False
            warnings.append(
                f"baseline suite is {baseline.get('suite')!r} but this run is "
                f"{current.get('suite')!r}; iterations/s ratios are indicative only"
            )

    base_rows = {row["name"]: row for row in baseline.get("scenarios", [])}
    if like_for_like:
        for row in current["scenarios"]:
            base = base_rows.get(row["name"])
            if base is None or "digest" not in base or "digest" not in row:
                continue
            if base["digest"] != row["digest"]:
                errors.append(
                    f"error: scenario {row['name']!r} report digest diverged from "
                    f"baseline ({base['digest']} -> {row['digest']}); fixed-seed "
                    "simulation output changed"
                )
            # Attribution digests are held to the same standard: the
            # trace grammar and latency decomposition are deterministic
            # functions of the run.  Baselines predating the field are
            # skipped.
            if (
                "attrib_digest" in base
                and "attrib_digest" in row
                and base["attrib_digest"] != row["attrib_digest"]
            ):
                errors.append(
                    f"error: scenario {row['name']!r} attribution digest diverged "
                    f"from baseline ({base['attrib_digest']} -> "
                    f"{row['attrib_digest']}); fixed-seed trace/attribution "
                    "output changed"
                )
    # Population digest: same committed config + fixed seed must yield
    # the same workload bytes in every mode (the benchmark always runs
    # at its one operating point), so a divergence is a hard error just
    # like a scenario digest.  Config changes make it incomparable.
    base_pop = baseline.get("population")
    cur_pop = current.get("population")
    if (
        isinstance(base_pop, dict)
        and isinstance(cur_pop, dict)
        and "digest" in base_pop
        and "digest" in cur_pop
    ):
        if base_pop.get("config") != cur_pop.get("config"):
            warnings.append(
                "population config changed vs baseline; digest comparison skipped"
            )
        elif base_pop["digest"] != cur_pop["digest"]:
            errors.append(
                "error: population workload digest diverged from baseline "
                f"({base_pop['digest']} -> {cur_pop['digest']}); fixed-seed "
                "workload generation changed"
            )

    per_scenario: dict[str, dict] = {}
    for row in current["scenarios"]:
        base = base_rows.get(row["name"])
        if base is None or base.get("iters_per_s", 0.0) <= 0.0:
            continue
        ratio = row["iters_per_s"] / base["iters_per_s"]
        per_scenario[row["name"]] = {
            "baseline_iters_per_s": base["iters_per_s"],
            "iters_per_s": row["iters_per_s"],
            "speedup": ratio,
        }
        if ratio < 1.0 - REGRESSION_WARN_FRACTION:
            warnings.append(
                f"warning: scenario {row['name']!r} iterations/s dropped "
                f"{(1.0 - ratio) * 100:.0f}% vs baseline "
                f"({base['iters_per_s']:.0f} -> {row['iters_per_s']:.0f})"
            )

    base_agg = baseline.get("aggregate", {})
    summary: dict = {"comparable": True, "per_scenario": per_scenario}
    if base_agg.get("iters_per_s", 0.0) > 0.0:
        ratio = current["aggregate"]["iters_per_s"] / base_agg["iters_per_s"]
        summary["aggregate"] = {
            "baseline_iters_per_s": base_agg["iters_per_s"],
            "iters_per_s": current["aggregate"]["iters_per_s"],
            "speedup": ratio,
        }
        if ratio < 1.0 - REGRESSION_WARN_FRACTION:
            warnings.append(
                f"warning: aggregate iterations/s dropped "
                f"{(1.0 - ratio) * 100:.0f}% vs baseline "
                f"({base_agg['iters_per_s']:.0f} -> "
                f"{current['aggregate']['iters_per_s']:.0f})"
            )
    return summary, warnings, errors


_BENCH_FILE_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def latest_baseline(directory: str | Path = ".") -> Path | None:
    """Newest committed bench result (highest ``BENCH_PR<N>.json``).

    The default for ``repro bench --baseline`` (no FILE): compare against
    the most recent committed perf trajectory without hard-coding its
    name into scripts and CI. ``None`` when the directory has none.
    """
    best: tuple[int, Path] | None = None
    for path in Path(directory).glob("BENCH_PR*.json"):
        match = _BENCH_FILE_RE.match(path.name)
        if match is None:
            continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, path)
    return None if best is None else best[1]


def format_bench_table(result: dict) -> str:
    """Human-readable summary of a bench result."""
    lines = [
        f"suite: {result['suite']}   repro {result['repro_version']}",
        f"{'scenario':<18} {'runs':>4} {'wall s':>8} {'iters':>8} "
        f"{'iters/s':>9} {'sim-s/wall-s':>13}",
    ]
    for row in result["scenarios"]:
        lines.append(
            f"{row['name']:<18} {row['runs']:>4} {row['wall_s']:>8.2f} "
            f"{row['iterations']:>8} {row['iters_per_s']:>9.0f} "
            f"{row['sim_s_per_wall_s']:>13.2f}"
        )
    agg = result["aggregate"]
    lines.append(
        f"{'aggregate':<18} {'':>4} {agg['wall_s']:>8.2f} "
        f"{agg['iterations']:>8} {agg['iters_per_s']:>9.0f} "
        f"{agg['sim_s_per_wall_s']:>13.2f}"
    )
    pop = result.get("population")
    if pop:
        if "skipped" in pop:
            lines.append(f"population: skipped ({pop['skipped']})")
        else:
            gates = pop["gates"]
            status = "PASS" if all(g["ok"] for g in gates.values()) else "FAIL"
            lines.append(
                f"population: {pop['requests']:,} requests / "
                f"{pop['peak_concurrent_sessions']:,} peak concurrent sessions; "
                f"columnar {pop['columnar_req_per_s']:,.0f} req/s "
                f"({pop['speedup']:.1f}x scalar), "
                f"peak {pop['tracemalloc_peak_mb']:.0f} MB, "
                f"identity {'ok' if gates['byte_identity']['ok'] else 'BROKEN'} "
                f"[gates: {status}]"
            )
    baseline = result.get("baseline")
    if baseline and baseline.get("comparable") and "aggregate" in baseline:
        lines.append(
            f"vs baseline: {baseline['aggregate']['speedup']:.2f}x aggregate "
            f"iterations/s "
            f"({baseline['aggregate']['baseline_iters_per_s']:.0f} -> "
            f"{baseline['aggregate']['iters_per_s']:.0f})"
        )
    return "\n".join(lines)


def load_result(path: str) -> dict:
    """Read a bench-result JSON file."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
