"""Simulator performance tracking (``repro bench``).

The rest of the repository measures the *simulated systems* (attainment,
goodput); this package measures the **simulator itself** — iterations per
wall-clock second and simulated seconds per wall second over a fixed,
seeded suite of representative scenarios — so that performance work on
the hot loops is a regression-tracked artifact instead of folklore.

The suite runs every simulation directly through the harness and never
touches the result cache: a bench run always executes fresh simulations
(a cache hit would measure JSON decoding, not the simulator), and there
is consequently no interaction with the cache's source fingerprint or
any stale on-disk record.  Each scenario also digests its reports'
strict-JSON export, so a bench run doubles as an end-to-end equivalence
check across optimization work.
"""

from repro.perfbench.population import (
    MIN_CONCURRENT_SESSIONS,
    MIN_SPEEDUP,
    PEAK_MEMORY_CEILING_MB,
    POPULATION_CONFIG,
    gate_failures,
    run_population,
)
from repro.perfbench.suite import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_OUT,
    Scenario,
    build_suite,
    compare_to_baseline,
    format_bench_table,
    latest_baseline,
    run_suite,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_OUT",
    "MIN_CONCURRENT_SESSIONS",
    "MIN_SPEEDUP",
    "PEAK_MEMORY_CEILING_MB",
    "POPULATION_CONFIG",
    "Scenario",
    "build_suite",
    "compare_to_baseline",
    "format_bench_table",
    "gate_failures",
    "latest_baseline",
    "run_population",
    "run_suite",
]
